//! `me-inspect`: render a flight-recorder post-mortem dump as a
//! human-readable event timeline plus a critical-path phase breakdown, and
//! diff two attribution artifacts for regression triage.
//!
//! Render a dump produced by a `FlightConfig { dump_dir: Some(..) }` run:
//!
//! ```text
//! cargo run --release --bin me-inspect -- results/flight_0_rail_death.json
//! ```
//!
//! Diff two attribution artifacts (baseline files, `BENCH_attribution.json`
//! documents, or flight dumps with embedded attribution) — prints the
//! per-cell phase-delta tables, exits 2 when any cell regressed, and emits
//! the machine-readable report with `--json`:
//!
//! ```text
//! cargo run --release --bin me-inspect -- diff old.json new.json [--json]
//! ```
//!
//! Render an interval-sampled timeline artifact (`Timeline::to_jsonl`,
//! e.g. `results/telemetry_failover.jsonl`) as per-interval sparkline
//! tables — derived goodput and retransmit rows, per-rail backlog, then
//! every non-zero source. Pass several per-shard artifacts at once to add
//! the cross-shard imbalance table. Exits 2 when a file's telescoping
//! invariant (`base + Σ deltas == final`) does not hold:
//!
//! ```text
//! cargo run --release --bin me-inspect -- timeline dump.jsonl [more.jsonl ...] [--json] [--quiet]
//! ```
//!
//! Replay the streaming health detectors over timeline artifacts offline
//! (`doctor`): every row runs through the same z-score/CUSUM/burst/rule
//! detectors the online [`me_trace::HealthMonitor`] applies at sample
//! time, producing bit-identical incidents. Several files add the
//! cross-file (per-shard) imbalance diagnosis. Prints the incident table,
//! exits 1 when an incident is still open at end of artifact:
//!
//! ```text
//! cargo run --release --bin me-inspect -- doctor dump.jsonl [more.jsonl ...] [--json]
//! ```
//!
//! With no argument it demonstrates the whole loop end to end: it runs a
//! two-rail transfer through a scripted rail outage with the always-on
//! flight recorder enabled, lets the rail-death trigger take its dump, and
//! renders that dump — so the example is self-contained.
//!
//! Set `ME_INSPECT_ALL=1` to print every retained event instead of the
//! trailing window.

use me_trace::{
    diagnose_imbalance, diff_docs, imbalance, DiffConfig, FlightConfig, HealthConfig,
    HealthMonitor, HealthReport, Json, SourceKind, TimelineDoc,
};
use multiedge::{Endpoint, OpFlags, SystemConfig};
use netsim::time::ms;
use netsim::{build_cluster, FaultPlan, Sim};
use std::rc::Rc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("diff") {
        run_diff(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("timeline") {
        run_timeline(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("doctor") {
        run_doctor(&args[1..]);
    }
    let doc = match args.first() {
        Some(path) => load(path),
        None => demo_dump(),
    };
    render(&doc);
}

fn load(path: &str) -> Json {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("me-inspect: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    match Json::parse(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("me-inspect: {path} is not valid JSON: {e}");
            std::process::exit(1);
        }
    }
}

/// `me-inspect diff <old> <new> [--json]`: exit 0 clean, 1 on usage or
/// unreadable/mismatched artifacts, 2 when a cell regressed.
fn run_diff(args: &[String]) -> ! {
    let json_out = args.iter().any(|a| a == "--json");
    let paths: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let [old_path, new_path] = paths.as_slice() else {
        eprintln!("usage: me-inspect diff <old.json> <new.json> [--json]");
        std::process::exit(1);
    };
    let (old, new) = (load(old_path), load(new_path));
    let cfg = DiffConfig::default();
    let report = match diff_docs(&old, &new, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("me-inspect: cannot diff {old_path} vs {new_path}: {e}");
            std::process::exit(1);
        }
    };
    if json_out {
        print!("{}", report.to_json().render_pretty());
    } else {
        print!("{}", report.render_human(&cfg));
    }
    std::process::exit(if report.regressed() { 2 } else { 0 });
}

// ---------------------------------------------------------------------------
// timeline subcommand
// ---------------------------------------------------------------------------

/// Read and parse a set of timeline artifacts, exiting with `err_exit` on
/// the first unreadable or non-timeline file.
fn load_docs(paths: &[&String], err_exit: i32) -> Vec<(String, TimelineDoc)> {
    paths
        .iter()
        .map(|p| {
            let text = match std::fs::read_to_string(p) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("me-inspect: cannot read {p}: {e}");
                    std::process::exit(err_exit);
                }
            };
            match TimelineDoc::parse_jsonl(&text) {
                Ok(d) => (p.to_string(), d),
                Err(e) => {
                    eprintln!("me-inspect: {p} is not a timeline artifact: {e}");
                    std::process::exit(err_exit);
                }
            }
        })
        .collect()
}

/// `me-inspect timeline <dump.jsonl> [more.jsonl ...] [--json] [--quiet]`:
/// exit 0 clean, 1 on usage or unreadable/invalid artifacts, 2 when any
/// file's counter columns fail the telescoping invariant.
fn run_timeline(args: &[String]) -> ! {
    const USAGE: &str = "usage: me-inspect timeline <dump.jsonl> [more.jsonl ...] [--json] [--quiet]\n\
        \n\
        Renders interval-sampled timeline artifacts as per-interval sparkline\n\
        tables (a machine-readable report with --json; --quiet suppresses all\n\
        normal output so only the exit code carries the verdict). Several\n\
        files add the cross-file imbalance table.\n\
        \n\
        Exit codes:\n\
        \x20 0  every file parses and its telescoping invariant holds\n\
        \x20 2  a file's counters do not reconcile (base + deltas != final)\n\
        \x20 1  usage error or unreadable/invalid artifact";
    if args.iter().any(|a| a == "--help") {
        println!("{USAGE}");
        std::process::exit(0);
    }
    let json_out = args.iter().any(|a| a == "--json");
    let quiet = args.iter().any(|a| a == "--quiet");
    let paths: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    if paths.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(1);
    }
    let docs = load_docs(&paths, 1);
    let mut broken = false;
    for (path, doc) in &docs {
        if let Err(e) = doc.reconcile() {
            eprintln!("me-inspect: {path}: telescoping invariant VIOLATED: {e}");
            broken = true;
        }
    }
    if quiet {
        // Verdict is the exit code; diagnostics already went to stderr.
    } else if json_out {
        let files: Vec<Json> = docs.iter().map(|(p, d)| timeline_json(p, d)).collect();
        let mut out = Json::obj()
            .set("kind", "me_inspect_timeline")
            .set("reconciled", !broken)
            .set("files", files);
        if docs.len() > 1 {
            out = out.set("imbalance", imbalance_json(&docs));
        }
        print!("{}", out.render_pretty());
    } else {
        for (path, doc) in &docs {
            render_timeline(path, doc);
        }
        if docs.len() > 1 {
            render_imbalance(&docs);
        }
    }
    std::process::exit(if broken { 2 } else { 0 });
}

// ---------------------------------------------------------------------------
// doctor subcommand
// ---------------------------------------------------------------------------

/// `me-inspect doctor <dump.jsonl> [more.jsonl ...] [--json]`: replay the
/// streaming health detectors offline. Exit 0 healthy, 1 when an incident
/// is still open at end of artifact, 2 on usage or unreadable artifacts.
fn run_doctor(args: &[String]) -> ! {
    const USAGE: &str = "usage: me-inspect doctor <dump.jsonl> [more.jsonl ...] [--json]\n\
        \n\
        Replays the streaming health detectors (robust z-score, CUSUM, rate\n\
        burst, rail/fence rules) over timeline artifacts — the same engine the\n\
        online HealthMonitor runs at sample time, so the incident tables are\n\
        bit-identical. Several files add the cross-file (per-shard) imbalance\n\
        diagnosis on each file's first counter column.\n\
        \n\
        Exit codes:\n\
        \x20 0  no incident open at end of artifact\n\
        \x20 1  at least one incident still open\n\
        \x20 2  usage error or unreadable/invalid artifact";
    if args.iter().any(|a| a == "--help") {
        println!("{USAGE}");
        std::process::exit(0);
    }
    let json_out = args.iter().any(|a| a == "--json");
    let paths: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    if paths.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    let docs = load_docs(&paths, 2);
    let cfg = HealthConfig::default();
    let reports: Vec<(&String, HealthReport)> = docs
        .iter()
        .map(|(p, d)| {
            let mut mon = HealthMonitor::for_doc(d, cfg);
            mon.replay_doc(d);
            (p, mon.report())
        })
        .collect();
    let cross = (docs.len() > 1).then(|| cross_diagnosis(&docs, cfg));
    let open: usize = reports.iter().map(|(_, r)| r.open_incidents()).sum::<usize>()
        + cross.as_ref().map_or(0, HealthReport::open_incidents);
    if json_out {
        let files: Vec<Json> = reports
            .iter()
            .map(|(p, r)| Json::obj().set("path", p.as_str()).set("report", r.to_json()))
            .collect();
        let mut out = Json::obj()
            .set("kind", "me_inspect_doctor")
            .set("open_incidents", open as u64)
            .set("files", files);
        if let Some(c) = &cross {
            out = out.set("cross_file", c.to_json());
        }
        print!("{}", out.render_pretty());
    } else {
        for (p, r) in &reports {
            println!("doctor {p}");
            print!("{}", r.render_human());
            println!();
        }
        if let Some(c) = &cross {
            println!(
                "cross-file imbalance diagnosis ({} members, first counter column)",
                docs.len()
            );
            print!("{}", c.render_human());
        }
    }
    std::process::exit(if open > 0 { 1 } else { 0 });
}

/// Cross-file diagnosis: each file is one member series, measured on its
/// first counter column's per-interval deltas — the detector-backed
/// version of the timeline imbalance table.
fn cross_diagnosis(docs: &[(String, TimelineDoc)], cfg: HealthConfig) -> HealthReport {
    let labels: Vec<String> = docs.iter().map(|(p, _)| p.clone()).collect();
    let members: Vec<Vec<u64>> = docs
        .iter()
        .map(|(_, d)| {
            let c = d
                .sources
                .iter()
                .position(|s| s.kind == SourceKind::Counter)
                .unwrap_or(0);
            series(d, c)
        })
        .collect();
    let t_ns: Vec<u64> = docs
        .iter()
        .max_by_key(|(_, d)| d.samples.len())
        .map(|(_, d)| d.samples.iter().map(|(t, _)| *t).collect())
        .unwrap_or_default();
    diagnose_imbalance(&labels, &t_ns, &members, cfg)
}

/// Eight-level unicode sparkline of a series, bucket-downsampled to at
/// most `width` cells (counters sum within a bucket, gauges take the max —
/// the caller picks via `sum_buckets`).
fn spark(series: &[u64], width: usize, sum_buckets: bool) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if series.is_empty() {
        return String::new();
    }
    let buckets = series.len().min(width);
    let mut vals = Vec::with_capacity(buckets);
    for b in 0..buckets {
        let lo = b * series.len() / buckets;
        let hi = ((b + 1) * series.len() / buckets).max(lo + 1);
        let cell = &series[lo..hi];
        vals.push(if sum_buckets {
            cell.iter().sum::<u64>()
        } else {
            cell.iter().copied().max().unwrap_or(0)
        });
    }
    let max = vals.iter().copied().max().unwrap_or(0);
    vals.iter()
        .map(|&v| {
            if max == 0 {
                LEVELS[0]
            } else {
                LEVELS[(v * 7).div_ceil(max).min(7) as usize]
            }
        })
        .collect()
}

/// Per-interval deltas of a counter column (raw values for a gauge).
fn series(doc: &TimelineDoc, c: usize) -> Vec<u64> {
    doc.samples.iter().map(|(_, v)| v[c]).collect()
}

/// Sum of two optional counter columns per interval (missing → zeros).
fn series2(doc: &TimelineDoc, a: &str, b: &str) -> Vec<u64> {
    let za = doc.column(a).map(|c| series(doc, c));
    let zb = doc.column(b).map(|c| series(doc, c));
    match (za, zb) {
        (Some(x), Some(y)) => x.iter().zip(&y).map(|(p, q)| p + q).collect(),
        (Some(x), None) | (None, Some(x)) => x,
        (None, None) => Vec::new(),
    }
}

const SPARK_WIDTH: usize = 48;

fn render_timeline(path: &str, doc: &TimelineDoc) {
    let span = (
        doc.samples.first().map_or(0, |(t, _)| *t),
        doc.samples.last().map_or(0, |(t, _)| *t),
    );
    println!("timeline {path}");
    println!(
        "  interval {}  {} rows retained ({} evicted of {} committed)  span {}..{}",
        fmt_ns(doc.interval_ns),
        doc.samples.len(),
        doc.evicted,
        doc.samples_total,
        fmt_ns(span.0),
        fmt_ns(span.1),
    );

    // Derived rows: goodput from the data-bytes column, total retransmits.
    let iv_s = doc.interval_ns as f64 / 1e9;
    if let Some(c) = doc.column("data_bytes_sent") {
        let bytes = series(doc, c);
        let peak = bytes.iter().copied().max().unwrap_or(0) as f64 / iv_s / 1e6;
        let total: u64 = bytes.iter().sum();
        println!(
            "  goodput      {}  peak {:.1} MB/s  {} bytes total",
            spark(&bytes, SPARK_WIDTH, true),
            peak,
            total
        );
    }
    let rtx = series2(doc, "retransmits_nack", "retransmits_rto");
    if !rtx.is_empty() {
        let active = rtx.iter().filter(|&&v| v > 0).count();
        println!(
            "  retransmits  {}  {} total in {} interval(s)",
            spark(&rtx, SPARK_WIDTH, true),
            rtx.iter().sum::<u64>(),
            active
        );
    }

    // Every non-zero source, counters before gauges; all-zero ones elided.
    let mut elided = 0usize;
    for pass in [SourceKind::Counter, SourceKind::Gauge] {
        for (c, s) in doc.sources.iter().enumerate() {
            if s.kind != pass {
                continue;
            }
            let vals = series(doc, c);
            if vals.iter().all(|&v| v == 0) {
                elided += 1;
                continue;
            }
            let is_counter = s.kind == SourceKind::Counter;
            let tail = if is_counter {
                format!("total {}", s.final_raw - s.base)
            } else {
                format!(
                    "last {}  max {}",
                    vals.last().copied().unwrap_or(0),
                    vals.iter().copied().max().unwrap_or(0)
                )
            };
            println!(
                "  {:<7} {:<22} {}  {tail}",
                s.kind.label(),
                s.name,
                spark(&vals, SPARK_WIDTH, is_counter)
            );
        }
    }
    if elided > 0 {
        println!("  ({elided} all-zero source(s) elided)");
    }
    println!();
}

/// The per-interval cross-file imbalance series: each file is one member
/// (e.g. one shard), measured on its first counter column.
fn imbalance_rows(docs: &[(String, TimelineDoc)]) -> Vec<(u64, f64, usize)> {
    let cols: Vec<usize> = docs
        .iter()
        .map(|(_, d)| {
            d.sources
                .iter()
                .position(|s| s.kind == SourceKind::Counter)
                .unwrap_or(0)
        })
        .collect();
    let rows = docs
        .iter()
        .map(|(_, d)| d.samples.len())
        .min()
        .unwrap_or(0);
    (0..rows)
        .map(|i| {
            let t = docs[0].1.samples[i].0;
            let vals: Vec<u64> = docs
                .iter()
                .zip(&cols)
                .map(|((_, d), &c)| d.samples[i].1[c])
                .collect();
            let (idx, hot) = imbalance(&vals);
            (t, idx, hot)
        })
        .collect()
}

fn render_imbalance(docs: &[(String, TimelineDoc)]) {
    let rows = imbalance_rows(docs);
    if rows.is_empty() {
        return;
    }
    // Sparkline in hundredths so 1.00x maps to the floor of the scale.
    let centi: Vec<u64> = rows.iter().map(|(_, idx, _)| (idx * 100.0) as u64).collect();
    let peak = rows
        .iter()
        .cloned()
        .fold((0u64, 1.0f64, 0usize), |acc, r| if r.1 > acc.1 { r } else { acc });
    println!("cross-file imbalance ({} members, first counter column)", docs.len());
    println!(
        "  imbalance    {}  peak {:.2}x at {} (member {} = {})",
        spark(&centi, SPARK_WIDTH, false),
        peak.1,
        fmt_ns(peak.0),
        peak.2,
        docs[peak.2].0
    );
    println!();
}

fn timeline_json(path: &str, doc: &TimelineDoc) -> Json {
    let sources: Vec<Json> = doc
        .sources
        .iter()
        .enumerate()
        .map(|(c, s)| {
            let vals = series(doc, c);
            Json::obj()
                .set("name", s.name.as_str())
                .set("kind", s.kind.label())
                .set("base", s.base)
                .set("final", s.final_raw)
                .set("peak_per_interval", vals.iter().copied().max().unwrap_or(0))
        })
        .collect();
    Json::obj()
        .set("path", path)
        .set("interval_ns", doc.interval_ns)
        .set("rows", doc.samples.len())
        .set("evicted", doc.evicted)
        .set("samples_total", doc.samples_total)
        .set("retransmits_total", series2(doc, "retransmits_nack", "retransmits_rto").iter().sum::<u64>())
        .set("sources", sources)
}

fn imbalance_json(docs: &[(String, TimelineDoc)]) -> Json {
    let rows: Vec<Json> = imbalance_rows(docs)
        .into_iter()
        .map(|(t, idx, hot)| {
            Json::obj()
                .set("t_ns", t)
                .set("imbalance", idx)
                .set("hot", hot)
        })
        .collect();
    Json::obj().set("members", docs.len()).set("rows", rows)
}

/// Run a rail outage under the flight recorder and return its dump.
fn demo_dump() -> Json {
    println!("no dump given; running a two-rail outage demo\n");
    let cfg = SystemConfig::two_link_1g_unordered(2)
        .with_spans(1 << 12)
        .with_flight(FlightConfig::default());
    let sim = Sim::new(cfg.seed);
    let cluster = build_cluster(&sim, cfg.cluster_spec());
    let cfg = Rc::new(cfg);
    let eps = Endpoint::for_cluster(&sim, &cluster, cfg);
    let plan = FaultPlan::new().rail_down(ms(4), 1).rail_up(ms(80), 1);
    cluster.apply_fault_plan(&sim, &plan);
    let (c0, _c1) = Endpoint::connect(&eps[0], &eps[1]);
    let a = eps[0].clone();
    sim.spawn("demo-writer", async move {
        let mut handles = Vec::new();
        for i in 0..48usize {
            let h = a
                .write_bytes(c0, (i * 0x10000) as u64, vec![i as u8; 64 << 10], OpFlags::RELAXED)
                .await;
            handles.push(h);
        }
        for h in handles {
            h.wait().await;
        }
    });
    sim.run().expect_quiescent();
    let fr = eps[0].flight_recorder();
    let dumps = fr.dumps();
    match dumps.into_iter().next() {
        Some(d) => d.json,
        // The outage normally triggers a rail-death dump; fall back to a
        // forced one so the demo always renders something.
        None => fr
            .force_dump(sim.now().as_nanos())
            .expect("flight recorder enabled"),
    }
}

fn render(doc: &Json) {
    if doc.get("kind").and_then(|k| k.as_str()) != Some("multiedge_flight_dump") {
        eprintln!("me-inspect: input is JSON but not a multiedge_flight_dump");
        std::process::exit(1);
    }
    let s = |k: &str| doc.get(k).and_then(|v| v.as_str()).unwrap_or("?").to_string();
    let n = |k: &str| doc.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
    println!("flight dump  trigger={}  at {}", s("trigger"), fmt_ns(n("t_ns")));
    println!(
        "events: {} recorded, {} retained in ring",
        n("events_total"),
        n("events_retained")
    );

    if let Some(events) = doc.get("events").and_then(|e| e.items()) {
        let all = std::env::var("ME_INSPECT_ALL").is_ok();
        let window = 120usize;
        let start = if all || events.len() <= window {
            0
        } else {
            println!("… {} earlier events elided (ME_INSPECT_ALL=1 shows all)", events.len() - window);
            events.len() - window
        };
        println!("\n  {:>12}  {:<13} {:<14} detail", "t", "event", "where");
        let mut prev = None;
        for e in &events[start..] {
            print_event(e, &mut prev);
        }
    }

    if let Some(att) = doc.get("attribution") {
        println!("\ncritical-path attribution (completed ops at dump time)");
        if let Some(overall) = att.get("overall") {
            print_rollup("overall", overall);
        }
        for (name, r) in att.get("per_conn").and_then(|c| c.entries()).unwrap_or(&[]) {
            print_rollup(name, r);
        }
        for (name, r) in att.get("per_rail").and_then(|c| c.entries()).unwrap_or(&[]) {
            print_rollup(name, r);
            let f = |k: &str| r.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
            println!(
                "    {} frames tx, {} retransmitted, nic queue p50 {} p99 {}",
                f("frames_tx"),
                f("frames_retransmitted"),
                fmt_ns(f("nic_queue_p50_ns")),
                fmt_ns(f("nic_queue_p99_ns")),
            );
        }
        let overwritten = att.get("spans_overwritten").and_then(|v| v.as_u64()).unwrap_or(0);
        if overwritten > 0 {
            println!("  (span ring wrapped: {overwritten} completed ops not attributed)");
        }
    }
}

/// One timeline line: time, inter-event gap, code, location, decoded payload.
fn print_event(e: &Json, prev: &mut Option<u64>) {
    let t = e.get("t_ns").and_then(|v| v.as_u64()).unwrap_or(0);
    let code = e.get("code").and_then(|v| v.as_str()).unwrap_or("?");
    let a = e.get("a").and_then(|v| v.as_u64()).unwrap_or(0);
    let b = e.get("b").and_then(|v| v.as_u64()).unwrap_or(0);
    let node = e.get("node").and_then(|v| v.as_u64()).unwrap_or(0);
    let mut place = format!("n{node}");
    if let Some(c) = e.get("conn").and_then(|v| v.as_u64()) {
        place.push_str(&format!(" c{c}"));
    }
    if let Some(r) = e.get("rail").and_then(|v| v.as_u64()) {
        place.push_str(&format!(" r{r}"));
    }
    let detail = match code {
        "op_issue" => format!("op {a}  {b} bytes"),
        "op_complete" => format!("op {a}  latency {}", fmt_ns(b)),
        "frame_send" => format!("seq {a}{}", if b != 0 { "  RETRANSMIT" } else { "" }),
        "frame_recv" => format!("seq {a}{}", if b == 0 { "  out-of-order" } else { "" }),
        "frame_drop" | "frame_corrupt" => format!("link {a}"),
        "ack_explicit" => format!("cum {a}"),
        "nack" => format!("cum {a}  {b} gap(s)"),
        "rto_fire" => format!("seq {a}"),
        "rto_backoff" => format!("rto {}  exponent {b}", fmt_ns(a)),
        "fence_release" => format!("op {a}  stalled {}", fmt_ns(b)),
        "fault_injected" => format!("action {a}"),
        _ => String::new(),
    };
    let gap = prev.map_or(String::new(), |p| format!("  (+{})", fmt_ns(t.saturating_sub(p))));
    *prev = Some(t);
    println!("  {:>12}  {:<13} {:<14} {detail}{gap}", fmt_ns(t), code, place);
}

/// Rollup summary: latency percentiles, then phases sorted by share.
fn print_rollup(name: &str, r: &Json) {
    let n = |k: &str| r.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
    println!(
        "  {name}: {} ops, {} bytes, {} retransmits, latency p50 {} p99 {}",
        n("ops"),
        n("bytes"),
        n("retransmits"),
        fmt_ns(n("latency_p50_ns")),
        fmt_ns(n("latency_p99_ns")),
    );
    let Some(phases) = r.get("phases").and_then(|p| p.entries()) else {
        return;
    };
    let mut rows: Vec<(&str, u64, f64)> = phases
        .iter()
        .map(|(k, v)| {
            (
                k.as_str(),
                v.get("total_ns").and_then(|x| x.as_u64()).unwrap_or(0),
                v.get("fraction").and_then(|x| x.as_f64()).unwrap_or(0.0),
            )
        })
        .filter(|(_, total, _)| *total > 0)
        .collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.1));
    for (label, total, frac) in rows {
        let bar = "#".repeat((frac * 40.0).round() as usize);
        println!("    {label:<13} {:>10}  {:>5.1}%  {bar}", fmt_ns(total), frac * 100.0);
    }
}

/// Adaptive time unit: ns under 1 µs, µs under 1 ms, else ms.
fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{:.2}ms", ns as f64 / 1e6)
    }
}
