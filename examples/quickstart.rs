//! Quickstart: two simulated nodes, one MultiEdge connection.
//!
//! Demonstrates the paper's core API: asynchronous remote writes with
//! completion handles and notifications, and an asynchronous remote read —
//! then prints the measured latency and throughput.
//!
//! Run with: `cargo run --release --bin quickstart`

use multiedge::{Endpoint, OpFlags, SystemConfig};
use netsim::{build_cluster, Sim};
use std::rc::Rc;

fn main() {
    let cfg = Rc::new(SystemConfig::one_link_1g(2));
    let sim = Sim::new(42);
    let cluster = build_cluster(&sim, cfg.cluster_spec());
    let eps = Endpoint::for_cluster(&sim, &cluster, cfg);
    let (c0, _c1) = Endpoint::connect(&eps[0], &eps[1]);

    let (a, b) = (eps[0].clone(), eps[1].clone());
    let s = sim.clone();
    sim.spawn("initiator", async move {
        // 1. Remote write with a notification at the target.
        let h = a
            .write_bytes(c0, 0x1000, b"hello, multiedge!".to_vec(), OpFlags::RELAXED.with_notify())
            .await;
        h.wait().await;
        println!(
            "[{}] write of {} bytes fully acknowledged (latency {})",
            s.now(),
            h.len(),
            h.latency().unwrap()
        );

        // 2. Bulk transfer: 4 MB, measure throughput.
        let t0 = s.now();
        let big = a
            .write_bytes(c0, 0x100_000, vec![7u8; 4 << 20], OpFlags::RELAXED)
            .await;
        big.wait().await;
        let dt = s.now().since(t0);
        println!(
            "[{}] 4 MiB transferred: {:.1} MB/s",
            s.now(),
            (4 << 20) as f64 / dt.as_secs_f64() / 1e6
        );

        // 3. Remote read from the peer's address space.
        let r = a.read(c0, 0x9000, 0x1000, 17, OpFlags::RELAXED).await;
        r.wait().await;
        let got = a.mem_read(0x9000, 17);
        println!(
            "[{}] remote read returned: {:?}",
            s.now(),
            String::from_utf8_lossy(&got)
        );
    });
    let s2 = sim.clone();
    sim.spawn("target", async move {
        let n = b.next_notification().await.expect("notification");
        println!(
            "[{}] target notified: {} bytes from node {} at {:#x}: {:?}",
            s2.now(),
            n.len,
            n.from_node,
            n.addr,
            String::from_utf8_lossy(&b.mem_read(n.addr, n.len))
        );
        b.close_notifications();
    });
    sim.run().expect_quiescent();
    let st = eps[0].stats();
    println!(
        "stats: {} data frames sent, {} retransmits, {} explicit acks received by peer",
        st.data_frames_sent,
        st.retransmits(),
        eps[1].stats().explicit_acks_sent
    );
}
