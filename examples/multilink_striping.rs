//! Spatial parallelism: one connection striped over multiple rails.
//!
//! Shows the paper's §2.5 contribution: frame-level round-robin striping,
//! the out-of-order arrivals it causes, and the fence flags that restore
//! ordering exactly where the application asks for it.
//!
//! Run with: `cargo run --release --bin multilink_striping`

use multiedge::{Endpoint, OpFlags, SystemConfig};
use netsim::{build_cluster, Sim};
use std::rc::Rc;

fn run(rails: usize) {
    let mut cfg = SystemConfig::two_link_1g_unordered(2);
    cfg.rails = rails;
    cfg.name = format!("{rails}L-1G");
    let sim = Sim::new(7);
    let cluster = build_cluster(&sim, cfg.cluster_spec());
    let cfg = Rc::new(cfg);
    let eps = Endpoint::for_cluster(&sim, &cluster, cfg);
    let (c0, _) = Endpoint::connect(&eps[0], &eps[1]);
    let a = eps[0].clone();
    let b = eps[1].clone();
    let s = sim.clone();
    sim.spawn("sender", async move {
        let t0 = s.now();
        // Bulk data: no fences, frames free to arrive out of order.
        let h = a
            .write_bytes(c0, 0, vec![1u8; 8 << 20], OpFlags::RELAXED)
            .await;
        // Control message: ordered behind the bulk + notify (the DSM idiom).
        let ctl = a
            .write_bytes(c0, 0x900_0000, b"bulk done".to_vec(), OpFlags::ORDERED_NOTIFY)
            .await;
        h.wait().await;
        ctl.wait().await;
        let dt = s.now().since(t0);
        println!(
            "{rails} rail(s): {:7.1} MB/s", 
            (8 << 20) as f64 / dt.as_secs_f64() / 1e6
        );
    });
    sim.spawn("receiver", async move {
        let n = b.next_notification().await.expect("ctl notification");
        // The backward fence guarantees all 8 MiB landed before this.
        assert_eq!(b.mem_read(0, 8 << 20), vec![1u8; 8 << 20]);
        assert_eq!(n.len, 9);
        println!("   control message delivered strictly after the bulk data");
        b.close_notifications();
    });
    sim.run().expect_quiescent();
    let st = eps[1].stats();
    println!(
        "   out-of-order arrivals: {:.1}%   extra frames: {:.1}%   retransmits: {}",
        100.0 * st.ooo_fraction(),
        100.0 * eps[0].stats().extra_frame_fraction(),
        eps[0].stats().retransmits()
    );
}

fn main() {
    for rails in [1, 2, 4] {
        run(rails);
    }
}
