//! A complete application on the full stack: the six-step FFT running on
//! the GeNIMA-style DSM over MultiEdge, on eight simulated nodes — with
//! result verification against the sequential oracle.
//!
//! Run with: `cargo run --release --bin dsm_app`

use apps::fft::Fft;
use apps::workload::{run_app, Workload};
use multiedge::SystemConfig;

fn main() {
    let app = Fft { m: 14 }; // 16K complex points
    println!("running {} ({}) on 8 nodes over 1L-1G...", app.name(), app.problem());
    let run = run_app(SystemConfig::one_link_1g(8), &app);
    println!(
        "verified OK. parallel time {:.2} ms, modeled sequential {:.2} ms, speedup {:.2}",
        run.elapsed_ns as f64 / 1e6,
        run.seq_ns / 1e6,
        run.speedup()
    );
    let b = &run.breakdown;
    println!(
        "breakdown: compute {:.0}%, data wait {:.0}%, sync {:.0}%, protocol CPU {:.1}%",
        100.0 * b.frac(b.compute_ns),
        100.0 * b.frac(b.data_wait_ns),
        100.0 * b.frac(b.sync_ns),
        100.0 * run.protocol_cpu_fraction()
    );
    println!(
        "dsm: {} page fetches, {} diff writes, {} barriers; net: {} data frames, {:.1}% extra",
        run.dsm.page_fetches,
        run.dsm.diff_ops,
        run.dsm.barriers,
        run.proto.data_frames_sent,
        100.0 * run.extra_traffic_fraction()
    );
}
