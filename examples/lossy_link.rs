//! Fault injection: a lossy, corrupting link. NACK-driven selective
//! retransmission and the coarse timeout keep every transfer exact.
//!
//! Run with: `cargo run --release --bin lossy_link`

use multiedge::{Endpoint, OpFlags, SystemConfig};
use netsim::{build_cluster, FaultModel, Sim};
use std::rc::Rc;

fn main() {
    for (loss, corrupt) in [(0.0, 0.0), (0.01, 0.002), (0.05, 0.01), (0.20, 0.02)] {
        let mut cfg = SystemConfig::one_link_1g(2);
        cfg.fault = FaultModel {
            loss_rate: loss,
            corrupt_rate: corrupt,
        };
        let sim = Sim::new(11);
        let cluster = build_cluster(&sim, cfg.cluster_spec());
        let cfg = Rc::new(cfg);
        let eps = Endpoint::for_cluster(&sim, &cluster, cfg);
        let (c0, _) = Endpoint::connect(&eps[0], &eps[1]);
        let payload: Vec<u8> = (0..2_000_000u32).map(|i| (i % 251) as u8).collect();
        let expected = payload.clone();
        let a = eps[0].clone();
        let s = sim.clone();
        let done = sim.spawn("sender", async move {
            let t0 = s.now();
            let h = a.write_bytes(c0, 0, payload, OpFlags::RELAXED).await;
            h.wait().await;
            s.now().since(t0)
        });
        sim.run().expect_quiescent();
        let dt = done.try_take().unwrap();
        assert_eq!(eps[1].mem_read(0, 2_000_000), expected, "data must be exact");
        let st = eps[0].stats();
        let st1 = eps[1].stats();
        println!(
            "loss {:>4.1}% corrupt {:>4.1}%: {:6.1} MB/s | {} NACK rtx, {} RTO rtx, {} NACKs, {} corrupt frames — data exact",
            loss * 100.0,
            corrupt * 100.0,
            2.0 / dt.as_secs_f64(),
            st.retransmits_nack,
            st.retransmits_rto,
            st1.nacks_sent,
            st1.corrupt_frames,
        );
    }
}
