//! Vendored, dependency-free stand-in for the subset of `criterion` the
//! component micro-benches use.
//!
//! The build environment has no registry access, so the real `criterion`
//! cannot be resolved. This shim keeps [`Criterion::bench_function`],
//! [`Bencher::iter`], [`criterion_group!`] and [`criterion_main!`] so the
//! bench sources compile unchanged, and replaces the statistics machinery
//! with a plain adaptive timing loop: each benchmark is warmed up, run until
//! a minimum measured span is reached, and reported as mean ns/iteration on
//! stdout. Good enough to *rank* hot-path changes; no outlier analysis, no
//! HTML reports.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a benchmarked value (re-export of
/// `std::hint::black_box` for parity with the real crate's API).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Benchmark registry/driver handed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Time `f`'s [`Bencher::iter`] closure and print a one-line summary.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        match b.mean_ns {
            Some(ns) => println!("{id:<40} {ns:>12.1} ns/iter ({} iters)", b.iters),
            None => println!("{id:<40} (no measurement: Bencher::iter never called)"),
        }
        self
    }
}

/// Timing loop handle passed to the closure of
/// [`Criterion::bench_function`].
#[derive(Default)]
pub struct Bencher {
    mean_ns: Option<f64>,
    iters: u64,
}

impl Bencher {
    /// Measure `routine`, adaptively choosing an iteration count so the
    /// timed span is long enough for the clock to resolve.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also calibrates roughly how expensive one call is.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < Duration::from_millis(20) && warm_iters < 10_000 {
            std_black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) as u64 / warm_iters.max(1);
        // Aim for ~60 ms of measurement, capped to keep giant kernels sane.
        let target = (60_000_000u64 / per_iter.max(1)).clamp(10, 1_000_000);
        let start = Instant::now();
        for _ in 0..target {
            std_black_box(routine());
        }
        let elapsed = start.elapsed();
        self.mean_ns = Some(elapsed.as_nanos() as f64 / target as f64);
        self.iters = target;
    }
}

/// Collect benchmark functions into a group runner, as in the real crate.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
