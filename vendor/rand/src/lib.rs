//! Vendored, dependency-free stand-in for the tiny subset of the `rand`
//! crate this workspace uses.
//!
//! The build environment has no registry access, so the real `rand` cannot be
//! resolved. The simulator only needs a *deterministic, seedable* generator
//! with a handful of sampling helpers, which this crate provides with the
//! same module paths and method names:
//!
//! * [`SeedableRng::seed_from_u64`] — seeding (via SplitMix64 expansion);
//! * [`rngs::SmallRng`] — a small fast PRNG (xoshiro256++, the same family
//!   the real `rand`'s `SmallRng` uses on 64-bit targets);
//! * [`Rng::gen`] for `u8…u64`, `usize`, `i64`, `f64`, `bool`;
//! * [`Rng::gen_range`] for half-open integer and float ranges.
//!
//! Determinism is the only hard requirement for the discrete-event
//! simulation (runs must be bit-for-bit reproducible for a given seed);
//! statistical quality beyond that is best-effort. Integer range sampling
//! uses a simple modulo reduction — the bias is negligible for the span
//! sizes the simulator draws (jitter windows, link counts).

/// A source of random 64-bit words. The base trait all sampling builds on.
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a simple integer seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an [`RngCore`] — the shim's
/// analogue of sampling from the real crate's `Standard` distribution.
pub trait Standard: Sized {
    /// Draw one uniformly-distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),+) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts (half-open `start..end` only,
/// which is all the workspace uses).
pub trait UniformRange {
    /// The element type produced.
    type Output;
    /// Draw uniformly from the range. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_uniform_uint {
    ($($t:ty),+) => {$(
        impl UniformRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )+};
}
impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_sint {
    ($($t:ty),+) => {$(
        impl UniformRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )+};
}
impl_uniform_sint!(i8, i16, i32, i64, isize);

impl UniformRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of type `T` (see [`Standard`]).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform value from a half-open range.
    fn gen_range<Rg: UniformRange>(&mut self, range: Rg) -> Rg::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small fast PRNG: xoshiro256++ seeded through SplitMix64, matching the
    /// algorithm family of the real crate's `SmallRng` on 64-bit platforms.
    /// Not cryptographically secure — simulation use only.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
            let x = r.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            let i = r.gen_range(-8i64..8);
            assert!((-8..8).contains(&i));
        }
    }
}
