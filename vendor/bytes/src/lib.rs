//! Vendored, dependency-free stand-in for the subset of the `bytes` crate
//! this workspace uses.
//!
//! The build environment has no registry access, so the real `bytes` cannot
//! be resolved. MultiEdge uses [`Bytes`] for frame payloads: an immutable,
//! reference-counted buffer that retransmission queues and in-flight frame
//! copies can share without duplicating the payload, plus zero-copy
//! [`Bytes::slice`] for fragmenting an operation across frames. That is
//! exactly what this shim provides: an `Rc<[u8]>` with a window. The
//! simulation is single-threaded, so a non-atomic refcount suffices (and
//! keeps atomic RMW operations off the per-frame clone/drop path).

use std::ops::{Bound, Deref, RangeBounds};
use std::rc::Rc;

/// Cheaply cloneable, immutable, contiguous slice of memory.
///
/// Clones and [`slice`](Bytes::slice) share one allocation; the struct itself
/// is just `(Rc, start, end)`.
#[derive(Clone)]
pub struct Bytes {
    data: Rc<[u8]>,
    start: usize,
    end: usize,
}

impl Default for Bytes {
    fn default() -> Self {
        // `Rc<[u8]>::default()` allocates on every call (unlike `Arc`, it
        // cannot share a static empty value across threads), so empty
        // buffers clone one per-thread singleton instead.
        thread_local! {
            static EMPTY: Rc<[u8]> = Rc::from(&[][..]);
        }
        Bytes {
            data: EMPTY.with(Rc::clone),
            start: 0,
            end: 0,
        }
    }
}

impl Bytes {
    /// Empty buffer (no allocation).
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copy `data` into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Zero-copy sub-slice sharing this buffer's allocation.
    ///
    /// Panics if the range is out of bounds or decreasing, like the real
    /// crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end, "slice range starts after it ends");
        assert!(end <= len, "slice range out of bounds");
        Bytes {
            data: Rc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"{} bytes\"", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn slice_shares_and_bounds() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[3, 4]);
        assert_eq!(b.len(), 6);
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::copy_from_slice(&[9, 9]), Bytes::from(vec![9u8, 9]));
    }

    #[test]
    #[should_panic]
    fn slice_out_of_bounds_panics() {
        Bytes::from(vec![1u8, 2]).slice(0..3);
    }
}
