#![allow(clippy::type_complexity)] // mirrors upstream proptest signatures

//! Vendored, dependency-free stand-in for the subset of `proptest` this
//! workspace's property tests use.
//!
//! The build environment has no registry access, so the real `proptest`
//! cannot be resolved. This shim keeps the same *surface* — the
//! [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`,
//! [`strategy::Just`], [`any`](strategy::any), range and tuple strategies,
//! [`collection::vec`] / [`collection::btree_set`], [`prop_oneof!`] and the
//! `prop_assert*` macros — so the existing property tests compile and run
//! unchanged.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with the generating seed and
//!   case index; re-running reproduces it exactly (generation is seeded from
//!   the test name), but it is not minimized.
//! * **No persistence/regression files.**
//! * Case count defaults to 48 and can be overridden per-block with
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` or globally with
//!   the `PROPTEST_CASES` environment variable.

pub mod strategy;

pub mod collection;

pub mod test_runner;

/// Everything the tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert a condition inside a `proptest!` body; on failure the current case
/// is reported (with its message) and the test panics.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Assert two values are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(*left == *right) {
            return ::core::result::Result::Err(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        if !(*left == *right) {
            return ::core::result::Result::Err(format!(
                "{}: `{:?}` != `{:?}`",
                format!($($fmt)*),
                left,
                right
            ));
        }
    }};
}

/// Assert two values are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if *left == *right {
            return ::core::result::Result::Err(format!(
                "assertion failed: `{:?}` == `{:?}`",
                left, right
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        if *left == *right {
            return ::core::result::Result::Err(format!(
                "{}: `{:?}` == `{:?}`",
                format!($($fmt)*),
                left,
                right
            ));
        }
    }};
}

/// Pick uniformly among several strategies producing the same value type.
/// Only the unweighted `prop_oneof![a, b, c]` form is supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        $crate::strategy::Union::new(vec![
            $({
                let __s = $arm;
                ::std::boxed::Box::new(move |rng: &mut $crate::test_runner::TestRng| {
                    $crate::strategy::Strategy::generate(&__s, rng)
                }) as ::std::boxed::Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>
            }),+
        ])
    }};
}

/// Define property tests. Supports the block form used in this repo:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(12))]
///
///     /// Doc comment.
///     #[test]
///     fn my_property(x in 0u32..10, v in proptest::collection::vec(any::<u8>(), 0..16)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($cfg);
            runner.run(stringify!($name), |__proptest_rng| {
                let ($($pat,)+) = $crate::strategy::Strategy::generate(
                    &($($strat,)+),
                    __proptest_rng,
                );
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}
