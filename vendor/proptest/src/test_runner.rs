//! Deterministic case runner and its RNG.
//!
//! Each test gets a generator seeded from the test's *name*, so every run of
//! the suite exercises the same cases (reproducible failures without
//! persistence files), while different tests see different streams.

/// Runner configuration. Only the case count is modelled.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to execute per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 48 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The generator handed to strategies: SplitMix64, seeded per test + case.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Generator for one case.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`. `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Executes the configured number of cases for one property.
pub struct TestRunner {
    config: ProptestConfig,
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl TestRunner {
    /// Runner for `config`. The `PROPTEST_CASES` environment variable, when
    /// set, overrides the configured case count.
    pub fn new(config: ProptestConfig) -> Self {
        let mut config = config;
        if let Ok(v) = std::env::var("PROPTEST_CASES") {
            if let Ok(n) = v.parse::<u32>() {
                config.cases = n;
            }
        }
        TestRunner { config }
    }

    /// Run `case` for every configured case index, panicking with the case's
    /// seed and message on the first failure.
    pub fn run<F>(&mut self, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), String>,
    {
        let base = fnv1a(name);
        for i in 0..self.config.cases {
            let seed = base ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let mut rng = TestRng::new(seed);
            if let Err(msg) = case(&mut rng) {
                panic!("proptest '{name}' failed at case {i} (seed {seed:#x}): {msg}");
            }
        }
    }
}
