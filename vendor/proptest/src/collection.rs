//! Collection strategies: random-length vectors and sets of values drawn
//! from an element strategy.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::Range;

/// Inclusive-min, exclusive-max bound on a generated collection's length.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl SizeRange {
    fn draw(&self, rng: &mut TestRng) -> usize {
        if self.max <= self.min + 1 {
            self.min
        } else {
            self.min + rng.below((self.max - self.min) as u64) as usize
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "collection size range is empty");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

/// Strategy for `Vec<T>` with random length; see [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.draw(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Vector of `size`-many elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy for `BTreeSet<T>`; see [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        // Like the real crate, draws that collide leave the set smaller than
        // the drawn size — the size range is a cap, not a guarantee.
        let n = self.size.draw(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Set of at most `size`-many elements drawn from `element`.
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}
