//! Value-generation strategies: the shim's analogue of proptest strategies,
//! minus shrinking. A [`Strategy`] is just a deterministic function from a
//! [`TestRng`] to a value.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// A recipe for generating values of [`Strategy::Value`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generate one value. Determined entirely by the `rng` state.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f` (no shrinking, so this is a
    /// plain map).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T` (uniform over the type's domain for
/// integers and `bool`, uniform in `[0, 1)` for `f64`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_range_strategy_uint {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end - self.start) as u64;
                self.start + (rng.below(span)) as $t
            }
        }
    )+};
}
impl_range_strategy_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_sint {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )+};
}
impl_range_strategy_sint!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "strategy range is empty");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11);

/// Uniform choice among boxed generator arms — the engine behind
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<V> {
    arms: Vec<Box<dyn Fn(&mut TestRng) -> V>>,
}

impl<V> Union<V> {
    /// Build from the macro-collected arms. Panics if `arms` is empty.
    pub fn new(arms: Vec<Box<dyn Fn(&mut TestRng) -> V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        (self.arms[i])(rng)
    }
}

// `&S` is a strategy wherever `S` is, so strategies can be reused by
// reference inside collection combinators.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}
