# Offline verification pipeline — everything CI runs, runnable locally.
# All dependencies are vendored (see vendor/), so --offline always works.

CARGO ?= cargo
OFFLINE ?= --offline

.PHONY: verify build test doc clippy bench-trace test-soak bench-failover bench-datapath bench-datapath-smoke bench-attribution bench-attribution-smoke test-flight triage-check triage-smoke triage-baseline bench-backplane backplane-smoke test-chaos bench-chaos chaos-smoke test-shard bench-scale bench-scale-smoke bench-telemetry bench-telemetry-smoke test-timeline test-doctor bench-doctor doctor-smoke

verify: build test doc clippy

build:
	$(CARGO) build $(OFFLINE) --release

test:
	$(CARGO) test $(OFFLINE) -q

doc:
	RUSTDOCFLAGS="-D warnings" $(CARGO) doc $(OFFLINE) --no-deps

clippy:
	$(CARGO) clippy $(OFFLINE) --all-targets -- -D warnings

# Traced ping-pong: writes results/BENCH_trace_pingpong.json and asserts the
# event trace reconciles with the ProtoStats counters.
bench-trace:
	$(CARGO) bench $(OFFLINE) -p multiedge-bench --bench trace_pingpong

# Seeded fault-injection soak: scripted outages, flaps, stalls and loss
# bursts mid-transfer; exactly-once delivery, fence ordering, rail
# re-admission and seed reproducibility (docs/FAULTS.md).
test-soak:
	$(CARGO) test $(OFFLINE) -p integration-tests --test fault_soak

# Failover ablation: writes results/BENCH_failover.json (goodput
# before/during/after a scripted rail outage, detection and re-admission
# latency p50/p99) and asserts convergence to the surviving rail.
bench-failover:
	$(CARGO) bench $(OFFLINE) -p multiedge-bench --bench ablation_failover

# Datapath wall-clock throughput + allocation accounting: merges with the
# recorded pre-refactor baseline, enforces the zero-allocations-per-frame
# gate, and writes results/BENCH_datapath.json (docs/PERFORMANCE.md).
bench-datapath:
	$(CARGO) bench $(OFFLINE) -p multiedge-bench --bench datapath

# CI smoke flavour: few iterations, no JSON, but the zero-allocation gate
# still fails the run if the clean-network datapath allocates per frame.
bench-datapath-smoke:
	DATAPATH_QUICK=1 $(CARGO) bench $(OFFLINE) -p multiedge-bench --bench datapath

# Critical-path latency attribution: writes results/BENCH_attribution.json
# (per-connection / per-rail exclusive phase breakdowns of op latency) and
# asserts every cell reconciles against the tracer and ProtoStats
# (docs/OBSERVABILITY.md).
bench-attribution:
	$(CARGO) bench $(OFFLINE) -p multiedge-bench --bench attribution

# CI smoke flavour: reduced sweep, same JSON and reconciliation asserts.
bench-attribution-smoke:
	ATTRIBUTION_SMOKE=1 $(CARGO) bench $(OFFLINE) -p multiedge-bench --bench attribution

# Flight recorder end-to-end: a scripted rail outage must produce a
# post-mortem dump artifact, and attribution must stay sound under
# randomized mixed workloads, loss and fences.
test-flight:
	$(CARGO) test $(OFFLINE) -p integration-tests --test flight_recorder --test attribution_properties

# Regression triage gate: re-run the full-profile triage cells and diff
# their attribution against the committed baselines in results/baselines/.
# Fails with a phase-naming verdict ("p99 regressed 18%, dominated by
# +reorder (ordering)") when a cell moved past its noise bound; writes the
# machine-readable report to results/BENCH_triage.json either way
# (docs/OBSERVABILITY.md § Regression triage).
triage-check:
	$(CARGO) bench $(OFFLINE) -p multiedge-bench --bench triage

# CI smoke flavour: the reduced cell sweep against its own baselines.
triage-smoke:
	TRIAGE_SMOKE=1 $(CARGO) bench $(OFFLINE) -p multiedge-bench --bench triage

# Refresh the committed baselines for BOTH profiles after an intentional
# performance change. Commit the rewritten results/baselines/*.json with
# the change that moved the numbers.
triage-baseline:
	TRIAGE_BASELINE=1 TRIAGE_SMOKE=1 $(CARGO) bench $(OFFLINE) -p multiedge-bench --bench triage
	TRIAGE_BASELINE=1 $(CARGO) bench $(OFFLINE) -p multiedge-bench --bench triage

# Sim-vs-real transport cross-validation: the identical protocol driver
# over the netsim backplane and over real UDP sockets on loopback, span
# attributions diffed per phase (docs/BACKPLANE.md). Writes
# results/backplane/{sim,udp}.json and results/BENCH_backplane.json.
# Divergence is the measurement, not a failure; the run fails only if a
# workload cannot complete on a backend.
bench-backplane:
	$(CARGO) bench $(OFFLINE) -p multiedge-bench --bench backplane

# CI smoke flavour: reduced iterations/rounds, same artifacts, bounded by
# `timeout` so a wedged wall-clock poll loop cannot hang the pipeline.
backplane-smoke:
	BACKPLANE_SMOKE=1 timeout 300 $(CARGO) bench $(OFFLINE) -p multiedge-bench --bench backplane

# Backend-agnostic chaos: the FaultBackplane interposer replays seeded
# fault schedules over BOTH backends (sim and UDP loopback) with the
# identical protocol driver — exactly-once delivery, fence ordering,
# identical timing-independent fingerprints, typed WireError liveness, and
# cadence-independence proptests (docs/FAULTS.md § Backend-agnostic
# injection).
test-chaos:
	$(CARGO) test $(OFFLINE) -p integration-tests --test chaos_soak --test chaos_properties

# Chaos soak harness: per-schedule chaos/recovery counters on both
# backends, fingerprints asserted equal, flight dumps written under
# results/chaos_dumps/, report to results/BENCH_chaos.json. Bounded by
# `timeout` so a wedged wall-clock loop cannot hang the pipeline.
bench-chaos:
	timeout 300 $(CARGO) bench $(OFFLINE) -p multiedge-bench --bench chaos

# CI smoke flavour: reduced workload, same assertions and artifacts.
chaos-smoke:
	CHAOS_SMOKE=1 timeout 300 $(CARGO) bench $(OFFLINE) -p multiedge-bench --bench chaos

# Sharded-engine correctness: partitioner invariants (proptests) and the
# determinism contract — fixed seed ⇒ bit-identical timing-independent
# fingerprints across shard counts {1,2,4}, threaded ≡ cooperative
# (docs/PERFORMANCE.md § Scaling out).
test-shard:
	$(CARGO) test $(OFFLINE) -p integration-tests --test shard_partition --test shard_determinism

# Scale-out bench: 64-node all-to-all / incast / lossy cells through the
# full protocol stack at shard counts {1,2,4}; asserts cross-shard-count
# fingerprint equality and ≥2× frames/wall-s on the all-to-all cell at 4
# shards; writes results/BENCH_scale.json.
bench-scale:
	$(CARGO) bench $(OFFLINE) -p multiedge-bench --bench scale

# CI smoke flavour: 16-node cells, same fingerprint gate, no perf gate
# (wall-clock speedups are meaningless on shared CI runners). Bounded by
# `timeout` so a wedged shard barrier cannot hang the pipeline.
bench-scale-smoke:
	SCALE_SMOKE=1 timeout 300 $(CARGO) bench $(OFFLINE) -p multiedge-bench --bench scale

# Timeline plane property tests: delta encoding telescopes through ring
# eviction, retained rows mirror the true series, and the JSONL artifact
# round-trips to the exact cumulative series (docs/OBSERVABILITY.md
# § Time-resolved telemetry).
test-timeline:
	$(CARGO) test $(OFFLINE) -p integration-tests --test timeline_properties

# Time-resolved telemetry bench: sampler overhead gate (≤5% fps, zero
# allocations per frame), delta reconciliation against end-of-run
# ProtoStats, a rail-outage cell whose timeline localises the outage, a
# chaos wire cell, and a 4-shard incast cell whose per-interval imbalance
# index names the hot shard. Writes results/BENCH_telemetry.json plus
# timeline JSONL dumps for `me-inspect timeline`. Bounded by `timeout`
# so a wedged drive loop cannot hang the pipeline.
bench-telemetry:
	timeout 600 $(CARGO) bench $(OFFLINE) -p multiedge-bench --bench telemetry

# CI smoke flavour: reduced iterations, same gates and artifacts.
bench-telemetry-smoke:
	TELEMETRY_SMOKE=1 timeout 300 $(CARGO) bench $(OFFLINE) -p multiedge-bench --bench telemetry

# Health-plane unit + property tests: the detector suite (silence on
# constant/white-noise series, guaranteed step detection, CUSUM catching
# drifts the z-score misses, monitor determinism) plus the doctor bench
# cells as library tests (docs/OBSERVABILITY.md § Online health plane).
test-doctor:
	timeout 300 $(CARGO) test $(OFFLINE) -p integration-tests --test doctor_properties
	timeout 300 $(CARGO) test $(OFFLINE) -p multiedge-bench --lib doctor::

# Doctor bench: detector overhead gate (≥95% frames/wall-s, zero
# allocations per sample, bit-identical protocol stats), rail-outage
# detection within 3 sample intervals, zero false alarms across 8 clean
# seeds, a chaos burst diagnosed as retransmit_storm, and the 4-shard
# incast/balanced pair. Every cell replays its JSONL offline and demands
# a byte-identical report. Writes results/BENCH_doctor.json and
# results/doctor_incidents.json. Bounded by `timeout` so a wedged drive
# loop cannot hang the pipeline.
bench-doctor:
	timeout 600 $(CARGO) bench $(OFFLINE) -p multiedge-bench --bench doctor

# CI smoke flavour: reduced cells, same gates and artifacts.
doctor-smoke:
	DOCTOR_SMOKE=1 timeout 300 $(CARGO) bench $(OFFLINE) -p multiedge-bench --bench doctor
