# Offline verification pipeline — everything CI runs, runnable locally.
# All dependencies are vendored (see vendor/), so --offline always works.

CARGO ?= cargo
OFFLINE ?= --offline

.PHONY: verify build test doc clippy bench-trace

verify: build test doc clippy

build:
	$(CARGO) build $(OFFLINE) --release

test:
	$(CARGO) test $(OFFLINE) -q

doc:
	RUSTDOCFLAGS="-D warnings" $(CARGO) doc $(OFFLINE) --no-deps

clippy:
	$(CARGO) clippy $(OFFLINE) --all-targets -- -D warnings

# Traced ping-pong: writes results/BENCH_trace_pingpong.json and asserts the
# event trace reconciles with the ProtoStats counters.
bench-trace:
	$(CARGO) bench $(OFFLINE) -p multiedge-bench --bench trace_pingpong
