//! Typed protocol events and their timestamped envelope.

/// What happened. One variant per protocol event class the paper's
/// evaluation reasons about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// An RDMA operation (write/read) was issued by the application.
    OpIssue {
        /// Operation id (per-connection, monotonically increasing).
        op: u64,
    },
    /// An operation fully completed (acknowledged / data landed).
    OpComplete {
        /// Operation id.
        op: u64,
    },
    /// A data or read-request frame was handed to a NIC.
    FrameSend {
        /// Connection-local sequence number.
        seq: u64,
        /// True when this is a NACK- or RTO-driven retransmission.
        retransmit: bool,
    },
    /// A data frame was accepted by the receive path.
    FrameRecv {
        /// Connection-local sequence number.
        seq: u64,
        /// False when the frame arrived ahead of the expected sequence
        /// (an out-of-order arrival in the paper's §4 sense).
        in_order: bool,
    },
    /// A piggybacked cumulative ACK advanced the sender's window.
    AckPiggyback {
        /// The cumulative sequence acknowledged.
        ack: u64,
    },
    /// An explicit (delayed) ACK frame was sent.
    ExplicitAck {
        /// The cumulative sequence acknowledged.
        ack: u64,
    },
    /// A NACK frame reporting persistent gaps was sent.
    NackSend {
        /// Number of missing ranges reported.
        gaps: u32,
    },
    /// A NACK frame was received and its ranges queued for retransmit.
    NackRecv {
        /// Number of missing ranges it carried.
        gaps: u32,
    },
    /// The coarse retransmission timeout fired.
    RtoFire {
        /// The sequence retransmitted by the timeout.
        seq: u64,
    },
    /// A fragment could not be applied because a fence held it back.
    FenceStall {
        /// Operation id of the held fragment.
        op: u64,
    },
    /// A previously stalled operation became applicable.
    FenceRelease {
        /// Operation id released.
        op: u64,
        /// How long it was held in the reorder buffer, in ns.
        stalled_ns: u64,
    },
    /// An RX interrupt fired (after NIC moderation) and served a batch.
    RxInterrupt {
        /// Events served by this one interrupt (1 + coalesced).
        batch: u32,
    },
    /// RX events were absorbed by the already-running protocol thread
    /// (the paper's §2.6 polling loop) at zero interrupt cost.
    RxPoll {
        /// Events absorbed without an interrupt.
        batch: u32,
    },
    /// A TX-completion interrupt fired.
    TxInterrupt,
    /// A TX completion was absorbed by polling.
    TxPoll,
    /// The network dropped a frame (queue overflow or injected loss).
    FrameDrop,
    /// The network delivered a frame with an injected corruption.
    FrameCorrupt,
    /// A scripted fault-plan event was applied by the network.
    FaultInjected {
        /// Which kind of fault fired.
        kind: FaultKind,
    },
    /// The sender's rail-health tracker declared a rail dead and excluded
    /// it from striping.
    RailDown {
        /// The rail (local NIC index) taken out of rotation.
        rail: u32,
    },
    /// A previously dead rail passed its re-admission probe and rejoined
    /// the striping rotation.
    RailUp {
        /// The rail re-admitted.
        rail: u32,
    },
    /// The adaptive retransmission timer fired without progress and backed
    /// its timeout off exponentially.
    RtoBackoff {
        /// The new (backed-off) timeout in ns.
        rto_ns: u64,
        /// Consecutive backoffs since the last acknowledgement progress.
        backoff: u32,
    },
}

/// Which scripted fault a [`EventKind::FaultInjected`] event applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A link was forced administratively down.
    LinkDown,
    /// A downed link was restored.
    LinkUp,
    /// A NIC stopped delivering frames for a while (receive-path stall).
    NicStall,
    /// A channel's burst-loss (Gilbert–Elliott) parameters were installed.
    BurstModel,
}

impl FaultKind {
    /// Short stable label (`link_down`, `link_up`, …).
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::LinkDown => "link_down",
            FaultKind::LinkUp => "link_up",
            FaultKind::NicStall => "nic_stall",
            FaultKind::BurstModel => "burst_model",
        }
    }
}

impl EventKind {
    /// Short stable label for reports and JSON (`frame_send`, `rto_fire`, …).
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::OpIssue { .. } => "op_issue",
            EventKind::OpComplete { .. } => "op_complete",
            EventKind::FrameSend { .. } => "frame_send",
            EventKind::FrameRecv { .. } => "frame_recv",
            EventKind::AckPiggyback { .. } => "ack_piggyback",
            EventKind::ExplicitAck { .. } => "explicit_ack",
            EventKind::NackSend { .. } => "nack_send",
            EventKind::NackRecv { .. } => "nack_recv",
            EventKind::RtoFire { .. } => "rto_fire",
            EventKind::FenceStall { .. } => "fence_stall",
            EventKind::FenceRelease { .. } => "fence_release",
            EventKind::RxInterrupt { .. } => "rx_interrupt",
            EventKind::RxPoll { .. } => "rx_poll",
            EventKind::TxInterrupt => "tx_interrupt",
            EventKind::TxPoll => "tx_poll",
            EventKind::FrameDrop => "frame_drop",
            EventKind::FrameCorrupt => "frame_corrupt",
            EventKind::FaultInjected { .. } => "fault_injected",
            EventKind::RailDown { .. } => "rail_down",
            EventKind::RailUp { .. } => "rail_up",
            EventKind::RtoBackoff { .. } => "rto_backoff",
        }
    }
}

/// A timestamped, attributed protocol event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Simulation time in nanoseconds.
    pub t_ns: u64,
    /// Connection id, when the event is connection-attributable.
    pub conn: Option<u32>,
    /// Link (channel) id, when the event is link-attributable.
    pub link: Option<u32>,
    /// The typed payload.
    pub kind: EventKind,
}

impl Event {
    /// One-line human rendering used by the timeline reporter.
    pub fn render(&self) -> String {
        let mut s = format!("{:>12} ns  {:<13}", self.t_ns, self.kind.label());
        if let Some(c) = self.conn {
            s.push_str(&format!(" conn={c}"));
        }
        if let Some(l) = self.link {
            s.push_str(&format!(" link={l}"));
        }
        match self.kind {
            EventKind::OpIssue { op } | EventKind::OpComplete { op } | EventKind::FenceStall { op } => {
                s.push_str(&format!(" op={op}"));
            }
            EventKind::FenceRelease { op, stalled_ns } => {
                s.push_str(&format!(" op={op} stalled={stalled_ns}ns"));
            }
            EventKind::FrameSend { seq, retransmit } => {
                s.push_str(&format!(" seq={seq}"));
                if retransmit {
                    s.push_str(" retransmit");
                }
            }
            EventKind::FrameRecv { seq, in_order } => {
                s.push_str(&format!(" seq={seq}"));
                if !in_order {
                    s.push_str(" out-of-order");
                }
            }
            EventKind::AckPiggyback { ack } | EventKind::ExplicitAck { ack } => {
                s.push_str(&format!(" ack={ack}"));
            }
            EventKind::NackSend { gaps } | EventKind::NackRecv { gaps } => {
                s.push_str(&format!(" gaps={gaps}"));
            }
            EventKind::RtoFire { seq } => s.push_str(&format!(" seq={seq}")),
            EventKind::RxInterrupt { batch } | EventKind::RxPoll { batch } => {
                s.push_str(&format!(" batch={batch}"));
            }
            EventKind::FaultInjected { kind } => {
                s.push_str(&format!(" fault={}", kind.label()));
            }
            EventKind::RailDown { rail } | EventKind::RailUp { rail } => {
                s.push_str(&format!(" rail={rail}"));
            }
            EventKind::RtoBackoff { rto_ns, backoff } => {
                s.push_str(&format!(" rto={rto_ns}ns backoff={backoff}"));
            }
            EventKind::TxInterrupt | EventKind::TxPoll | EventKind::FrameDrop | EventKind::FrameCorrupt => {}
        }
        s
    }
}
