//! Streaming anomaly detection + automated incident diagnosis: the online
//! health plane over the timeline sampler.
//!
//! The timeline plane ([`crate::timeline`]) records what happened per
//! interval; this module *watches* it. A [`HealthMonitor`] consumes the
//! exact delta rows [`Timeline::sample`] commits — one
//! [`HealthMonitor::observe`] call per committed row — and runs three
//! allocation-free detector families per column:
//!
//! - **Level shifts** ([`Zscore`]): an EWMA baseline with an EWMA of
//!   absolute deviation scaled by 1.4826 (the MAD→σ factor for normal
//!   data) yields a robust z-score; a reading more than
//!   [`HealthConfig::z_threshold`] scaled deviations from baseline alarms.
//! - **Slow drifts** ([`Cusum`]): an upward one-sided normalized CUSUM
//!   over a slow robust baseline, `s ← max(0, s + z − slack)`, accumulates
//!   small per-interval excursions the z-score alone would never flag and
//!   alarms when `s` crosses [`HealthConfig::cusum_threshold`].
//! - **Rate bursts** ([`Burst`]): monotone counters that are quiet on a
//!   healthy path (retransmits, NACKs, duplicates, corruption, rail-down
//!   events) alarm when one interval's delta is both at least
//!   [`HealthConfig::burst_floor`] and more than
//!   [`HealthConfig::burst_factor`] × the counter's own EWMA rate.
//!
//! Rule-based detectors need no baseline: a `rail*.state` gauge equal to
//! the dead code alarms immediately, and a `fence_buffered` gauge that
//! stays non-zero for [`HealthConfig::fence_stuck_intervals`] consecutive
//! rows alarms as a stuck fence.
//!
//! **Diagnosis.** All alarms raised by one row are correlated into a
//! single probable cause per tick ([`IncidentCause`], picked by severity
//! priority) and folded into an open [`Incident`] of that cause — or open
//! a new one, which is what arms the flight recorder's `Anomaly` trigger.
//! An incident closes after [`HealthConfig::clear_intervals`] consecutive
//! quiet rows. Everything on the observe path works in storage
//! preallocated at construction: zero allocations in steady state.
//!
//! **Offline ≡ online.** The monitor reads nothing but
//! `(t_ns, row values, stale columns)` — exactly what the JSONL artifact
//! retains — so replaying a dump through [`HealthMonitor::replay_doc`]
//! reproduces bit-identical incidents to the live monitor, provided the
//! ring retained every row (no eviction). Scores are quantized to
//! milli-units ([`Alarm::score_milli`]) so reports render identically on
//! any platform. Stale gauge columns (see [`Timeline::stale_words`]) are
//! skipped entirely: a re-committed reading is not an observation.

use crate::json::{Json, SCHEMA_VERSION};
use crate::timeline::{imbalance, SourceKind, Timeline, TimelineDoc};

/// Artifact `kind` stamped into rendered health reports.
pub const HEALTH_KIND: &str = "multiedge_health";

/// Tuning knobs for the detectors and the incident lifecycle. `Copy` so a
/// run configuration can embed one by value; [`HealthConfig::default`] is
/// tuned to stay silent on clean seeded runs (see the `doctor` bench gate)
/// while catching seeded outages within a few intervals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthConfig {
    /// EWMA smoothing factor for the z-score baseline (and burst rates).
    pub ewma_alpha: f64,
    /// Slower smoothing factor for the CUSUM reference baseline — slow on
    /// purpose, so a drift cannot drag its own reference along.
    pub cusum_alpha: f64,
    /// Absolute floor on the deviation scale σ (units of the column).
    pub sigma_floor_abs: f64,
    /// Relative floor on σ as a fraction of the baseline mean; keeps
    /// naturally bursty gauges (in-flight occupancy) from alarming on
    /// ordinary swings.
    pub sigma_floor_rel: f64,
    /// CUSUM's own (much tighter) relative σ floor: the slack term already
    /// absorbs noise, and the z-score's wide floor would swamp exactly the
    /// slow drifts CUSUM exists to catch.
    pub cusum_floor_rel: f64,
    /// |z| at or above this alarms as a level shift.
    pub z_threshold: f64,
    /// Per-interval slack subtracted before CUSUM accumulation.
    pub cusum_slack: f64,
    /// CUSUM sum at or above this alarms as a drift.
    pub cusum_threshold: f64,
    /// Burst rule: delta must exceed this multiple of the EWMA rate.
    pub burst_factor: f64,
    /// Burst rule: delta must also be at least this absolute count.
    pub burst_floor: u64,
    /// Rows before z/CUSUM may alarm (baselines still warming up).
    pub warmup: u32,
    /// Consecutive quiet rows before an open incident closes.
    pub clear_intervals: u32,
    /// Consecutive non-zero `fence_buffered` rows before a stall alarms.
    pub fence_stuck_intervals: u32,
    /// Encoded `rail*.state` value that means the rail is dead.
    pub rail_dead_code: u64,
    /// Cross-member imbalance index (max/mean) at or above this alarms.
    pub imbalance_threshold: f64,
    /// Minimum row total before the imbalance index is meaningful.
    pub imbalance_min_total: u64,
    /// Consecutive imbalanced rows before the alarm fires.
    pub imbalance_consecutive: u32,
    /// Hard cap on recorded incidents; beyond it new opens are counted as
    /// suppressed instead of allocated.
    pub max_incidents: usize,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            ewma_alpha: 0.2,
            cusum_alpha: 0.025,
            sigma_floor_abs: 1.0,
            sigma_floor_rel: 0.5,
            cusum_floor_rel: 0.05,
            z_threshold: 6.0,
            cusum_slack: 0.5,
            cusum_threshold: 12.0,
            burst_factor: 8.0,
            burst_floor: 4,
            warmup: 8,
            clear_intervals: 3,
            fence_stuck_intervals: 8,
            rail_dead_code: 2,
            imbalance_threshold: 2.5,
            imbalance_min_total: 64,
            imbalance_consecutive: 2,
            max_incidents: 32,
        }
    }
}

impl HealthConfig {
    fn sigma(&self, dev: f64, mean: f64) -> f64 {
        let floor = self.sigma_floor_abs.max(self.sigma_floor_rel * mean.abs());
        (1.4826 * dev).max(floor)
    }

    fn cusum_sigma(&self, dev: f64, mean: f64) -> f64 {
        let floor = self.sigma_floor_abs.max(self.cusum_floor_rel * mean.abs());
        (1.4826 * dev).max(floor)
    }
}

/// Robust streaming z-score: EWMA mean + EWMA absolute deviation scaled by
/// 1.4826 (MAD→σ). [`Zscore::observe`] returns the score of the reading
/// against the baseline *before* folding it in; warmup rows score 0.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Zscore {
    mean: f64,
    dev: f64,
    seen: u32,
}

impl Zscore {
    /// Score `x` against the baseline, then update the baseline.
    pub fn observe(&mut self, x: f64, cfg: &HealthConfig) -> f64 {
        if self.seen == 0 {
            self.mean = x;
            self.dev = 0.0;
            self.seen = 1;
            return 0.0;
        }
        let z = (x - self.mean) / cfg.sigma(self.dev, self.mean);
        let a = cfg.ewma_alpha;
        self.mean += a * (x - self.mean);
        self.dev += a * ((x - self.mean).abs() - self.dev);
        self.seen = self.seen.saturating_add(1);
        if self.seen <= cfg.warmup {
            0.0
        } else {
            z
        }
    }

    /// Current baseline mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }
}

/// Upward one-sided normalized CUSUM over a slow robust baseline:
/// `s ← clamp(s + z − slack)`. The reference baseline moves with the
/// *slow* [`HealthConfig::cusum_alpha`] so a drift cannot hide by
/// dragging its own reference along — exactly the case the z-score
/// misses. Upward-only on purpose: for backlog/occupancy gauges growth is
/// the pathology, while draining back to zero is recovery (a two-sided
/// sum would alarm on every clean end-of-run drain).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Cusum {
    mean: f64,
    dev: f64,
    seen: u32,
    sum: f64,
}

impl Cusum {
    /// Accumulate `x`; returns the current CUSUM score (0 during warmup).
    pub fn observe(&mut self, x: f64, cfg: &HealthConfig) -> f64 {
        if self.seen == 0 {
            self.mean = x;
            self.dev = 0.0;
            self.seen = 1;
            return 0.0;
        }
        let z = (x - self.mean) / cfg.cusum_sigma(self.dev, self.mean);
        let a = cfg.cusum_alpha;
        self.mean += a * (x - self.mean);
        self.dev += a * ((x - self.mean).abs() - self.dev);
        self.seen = self.seen.saturating_add(1);
        if self.seen <= cfg.warmup {
            return 0.0;
        }
        // Clamp so a long-running excursion can still decay away once the
        // slow baseline catches up, instead of latching forever.
        let cap = 4.0 * cfg.cusum_threshold;
        self.sum = (self.sum + z - cfg.cusum_slack).clamp(0.0, cap);
        self.sum
    }

    /// Current accumulated sum.
    pub fn sum(&self) -> f64 {
        self.sum
    }
}

/// Rate-burst detector for monotone counters that are quiet on a healthy
/// path. The EWMA rate starts at zero — a storm present from the first row
/// still alarms — and a delta alarms when it clears both the absolute
/// floor and the relative factor against the counter's own rate.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Burst {
    ewma: f64,
}

impl Burst {
    /// Score one interval delta: 0 when quiet, the delta/rate ratio when
    /// the burst rule fires.
    pub fn observe(&mut self, delta: u64, cfg: &HealthConfig) -> f64 {
        let x = delta as f64;
        let fired = delta >= cfg.burst_floor && x > cfg.burst_factor * self.ewma;
        let score = if fired { x / self.ewma.max(1.0) } else { 0.0 };
        self.ewma += cfg.ewma_alpha * (x - self.ewma);
        score
    }
}

/// Which detector family raised an alarm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AlarmKind {
    /// Robust z-score level shift.
    #[default]
    Level,
    /// CUSUM drift accumulation.
    Drift,
    /// Rate burst on a quiet counter.
    Burst,
    /// A `rail*.state` gauge read the dead code.
    RailDead,
    /// `fence_buffered` stayed non-zero too long.
    FenceStuck,
    /// Cross-member imbalance index exceeded threshold.
    Imbalance,
}

impl AlarmKind {
    /// Stable lowercase label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            AlarmKind::Level => "level",
            AlarmKind::Drift => "drift",
            AlarmKind::Burst => "burst",
            AlarmKind::RailDead => "rail_dead",
            AlarmKind::FenceStuck => "fence_stuck",
            AlarmKind::Imbalance => "imbalance",
        }
    }
}

/// One detector firing on one column of one row. `Copy` + `Default` so
/// incidents can hold evidence in a fixed inline array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Alarm {
    /// Row timestamp.
    pub t_ns: u64,
    /// Column index into the monitor's source names.
    pub column: u32,
    /// Which detector fired.
    pub kind: AlarmKind,
    /// The committed row value that fired (delta for counters, raw for
    /// gauges).
    pub value: u64,
    /// Detector score × 1000, rounded — integral so rendered reports are
    /// bit-identical between the online monitor and offline replay.
    pub score_milli: i64,
}

/// Named probable cause of an incident, ordered by classification
/// priority: when one row raises alarms of several flavours they are
/// correlated into the highest-priority cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum IncidentCause {
    /// A rail's failure detector declared it dead (or rail-down events
    /// burst).
    RailOutage,
    /// Retransmits / NACKs / duplicates / corruption burst far above the
    /// path's own rate.
    RetransmitStorm,
    /// Fence buffering stuck or shifting: ordered delivery is stalled.
    FenceStall,
    /// One member is doing a disproportionate share of the work.
    IncastImbalance,
    /// Backlog / occupancy gauges shifted or drifted from baseline.
    CongestionBacklog,
    /// Alarms fired on columns with no specific classification.
    #[default]
    Unknown,
}

/// Number of [`IncidentCause`] variants (open-slot table size).
pub const NUM_CAUSES: usize = 6;

impl IncidentCause {
    /// Stable ordinal (also the classification priority, 0 = highest).
    pub fn ordinal(&self) -> usize {
        match self {
            IncidentCause::RailOutage => 0,
            IncidentCause::RetransmitStorm => 1,
            IncidentCause::FenceStall => 2,
            IncidentCause::IncastImbalance => 3,
            IncidentCause::CongestionBacklog => 4,
            IncidentCause::Unknown => 5,
        }
    }

    /// Stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            IncidentCause::RailOutage => "rail_outage",
            IncidentCause::RetransmitStorm => "retransmit_storm",
            IncidentCause::FenceStall => "fence_stall",
            IncidentCause::IncastImbalance => "incast_imbalance",
            IncidentCause::CongestionBacklog => "congestion_backlog",
            IncidentCause::Unknown => "unknown",
        }
    }

    /// All variants, ordinal order.
    pub const ALL: [IncidentCause; NUM_CAUSES] = [
        IncidentCause::RailOutage,
        IncidentCause::RetransmitStorm,
        IncidentCause::FenceStall,
        IncidentCause::IncastImbalance,
        IncidentCause::CongestionBacklog,
        IncidentCause::Unknown,
    ];
}

/// Evidence rows retained inline per incident.
pub const MAX_EVIDENCE: usize = 8;

/// One diagnosed incident: a typed cause, its lifetime, and the first
/// alarms that fired as inline evidence. `Copy`-friendly (fixed-size) so
/// the monitor never allocates after construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Incident {
    /// Probable cause.
    pub cause: IncidentCause,
    /// Row timestamp that opened the incident.
    pub opened_t_ns: u64,
    /// Most recent row that contributed an alarm.
    pub last_alarm_t_ns: u64,
    /// Row timestamp that closed it (`None` while open).
    pub closed_t_ns: Option<u64>,
    /// Total alarms folded in over the incident's lifetime.
    pub alarms: u64,
    /// Evidence beyond [`MAX_EVIDENCE`] dropped (still counted above).
    pub evidence_dropped: u64,
    evidence: [Alarm; MAX_EVIDENCE],
    evidence_len: u8,
}

impl Incident {
    fn open(cause: IncidentCause, t_ns: u64) -> Self {
        Incident {
            cause,
            opened_t_ns: t_ns,
            last_alarm_t_ns: t_ns,
            closed_t_ns: None,
            alarms: 0,
            evidence_dropped: 0,
            evidence: [Alarm::default(); MAX_EVIDENCE],
            evidence_len: 0,
        }
    }

    fn push_evidence(&mut self, a: Alarm) {
        self.alarms += 1;
        self.last_alarm_t_ns = a.t_ns;
        if (self.evidence_len as usize) < MAX_EVIDENCE {
            self.evidence[self.evidence_len as usize] = a;
            self.evidence_len += 1;
        } else {
            self.evidence_dropped += 1;
        }
    }

    /// The retained evidence alarms (first [`MAX_EVIDENCE`] that fired).
    pub fn evidence(&self) -> &[Alarm] {
        &self.evidence[..self.evidence_len as usize]
    }

    /// Still open (never saw `clear_intervals` quiet rows)?
    pub fn is_open(&self) -> bool {
        self.closed_t_ns.is_none()
    }
}

/// How the monitor treats one column, derived from its name and kind at
/// construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    /// Not watched (plain throughput counters, unrecognized sources).
    Ignore,
    /// Quiet-on-healthy-path counter: burst rule.
    BurstCounter,
    /// `rail*.state` gauge: dead-code rule.
    RailState,
    /// Backlog/occupancy gauge: z + CUSUM → congestion.
    BacklogGauge,
    /// `fence_buffered`: z + CUSUM + stuck rule → fence stall.
    FenceGauge,
    /// Other gauges: z + CUSUM → unknown cause.
    GenericGauge,
}

fn role_of(name: &str, kind: SourceKind) -> Role {
    match kind {
        SourceKind::Counter => match name {
            "retransmits_nack" | "retransmits_rto" | "nacks_sent" | "dup_frames_recv"
            | "corrupt_frames" | "rail_down_events" => Role::BurstCounter,
            _ => Role::Ignore,
        },
        SourceKind::Gauge => {
            if name.ends_with(".state") {
                Role::RailState
            } else if name == "fence_buffered" {
                Role::FenceGauge
            } else if name == "in_flight" || name == "token_age_ns" || name.ends_with(".backlog_ns")
            {
                Role::BacklogGauge
            } else {
                Role::GenericGauge
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct ColumnState {
    role: Role,
    z: Zscore,
    cusum: Cusum,
    burst: Burst,
    stuck_runs: u32,
}

const NO_OPEN: usize = usize::MAX;

/// The streaming health monitor: per-column detectors plus the incident
/// lifecycle. Feed it every committed row via [`HealthMonitor::observe`];
/// collect the verdict with [`HealthMonitor::report`].
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    cfg: HealthConfig,
    names: Vec<String>,
    cols: Vec<ColumnState>,
    /// Scratch: alarms raised by the current row. Capacity is fixed at
    /// construction (≤3 per column + 1 injected), so pushes never allocate.
    tick_alarms: Vec<Alarm>,
    incidents: Vec<Incident>,
    /// Per-cause index into `incidents` of the open incident (or NO_OPEN).
    open_idx: [usize; NUM_CAUSES],
    /// Per-cause consecutive quiet rows while open.
    quiet: [u32; NUM_CAUSES],
    imbalance_runs: u32,
    rows_seen: u64,
    alarms_total: u64,
    suppressed_incidents: u64,
}

impl HealthMonitor {
    /// Build a monitor for sources described by parallel `names`/`kinds`
    /// (column order). All storage the observe path touches is allocated
    /// here.
    pub fn new(names: &[String], kinds: &[SourceKind], cfg: HealthConfig) -> Self {
        assert_eq!(names.len(), kinds.len(), "names/kinds must be parallel");
        let cols: Vec<ColumnState> = names
            .iter()
            .zip(kinds)
            .map(|(name, &kind)| ColumnState {
                role: role_of(name, kind),
                z: Zscore::default(),
                cusum: Cusum::default(),
                burst: Burst::default(),
                stuck_runs: 0,
            })
            .collect();
        HealthMonitor {
            cfg,
            names: names.to_vec(),
            tick_alarms: Vec::with_capacity(3 * cols.len() + 1),
            cols,
            incidents: Vec::with_capacity(cfg.max_incidents),
            open_idx: [NO_OPEN; NUM_CAUSES],
            quiet: [0; NUM_CAUSES],
            imbalance_runs: 0,
            rows_seen: 0,
            alarms_total: 0,
            suppressed_incidents: 0,
        }
    }

    /// Monitor matching a live [`Timeline`]'s registered sources.
    pub fn for_timeline(tl: &Timeline, cfg: HealthConfig) -> Self {
        HealthMonitor::new(tl.names(), tl.kinds(), cfg)
    }

    /// Monitor matching a parsed [`TimelineDoc`]'s sources.
    pub fn for_doc(doc: &TimelineDoc, cfg: HealthConfig) -> Self {
        let names: Vec<String> = doc.sources.iter().map(|s| s.name.clone()).collect();
        let kinds: Vec<SourceKind> = doc.sources.iter().map(|s| s.kind).collect();
        HealthMonitor::new(&names, &kinds, cfg)
    }

    /// The active configuration.
    pub fn config(&self) -> &HealthConfig {
        &self.cfg
    }

    /// Feed one committed row: `values` in column order (deltas for
    /// counters, raw for gauges), `stale_words` the row's stale bitmask
    /// (empty slice = nothing stale). Returns the cause of an incident
    /// *newly opened* by this row — the caller's cue to arm the flight
    /// recorder. Allocation-free.
    pub fn observe(&mut self, t_ns: u64, values: &[u64], stale_words: &[u64]) -> Option<IncidentCause> {
        self.rows_seen += 1;
        self.tick_alarms.clear();
        let n = self.cols.len().min(values.len());
        for (c, &v) in values.iter().enumerate().take(n) {
            let role = self.cols[c].role;
            if role == Role::Ignore {
                continue;
            }
            let stale = stale_words.get(c / 64).is_some_and(|w| w >> (c % 64) & 1 == 1);
            if stale {
                // A re-committed gauge reading is not an observation.
                continue;
            }
            let cfg = self.cfg;
            let col = &mut self.cols[c];
            match role {
                Role::BurstCounter => {
                    let score = col.burst.observe(v, &cfg);
                    if score > 0.0 {
                        self.raise(t_ns, c, AlarmKind::Burst, v, score);
                    }
                }
                Role::RailState => {
                    if v == cfg.rail_dead_code {
                        self.raise(t_ns, c, AlarmKind::RailDead, v, 1000.0);
                    }
                }
                Role::BacklogGauge | Role::FenceGauge | Role::GenericGauge => {
                    let x = v as f64;
                    let z = col.z.observe(x, &cfg);
                    let s = col.cusum.observe(x, &cfg);
                    if role == Role::FenceGauge {
                        col.stuck_runs = if v > 0 { col.stuck_runs + 1 } else { 0 };
                        if col.stuck_runs >= cfg.fence_stuck_intervals {
                            let runs = col.stuck_runs;
                            self.raise(t_ns, c, AlarmKind::FenceStuck, v, runs as f64);
                        }
                    }
                    if z.abs() >= cfg.z_threshold {
                        self.raise(t_ns, c, AlarmKind::Level, v, z);
                    }
                    if s >= cfg.cusum_threshold {
                        self.raise(t_ns, c, AlarmKind::Drift, v, s);
                    }
                }
                Role::Ignore => unreachable!(),
            }
        }
        self.commit_tick(t_ns)
    }

    #[inline]
    fn raise(&mut self, t_ns: u64, column: usize, kind: AlarmKind, value: u64, score: f64) {
        debug_assert!(self.tick_alarms.len() < self.tick_alarms.capacity());
        self.tick_alarms.push(Alarm {
            t_ns,
            column: column as u32,
            kind,
            value,
            score_milli: (score * 1000.0).round() as i64,
        });
    }

    /// Cause one alarm classifies as, before cross-alarm correlation.
    fn cause_of(&self, a: &Alarm) -> IncidentCause {
        let c = a.column as usize;
        match a.kind {
            AlarmKind::RailDead => IncidentCause::RailOutage,
            AlarmKind::Imbalance => IncidentCause::IncastImbalance,
            AlarmKind::FenceStuck => IncidentCause::FenceStall,
            AlarmKind::Burst => {
                if self.names.get(c).is_some_and(|n| n == "rail_down_events") {
                    IncidentCause::RailOutage
                } else {
                    IncidentCause::RetransmitStorm
                }
            }
            AlarmKind::Level | AlarmKind::Drift => match self.cols.get(c).map(|s| s.role) {
                Some(Role::FenceGauge) => IncidentCause::FenceStall,
                Some(Role::BacklogGauge) => IncidentCause::CongestionBacklog,
                _ => IncidentCause::Unknown,
            },
        }
    }

    /// Correlate this row's alarms into one cause, fold them into the
    /// matching incident (opening it if needed), and advance the quiet
    /// counters of every other open incident. Returns a newly opened cause.
    fn commit_tick(&mut self, t_ns: u64) -> Option<IncidentCause> {
        self.alarms_total += self.tick_alarms.len() as u64;
        let winner: Option<IncidentCause> = self
            .tick_alarms
            .iter()
            .map(|a| self.cause_of(a))
            .min_by_key(|c| c.ordinal());
        let mut newly_opened = None;
        if let Some(cause) = winner {
            let slot = cause.ordinal();
            self.quiet[slot] = 0;
            if self.open_idx[slot] == NO_OPEN {
                if self.incidents.len() < self.cfg.max_incidents {
                    self.open_idx[slot] = self.incidents.len();
                    self.incidents.push(Incident::open(cause, t_ns));
                    newly_opened = Some(cause);
                } else {
                    self.suppressed_incidents += 1;
                }
            }
            if self.open_idx[slot] != NO_OPEN {
                let idx = self.open_idx[slot];
                // All concurrent alarms are evidence of the one diagnosed
                // cause — that correlation *is* the diagnosis.
                for &a in &self.tick_alarms {
                    self.incidents[idx].push_evidence(a);
                }
            }
        }
        for slot in 0..NUM_CAUSES {
            if self.open_idx[slot] == NO_OPEN {
                continue;
            }
            let quiet_this_tick = match winner {
                Some(cause) => cause.ordinal() != slot,
                None => true,
            };
            if quiet_this_tick {
                self.quiet[slot] += 1;
                if self.quiet[slot] >= self.cfg.clear_intervals {
                    self.incidents[self.open_idx[slot]].closed_t_ns = Some(t_ns);
                    self.open_idx[slot] = NO_OPEN;
                    self.quiet[slot] = 0;
                }
            }
        }
        newly_opened
    }

    /// Feed one cross-member row (same grid slot from each member's
    /// timeline): raises an [`AlarmKind::Imbalance`] alarm — and possibly
    /// opens an [`IncidentCause::IncastImbalance`] incident — when the
    /// max/mean index stays above threshold for
    /// [`HealthConfig::imbalance_consecutive`] rows. Allocation-free; meant
    /// for a monitor whose "columns" are members (see
    /// [`diagnose_imbalance`]).
    pub fn observe_members(&mut self, t_ns: u64, values: &[u64]) -> Option<IncidentCause> {
        self.rows_seen += 1;
        self.tick_alarms.clear();
        let total: u64 = values.iter().sum();
        let (index, hot) = imbalance(values);
        if total >= self.cfg.imbalance_min_total && index >= self.cfg.imbalance_threshold {
            self.imbalance_runs += 1;
            if self.imbalance_runs >= self.cfg.imbalance_consecutive {
                self.raise(t_ns, hot, AlarmKind::Imbalance, values[hot], index);
            }
        } else {
            self.imbalance_runs = 0;
        }
        self.commit_tick(t_ns)
    }

    /// Incidents recorded so far (open and closed, open order).
    pub fn incidents(&self) -> &[Incident] {
        &self.incidents
    }

    /// Number of incidents currently open.
    pub fn open_incidents(&self) -> usize {
        self.open_idx.iter().filter(|&&i| i != NO_OPEN).count()
    }

    /// Snapshot the verdict. Allocates — call it after the measured region.
    pub fn report(&self) -> HealthReport {
        HealthReport {
            names: self.names.clone(),
            incidents: self.incidents.clone(),
            rows_seen: self.rows_seen,
            alarms_total: self.alarms_total,
            suppressed_incidents: self.suppressed_incidents,
        }
    }

    /// Detector state as JSON — the flight recorder's `Anomaly` dump
    /// context source. Allocates; only called when a dump fires.
    pub fn state_json(&self) -> Json {
        let open: Vec<Json> = self
            .incidents
            .iter()
            .filter(|i| i.is_open())
            .map(incident_json_named(&self.names))
            .collect();
        let cols: Vec<Json> = self
            .cols
            .iter()
            .enumerate()
            .filter(|(_, s)| s.role != Role::Ignore)
            .map(|(c, s)| {
                Json::obj()
                    .set("column", self.names[c].as_str())
                    .set("mean_milli", (s.z.mean() * 1000.0).round() as i64)
                    .set("cusum_milli", (s.cusum.sum() * 1000.0).round() as i64)
                    .set("burst_rate_milli", (s.burst.ewma * 1000.0).round() as i64)
            })
            .collect();
        Json::obj()
            .set("rows_seen", self.rows_seen)
            .set("alarms_total", self.alarms_total)
            .set("open_incidents", open)
            .set("detectors", cols)
    }

    /// Replay every retained row of a live timeline (stale bits included).
    pub fn replay_timeline(&mut self, tl: &Timeline) {
        for i in 0..tl.len() {
            let (t, vals) = tl.row(i);
            // Split borrows: copy the stale words into a fixed scratch is
            // unnecessary — `observe` only reads them.
            let stale: &[u64] = tl.stale_words(i);
            self.observe(t, vals, stale);
        }
    }

    /// Replay every row of a parsed artifact — the offline doctor path.
    /// Produces bit-identical incidents to the online monitor when the
    /// artifact retained every committed row.
    pub fn replay_doc(&mut self, doc: &TimelineDoc) {
        let mut words = vec![0u64; doc.sources.len().div_ceil(64)];
        for (i, (t, vals)) in doc.samples.iter().enumerate() {
            words.fill(0);
            for &c in &doc.stale[i] {
                words[c / 64] |= 1 << (c % 64);
            }
            self.observe(*t, vals, &words);
        }
    }
}

fn incident_json_named(names: &[String]) -> impl Fn(&Incident) -> Json + '_ {
    move |i: &Incident| {
        let evidence: Vec<Json> = i
            .evidence()
            .iter()
            .map(|a| {
                Json::obj()
                    .set("t_ns", a.t_ns)
                    .set(
                        "column",
                        names
                            .get(a.column as usize)
                            .map(|s| s.as_str())
                            .unwrap_or("?"),
                    )
                    .set("kind", a.kind.label())
                    .set("value", a.value)
                    .set("score_milli", a.score_milli)
            })
            .collect();
        let mut o = Json::obj()
            .set("cause", i.cause.label())
            .set("opened_t_ns", i.opened_t_ns)
            .set("last_alarm_t_ns", i.last_alarm_t_ns)
            .set("open", i.is_open());
        if let Some(t) = i.closed_t_ns {
            o = o.set("closed_t_ns", t);
        }
        o.set("alarms", i.alarms)
            .set("evidence_dropped", i.evidence_dropped)
            .set("evidence", evidence)
    }
}

/// The monitor's verdict: every incident plus run totals.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// Source (or member) names the incident columns index into.
    pub names: Vec<String>,
    /// All incidents, open order.
    pub incidents: Vec<Incident>,
    /// Rows observed.
    pub rows_seen: u64,
    /// Alarms raised across all rows.
    pub alarms_total: u64,
    /// Incident opens dropped by the [`HealthConfig::max_incidents`] cap.
    pub suppressed_incidents: u64,
}

impl HealthReport {
    /// Incidents still open at end of run.
    pub fn open_incidents(&self) -> usize {
        self.incidents.iter().filter(|i| i.is_open()).count()
    }

    /// First incident of `cause`, if any.
    pub fn first(&self, cause: IncidentCause) -> Option<&Incident> {
        self.incidents.iter().find(|i| i.cause == cause)
    }

    /// Render as a schema-stamped JSON object. Deterministic: every field
    /// is integral, so equal reports render byte-identically.
    pub fn to_json(&self) -> Json {
        let incidents: Vec<Json> = self
            .incidents
            .iter()
            .map(incident_json_named(&self.names))
            .collect();
        Json::obj()
            .set("schema_version", SCHEMA_VERSION)
            .set("kind", HEALTH_KIND)
            .set("rows_seen", self.rows_seen)
            .set("alarms_total", self.alarms_total)
            .set("suppressed_incidents", self.suppressed_incidents)
            .set("open_incidents", self.open_incidents() as u64)
            .set("incidents", incidents)
    }

    /// Render a human incident table (one line per incident plus a
    /// summary line), for `me-inspect doctor`.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "rows {}  alarms {}  incidents {} ({} open)\n",
            self.rows_seen,
            self.alarms_total,
            self.incidents.len(),
            self.open_incidents()
        ));
        for i in &self.incidents {
            let state = if i.is_open() { "OPEN  " } else { "closed" };
            let span = match i.closed_t_ns {
                Some(t) => format!("{:.3}ms..{:.3}ms", ms(i.opened_t_ns), ms(t)),
                None => format!("{:.3}ms..", ms(i.opened_t_ns)),
            };
            out.push_str(&format!(
                "{state} {:<18} {span:<24} alarms {:<4}",
                i.cause.label(),
                i.alarms
            ));
            if let Some(a) = i.evidence().first() {
                let col = self
                    .names
                    .get(a.column as usize)
                    .map(|s| s.as_str())
                    .unwrap_or("?");
                out.push_str(&format!(
                    " first: {col} {} v={} score={:.1}",
                    a.kind.label(),
                    a.value,
                    a.score_milli as f64 / 1000.0
                ));
            }
            out.push('\n');
        }
        out
    }
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Diagnose cross-member imbalance from aligned per-member interval
/// values: `members[m][i]` is member `m`'s value (e.g. events processed)
/// in grid slot `i`, stamped `t_ns[i]`. Returns a report whose `names`
/// are the member labels and whose incidents (if any) are
/// [`IncidentCause::IncastImbalance`].
pub fn diagnose_imbalance(
    labels: &[String],
    t_ns: &[u64],
    members: &[Vec<u64>],
    cfg: HealthConfig,
) -> HealthReport {
    let kinds = vec![SourceKind::Counter; labels.len()];
    let mut mon = HealthMonitor::new(labels, &kinds, cfg);
    let rows = members.iter().map(|m| m.len()).min().unwrap_or(0);
    let mut row = vec![0u64; members.len()];
    for (i, &t) in t_ns.iter().enumerate().take(rows) {
        for (m, series) in members.iter().enumerate() {
            row[m] = series[i];
        }
        mon.observe_members(t, &row);
    }
    mon.report()
}

/// Diagnose a set of per-member timelines that share one counter column
/// (e.g. per-shard `events`): extracts the aligned per-interval deltas and
/// runs [`diagnose_imbalance`]. Rows are aligned by index; timelines
/// produced by the same run share the sampling grid, so index alignment is
/// timestamp alignment.
pub fn diagnose_member_timelines(
    timelines: &[Timeline],
    counter: &str,
    cfg: HealthConfig,
) -> HealthReport {
    let labels: Vec<String> = (0..timelines.len()).map(|m| format!("member{m}")).collect();
    let mut members: Vec<Vec<u64>> = Vec::with_capacity(timelines.len());
    let mut t_ns: Vec<u64> = Vec::new();
    for tl in timelines {
        let col = tl.source_id(counter).map(|id| id.index());
        let series: Vec<u64> = match col {
            Some(c) => (0..tl.len()).map(|i| tl.row(i).1[c]).collect(),
            None => Vec::new(),
        };
        if t_ns.len() < series.len() {
            t_ns = (0..tl.len()).map(|i| tl.row(i).0).collect();
        }
        members.push(series);
    }
    diagnose_imbalance(&labels, &t_ns, &members, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::TimelineBuilder;

    fn cfg() -> HealthConfig {
        HealthConfig::default()
    }

    fn names(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn rail_dead_opens_rail_outage_and_closes_on_recovery() {
        let n = names(&["rail0.state", "in_flight"]);
        let k = [SourceKind::Gauge, SourceKind::Gauge];
        let mut m = HealthMonitor::new(&n, &k, cfg());
        assert_eq!(m.observe(100, &[0, 5], &[]), None);
        let opened = m.observe(200, &[2, 5], &[]);
        assert_eq!(opened, Some(IncidentCause::RailOutage));
        // Still dead: same incident, no new open.
        assert_eq!(m.observe(300, &[2, 5], &[]), None);
        assert_eq!(m.open_incidents(), 1);
        // Recovered: closes after clear_intervals quiet rows.
        for t in [400, 500, 600] {
            assert_eq!(m.observe(t, &[0, 5], &[]), None);
        }
        assert_eq!(m.open_incidents(), 0);
        let r = m.report();
        assert_eq!(r.incidents.len(), 1);
        let i = &r.incidents[0];
        assert_eq!(i.cause, IncidentCause::RailOutage);
        assert_eq!(i.opened_t_ns, 200);
        assert_eq!(i.closed_t_ns, Some(600));
        assert_eq!(i.alarms, 2);
        assert_eq!(i.evidence()[0].kind, AlarmKind::RailDead);
    }

    #[test]
    fn retransmit_burst_alarm_and_priority_correlation() {
        let n = names(&["retransmits_nack", "rail0.state"]);
        let k = [SourceKind::Counter, SourceKind::Gauge];
        let mut m = HealthMonitor::new(&n, &k, cfg());
        for t in 1..=5u64 {
            assert_eq!(m.observe(t * 100, &[0, 0], &[]), None, "quiet path");
        }
        // Burst + rail death in the same row correlate into RailOutage
        // (higher priority), with the burst alarm kept as evidence.
        let opened = m.observe(600, &[50, 2], &[]);
        assert_eq!(opened, Some(IncidentCause::RailOutage));
        let r = m.report();
        assert_eq!(r.incidents.len(), 1);
        let kinds: Vec<AlarmKind> = r.incidents[0].evidence().iter().map(|a| a.kind).collect();
        assert!(kinds.contains(&AlarmKind::Burst) && kinds.contains(&AlarmKind::RailDead));
    }

    #[test]
    fn retransmit_storm_alone_is_named() {
        let n = names(&["retransmits_nack"]);
        let k = [SourceKind::Counter];
        let mut m = HealthMonitor::new(&n, &k, cfg());
        for t in 1..=4u64 {
            m.observe(t * 100, &[0], &[]);
        }
        assert_eq!(
            m.observe(500, &[40], &[]),
            Some(IncidentCause::RetransmitStorm)
        );
    }

    #[test]
    fn stale_gauge_rows_are_skipped() {
        let n = names(&["rail0.state"]);
        let k = [SourceKind::Gauge];
        let mut m = HealthMonitor::new(&n, &k, cfg());
        m.observe(100, &[0], &[]);
        // Dead code but the row is stale: a re-committed reading must not
        // open an incident.
        assert_eq!(m.observe(200, &[2], &[0b1]), None);
        assert_eq!(m.report().alarms_total, 0);
        // Same value, fresh row: alarms.
        assert_eq!(m.observe(300, &[2], &[]), Some(IncidentCause::RailOutage));
    }

    #[test]
    fn fence_stuck_raises_fence_stall() {
        let n = names(&["fence_buffered"]);
        let k = [SourceKind::Gauge];
        let mut m = HealthMonitor::new(&n, &k, cfg());
        let mut opened = None;
        for t in 1..=20u64 {
            if let Some(c) = m.observe(t * 100, &[3], &[]) {
                opened = Some((t, c));
                break;
            }
        }
        let (t, c) = opened.expect("stuck fence must alarm");
        assert_eq!(c, IncidentCause::FenceStall);
        assert_eq!(t, u64::from(cfg().fence_stuck_intervals));
    }

    #[test]
    fn backlog_step_raises_congestion() {
        let n = names(&["in_flight"]);
        let k = [SourceKind::Gauge];
        let mut m = HealthMonitor::new(&n, &k, cfg());
        let mut t = 0u64;
        for _ in 0..20 {
            t += 100;
            assert_eq!(m.observe(t, &[40], &[]), None, "steady level is clean");
        }
        let mut opened = None;
        for _ in 0..6 {
            t += 100;
            if let Some(c) = m.observe(t, &[4000], &[]) {
                opened = Some(c);
                break;
            }
        }
        assert_eq!(opened, Some(IncidentCause::CongestionBacklog));
    }

    #[test]
    fn cusum_catches_slow_drift_z_misses() {
        let c = cfg();
        let mut z = Zscore::default();
        let mut cu = Cusum::default();
        let mut z_alarmed = false;
        let mut cusum_alarmed = false;
        // Drift: +0.4σ-ish per step on a baseline of 100, far below the
        // z threshold each step but relentless.
        for i in 0..400u64 {
            let x = 100.0 + i as f64 * 0.8;
            if z.observe(x, &c).abs() >= c.z_threshold {
                z_alarmed = true;
            }
            if cu.observe(x, &c) >= c.cusum_threshold {
                cusum_alarmed = true;
            }
        }
        assert!(!z_alarmed, "fast z baseline absorbs the drift");
        assert!(cusum_alarmed, "CUSUM accumulates it");
    }

    #[test]
    fn burst_detector_is_quiet_on_steady_rates() {
        let c = cfg();
        let mut b = Burst::default();
        // A path that always retransmits a little: first row is a burst
        // relative to "never", afterwards the rate is the baseline.
        assert!(b.observe(10, &c) > 0.0);
        for _ in 0..100 {
            assert_eq!(b.observe(10, &c), 0.0);
        }
        // A 20× spike over the adapted rate alarms again.
        assert!(b.observe(200, &c) > 0.0);
    }

    #[test]
    fn imbalance_diagnosis_names_hot_member_and_balanced_is_clean() {
        let labels = names(&["s0", "s1", "s2", "s3"]);
        let t: Vec<u64> = (1..=10u64).map(|i| i * 1000).collect();
        let hot: Vec<Vec<u64>> = vec![
            vec![400; 10],
            vec![40; 10],
            vec![40; 10],
            vec![40; 10],
        ];
        let r = diagnose_imbalance(&labels, &t, &hot, cfg());
        let i = r.first(IncidentCause::IncastImbalance).expect("hot member flagged");
        assert_eq!(i.evidence()[0].column, 0);
        assert!(i.is_open());
        let balanced: Vec<Vec<u64>> = vec![vec![100; 10]; 4];
        let r = diagnose_imbalance(&labels, &t, &balanced, cfg());
        assert!(r.incidents.is_empty());
    }

    #[test]
    fn replay_of_timeline_rows_matches_direct_observation() {
        let mut b = TimelineBuilder::new();
        let c = b.counter("retransmits_nack");
        let g = b.gauge("rail0.state");
        let mut tl = b.build(100, 64, 0);
        let mut live = HealthMonitor::for_timeline(&tl, cfg());
        let mut raws = 0u64;
        for i in 1..=30u64 {
            raws += if i == 12 { 60 } else { 0 };
            tl.set(c, raws);
            tl.set(g, if (15..=20).contains(&i) { 2 } else { 0 });
            tl.sample(i * 100);
            let i = tl.len() - 1;
            let (t, vals) = tl.row(i);
            let stale = tl.stale_words(i).to_vec();
            live.observe(t, vals, &stale);
        }
        // Offline replay (same rows through a fresh monitor) must render
        // the identical report.
        let mut replay = HealthMonitor::for_timeline(&tl, cfg());
        replay.replay_timeline(&tl);
        assert_eq!(
            live.report().to_json().render(),
            replay.report().to_json().render()
        );
        // And through the JSONL artifact: still bit-identical.
        let doc = TimelineDoc::parse_jsonl(&tl.to_jsonl()).expect("parses");
        let mut offline = HealthMonitor::for_doc(&doc, cfg());
        offline.replay_doc(&doc);
        assert_eq!(
            live.report().to_json().render(),
            offline.report().to_json().render()
        );
        let r = live.report();
        assert!(r.first(IncidentCause::RetransmitStorm).is_some());
        assert!(r.first(IncidentCause::RailOutage).is_some());
    }

    #[test]
    fn incident_cap_counts_suppressed_opens() {
        let mut c = cfg();
        c.max_incidents = 1;
        c.clear_intervals = 1;
        let n = names(&["rail0.state"]);
        let k = [SourceKind::Gauge];
        let mut m = HealthMonitor::new(&n, &k, c);
        let mut t = 0;
        for _ in 0..3 {
            t += 100;
            m.observe(t, &[2], &[]); // open (or suppressed)
            t += 100;
            m.observe(t, &[0], &[]); // close
        }
        let r = m.report();
        assert_eq!(r.incidents.len(), 1);
        assert_eq!(r.suppressed_incidents, 2);
    }

    #[test]
    fn report_json_is_schema_stamped() {
        let n = names(&["in_flight"]);
        let k = [SourceKind::Gauge];
        let m = HealthMonitor::new(&n, &k, cfg());
        let doc = m.report().to_json();
        crate::json::require_schema(&doc).expect("stamped");
        assert_eq!(doc.get("kind").and_then(|k| k.as_str()), Some(HEALTH_KIND));
    }
}
