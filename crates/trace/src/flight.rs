//! Always-on flight recorder: a bounded, allocation-free event ring with
//! trigger-based post-mortem dumps.
//!
//! The full [`crate::Tracer`] keeps typed events and is meant for benches;
//! the flight recorder is its production-grade sibling. Recording one
//! [`FlightEvent`] is a single 32-byte store into a ring preallocated at
//! enable time — nothing on the clean path allocates, so the recorder can
//! stay enabled in production-style runs (the datapath bench gates this at
//! ≤5% throughput cost and 0 allocs/frame). When something goes wrong —
//! RTO backoff past a threshold, a rail declared Dead, a fence stall past a
//! bound — the recorder snapshots the ring (and, when wired to a
//! [`SpanRecorder`], a full latency attribution) into a JSON post-mortem:
//! kept in memory, optionally written to `dump_dir`, and renderable with
//! the `me-inspect` example binary.

use crate::attribution::analyze;
use crate::json::Json;
use crate::span::SpanRecorder;
use std::cell::RefCell;
use std::rc::Rc;

/// Flight recorder knobs. The defaults suit production-style runs: a 4096
/// event ring (~128 KiB), dumps on the third RTO backoff, rail death, or a
/// fence stall past 10 ms, at most 8 dumps retained.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightConfig {
    /// Ring capacity in events (preallocated; each event is 32 bytes).
    pub ring: usize,
    /// Dump when a connection's RTO backoff exponent reaches this value
    /// (0 disables the trigger).
    pub rto_backoff_trigger: u32,
    /// Dump when a fence releases after stalling at least this long
    /// (0 disables the trigger).
    pub fence_stall_trigger_ns: u64,
    /// Dump when rail health declares a rail Dead.
    pub dump_on_rail_death: bool,
    /// Dump when the health monitor opens an incident (the `Anomaly`
    /// trigger).
    pub dump_on_anomaly: bool,
    /// Retain at most this many dumps (further triggers are counted but
    /// suppressed).
    pub max_dumps: usize,
    /// Suppress a dump whose trigger label matches the previous dump of
    /// that label within this window (0 disables deduplication). Without
    /// it a flapping rail can exhaust `max_dumps` on identical
    /// post-mortems and mask a later *distinct* incident; suppressed
    /// duplicates are counted per trigger ([`FlightRecorder::dedup_counts`]).
    pub dedup_window_ns: u64,
    /// When set, each dump is also written to
    /// `<dump_dir>/flight_<idx>_<trigger>.json`.
    pub dump_dir: Option<String>,
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig {
            ring: 4096,
            rto_backoff_trigger: 3,
            fence_stall_trigger_ns: 10_000_000,
            dump_on_rail_death: true,
            dump_on_anomaly: true,
            max_dumps: 8,
            dedup_window_ns: 0,
            dump_dir: None,
        }
    }
}

/// What a [`FlightEvent`] records. Discriminants are stable (they appear in
/// dumps).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FlightCode {
    /// An op was issued (`a` = wire op id, `b` = bytes).
    OpIssue = 0,
    /// An op completed (`a` = wire op id, `b` = latency ns).
    OpComplete = 1,
    /// A frame went to a NIC (`a` = seq, `b` = 1 if retransmit).
    FrameSend = 2,
    /// A frame was admitted (`a` = seq, `b` = 1 if in order).
    FrameRecv = 3,
    /// The network dropped a frame (`a` = link id).
    FrameDrop = 4,
    /// The network corrupted a frame (`a` = link id).
    FrameCorrupt = 5,
    /// An explicit ack left (`a` = cumulative ack).
    AckExplicit = 6,
    /// A NACK left (`a` = cumulative ack, `b` = gap count).
    Nack = 7,
    /// A retransmission timer fired (`a` = seq).
    RtoFire = 8,
    /// The RTO backed off (`a` = new RTO ns, `b` = backoff exponent).
    RtoBackoff = 9,
    /// Rail health declared a rail Dead.
    RailDown = 10,
    /// A rail was re-admitted.
    RailUp = 11,
    /// A fence released (`a` = wire op id, `b` = stalled ns).
    FenceRelease = 12,
    /// The fault plan acted (`a` = fault kind ordinal).
    FaultInjected = 13,
    /// A liveness watchdog tripped (`a` = error discriminant, `b` = ns
    /// without protocol progress).
    Watchdog = 14,
    /// The health monitor opened an incident (`a` = [`IncidentCause`]
    /// ordinal, `b` = open-incident count).
    ///
    /// [`IncidentCause`]: crate::detect::IncidentCause
    Anomaly = 15,
}

impl FlightCode {
    /// Stable snake_case label used in dump JSON.
    pub fn label(self) -> &'static str {
        match self {
            FlightCode::OpIssue => "op_issue",
            FlightCode::OpComplete => "op_complete",
            FlightCode::FrameSend => "frame_send",
            FlightCode::FrameRecv => "frame_recv",
            FlightCode::FrameDrop => "frame_drop",
            FlightCode::FrameCorrupt => "frame_corrupt",
            FlightCode::AckExplicit => "ack_explicit",
            FlightCode::Nack => "nack",
            FlightCode::RtoFire => "rto_fire",
            FlightCode::RtoBackoff => "rto_backoff",
            FlightCode::RailDown => "rail_down",
            FlightCode::RailUp => "rail_up",
            FlightCode::FenceRelease => "fence_release",
            FlightCode::FaultInjected => "fault_injected",
            FlightCode::Watchdog => "watchdog",
            FlightCode::Anomaly => "anomaly",
        }
    }

    fn from_u8(v: u8) -> &'static str {
        const ALL: [FlightCode; 16] = [
            FlightCode::OpIssue,
            FlightCode::OpComplete,
            FlightCode::FrameSend,
            FlightCode::FrameRecv,
            FlightCode::FrameDrop,
            FlightCode::FrameCorrupt,
            FlightCode::AckExplicit,
            FlightCode::Nack,
            FlightCode::RtoFire,
            FlightCode::RtoBackoff,
            FlightCode::RailDown,
            FlightCode::RailUp,
            FlightCode::FenceRelease,
            FlightCode::FaultInjected,
            FlightCode::Watchdog,
            FlightCode::Anomaly,
        ];
        ALL.get(v as usize).map(|c| c.label()).unwrap_or("unknown")
    }
}

/// One fixed-size ring entry (32 bytes, `Copy`): recording is one store,
/// never an allocation.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlightEvent {
    /// Simulation time, ns.
    pub t_ns: u64,
    /// First code-specific payload (seq, op id, RTO ns, ...).
    pub a: u64,
    /// Second code-specific payload (flags, exponent, stall ns, ...).
    pub b: u64,
    /// Node the event happened on.
    pub node: u16,
    /// Connection id on that node (`u16::MAX` = none).
    pub conn: u16,
    /// Rail/link id (`u8::MAX` = none/unknown).
    pub rail: u8,
    /// [`FlightCode`] discriminant.
    pub code: u8,
}

/// One retained post-mortem dump.
#[derive(Debug, Clone)]
pub struct FlightDump {
    /// What fired ("rto_backoff", "rail_death", "fence_stall", "forced").
    pub trigger: String,
    /// When it fired, ns.
    pub t_ns: u64,
    /// Where it was written, when `dump_dir` is configured.
    pub path: Option<String>,
    /// The full dump document.
    pub json: Json,
}

/// A named closure evaluated at dump time; its JSON lands under
/// `context.<name>` in the dump document.
type ContextSource = (String, Rc<dyn Fn() -> Json>);

struct FlightState {
    cfg: FlightConfig,
    ring: Vec<FlightEvent>,
    next: usize,
    filled: bool,
    total: u64,
    dumps: Vec<FlightDump>,
    dumps_suppressed: u64,
    /// Per trigger label: time of the last *taken* dump (dedup anchor).
    last_dump: Vec<(String, u64)>,
    /// Per trigger label: duplicates suppressed by the dedup window.
    dedup_suppressed: Vec<(String, u64)>,
    write_errors: u64,
    spans: SpanRecorder,
    context: Vec<ContextSource>,
}

/// Cheaply cloneable flight-recorder handle ([`crate::Tracer`] pattern:
/// disabled = one branch per call; enabled clones share one ring).
#[derive(Clone, Default)]
pub struct FlightRecorder {
    inner: Option<Rc<RefCell<FlightState>>>,
}

impl FlightRecorder {
    /// A recorder that records nothing (the default).
    pub fn disabled() -> Self {
        FlightRecorder { inner: None }
    }

    /// An enabled recorder with its ring preallocated up front.
    pub fn enabled(cfg: FlightConfig) -> Self {
        let ring = vec![FlightEvent::default(); cfg.ring.max(16)];
        FlightRecorder {
            inner: Some(Rc::new(RefCell::new(FlightState {
                cfg,
                ring,
                next: 0,
                filled: false,
                total: 0,
                dumps: Vec::new(),
                dumps_suppressed: 0,
                last_dump: Vec::new(),
                dedup_suppressed: Vec::new(),
                write_errors: 0,
                spans: SpanRecorder::disabled(),
                context: Vec::new(),
            }))),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Attach a span recorder; subsequent dumps embed a full critical-path
    /// attribution of its completed spans.
    pub fn set_span_source(&self, spans: &SpanRecorder) {
        if let Some(state) = &self.inner {
            state.borrow_mut().spans = spans.clone();
        }
    }

    /// Register a named context source: a closure evaluated at dump time
    /// whose result lands under `context.<name>` in every subsequent dump.
    /// This is how transport state that never flows through the event ring
    /// (chaos-injection tallies, a fabric's parked receive errors) rides
    /// along in post-mortems. Sources run with the recorder's internal
    /// borrow released, so they may freely read — even `note` into — the
    /// component that owns this recorder.
    pub fn add_context_source(&self, name: &str, f: Rc<dyn Fn() -> Json>) {
        if let Some(state) = &self.inner {
            state.borrow_mut().context.push((name.to_string(), f));
        }
    }

    /// Record one event. Clean-path cost: a branch, a ring store, cursor
    /// arithmetic — no allocation.
    #[allow(clippy::too_many_arguments)]
    pub fn note(
        &self,
        code: FlightCode,
        node: usize,
        conn: Option<usize>,
        rail: Option<u32>,
        a: u64,
        b: u64,
        t_ns: u64,
    ) {
        let Some(state) = &self.inner else { return };
        let mut s = state.borrow_mut();
        let next = s.next;
        s.ring[next] = FlightEvent {
            t_ns,
            a,
            b,
            node: node as u16,
            conn: conn.map(|c| c as u16).unwrap_or(u16::MAX),
            rail: rail.map(|r| r.min(254) as u8).unwrap_or(u8::MAX),
            code: code as u8,
        };
        s.next = (next + 1) % s.ring.len();
        if s.next == 0 {
            s.filled = true;
        }
        s.total += 1;
    }

    /// RTO backoff happened; dumps once the exponent reaches the trigger.
    pub fn rto_backoff(
        &self,
        node: usize,
        conn: usize,
        rail: Option<u32>,
        rto_ns: u64,
        backoff: u32,
        t_ns: u64,
    ) {
        self.note(
            FlightCode::RtoBackoff,
            node,
            Some(conn),
            rail,
            rto_ns,
            backoff as u64,
            t_ns,
        );
        let Some(state) = &self.inner else { return };
        let trigger = state.borrow().cfg.rto_backoff_trigger;
        if trigger > 0 && backoff >= trigger {
            self.dump("rto_backoff", t_ns);
        }
    }

    /// Rail health declared a rail Dead; dumps when configured to.
    pub fn rail_death(&self, node: usize, conn: Option<usize>, rail: u32, t_ns: u64) {
        self.note(FlightCode::RailDown, node, conn, Some(rail), 0, 0, t_ns);
        let Some(state) = &self.inner else { return };
        let dump = state.borrow().cfg.dump_on_rail_death;
        if dump {
            self.dump("rail_death", t_ns);
        }
    }

    /// A fence released after `stalled_ns`; dumps past the configured bound.
    pub fn fence_release(&self, node: usize, conn: usize, op: u64, stalled_ns: u64, t_ns: u64) {
        self.note(
            FlightCode::FenceRelease,
            node,
            Some(conn),
            None,
            op,
            stalled_ns,
            t_ns,
        );
        let Some(state) = &self.inner else { return };
        let bound = state.borrow().cfg.fence_stall_trigger_ns;
        if bound > 0 && stalled_ns >= bound {
            self.dump("fence_stall", t_ns);
        }
    }

    /// A liveness watchdog tripped (`detail` = typed-error discriminant,
    /// `idle_ns` = time without protocol progress); always dumps — the
    /// driver is about to surface a fatal `WireError` and this ring is the
    /// post-mortem.
    pub fn watchdog(&self, node: usize, conn: Option<usize>, detail: u64, idle_ns: u64, t_ns: u64) {
        self.note(FlightCode::Watchdog, node, conn, None, detail, idle_ns, t_ns);
        if self.inner.is_some() {
            self.dump("watchdog", t_ns);
        }
    }

    /// The health monitor opened an incident (`cause_ordinal` =
    /// `IncidentCause::ordinal`, `open` = incidents now open); dumps when
    /// [`FlightConfig::dump_on_anomaly`] is set. The detector state itself
    /// rides along via a context source registered by whoever armed the
    /// monitor.
    pub fn anomaly(&self, node: usize, conn: Option<usize>, cause_ordinal: u64, open: u64, t_ns: u64) {
        self.note(FlightCode::Anomaly, node, conn, None, cause_ordinal, open, t_ns);
        let Some(state) = &self.inner else { return };
        let dump = state.borrow().cfg.dump_on_anomaly;
        if dump {
            self.dump("anomaly", t_ns);
        }
    }

    /// Take a dump right now regardless of triggers (used by tools and
    /// tests). Returns the dump document unless disabled or suppressed.
    pub fn force_dump(&self, t_ns: u64) -> Option<Json> {
        self.dump("forced", t_ns)
    }

    fn dump(&self, trigger: &str, t_ns: u64) -> Option<Json> {
        let state = self.inner.as_ref()?;
        // Snapshot the ring under the borrow, then release it before
        // evaluating context sources: a source reads live component state
        // and may re-enter this recorder while doing so.
        let (idx, mut doc, sources, dir) = {
            let mut s = state.borrow_mut();
            if s.cfg.dedup_window_ns > 0 {
                let dup = s
                    .last_dump
                    .iter()
                    .find(|(l, _)| l == trigger)
                    .is_some_and(|&(_, last)| t_ns.saturating_sub(last) < s.cfg.dedup_window_ns);
                if dup {
                    // Identical-trigger dump inside the window: count it
                    // per trigger instead of burning the dump budget.
                    match s.dedup_suppressed.iter_mut().find(|(l, _)| l == trigger) {
                        Some(e) => e.1 += 1,
                        None => s.dedup_suppressed.push((trigger.to_string(), 1)),
                    }
                    return None;
                }
            }
            if s.dumps.len() >= s.cfg.max_dumps {
                s.dumps_suppressed += 1;
                return None;
            }
            let idx = s.dumps.len();

            let mut events = Vec::new();
            let (start, len) = if s.filled {
                (s.next, s.ring.len())
            } else {
                (0, s.next)
            };
            for i in 0..len {
                let e = &s.ring[(start + i) % s.ring.len()];
                let mut j = Json::obj()
                    .set("t_ns", e.t_ns)
                    .set("code", FlightCode::from_u8(e.code))
                    .set("node", e.node as u64)
                    .set("a", e.a)
                    .set("b", e.b);
                if e.conn != u16::MAX {
                    j = j.set("conn", e.conn as u64);
                }
                if e.rail != u8::MAX {
                    j = j.set("rail", e.rail as u64);
                }
                events.push(j);
            }

            let mut doc = Json::obj()
                .set("schema_version", crate::json::SCHEMA_VERSION)
                .set("kind", "multiedge_flight_dump")
                .set("trigger", trigger)
                .set("t_ns", t_ns)
                .set("events_total", s.total)
                .set("events_retained", len)
                .set("events", events);
            if let Some(snap) = s.spans.snapshot() {
                doc = doc.set("attribution", analyze(&snap).to_json());
            }
            (idx, doc, s.context.clone(), s.cfg.dump_dir.clone())
        };

        if !sources.is_empty() {
            let mut ctx = Json::obj();
            for (name, f) in &sources {
                ctx = ctx.set(name, f());
            }
            doc = doc.set("context", ctx);
        }

        let mut s = state.borrow_mut();
        let mut path = None;
        if let Some(dir) = dir {
            let file = format!("{dir}/flight_{idx}_{trigger}.json");
            let ok = std::fs::create_dir_all(&dir).is_ok()
                && std::fs::write(&file, doc.render_pretty()).is_ok();
            if ok {
                path = Some(file);
            } else {
                s.write_errors += 1;
            }
        }

        s.dumps.push(FlightDump {
            trigger: trigger.to_string(),
            t_ns,
            path,
            json: doc.clone(),
        });
        match s.last_dump.iter_mut().find(|(l, _)| l == trigger) {
            Some(e) => e.1 = t_ns,
            None => s.last_dump.push((trigger.to_string(), t_ns)),
        }
        Some(doc)
    }

    /// Retained dumps, in trigger order.
    pub fn dumps(&self) -> Vec<FlightDump> {
        self.inner
            .as_ref()
            .map(|s| s.borrow().dumps.clone())
            .unwrap_or_default()
    }

    /// Per-trigger duplicate dumps suppressed by
    /// [`FlightConfig::dedup_window_ns`] (label, count), first-seen order.
    pub fn dedup_counts(&self) -> Vec<(String, u64)> {
        self.inner
            .as_ref()
            .map(|s| s.borrow().dedup_suppressed.clone())
            .unwrap_or_default()
    }

    /// `(events_recorded_total, dumps_taken, dumps_suppressed)`.
    pub fn counters(&self) -> (u64, usize, u64) {
        self.inner
            .as_ref()
            .map(|s| {
                let s = s.borrow();
                (s.total, s.dumps.len(), s.dumps_suppressed)
            })
            .unwrap_or((0, 0, 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let fr = FlightRecorder::disabled();
        assert!(!fr.is_enabled());
        fr.note(FlightCode::FrameSend, 0, Some(0), Some(0), 1, 0, 10);
        assert!(fr.force_dump(20).is_none());
        assert_eq!(fr.counters(), (0, 0, 0));
    }

    #[test]
    fn ring_keeps_newest_events_in_order() {
        let fr = FlightRecorder::enabled(FlightConfig {
            ring: 16,
            ..FlightConfig::default()
        });
        for i in 0..40u64 {
            fr.note(FlightCode::FrameSend, 0, Some(0), Some(0), i, 0, i * 10);
        }
        let doc = fr.force_dump(400).unwrap();
        let events = doc.get("events").unwrap().items().unwrap();
        assert_eq!(events.len(), 16);
        // Oldest retained is seq 24 (40 - 16), strictly ascending after.
        let seqs: Vec<u64> = events.iter().map(|e| e.get("a").unwrap().as_u64().unwrap()).collect();
        assert_eq!(seqs, (24..40).collect::<Vec<_>>());
        assert_eq!(doc.get("events_total").unwrap().as_u64(), Some(40));
    }

    #[test]
    fn rto_backoff_trigger_fires_at_threshold() {
        let fr = FlightRecorder::enabled(FlightConfig {
            rto_backoff_trigger: 3,
            ..FlightConfig::default()
        });
        fr.rto_backoff(0, 0, Some(1), 20_000_000, 1, 100);
        fr.rto_backoff(0, 0, Some(1), 40_000_000, 2, 200);
        assert_eq!(fr.counters().1, 0);
        fr.rto_backoff(0, 0, Some(1), 80_000_000, 3, 300);
        let dumps = fr.dumps();
        assert_eq!(dumps.len(), 1);
        assert_eq!(dumps[0].trigger, "rto_backoff");
        assert_eq!(dumps[0].t_ns, 300);
    }

    #[test]
    fn dumps_are_bounded_and_suppressed_after() {
        let fr = FlightRecorder::enabled(FlightConfig {
            max_dumps: 2,
            ..FlightConfig::default()
        });
        assert!(fr.force_dump(1).is_some());
        assert!(fr.force_dump(2).is_some());
        assert!(fr.force_dump(3).is_none());
        let (_, taken, suppressed) = fr.counters();
        assert_eq!((taken, suppressed), (2, 1));
    }

    #[test]
    fn dedup_window_suppresses_identical_triggers_only() {
        let fr = FlightRecorder::enabled(FlightConfig {
            dedup_window_ns: 1_000,
            max_dumps: 8,
            ..FlightConfig::default()
        });
        // A flapping rail: three deaths inside the window → one dump.
        fr.rail_death(0, None, 0, 100);
        fr.rail_death(0, None, 0, 400);
        fr.rail_death(0, None, 1, 900);
        assert_eq!(fr.counters().1, 1);
        // A *distinct* trigger inside the window still dumps: the window
        // is per trigger label, so the flap cannot mask it.
        fr.watchdog(0, None, 2, 5_000, 950);
        assert_eq!(fr.counters().1, 2);
        // Past the window the same trigger dumps again.
        fr.rail_death(0, None, 0, 1_200);
        assert_eq!(fr.counters().1, 3);
        assert_eq!(
            fr.dedup_counts(),
            vec![("rail_death".to_string(), 2)],
            "duplicates counted per trigger"
        );
        let (_, _, budget_suppressed) = fr.counters();
        assert_eq!(budget_suppressed, 0, "dedup does not burn the dump budget");
    }

    #[test]
    fn anomaly_trigger_dumps_and_is_configurable() {
        let fr = FlightRecorder::enabled(FlightConfig::default());
        fr.anomaly(0, Some(0), 0, 1, 777);
        let dumps = fr.dumps();
        assert_eq!(dumps.len(), 1);
        assert_eq!(dumps[0].trigger, "anomaly");
        let events = dumps[0].json.get("events").unwrap().items().unwrap();
        assert_eq!(
            events.last().unwrap().get("code").unwrap().as_str(),
            Some("anomaly")
        );
        let fr = FlightRecorder::enabled(FlightConfig {
            dump_on_anomaly: false,
            ..FlightConfig::default()
        });
        fr.anomaly(0, None, 1, 1, 800);
        assert_eq!(fr.counters(), (1, 0, 0), "event noted, dump gated off");
    }

    #[test]
    fn rail_death_dump_is_configurable() {
        let fr = FlightRecorder::enabled(FlightConfig {
            dump_on_rail_death: false,
            ..FlightConfig::default()
        });
        fr.rail_death(0, Some(0), 2, 50);
        assert_eq!(fr.counters().1, 0);
        let fr = FlightRecorder::enabled(FlightConfig::default());
        fr.rail_death(1, None, 2, 60);
        assert_eq!(fr.dumps()[0].trigger, "rail_death");
    }

    #[test]
    fn context_sources_ride_along_in_dumps() {
        let fr = FlightRecorder::enabled(FlightConfig::default());
        let hits = Rc::new(std::cell::Cell::new(0u64));
        let h = hits.clone();
        fr.add_context_source(
            "chaos",
            Rc::new(move || {
                h.set(h.get() + 1);
                Json::obj().set("frames_dropped", 3u64)
            }),
        );
        let doc = fr.force_dump(10).unwrap();
        let ctx = doc.get("context").expect("dump carries context");
        assert_eq!(
            ctx.get("chaos").unwrap().get("frames_dropped").unwrap().as_u64(),
            Some(3)
        );
        assert_eq!(hits.get(), 1, "source evaluated once per dump");
        fr.force_dump(20).unwrap();
        assert_eq!(hits.get(), 2, "source re-evaluated on every dump");
    }

    #[test]
    fn context_source_may_reenter_recorder() {
        let fr = FlightRecorder::enabled(FlightConfig::default());
        let fr2 = fr.clone();
        fr.add_context_source(
            "self_noting",
            Rc::new(move || {
                // A source reading live component state may cause that
                // component to note events; must not deadlock on the ring.
                fr2.note(FlightCode::FaultInjected, 0, None, None, 1, 0, 99);
                Json::obj().set("ok", true)
            }),
        );
        let doc = fr.force_dump(100).unwrap();
        assert!(doc.get("context").unwrap().get("self_noting").is_some());
    }

    #[test]
    fn dump_round_trips_through_parser() {
        let fr = FlightRecorder::enabled(FlightConfig::default());
        fr.note(FlightCode::OpIssue, 0, Some(0), None, 7, 4096, 10);
        fr.fence_release(0, 0, 7, 15_000_000, 20_000_000);
        let dumps = fr.dumps();
        assert_eq!(dumps.len(), 1, "fence stall past bound must dump");
        assert_eq!(dumps[0].trigger, "fence_stall");
        let text = dumps[0].json.render_pretty();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(
            parsed.get("kind").unwrap().as_str(),
            Some("multiedge_flight_dump")
        );
        assert_eq!(parsed, dumps[0].json);
    }
}
