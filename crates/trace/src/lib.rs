//! Observability substrate for the MultiEdge protocol stack.
//!
//! The paper's entire evaluation (Figures 2–6, Table 1) depends on seeing
//! *inside* the protocol: out-of-order arrival fractions, ACK/retransmission
//! overhead, interrupt-vs-poll absorption, fence-induced stalls, operation
//! latency distributions. The flat [`ProtoStats`]-style counters answer
//! "how many", but not "when", "to whom", or "how long". This crate supplies
//! the missing three pieces:
//!
//! 1. **Structured event tracing** — [`Event`] / [`EventKind`]: typed
//!    protocol events (frame send/recv, piggybacked and explicit ACKs,
//!    NACKs, RTO fires, fence stalls and releases, interrupt vs. poll
//!    absorption, link-level drops) carrying the simulation timestamp and
//!    optional connection/link attribution, recorded into a fixed-capacity
//!    wraparound [`EventRing`].
//! 2. **Latency histograms** — [`LogHistogram`]: log2-bucketed with linear
//!    sub-buckets (HdrHistogram-style, ≈3% relative error), mergeable, used
//!    for op issue→completion latency, frame wire time, and fence-stall
//!    duration, keyed per connection or per link.
//! 3. **Reporters** — a human-readable summary/timeline dump
//!    ([`report::summary`], [`report::timeline`]) and a dependency-free
//!    JSON emitter ([`json::Json`], [`report::snapshot_to_json`]) that the
//!    bench crate uses to write `BENCH_*.json` files carrying protocol
//!    internals, not just wall time.
//!
//! The entry point is [`Tracer`]: a cheaply cloneable handle that is either
//! *disabled* (a `None` — every record call is a single branch and no
//! allocation, so instrumented hot paths cost nothing in production-style
//! runs) or *enabled* (shared mutable state behind `Rc<RefCell>`; the whole
//! simulator is single-threaded by design).
//!
//! On top of the flat tracer sit three causal layers (PR 4):
//!
//! 4. **Op spans** — [`SpanRecorder`] / [`OpSpan`]: every RDMA op owns a
//!    milestone record keyed by its origin `(node, conn, wire op id)`,
//!    stamped at issue, per-rail transmission, arrival, reorder admission,
//!    ack emission/return, and completion, forming a small causal DAG per
//!    op.
//! 5. **Critical-path attribution** — [`attribution::analyze`] walks
//!    completed spans and splits each op's end-to-end latency into
//!    *exclusive* phases ([`attribution::Phase`]: fence stall, send-window
//!    stall, rail queueing, wire time, reorder wait, retransmit repair,
//!    ACK return, plus host-side bookends) that sum exactly to the
//!    measured latency, rolled up per connection and per rail.
//! 6. **Flight recorder** — [`FlightRecorder`]: a bounded allocation-free
//!    event ring that stays enabled in production-style runs and writes
//!    JSON post-mortem dumps when triggers fire (RTO backoff past a
//!    threshold, rail death, oversized fence stalls); `Json::parse` reads
//!    the dumps back for the `me-inspect` tool.
//! 7. **Regression triage** — [`diff`]: compares two attribution artifacts
//!    (committed baselines, bench outputs, flight dumps) phase by phase
//!    using the exactly round-tripped histograms, and emits a verdict that
//!    names the phase and protocol layer that moved
//!    ("p99 regressed 18%, dominated by +reorder (ordering)"); this is the
//!    engine behind `me-inspect diff` and the `make triage-check` CI gate.
//! 8. **Online health plane** — [`detect`]: allocation-free streaming
//!    anomaly detectors (robust z-score, CUSUM, rate-burst) over the
//!    timeline plane's delta rows, correlated into typed [`Incident`]s
//!    with a named probable cause; the same engine replays JSONL
//!    artifacts offline for `me-inspect doctor` with bit-identical
//!    verdicts.
//!
//! ```
//! use me_trace::{EventKind, Tracer};
//!
//! let t = Tracer::enabled(1024);
//! t.emit(10, Some(0), Some(1), EventKind::FrameSend { seq: 0, retransmit: false });
//! t.op_latency(0, 27_500);
//! let snap = t.snapshot().unwrap();
//! assert_eq!(snap.events.len(), 1);
//! assert_eq!(snap.op_latency[&0].count(), 1);
//! ```
//!
//! `ProtoStats` itself stays in the `multiedge` crate; this crate is
//! deliberately dependency-free so both `netsim` (below the protocol) and
//! `multiedge` (the protocol) can record into the same tracer.
//!
//! [`ProtoStats`]: https://docs.rs/multiedge

#![warn(missing_docs)]

pub mod attribution;
pub mod detect;
pub mod diff;
pub mod event;
pub mod flight;
pub mod hist;
pub mod json;
pub mod report;
pub mod ring;
pub mod span;
pub mod timeline;
mod tracer;

pub use attribution::{analyze, Attribution, Phase, PhaseBreakdown, PhaseRollup, PHASES};
pub use detect::{
    diagnose_imbalance, diagnose_member_timelines, Alarm, AlarmKind, Burst, Cusum, HealthConfig,
    HealthMonitor, HealthReport, Incident, IncidentCause, Zscore, HEALTH_KIND, MAX_EVIDENCE,
    NUM_CAUSES,
};
pub use diff::{diff_cell, diff_docs, diff_rollups, CellDiff, DiffConfig, DiffReport, Verdict};
pub use event::{Event, EventKind, FaultKind};
pub use flight::{FlightCode, FlightConfig, FlightDump, FlightEvent, FlightRecorder};
pub use hist::LogHistogram;
pub use json::{require_schema, Json, SCHEMA_VERSION};
pub use ring::EventRing;
pub use span::{Leg, OpSpan, SpanKey, SpanKind, SpanRecorder, SpanSnapshot};
pub use timeline::{
    imbalance, SourceId, SourceInfo, SourceKind, Timeline, TimelineBuilder, TimelineDoc,
    TIMELINE_KIND,
};
pub use tracer::{TraceSnapshot, Tracer};
