//! Fixed-capacity wraparound buffer of the most recent events.

use crate::event::Event;

/// Ring buffer keeping the latest `capacity` [`Event`]s in arrival order.
///
/// Tracing a long run must not grow memory without bound, so once full the
/// ring overwrites its oldest entry and counts the overwrite — reports can
/// then say "timeline truncated, N earlier events dropped" instead of
/// silently lying about coverage.
#[derive(Clone, Debug)]
pub struct EventRing {
    buf: Vec<Event>,
    capacity: usize,
    /// Index of the oldest element once the ring has wrapped.
    head: usize,
    overwritten: u64,
}

impl EventRing {
    /// Ring holding at most `capacity` events (at least 1).
    pub fn new(capacity: usize) -> Self {
        EventRing {
            buf: Vec::with_capacity(capacity.clamp(1, 1 << 20)),
            capacity: capacity.max(1),
            head: 0,
            overwritten: 0,
        }
    }

    /// Append an event, overwriting the oldest once full.
    pub fn push(&mut self, e: Event) {
        if self.buf.len() < self.capacity {
            self.buf.push(e);
        } else {
            self.buf[self.head] = e;
            self.head = (self.head + 1) % self.capacity;
            self.overwritten += 1;
        }
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no event has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// How many events were overwritten after the ring filled.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// The held events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(t: u64) -> Event {
        Event {
            t_ns: t,
            conn: None,
            link: None,
            kind: EventKind::TxPoll,
        }
    }

    #[test]
    fn keeps_latest_in_order_after_wrap() {
        let mut r = EventRing::new(4);
        for t in 0..10u64 {
            r.push(ev(t));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.overwritten(), 6);
        let ts: Vec<u64> = r.events().iter().map(|e| e.t_ns).collect();
        assert_eq!(ts, vec![6, 7, 8, 9]);
    }

    #[test]
    fn below_capacity_keeps_everything() {
        let mut r = EventRing::new(8);
        for t in 0..5u64 {
            r.push(ev(t));
        }
        assert_eq!(r.overwritten(), 0);
        let ts: Vec<u64> = r.events().iter().map(|e| e.t_ns).collect();
        assert_eq!(ts, vec![0, 1, 2, 3, 4]);
    }
}
