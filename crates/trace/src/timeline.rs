//! Time-resolved telemetry: an allocation-free fixed-interval sampler.
//!
//! Every other surface in this crate reports end-of-run aggregates or
//! trigger-driven post-mortems; the timeline answers "what happened *per
//! interval*". Register counter and gauge sources up front
//! ([`TimelineBuilder`]), then on the hot path feed raw readings with
//! [`Timeline::set`] and commit rows with [`Timeline::sample`] — both touch
//! only storage preallocated at build time, so a sampler armed on the
//! datapath costs no allocations per tick.
//!
//! **Encoding.** Counter sources are *delta-encoded*: each committed row
//! stores the increase since the previous row, so per-interval rates fall
//! out directly and the retained rows telescope — for every counter,
//! `base + Σ retained deltas == final raw reading`, an invariant that holds
//! through ring eviction (evicting the oldest row folds its delta into the
//! base) and that consumers verify against end-of-run aggregate stats.
//! Gauge sources store the raw reading per row (occupancy, backlog, state).
//!
//! **Memory.** The ring holds at most `capacity` rows; when full, the
//! oldest row is evicted (counted in [`Timeline::evicted`]) rather than
//! growing. The driver decides the clock: a simulator arms a recurring
//! event on virtual time, a wire driver polls [`Timeline::due`] against
//! `Backplane::now_ns` wall time — the timeline itself never reads a clock.
//!
//! **Staleness.** A gauge column whose [`Timeline::set`] was not called
//! since the previous commit would otherwise silently re-commit the last
//! staged reading as if it were fresh. Each row therefore carries a stale
//! bitmask (one bit per gauge column, packed into 64-bit words) that marks
//! such re-committed readings; the mask is exported as the optional `"s"`
//! row field and surfaced by [`TimelineDoc::is_stale`] /
//! [`TimelineDoc::decode_flagged`] so downstream detectors can skip
//! fabricated values. Counter columns never go stale: an unchanged raw
//! reading legitimately encodes a zero delta.
//!
//! **Export.** [`Timeline::to_jsonl`] emits one schema-versioned header
//! line plus one compact JSON object per row; [`TimelineDoc::parse_jsonl`]
//! reads the format back (for `me-inspect timeline` and the bench
//! reconciliation gates) and [`TimelineDoc::decode`] reconstructs the raw
//! cumulative series from the deltas.

use crate::json::{Json, SCHEMA_VERSION};

/// Artifact `kind` stamped into the JSONL header line.
pub const TIMELINE_KIND: &str = "multiedge_timeline";

/// What a registered source measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceKind {
    /// Monotonically non-decreasing raw readings; rows store per-interval
    /// deltas.
    Counter,
    /// Instantaneous readings (occupancy, backlog, encoded state); rows
    /// store the raw value at sample time.
    Gauge,
}

impl SourceKind {
    /// Stable lowercase label used in the JSONL header.
    pub fn label(&self) -> &'static str {
        match self {
            SourceKind::Counter => "counter",
            SourceKind::Gauge => "gauge",
        }
    }
}

/// Handle to a registered source: an index into the timeline's columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceId(usize);

impl SourceId {
    /// The column index this handle selects in a row's value slice.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Registers sources before any storage is sized; [`TimelineBuilder::build`]
/// allocates everything the sampler will ever touch.
#[derive(Debug, Default)]
pub struct TimelineBuilder {
    names: Vec<String>,
    kinds: Vec<SourceKind>,
}

impl TimelineBuilder {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a monotone counter source.
    pub fn counter(&mut self, name: &str) -> SourceId {
        self.register(name, SourceKind::Counter)
    }

    /// Register a gauge source.
    pub fn gauge(&mut self, name: &str) -> SourceId {
        self.register(name, SourceKind::Gauge)
    }

    fn register(&mut self, name: &str, kind: SourceKind) -> SourceId {
        self.names.push(name.to_string());
        self.kinds.push(kind);
        SourceId(self.names.len() - 1)
    }

    /// Allocate the sample ring: `capacity` rows sampled every
    /// `interval_ns`, with the sampling grid anchored at `start_ns` (the
    /// first row is due at `start_ns + interval_ns`).
    ///
    /// Panics if `interval_ns` or `capacity` is zero, or no sources were
    /// registered — all caller bugs.
    pub fn build(self, interval_ns: u64, capacity: usize, start_ns: u64) -> Timeline {
        assert!(interval_ns > 0, "timeline interval must be non-zero");
        assert!(capacity > 0, "timeline capacity must be non-zero");
        assert!(!self.names.is_empty(), "timeline needs at least one source");
        let n = self.names.len();
        let words = n.div_ceil(64);
        Timeline {
            interval_ns,
            capacity,
            names: self.names,
            kinds: self.kinds,
            vals: vec![0; capacity * n],
            stale: vec![0; capacity * words],
            stale_words_per_row: words,
            times: vec![0; capacity],
            head: 0,
            len: 0,
            cur: vec![0; n],
            touched: vec![false; n],
            last_raw: vec![0; n],
            base_raw: vec![0; n],
            base_time_ns: start_ns,
            next_due_ns: start_ns.saturating_add(interval_ns),
            evicted: 0,
            samples_total: 0,
        }
    }
}

/// The preallocated sample ring. See the [module docs](self) for the
/// encoding and eviction contract.
#[derive(Debug, Clone)]
pub struct Timeline {
    interval_ns: u64,
    capacity: usize,
    names: Vec<String>,
    kinds: Vec<SourceKind>,
    /// `capacity` rows × `names.len()` columns, flat, ring-indexed by row.
    vals: Vec<u64>,
    /// `capacity` rows × `stale_words_per_row` bitmask words, flat: bit `c`
    /// of a row's mask marks gauge column `c` as a re-committed (stale)
    /// reading.
    stale: Vec<u64>,
    stale_words_per_row: usize,
    times: Vec<u64>,
    head: usize,
    len: usize,
    /// Staging row: the latest raw reading per source.
    cur: Vec<u64>,
    /// Whether [`Timeline::set`] touched the column since the last commit.
    touched: Vec<bool>,
    /// Raw reading per source at the last committed row.
    last_raw: Vec<u64>,
    /// Raw reading per source at the base (just before the oldest retained
    /// row); evicting a row folds its delta in here.
    base_raw: Vec<u64>,
    base_time_ns: u64,
    next_due_ns: u64,
    evicted: u64,
    samples_total: u64,
}

impl Timeline {
    /// Number of registered sources.
    pub fn sources(&self) -> usize {
        self.names.len()
    }

    /// Source names, column order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Source kinds, column order.
    pub fn kinds(&self) -> &[SourceKind] {
        &self.kinds
    }

    /// Look a source up by name (for consumers that only hold the
    /// finished timeline, not the builder's [`SourceId`]s).
    pub fn source_id(&self, name: &str) -> Option<SourceId> {
        self.names.iter().position(|n| n == name).map(SourceId)
    }

    /// Configured sampling interval.
    pub fn interval_ns(&self) -> u64 {
        self.interval_ns
    }

    /// Retained rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no row has been committed (or all were evicted — which
    /// cannot happen, eviction only makes room for a new row).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Rows evicted to bound memory.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Rows ever committed (`retained + evicted`).
    pub fn samples_total(&self) -> u64 {
        self.samples_total
    }

    /// Timestamp of the base (start, or the last evicted row).
    pub fn base_time_ns(&self) -> u64 {
        self.base_time_ns
    }

    /// Stage a raw reading for `id`. Allocation-free; the value is
    /// committed into a row by the next [`Timeline::sample`].
    #[inline]
    pub fn set(&mut self, id: SourceId, raw: u64) {
        self.cur[id.0] = raw;
        self.touched[id.0] = true;
    }

    /// Is a sample due at `now_ns`? The driver calls this from whatever
    /// clock it runs on and follows up with [`Timeline::sample`].
    #[inline]
    pub fn due(&self, now_ns: u64) -> bool {
        now_ns >= self.next_due_ns
    }

    /// Commit the staged readings as one row stamped `now_ns`, and advance
    /// the due grid past `now_ns`. Counters store the delta since the
    /// previous row (saturating at zero if a "monotone" source ran
    /// backwards — that is a registration bug, not a panic); gauges store
    /// the staged raw value. Allocation-free: evicts the oldest row when
    /// the ring is full.
    pub fn sample(&mut self, now_ns: u64) {
        let n = self.names.len();
        if self.len == self.capacity {
            // Fold the oldest row into the base so telescoping survives.
            let row = self.head;
            for (c, kind) in self.kinds.iter().enumerate() {
                if *kind == SourceKind::Counter {
                    self.base_raw[c] += self.vals[row * n + c];
                }
            }
            self.base_time_ns = self.times[row];
            self.head = (self.head + 1) % self.capacity;
            self.len -= 1;
            self.evicted += 1;
        }
        let row = (self.head + self.len) % self.capacity;
        let words = self.stale_words_per_row;
        self.stale[row * words..(row + 1) * words].fill(0);
        for c in 0..n {
            self.vals[row * n + c] = match self.kinds[c] {
                SourceKind::Counter => {
                    let d = self.cur[c].saturating_sub(self.last_raw[c]);
                    self.last_raw[c] = self.cur[c];
                    d
                }
                SourceKind::Gauge => {
                    if !self.touched[c] {
                        // Re-committed reading: no `set` this interval.
                        self.stale[row * words + c / 64] |= 1 << (c % 64);
                    }
                    self.cur[c]
                }
            };
        }
        self.touched.fill(false);
        self.times[row] = now_ns;
        self.len += 1;
        self.samples_total += 1;
        while self.next_due_ns <= now_ns {
            self.next_due_ns += self.interval_ns;
        }
    }

    /// `(t_ns, row values)` of retained row `i` (0 = oldest).
    pub fn row(&self, i: usize) -> (u64, &[u64]) {
        assert!(i < self.len, "row {i} out of {} retained", self.len);
        let n = self.names.len();
        let row = (self.head + i) % self.capacity;
        (self.times[row], &self.vals[row * n..(row + 1) * n])
    }

    /// Stale bitmask words of retained row `i` (0 = oldest): bit `c` marks
    /// gauge column `c` as a re-committed reading (no [`Timeline::set`]
    /// in that interval).
    pub fn stale_words(&self, i: usize) -> &[u64] {
        assert!(i < self.len, "row {i} out of {} retained", self.len);
        let w = self.stale_words_per_row;
        let row = (self.head + i) % self.capacity;
        &self.stale[row * w..(row + 1) * w]
    }

    /// Was column `c` of retained row `i` committed stale?
    pub fn is_stale(&self, i: usize, c: usize) -> bool {
        let words = self.stale_words(i);
        c < self.names.len() && words[c / 64] >> (c % 64) & 1 == 1
    }

    /// Sum of retained deltas (counters) or retained raw values (gauges)
    /// for one column.
    pub fn column_sum(&self, id: SourceId) -> u64 {
        (0..self.len).map(|i| self.row(i).1[id.0]).sum()
    }

    /// The raw reading of `id` at the last committed row (counters:
    /// `base_raw + column_sum`; the telescoping invariant).
    pub fn final_raw(&self, id: SourceId) -> u64 {
        self.last_raw[id.0]
    }

    /// The folded base reading of `id` (what the evicted prefix summed to).
    pub fn base_raw(&self, id: SourceId) -> u64 {
        self.base_raw[id.0]
    }

    /// Render the timeline as JSONL: a schema-versioned header object on
    /// line one, then one compact `{"t_ns":…,"v":[…]}` object per retained
    /// row. Allocates — call it after the measured region.
    pub fn to_jsonl(&self) -> String {
        let sources: Vec<Json> = self
            .names
            .iter()
            .zip(&self.kinds)
            .enumerate()
            .map(|(c, (name, kind))| {
                Json::obj()
                    .set("name", name.as_str())
                    .set("kind", kind.label())
                    .set("base", self.base_raw[c])
                    .set("final", self.last_raw[c])
            })
            .collect();
        let header = Json::obj()
            .set("schema_version", SCHEMA_VERSION)
            .set("kind", TIMELINE_KIND)
            .set("interval_ns", self.interval_ns)
            .set("base_time_ns", self.base_time_ns)
            .set("evicted", self.evicted)
            .set("samples_total", self.samples_total)
            .set("sources", sources);
        let mut out = header.render();
        out.push('\n');
        for i in 0..self.len {
            let (t, vals) = self.row(i);
            let mut row = Json::obj()
                .set("t_ns", t)
                .set("v", vals.iter().map(|&v| Json::from(v)).collect::<Vec<_>>());
            // Stale columns are exported as an index list (not the raw mask
            // words): small, exact under the f64-backed JSON number model,
            // and readable in the artifact.
            let stale: Vec<Json> = (0..vals.len())
                .filter(|&c| self.is_stale(i, c))
                .map(Json::from)
                .collect();
            if !stale.is_empty() {
                row = row.set("s", stale);
            }
            out.push_str(&row.render());
            out.push('\n');
        }
        out
    }
}

/// One source as described by a parsed JSONL header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceInfo {
    /// Registered name.
    pub name: String,
    /// Counter or gauge.
    pub kind: SourceKind,
    /// Folded base reading (counters; 0 for gauges).
    pub base: u64,
    /// Raw reading at the last retained row.
    pub final_raw: u64,
}

/// A parsed timeline artifact: the read-side twin of [`Timeline::to_jsonl`].
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineDoc {
    /// Sampling interval.
    pub interval_ns: u64,
    /// Timestamp of the base (start or last evicted row).
    pub base_time_ns: u64,
    /// Rows evicted before export.
    pub evicted: u64,
    /// Rows ever committed.
    pub samples_total: u64,
    /// Source descriptors, column order.
    pub sources: Vec<SourceInfo>,
    /// Retained rows: `(t_ns, per-column values)`.
    pub samples: Vec<(u64, Vec<u64>)>,
    /// Per-row stale column indices (sorted), parallel to `samples`. A
    /// listed gauge column was re-committed without a fresh reading that
    /// interval — detectors should skip it.
    pub stale: Vec<Vec<usize>>,
}

impl TimelineDoc {
    /// Parse a JSONL artifact produced by [`Timeline::to_jsonl`]. Rejects
    /// unknown schema versions, wrong `kind`, and rows whose width does not
    /// match the header.
    pub fn parse_jsonl(text: &str) -> Result<TimelineDoc, String> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header_line = lines.next().ok_or("empty timeline artifact")?;
        let header = Json::parse(header_line).map_err(|e| format!("header: {e}"))?;
        crate::json::require_schema(&header)?;
        if header.get("kind").and_then(|k| k.as_str()) != Some(TIMELINE_KIND) {
            return Err(format!("not a {TIMELINE_KIND} artifact"));
        }
        let num = |k: &str| {
            header
                .get(k)
                .and_then(|v| v.as_u64())
                .ok_or_else(|| format!("header missing {k}"))
        };
        let sources: Vec<SourceInfo> = header
            .get("sources")
            .and_then(|s| s.items())
            .ok_or("header missing sources")?
            .iter()
            .map(|s| {
                let name = s
                    .get("name")
                    .and_then(|v| v.as_str())
                    .ok_or("source missing name")?
                    .to_string();
                let kind = match s.get("kind").and_then(|v| v.as_str()) {
                    Some("counter") => SourceKind::Counter,
                    Some("gauge") => SourceKind::Gauge,
                    other => return Err(format!("source {name}: bad kind {other:?}")),
                };
                Ok(SourceInfo {
                    name,
                    kind,
                    base: s.get("base").and_then(|v| v.as_u64()).unwrap_or(0),
                    final_raw: s.get("final").and_then(|v| v.as_u64()).unwrap_or(0),
                })
            })
            .collect::<Result<_, String>>()?;
        let mut samples = Vec::new();
        let mut stale = Vec::new();
        for (i, line) in lines.enumerate() {
            let row = Json::parse(line).map_err(|e| format!("row {i}: {e}"))?;
            let t = row
                .get("t_ns")
                .and_then(|v| v.as_u64())
                .ok_or_else(|| format!("row {i}: missing t_ns"))?;
            let vals: Vec<u64> = row
                .get("v")
                .and_then(|v| v.items())
                .ok_or_else(|| format!("row {i}: missing v"))?
                .iter()
                .map(|v| v.as_u64().ok_or_else(|| format!("row {i}: non-u64 value")))
                .collect::<Result<_, String>>()?;
            if vals.len() != sources.len() {
                return Err(format!(
                    "row {i}: {} values for {} sources",
                    vals.len(),
                    sources.len()
                ));
            }
            let mut cols: Vec<usize> = match row.get("s").and_then(|v| v.items()) {
                Some(items) => items
                    .iter()
                    .map(|v| {
                        v.as_u64()
                            .map(|c| c as usize)
                            .filter(|&c| c < sources.len())
                            .ok_or_else(|| format!("row {i}: bad stale column"))
                    })
                    .collect::<Result<_, String>>()?,
                None => Vec::new(),
            };
            cols.sort_unstable();
            samples.push((t, vals));
            stale.push(cols);
        }
        Ok(TimelineDoc {
            interval_ns: num("interval_ns")?,
            base_time_ns: num("base_time_ns")?,
            evicted: num("evicted")?,
            samples_total: num("samples_total")?,
            sources,
            samples,
            stale,
        })
    }

    /// Column index of a source by name.
    pub fn column(&self, name: &str) -> Option<usize> {
        self.sources.iter().position(|s| s.name == name)
    }

    /// Was column `c` of row `i` committed stale (re-committed gauge
    /// reading with no fresh `set` that interval)?
    pub fn is_stale(&self, i: usize, c: usize) -> bool {
        self.stale.get(i).is_some_and(|cols| cols.contains(&c))
    }

    /// Like [`TimelineDoc::decode`], but each point also carries its stale
    /// flag so consumers (the doctor, plots) can skip re-committed gauge
    /// readings instead of treating them as fresh observations.
    pub fn decode_flagged(&self, c: usize) -> Vec<(u64, u64, bool)> {
        self.decode(c)
            .into_iter()
            .enumerate()
            .map(|(i, (t, raw))| (t, raw, self.is_stale(i, c)))
            .collect()
    }

    /// Reconstruct the raw reading series for column `c` at each retained
    /// row: counters telescope `base + running delta sum`, gauges are
    /// already raw.
    pub fn decode(&self, c: usize) -> Vec<(u64, u64)> {
        let kind = self.sources[c].kind;
        let mut acc = self.sources[c].base;
        self.samples
            .iter()
            .map(|(t, vals)| {
                let raw = match kind {
                    SourceKind::Counter => {
                        acc += vals[c];
                        acc
                    }
                    SourceKind::Gauge => vals[c],
                };
                (*t, raw)
            })
            .collect()
    }

    /// Verify the telescoping invariant for every counter column:
    /// `base + Σ retained deltas == final`. This is what lets a consumer
    /// reconcile per-interval deltas against end-of-run aggregate stats.
    pub fn reconcile(&self) -> Result<(), String> {
        for (c, s) in self.sources.iter().enumerate() {
            if s.kind != SourceKind::Counter {
                continue;
            }
            let sum: u64 = s.base + self.samples.iter().map(|(_, v)| v[c]).sum::<u64>();
            if sum != s.final_raw {
                return Err(format!(
                    "counter {}: base+Σdeltas = {sum} but final = {}",
                    s.name, s.final_raw
                ));
            }
        }
        Ok(())
    }
}

/// Per-interval imbalance index over one row of per-member values:
/// `(max / mean, argmax)`. Returns `(1.0, 0)` for an all-zero or empty row
/// (perfectly balanced nothing). This is the shard-balance signal the
/// adaptive-balancing work consumes: 1.0 means even load, `k` means the
/// hottest member did `k×` the mean.
pub fn imbalance(values: &[u64]) -> (f64, usize) {
    let total: u64 = values.iter().sum();
    if values.is_empty() || total == 0 {
        return (1.0, 0);
    }
    let mut hot = 0;
    let mut max = values[0];
    for (i, &v) in values.iter().enumerate().skip(1) {
        if v > max {
            (hot, max) = (i, v);
        }
    }
    let mean = total as f64 / values.len() as f64;
    (max as f64 / mean, hot)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_source_tl(capacity: usize) -> (Timeline, SourceId, SourceId) {
        let mut b = TimelineBuilder::new();
        let c = b.counter("frames");
        let g = b.gauge("backlog");
        (b.build(100, capacity, 0), c, g)
    }

    #[test]
    fn counters_delta_encode_and_gauges_stay_raw() {
        let (mut tl, c, g) = two_source_tl(8);
        for (t, raw, gauge) in [(100, 5, 7), (200, 9, 3), (300, 9, 0)] {
            tl.set(c, raw);
            tl.set(g, gauge);
            assert!(tl.due(t));
            tl.sample(t);
        }
        assert_eq!(tl.len(), 3);
        assert_eq!(tl.row(0), (100, &[5, 7][..]));
        assert_eq!(tl.row(1), (200, &[4, 3][..]));
        assert_eq!(tl.row(2), (300, &[0, 0][..]));
        assert_eq!(tl.final_raw(c), 9);
        assert_eq!(tl.base_raw(c) + tl.column_sum(c), tl.final_raw(c));
    }

    #[test]
    fn due_grid_catches_up_past_gaps() {
        let (mut tl, c, _) = two_source_tl(8);
        assert!(!tl.due(99));
        assert!(tl.due(100));
        tl.set(c, 1);
        // A late sample at t=950 must advance the grid past it, not
        // schedule nine catch-up rows.
        tl.sample(950);
        assert!(!tl.due(999));
        assert!(tl.due(1000));
    }

    #[test]
    fn eviction_preserves_telescoping() {
        let (mut tl, c, g) = two_source_tl(4);
        for i in 1..=10u64 {
            tl.set(c, i * i); // monotone, uneven deltas
            tl.set(g, i);
            tl.sample(i * 100);
        }
        assert_eq!(tl.len(), 4);
        assert_eq!(tl.evicted(), 6);
        assert_eq!(tl.samples_total(), 10);
        // Base folded the evicted deltas: base time is the last evicted
        // row's stamp and base+retained still reaches the final reading.
        assert_eq!(tl.base_time_ns(), 600);
        assert_eq!(tl.base_raw(c), 36);
        assert_eq!(tl.base_raw(c) + tl.column_sum(c), 100);
        assert_eq!(tl.final_raw(c), 100);
    }

    #[test]
    fn jsonl_round_trips_and_reconciles() {
        let (mut tl, c, g) = two_source_tl(3);
        for i in 1..=5u64 {
            tl.set(c, 3 * i);
            tl.set(g, 10 - i);
            tl.sample(i * 100);
        }
        let text = tl.to_jsonl();
        let doc = TimelineDoc::parse_jsonl(&text).expect("parses");
        assert_eq!(doc.interval_ns, 100);
        assert_eq!(doc.evicted, 2);
        assert_eq!(doc.samples_total, 5);
        assert_eq!(doc.sources.len(), 2);
        assert_eq!(doc.sources[0].kind, SourceKind::Counter);
        assert_eq!(doc.samples.len(), 3);
        doc.reconcile().expect("telescopes");
        // Decoding rebuilds the raw series at the retained stamps.
        assert_eq!(doc.decode(0), vec![(300, 9), (400, 12), (500, 15)]);
        assert_eq!(doc.decode(1), vec![(300, 7), (400, 6), (500, 5)]);
    }

    #[test]
    fn parse_rejects_foreign_and_mangled_input() {
        assert!(TimelineDoc::parse_jsonl("").is_err());
        assert!(TimelineDoc::parse_jsonl("{\"schema_version\":2,\"kind\":\"other\"}").is_err());
        let (mut tl, c, _) = two_source_tl(4);
        tl.set(c, 1);
        tl.sample(100);
        let good = tl.to_jsonl();
        // Unknown schema version must be rejected loudly.
        let stale = good.replacen("\"schema_version\":2", "\"schema_version\":1", 1);
        assert!(TimelineDoc::parse_jsonl(&stale).is_err());
        // A row whose width disagrees with the header must be rejected.
        let narrow = good.replace("\"v\":[1,0]", "\"v\":[1]");
        assert!(TimelineDoc::parse_jsonl(&narrow).is_err());
    }

    #[test]
    fn reconcile_detects_tampered_deltas() {
        let (mut tl, c, _) = two_source_tl(4);
        for i in 1..=3u64 {
            tl.set(c, i * 2);
            tl.sample(i * 100);
        }
        let text = tl.to_jsonl();
        let bad = text.replace("\"v\":[2,0]", "\"v\":[3,0]");
        assert_ne!(text, bad, "tamper target present");
        let doc = TimelineDoc::parse_jsonl(&bad).expect("still parses");
        assert!(doc.reconcile().is_err());
    }

    #[test]
    fn untouched_gauges_are_marked_stale_and_round_trip() {
        let (mut tl, c, g) = two_source_tl(8);
        tl.set(c, 1);
        tl.set(g, 7);
        tl.sample(100);
        tl.set(c, 2); // gauge untouched this interval: re-committed reading
        tl.sample(200);
        tl.set(c, 2);
        tl.set(g, 3);
        tl.sample(300);
        assert!(!tl.is_stale(0, 1));
        assert!(tl.is_stale(1, 1));
        assert!(!tl.is_stale(1, 0), "counters never go stale");
        assert!(!tl.is_stale(2, 1));
        assert_eq!(tl.stale_words(1), &[2][..]);
        let doc = TimelineDoc::parse_jsonl(&tl.to_jsonl()).expect("parses");
        assert!(!doc.is_stale(0, 1) && doc.is_stale(1, 1) && !doc.is_stale(2, 1));
        assert_eq!(
            doc.decode_flagged(1),
            vec![(100, 7, false), (200, 7, true), (300, 3, false)]
        );
        doc.reconcile().expect("stale bits do not disturb telescoping");
    }

    #[test]
    fn imbalance_names_the_hot_member() {
        assert_eq!(imbalance(&[]), (1.0, 0));
        assert_eq!(imbalance(&[0, 0, 0]), (1.0, 0));
        assert_eq!(imbalance(&[4, 4, 4, 4]), (1.0, 0));
        let (idx, hot) = imbalance(&[1, 1, 6, 0]);
        assert_eq!(hot, 2);
        assert!((idx - 3.0).abs() < 1e-12);
    }
}
