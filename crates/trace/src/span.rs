//! Causal operation spans: per-op milestone records threaded through the
//! protocol.
//!
//! The flat event ring answers "what happened when", but attributing one
//! operation's end-to-end latency needs *causality*: which transmission of
//! the op's critical frame mattered, when the receiver's cumulative sequence
//! passed it, when the covering acknowledgement left and returned. A
//! [`SpanRecorder`] collects exactly that: every RDMA op owns one
//! [`OpSpan`] keyed by its **origin** (issuing node, issuing connection id,
//! wire op id) — a key every endpoint on the path can recompute from frame
//! headers alone, so no alias table is needed — and the protocol stamps
//! monotone milestones into it as the op moves through issue, send window,
//! per-rail transmission, the wire, receive reorder, acknowledgement and
//! completion. Completed spans land in a bounded ring; the
//! [`crate::attribution`] module turns them into exclusive phase
//! breakdowns.
//!
//! The recorder follows the [`crate::Tracer`] pattern: a disabled handle is
//! a `None` and every record call is one branch; all enabled clones share
//! one state, so a whole simulated cluster records into a single, causally
//! consistent span set.

use crate::hist::LogHistogram;
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};
use std::rc::Rc;

/// Fx-style hasher for the span maps (`me-trace` is dependency-free, so the
/// workspace's shared FastMap is reimplemented minimally here).
#[derive(Default)]
pub struct SpanHasher(u64);

impl Hasher for SpanHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }
    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0.rotate_left(5) ^ n).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

type SpanMap<V> = HashMap<u64, V, BuildHasherDefault<SpanHasher>>;

/// The globally unique identity of an operation: the node and connection id
/// where it was issued plus its 32-bit wire op id. Computable at every
/// protocol site from frame headers (`op_id` for data/read-request frames,
/// `aux` for read-response frames), which is what makes the span layer
/// alias-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanKey {
    /// Issuing node index.
    pub node: u16,
    /// Connection id on the issuing node.
    pub conn: u16,
    /// The op's 32-bit wire id (dense per connection).
    pub op: u32,
}

impl SpanKey {
    /// Build a key; `node`/`conn` are truncated to 16 bits (clusters here
    /// are orders of magnitude smaller).
    pub fn new(node: usize, conn: usize, op: u32) -> Self {
        Self {
            node: node as u16,
            conn: conn as u16,
            op,
        }
    }

    fn pack(self) -> u64 {
        ((self.node as u64) << 48) | ((self.conn as u64) << 32) | self.op as u64
    }

    #[cfg(test)]
    fn unpack(v: u64) -> Self {
        Self {
            node: (v >> 48) as u16,
            conn: (v >> 32) as u16,
            op: v as u32,
        }
    }
}

/// Which kind of operation a span tracks (the two have different milestone
/// chains — see [`crate::attribution`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Remote write: data flows origin → peer, the ack returns.
    Write,
    /// Remote read: a request flows origin → peer, response data returns.
    Read,
}

impl SpanKind {
    /// Short stable label for JSON.
    pub fn label(&self) -> &'static str {
        match self {
            SpanKind::Write => "write",
            SpanKind::Read => "read",
        }
    }
}

/// Which leg of the op a frame belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Leg {
    /// The origin→peer leg (write data frames, the read request).
    Req,
    /// The peer→origin leg (read response frames).
    Resp,
}

/// One operation's milestone record. All times are simulation nanoseconds;
/// `0` means "not stamped" (the attribution clamp treats an unstamped
/// milestone as coincident with its predecessor, so a partially stamped
/// span still telescopes exactly).
///
/// The *critical frame* of a leg is the one whose admission can complete
/// that leg: the `LAST_FRAGMENT` data frame, the read request, or the
/// `LAST_FRAGMENT` read-response frame. Transmission milestones
/// (`first_tx`/`last_tx`/queue/rail) track that frame only; retransmission
/// and rail rollups cover every frame of the op.
#[derive(Debug, Clone, Copy)]
pub struct OpSpan {
    /// Origin identity.
    pub key: SpanKey,
    /// Write or read.
    pub kind: SpanKind,
    /// Payload bytes moved by the op.
    pub bytes: u64,
    /// Data frames the op fragments into (request frames for reads count 1).
    pub frames: u32,
    /// Retransmitted frame transmissions attributed to this op (any leg).
    pub retransmits: u32,
    /// Bitmask of rails any of this op's frames were transmitted on.
    pub rails_used: u32,
    /// Rail that carried the last pre-admission transmission of the
    /// critical request-leg frame (`u32::MAX` = unknown).
    pub crit_rail: u32,
    /// Same, response leg.
    pub resp_rail: u32,

    /// Application called write/read (same instant the handle's latency
    /// clock starts, so span total == handle latency exactly).
    pub created: u64,
    /// Initiation cost paid; frames queued and op id assigned.
    pub issue: u64,
    /// First transmission of the critical request-leg frame.
    pub first_tx: u64,
    /// Last pre-admission transmission of that frame.
    pub last_tx: u64,
    /// NIC transmit backlog ahead of that last transmission, ns.
    pub tx_queue: u64,
    /// That frame's delivery at the receiving NIC.
    pub arrival: u64,
    /// Its admission by the receive path (sequence tracker).
    pub admit: u64,
    /// Receiver's cumulative sequence passed the op's last frame (writes).
    pub cum: u64,
    /// First acknowledgement covering the op left the receiver (writes).
    pub ack_tx: u64,
    /// That acknowledgement reached the sender (writes).
    pub ack_rx: u64,
    /// Target began serving the read (reads).
    pub serve: u64,
    /// First transmission of the critical response frame (reads).
    pub resp_first_tx: u64,
    /// Last pre-admission transmission of it (reads).
    pub resp_last_tx: u64,
    /// NIC backlog ahead of that transmission, ns (reads).
    pub resp_queue: u64,
    /// Critical response frame delivered at the initiator NIC (reads).
    pub resp_arrival: u64,
    /// ... and admitted by the initiator's receive path (reads).
    pub resp_admit: u64,
    /// All response data applied locally; the read left the reorder buffer.
    pub released: u64,
    /// The op's handle completed (application wake included).
    pub complete: u64,

    /// Fence-induced stall on the request leg's completion path (reads:
    /// request held at the target before service).
    pub fence_req_ns: u64,
    /// Fence stall on the response leg (reads: response held at the
    /// initiator before applying).
    pub fence_resp_ns: u64,
    /// Write-only, informational: when the receiver fully applied the data
    /// (not on the sender-observed completion path, which ends at the ack).
    pub delivered: u64,
    /// Write-only, informational: receiver-side fence stall before apply.
    pub recv_fence_ns: u64,
}

impl OpSpan {
    fn new(key: SpanKey, kind: SpanKind, created: u64, issue: u64, frames: u32, bytes: u64) -> Self {
        OpSpan {
            key,
            kind,
            bytes,
            frames,
            retransmits: 0,
            rails_used: 0,
            crit_rail: u32::MAX,
            resp_rail: u32::MAX,
            created,
            issue,
            first_tx: 0,
            last_tx: 0,
            tx_queue: 0,
            arrival: 0,
            admit: 0,
            cum: 0,
            ack_tx: 0,
            ack_rx: 0,
            serve: 0,
            resp_first_tx: 0,
            resp_last_tx: 0,
            resp_queue: 0,
            resp_arrival: 0,
            resp_admit: 0,
            released: 0,
            complete: 0,
            fence_req_ns: 0,
            fence_resp_ns: 0,
            delivered: 0,
            recv_fence_ns: 0,
        }
    }
}

/// Per-(receiving node, receiving connection) queues of ops waiting for the
/// cumulative sequence / an outgoing ack to pass their last frame.
#[derive(Default)]
struct RecvWaiters {
    /// (last frame seq, span key): admitted last fragments waiting for the
    /// cumulative sequence to pass them.
    await_cum: VecDeque<(u64, u64)>,
    /// Same, waiting for an outgoing acknowledgement to cover them.
    await_ack: VecDeque<(u64, u64)>,
}

struct SpanState {
    /// Spans in flight, keyed by packed [`SpanKey`].
    active: SpanMap<OpSpan>,
    /// Receiver-side waiter queues, keyed by packed (node, conn).
    waiters: SpanMap<RecvWaiters>,
    /// Completed spans, oldest first, bounded.
    done: VecDeque<OpSpan>,
    done_cap: usize,
    completed_total: u64,
    overwritten: u64,
    /// Issues refused because the active map hit its bound.
    dropped_active: u64,
    /// Per-rail NIC-backlog histograms (every data-frame transmission).
    rail_queue: Vec<LogHistogram>,
    /// Per-rail data-frame transmission counts.
    rail_frames: Vec<u64>,
    /// Per-rail retransmission counts.
    rail_retransmits: Vec<u64>,
}

/// Bound on concurrently active spans; beyond it new issues are dropped
/// (counted) rather than growing memory without limit.
const MAX_ACTIVE: usize = 1 << 16;

impl SpanState {
    fn rail(&mut self, rail: u32) -> usize {
        let r = rail as usize;
        while self.rail_queue.len() <= r {
            self.rail_queue.push(LogHistogram::new());
            self.rail_frames.push(0);
            self.rail_retransmits.push(0);
        }
        r
    }
}

fn recv_key(node: usize, conn: usize) -> u64 {
    ((node as u64) << 16) | (conn as u64 & 0xFFFF)
}

/// Cheaply cloneable span-recording handle (the [`crate::Tracer`] pattern:
/// disabled = one branch per call, enabled clones share one state).
#[derive(Clone, Default)]
pub struct SpanRecorder {
    inner: Option<Rc<RefCell<SpanState>>>,
}

impl SpanRecorder {
    /// A recorder that records nothing (the production default).
    pub fn disabled() -> Self {
        SpanRecorder { inner: None }
    }

    /// A recorder keeping the latest `completed_capacity` finished spans.
    pub fn enabled(completed_capacity: usize) -> Self {
        SpanRecorder {
            inner: Some(Rc::new(RefCell::new(SpanState {
                active: SpanMap::default(),
                waiters: SpanMap::default(),
                done: VecDeque::with_capacity(completed_capacity.max(1)),
                done_cap: completed_capacity.max(1),
                completed_total: 0,
                overwritten: 0,
                dropped_active: 0,
                rail_queue: Vec::new(),
                rail_frames: Vec::new(),
                rail_retransmits: Vec::new(),
            }))),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// An operation was issued: open its span. `created_ns` is when the
    /// application called in (the handle's latency origin); `now_ns` is when
    /// initiation finished and frames were queued.
    pub fn op_issued(
        &self,
        key: SpanKey,
        kind: SpanKind,
        created_ns: u64,
        now_ns: u64,
        frames: u32,
        bytes: u64,
    ) {
        let Some(state) = &self.inner else { return };
        let mut s = state.borrow_mut();
        if s.active.len() >= MAX_ACTIVE {
            s.dropped_active += 1;
            return;
        }
        s.active.insert(
            key.pack(),
            OpSpan::new(key, kind, created_ns, now_ns, frames, bytes),
        );
    }

    /// A data-bearing frame of the op went to a NIC. `critical` marks the
    /// leg's completing frame (LAST_FRAGMENT / read request); `queue_ns` is
    /// the NIC's transmit backlog at submission.
    #[allow(clippy::too_many_arguments)]
    pub fn frame_tx(
        &self,
        key: SpanKey,
        leg: Leg,
        critical: bool,
        retransmit: bool,
        rail: u32,
        queue_ns: u64,
        now_ns: u64,
    ) {
        let Some(state) = &self.inner else { return };
        let mut s = state.borrow_mut();
        let r = s.rail(rail);
        s.rail_queue[r].record(queue_ns);
        s.rail_frames[r] += 1;
        if retransmit {
            s.rail_retransmits[r] += 1;
        }
        let Some(span) = s.active.get_mut(&key.pack()) else {
            return;
        };
        span.rails_used |= 1u32.checked_shl(rail).unwrap_or(0);
        if retransmit {
            span.retransmits += 1;
        }
        if !critical {
            return;
        }
        match leg {
            Leg::Req if span.admit == 0 => {
                if span.first_tx == 0 {
                    span.first_tx = now_ns;
                }
                span.last_tx = now_ns;
                span.tx_queue = queue_ns;
                span.crit_rail = rail;
            }
            Leg::Resp if span.resp_admit == 0 => {
                if span.resp_first_tx == 0 {
                    span.resp_first_tx = now_ns;
                }
                span.resp_last_tx = now_ns;
                span.resp_queue = queue_ns;
                span.resp_rail = rail;
            }
            _ => {}
        }
    }

    /// The leg's critical frame was delivered by the receiving NIC
    /// (pre-admission; the latest delivery before admission wins).
    pub fn frame_arrival(&self, key: SpanKey, leg: Leg, now_ns: u64) {
        self.with_span(key, |span| match leg {
            Leg::Req => {
                if span.admit == 0 {
                    span.arrival = now_ns;
                }
            }
            Leg::Resp => {
                if span.resp_admit == 0 {
                    span.resp_arrival = now_ns;
                }
            }
        });
    }

    /// The leg's critical frame was admitted by the sequence tracker.
    pub fn frame_admitted(&self, key: SpanKey, leg: Leg, now_ns: u64) {
        self.with_span(key, |span| match leg {
            Leg::Req => {
                if span.admit == 0 {
                    span.admit = now_ns;
                }
            }
            Leg::Resp => {
                if span.resp_admit == 0 {
                    span.resp_admit = now_ns;
                }
            }
        });
    }

    /// Register a write op (its last frame just admitted at the receiver
    /// endpoint `(node, conn)` with sequence `last_seq`) to be stamped when
    /// the cumulative sequence, then an outgoing ack, pass it.
    pub fn await_cum(&self, node: usize, conn: usize, last_seq: u64, key: SpanKey) {
        let Some(state) = &self.inner else { return };
        let mut s = state.borrow_mut();
        s.waiters
            .entry(recv_key(node, conn))
            .or_default()
            .await_cum
            .push_back((last_seq, key.pack()));
    }

    /// The receiver endpoint's cumulative sequence advanced to `cum`: stamp
    /// the `cum` milestone of every waiting op whose last frame it passed
    /// and move them to the ack queue.
    pub fn cum_advanced(&self, node: usize, conn: usize, cum: u64, now_ns: u64) {
        let Some(state) = &self.inner else { return };
        let mut s = state.borrow_mut();
        let rk = recv_key(node, conn);
        let Some(w) = s.waiters.get_mut(&rk) else {
            return;
        };
        if w.await_cum.is_empty() {
            return;
        }
        // Admission order is not sequence order under multi-rail skew, so
        // scan rather than pop from the front. The queue is bounded by the
        // ops concurrently inside one window — small by construction.
        let mut i = 0;
        let mut passed: Vec<(u64, u64)> = Vec::new();
        while i < w.await_cum.len() {
            if w.await_cum[i].0 < cum {
                passed.push(w.await_cum.remove(i).expect("index checked"));
            } else {
                i += 1;
            }
        }
        for &(seq, pk) in &passed {
            if let Some(span) = s.active.get_mut(&pk) {
                if span.cum == 0 {
                    span.cum = now_ns;
                }
            }
            s.waiters
                .get_mut(&rk)
                .expect("waiters entry exists")
                .await_ack
                .push_back((seq, pk));
        }
    }

    /// The receiver endpoint sent an acknowledgement (piggybacked, explicit
    /// or on a NACK) covering sequences below `ack`: stamp `ack_tx` for
    /// every op it newly covers.
    pub fn ack_sent(&self, node: usize, conn: usize, ack: u64, now_ns: u64) {
        let Some(state) = &self.inner else { return };
        let mut s = state.borrow_mut();
        let Some(w) = s.waiters.get_mut(&recv_key(node, conn)) else {
            return;
        };
        if w.await_ack.is_empty() {
            return;
        }
        let mut i = 0;
        let mut covered: Vec<u64> = Vec::new();
        while i < w.await_ack.len() {
            if w.await_ack[i].0 < ack {
                covered.push(w.await_ack.remove(i).expect("index checked").1);
            } else {
                i += 1;
            }
        }
        for pk in covered {
            if let Some(span) = s.active.get_mut(&pk) {
                if span.ack_tx == 0 {
                    span.ack_tx = now_ns;
                }
            }
        }
    }

    /// The sender's window advanced past the op (the covering ack arrived).
    pub fn ack_rx(&self, key: SpanKey, now_ns: u64) {
        self.with_span(key, |span| {
            if span.ack_rx == 0 {
                span.ack_rx = now_ns;
            }
        });
    }

    /// The read's target began serving the response.
    pub fn serve_started(&self, key: SpanKey, now_ns: u64) {
        self.with_span(key, |span| {
            if span.serve == 0 {
                span.serve = now_ns;
            }
        });
    }

    /// All of the read's response data applied at the initiator.
    pub fn resp_released(&self, key: SpanKey, now_ns: u64) {
        self.with_span(key, |span| {
            if span.released == 0 {
                span.released = now_ns;
            }
        });
    }

    /// A fence held the op's request leg back for `stalled_ns` before its
    /// completion path could proceed (reads: the request at the target).
    pub fn fence_req(&self, key: SpanKey, stalled_ns: u64) {
        self.with_span(key, |span| span.fence_req_ns += stalled_ns);
    }

    /// A fence held the response leg back (reads: the response at the
    /// initiator).
    pub fn fence_resp(&self, key: SpanKey, stalled_ns: u64) {
        self.with_span(key, |span| span.fence_resp_ns += stalled_ns);
    }

    /// Write-only, informational: the receiver fully applied the op's data
    /// after `recv_fence_ns` of fence hold.
    pub fn delivered(&self, key: SpanKey, now_ns: u64, recv_fence_ns: u64) {
        self.with_span(key, |span| {
            if span.delivered == 0 {
                span.delivered = now_ns;
            }
            span.recv_fence_ns += recv_fence_ns;
        });
    }

    /// The op's handle completed: close the span and move it to the
    /// completed ring.
    pub fn op_completed(&self, key: SpanKey, now_ns: u64) {
        let Some(state) = &self.inner else { return };
        let mut s = state.borrow_mut();
        let Some(mut span) = s.active.remove(&key.pack()) else {
            return;
        };
        span.complete = now_ns;
        s.completed_total += 1;
        if s.done.len() == s.done_cap {
            s.done.pop_front();
            s.overwritten += 1;
        }
        s.done.push_back(span);
    }

    fn with_span(&self, key: SpanKey, f: impl FnOnce(&mut OpSpan)) {
        if let Some(state) = &self.inner {
            if let Some(span) = state.borrow_mut().active.get_mut(&key.pack()) {
                f(span);
            }
        }
    }

    /// Copy the current state out for analysis; `None` when disabled.
    pub fn snapshot(&self) -> Option<SpanSnapshot> {
        self.inner.as_ref().map(|state| {
            let s = state.borrow();
            SpanSnapshot {
                spans: s.done.iter().copied().collect(),
                active: s.active.len() as u64,
                completed_total: s.completed_total,
                overwritten: s.overwritten,
                dropped_active: s.dropped_active,
                rail_queue: s.rail_queue.clone(),
                rail_frames: s.rail_frames.clone(),
                rail_retransmits: s.rail_retransmits.clone(),
            }
        })
    }
}

/// An owned copy of everything a [`SpanRecorder`] holds.
#[derive(Debug, Clone)]
pub struct SpanSnapshot {
    /// Retained completed spans, oldest first.
    pub spans: Vec<OpSpan>,
    /// Spans still in flight at snapshot time.
    pub active: u64,
    /// Total completed spans ever (≥ `spans.len()`).
    pub completed_total: u64,
    /// Completed spans lost to the ring bound.
    pub overwritten: u64,
    /// Issues dropped because the active bound was hit.
    pub dropped_active: u64,
    /// Per-rail NIC transmit-backlog histograms (all data transmissions).
    pub rail_queue: Vec<LogHistogram>,
    /// Per-rail data-frame transmission counts.
    pub rail_frames: Vec<u64>,
    /// Per-rail retransmission counts.
    pub rail_retransmits: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(op: u32) -> SpanKey {
        SpanKey::new(0, 0, op)
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let r = SpanRecorder::disabled();
        assert!(!r.is_enabled());
        r.op_issued(k(0), SpanKind::Write, 1, 2, 1, 10);
        r.op_completed(k(0), 9);
        assert!(r.snapshot().is_none());
    }

    #[test]
    fn key_packs_round_trip() {
        let key = SpanKey::new(3, 7, 0xdead_beef);
        assert_eq!(SpanKey::unpack(key.pack()), key);
    }

    #[test]
    fn write_span_full_milestone_chain() {
        let r = SpanRecorder::enabled(8);
        let key = k(0);
        r.op_issued(key, SpanKind::Write, 100, 150, 2, 3000);
        r.frame_tx(key, Leg::Req, false, false, 0, 5, 160);
        r.frame_tx(key, Leg::Req, true, false, 1, 7, 170);
        r.frame_arrival(key, Leg::Req, 300);
        r.frame_admitted(key, Leg::Req, 310);
        r.await_cum(1, 0, 1, key);
        r.cum_advanced(1, 0, 2, 310);
        r.ack_sent(1, 0, 2, 320);
        r.ack_rx(key, 450);
        r.op_completed(key, 460);
        let snap = r.snapshot().unwrap();
        assert_eq!(snap.spans.len(), 1);
        let s = &snap.spans[0];
        assert_eq!(
            (s.created, s.issue, s.first_tx, s.last_tx),
            (100, 150, 170, 170)
        );
        assert_eq!((s.arrival, s.admit, s.cum), (300, 310, 310));
        assert_eq!((s.ack_tx, s.ack_rx, s.complete), (320, 450, 460));
        assert_eq!(s.crit_rail, 1);
        assert_eq!(s.rails_used, 0b11);
        assert_eq!(s.tx_queue, 7);
        assert_eq!(snap.rail_frames, vec![1, 1]);
    }

    #[test]
    fn retransmit_updates_last_tx_until_admit() {
        let r = SpanRecorder::enabled(8);
        let key = k(1);
        r.op_issued(key, SpanKind::Write, 0, 10, 1, 100);
        r.frame_tx(key, Leg::Req, true, false, 0, 0, 20);
        r.frame_tx(key, Leg::Req, true, true, 0, 3, 80);
        r.frame_arrival(key, Leg::Req, 120);
        r.frame_admitted(key, Leg::Req, 125);
        // Post-admission duplicate must not move the frozen milestones.
        r.frame_tx(key, Leg::Req, true, true, 0, 9, 200);
        r.op_completed(key, 300);
        let s = r.snapshot().unwrap().spans[0];
        assert_eq!((s.first_tx, s.last_tx, s.tx_queue), (20, 80, 3));
        assert_eq!(s.retransmits, 2);
        assert_eq!(r.snapshot().unwrap().rail_retransmits, vec![2]);
    }

    #[test]
    fn cum_advance_handles_out_of_order_admission() {
        let r = SpanRecorder::enabled(8);
        let (ka, kb) = (k(10), k(11));
        r.op_issued(ka, SpanKind::Write, 0, 1, 1, 1);
        r.op_issued(kb, SpanKind::Write, 0, 2, 1, 1);
        // Op B (seq 5) admits before op A (seq 3).
        r.await_cum(2, 0, 5, kb);
        r.await_cum(2, 0, 3, ka);
        r.cum_advanced(2, 0, 4, 100); // passes A only
        r.cum_advanced(2, 0, 6, 200); // passes B
        r.ack_sent(2, 0, 6, 250);
        r.ack_rx(ka, 300);
        r.ack_rx(kb, 300);
        r.op_completed(ka, 310);
        r.op_completed(kb, 310);
        let snap = r.snapshot().unwrap();
        let a = snap.spans.iter().find(|s| s.key == ka).unwrap();
        let b = snap.spans.iter().find(|s| s.key == kb).unwrap();
        assert_eq!((a.cum, b.cum), (100, 200));
        assert_eq!((a.ack_tx, b.ack_tx), (250, 250));
    }

    #[test]
    fn done_ring_is_bounded() {
        let r = SpanRecorder::enabled(2);
        for op in 0..5u32 {
            r.op_issued(k(op), SpanKind::Write, 0, 1, 1, 1);
            r.op_completed(k(op), 10);
        }
        let snap = r.snapshot().unwrap();
        assert_eq!(snap.spans.len(), 2);
        assert_eq!(snap.completed_total, 5);
        assert_eq!(snap.overwritten, 3);
        assert_eq!(snap.spans[0].key, k(3));
        assert_eq!(snap.spans[1].key, k(4));
    }
}
