//! Regression triage: diff two attribution documents and name the phase
//! and protocol layer that moved.
//!
//! The inputs are JSON artifacts carrying [`PhaseRollup`] sections with
//! embedded [`LogHistogram`]s (baseline files under `results/baselines/`,
//! `BENCH_attribution.json` cell arrays, or flight-recorder dumps). Because
//! the histograms round-trip exactly, diffing two artifacts is equivalent
//! to diffing the original in-memory rollups — no re-run needed.
//!
//! Quantile shifts are expressed as **log ratios**
//! `ln(new_p + 1) − ln(old_p + 1)`: exactly antisymmetric (swapping the
//! inputs negates the value bit-for-bit, a property the proptests pin) and
//! additive across chained comparisons. [`rel_shift`] converts one to the
//! familiar relative form (`+0.18` = 18% slower).
//!
//! The verdict threshold comes from the artifacts themselves: the triage
//! runner records each cell's **cross-seed spread** (the workloads are
//! simulated-time deterministic, so re-running the same build twice diffs
//! to exactly zero and wall-clock noise does not exist; seed-to-seed
//! variation is the only honest noise source). A shift counts as movement
//! only when it clears `max(noise_floor, noise_mult × recorded spread)`.

use crate::attribution::{Phase, PhaseRollup, PHASES};
use crate::hist::LogHistogram;
use crate::json::{require_schema, Json, SCHEMA_VERSION};

/// Protocol layer a phase belongs to, for triage headlines ("dominated by
/// +reorder (ordering)").
pub fn layer(phase: Phase) -> &'static str {
    match phase {
        Phase::HostIssue => "host issue path",
        Phase::SendWindow => "flow control",
        Phase::Retransmit => "loss recovery",
        Phase::RailQueue => "nic/scheduler",
        Phase::Wire => "network",
        Phase::RxProcess => "host rx path",
        Phase::Reorder => "ordering",
        Phase::Fence => "ordering",
        Phase::AckDelay => "ack policy",
        Phase::AckReturn => "network",
        Phase::CompleteWake => "host completion",
    }
}

/// Outcome of comparing one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Both quantile shifts are inside the noise bound.
    Unchanged,
    /// A shift cleared the bound downward.
    Improved,
    /// A shift cleared the bound upward (or the op counts differ, making
    /// the runs incomparable).
    Regressed,
}

impl Verdict {
    /// Stable uppercase label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Unchanged => "UNCHANGED",
            Verdict::Improved => "IMPROVED",
            Verdict::Regressed => "REGRESSED",
        }
    }
}

/// Thresholds for calling a shift real.
#[derive(Debug, Clone)]
pub struct DiffConfig {
    /// Minimum relative shift ever considered movement, even when the
    /// recorded cross-seed spread is tiny (absorbs histogram quantization,
    /// ≈3% per bucket).
    pub noise_floor: f64,
    /// Multiplier on the larger of the two artifacts' recorded cross-seed
    /// spreads.
    pub noise_mult: f64,
    /// Phase rows with less than this much absolute mass movement (in
    /// fraction points) are elided from the human table.
    pub min_mass_pp: f64,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            noise_floor: 0.05,
            noise_mult: 1.5,
            min_mass_pp: 0.002,
        }
    }
}

/// Log-ratio shift of percentile `p` between two histograms:
/// `ln(new_p + 1) − ln(old_p + 1)`. Exactly antisymmetric under swapping
/// the histograms; 0 when both are empty.
pub fn quantile_log_ratio(old: &LogHistogram, new: &LogHistogram, p: f64) -> f64 {
    ((new.percentile(p) + 1) as f64).ln() - ((old.percentile(p) + 1) as f64).ln()
}

/// Convert a log-ratio shift to a relative one (`+0.18` = 18% slower).
pub fn rel_shift(log_ratio: f64) -> f64 {
    log_ratio.exp() - 1.0
}

/// One phase's movement between two rollups.
#[derive(Debug, Clone)]
pub struct PhaseDelta {
    /// Which phase.
    pub phase: Phase,
    /// Old exclusive total (ns).
    pub old_total_ns: u64,
    /// New exclusive total (ns).
    pub new_total_ns: u64,
    /// Old share of end-to-end latency (0–1).
    pub old_fraction: f64,
    /// New share of end-to-end latency (0–1).
    pub new_fraction: f64,
    /// `new_fraction − old_fraction`: mass moved into (+) or out of (−)
    /// this phase.
    pub mass_delta: f64,
    /// Mean per-op growth in ns (`new_total/new_ops − old_total/old_ops`);
    /// robust to op-count drift and the quantity the dominant-phase pick
    /// maximizes.
    pub growth_per_op_ns: f64,
    /// Log-ratio shift of this phase's per-op p50.
    pub p50_log_ratio: f64,
    /// Log-ratio shift of this phase's per-op p99.
    pub p99_log_ratio: f64,
}

/// Movement of one rollup (overall, one connection, or one rail).
#[derive(Debug, Clone)]
pub struct RollupDelta {
    /// Rollup name ("overall", "n0c1", "rail0", …).
    pub name: String,
    /// Ops folded into the old rollup.
    pub old_ops: u64,
    /// Ops folded into the new rollup.
    pub new_ops: u64,
    /// Old end-to-end latency p50 (ns).
    pub old_p50_ns: u64,
    /// New end-to-end latency p50 (ns).
    pub new_p50_ns: u64,
    /// Old end-to-end latency p99 (ns).
    pub old_p99_ns: u64,
    /// New end-to-end latency p99 (ns).
    pub new_p99_ns: u64,
    /// Log-ratio shift of end-to-end p50.
    pub p50_log_ratio: f64,
    /// Log-ratio shift of end-to-end p99.
    pub p99_log_ratio: f64,
    /// All phase deltas, in [`PHASES`] order.
    pub phases: Vec<PhaseDelta>,
}

impl RollupDelta {
    /// The phase that explains the movement: largest per-op growth for a
    /// regression (`improved = false`), largest per-op shrink for an
    /// improvement. `None` when no phase moved in that direction.
    pub fn dominant(&self, improved: bool) -> Option<&PhaseDelta> {
        self.phases
            .iter()
            .filter(|d| {
                if improved {
                    d.growth_per_op_ns < 0.0
                } else {
                    d.growth_per_op_ns > 0.0
                }
            })
            .max_by(|a, b| a.growth_per_op_ns.abs().total_cmp(&b.growth_per_op_ns.abs()))
    }
}

/// Compare two rollups phase by phase.
pub fn diff_rollups(name: &str, old: &PhaseRollup, new: &PhaseRollup) -> RollupDelta {
    let frac = |r: &PhaseRollup, i: usize| {
        if r.latency_total_ns == 0 {
            0.0
        } else {
            r.phase_total_ns[i] as f64 / r.latency_total_ns as f64
        }
    };
    let per_op = |r: &PhaseRollup, i: usize| {
        if r.ops == 0 {
            0.0
        } else {
            r.phase_total_ns[i] as f64 / r.ops as f64
        }
    };
    let phases = PHASES
        .iter()
        .enumerate()
        .map(|(i, &p)| PhaseDelta {
            phase: p,
            old_total_ns: old.phase_total_ns[i],
            new_total_ns: new.phase_total_ns[i],
            old_fraction: frac(old, i),
            new_fraction: frac(new, i),
            mass_delta: frac(new, i) - frac(old, i),
            growth_per_op_ns: per_op(new, i) - per_op(old, i),
            p50_log_ratio: quantile_log_ratio(&old.phase_hist[i], &new.phase_hist[i], 50.0),
            p99_log_ratio: quantile_log_ratio(&old.phase_hist[i], &new.phase_hist[i], 99.0),
        })
        .collect();
    RollupDelta {
        name: name.to_string(),
        old_ops: old.ops,
        new_ops: new.ops,
        old_p50_ns: old.latency_hist.percentile(50.0),
        new_p50_ns: new.latency_hist.percentile(50.0),
        old_p99_ns: old.latency_hist.percentile(99.0),
        new_p99_ns: new.latency_hist.percentile(99.0),
        p50_log_ratio: quantile_log_ratio(&old.latency_hist, &new.latency_hist, 50.0),
        p99_log_ratio: quantile_log_ratio(&old.latency_hist, &new.latency_hist, 99.0),
        phases,
    }
}

/// Comparison of one workload cell between two builds.
#[derive(Debug, Clone)]
pub struct CellDiff {
    /// Cell name ("2Lu-1G two-way").
    pub cell: String,
    /// The larger of the two artifacts' recorded cross-seed spreads.
    pub noise_bound: f64,
    /// The effective movement threshold
    /// (`max(noise_floor, noise_mult × noise_bound)`).
    pub threshold: f64,
    /// The verdict.
    pub verdict: Verdict,
    /// One-line triage summary naming the dominant phase and layer.
    pub headline: String,
    /// Overall rollup movement.
    pub overall: RollupDelta,
    /// Per-connection movement (keys present in both artifacts).
    pub per_conn: Vec<RollupDelta>,
    /// Per-rail movement (keys present in both artifacts).
    pub per_rail: Vec<RollupDelta>,
}

struct AttrDoc {
    overall: PhaseRollup,
    per_conn: Vec<(String, PhaseRollup)>,
    per_rail: Vec<(String, PhaseRollup)>,
}

fn parse_attr(doc: &Json) -> Result<AttrDoc, String> {
    let a = if doc.get("overall").is_some() {
        doc
    } else {
        doc.get("attribution")
            .ok_or("document has no attribution section")?
    };
    let overall = PhaseRollup::from_json(a.get("overall").ok_or("attribution missing 'overall'")?)?;
    let section = |key: &str| -> Result<Vec<(String, PhaseRollup)>, String> {
        match a.get(key) {
            None => Ok(Vec::new()),
            Some(m) => m
                .entries()
                .ok_or_else(|| format!("attribution '{key}' is not an object"))?
                .iter()
                .map(|(k, v)| PhaseRollup::from_json(v).map(|r| (k.clone(), r)))
                .collect(),
        }
    };
    Ok(AttrDoc {
        overall,
        per_conn: section("per_conn")?,
        per_rail: section("per_rail")?,
    })
}

/// The artifact's recorded cross-seed spread (0 when absent, e.g. flight
/// dumps or single-round artifacts).
fn doc_noise(doc: &Json) -> f64 {
    let g = |k: &str| {
        doc.get("noise")
            .and_then(|n| n.get(k))
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0)
    };
    g("latency_p50_rel").max(g("latency_p99_rel"))
}

/// Diff one cell: two documents each carrying an attribution section for
/// the *same* configured workload.
pub fn diff_cell(name: &str, old_doc: &Json, new_doc: &Json, cfg: &DiffConfig) -> Result<CellDiff, String> {
    let old = parse_attr(old_doc)?;
    let new = parse_attr(new_doc)?;
    let noise_bound = doc_noise(old_doc).max(doc_noise(new_doc));
    let threshold = cfg.noise_floor.max(cfg.noise_mult * noise_bound);
    let overall = diff_rollups("overall", &old.overall, &new.overall);
    let pair = |olds: &[(String, PhaseRollup)], news: &[(String, PhaseRollup)]| {
        olds.iter()
            .filter_map(|(k, o)| {
                news.iter()
                    .find(|(k2, _)| k2 == k)
                    .map(|(_, n)| diff_rollups(k, o, n))
            })
            .collect::<Vec<_>>()
    };
    let per_conn = pair(&old.per_conn, &new.per_conn);
    let per_rail = pair(&old.per_rail, &new.per_rail);
    let (verdict, headline) = judge(name, &overall, threshold);
    Ok(CellDiff {
        cell: name.to_string(),
        noise_bound,
        threshold,
        verdict,
        headline,
        overall,
        per_conn,
        per_rail,
    })
}

fn judge(cell: &str, overall: &RollupDelta, threshold: f64) -> (Verdict, String) {
    if overall.old_ops != overall.new_ops {
        return (
            Verdict::Regressed,
            format!(
                "{cell}: op count changed {} → {} — runs not comparable",
                overall.old_ops, overall.new_ops
            ),
        );
    }
    if overall.old_ops == 0 {
        return (
            Verdict::Unchanged,
            format!("{cell}: no completed ops on either side"),
        );
    }
    let s50 = rel_shift(overall.p50_log_ratio);
    let s99 = rel_shift(overall.p99_log_ratio);
    let (which, worst) = if s99.abs() >= s50.abs() {
        ("p99", s99)
    } else {
        ("p50", s50)
    };
    if worst > threshold {
        let dom = match overall.dominant(false) {
            Some(d) => format!(", dominated by +{} ({})", d.phase.label(), layer(d.phase)),
            None => String::new(),
        };
        (
            Verdict::Regressed,
            format!("{cell}: {which} regressed {:.0}%{dom}", worst * 100.0),
        )
    } else if worst < -threshold {
        let dom = match overall.dominant(true) {
            Some(d) => format!(", mostly -{} ({})", d.phase.label(), layer(d.phase)),
            None => String::new(),
        };
        (
            Verdict::Improved,
            format!("{cell}: {which} improved {:.0}%{dom}", -worst * 100.0),
        )
    } else {
        (
            Verdict::Unchanged,
            format!(
                "{cell}: within noise (p50 {:+.1}%, p99 {:+.1}%, bound ±{:.1}%)",
                s50 * 100.0,
                s99 * 100.0,
                threshold * 100.0
            ),
        )
    }
}

/// A full diff between two artifacts, cell by cell.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Compared cells, in the old document's order.
    pub cells: Vec<CellDiff>,
    /// Cells present in the old document but absent from the new one.
    pub missing: Vec<String>,
}

impl DiffReport {
    /// True when any compared cell regressed (the CI gate condition).
    pub fn regressed(&self) -> bool {
        self.cells.iter().any(|c| c.verdict == Verdict::Regressed)
    }

    /// Machine output (`me-inspect diff --json`, the committed CI
    /// artifact).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("schema_version", SCHEMA_VERSION)
            .set("kind", "multiedge_attribution_diff")
            .set("regressed", self.regressed())
            .set(
                "missing_cells",
                self.missing.iter().map(|s| Json::from(s.as_str())).collect::<Vec<_>>(),
            )
            .set("cells", self.cells.iter().map(cell_json).collect::<Vec<_>>())
    }

    /// The human phase-delta tables.
    pub fn render_human(&self, cfg: &DiffConfig) -> String {
        let mut out = String::new();
        for c in &self.cells {
            render_cell(&mut out, c, cfg);
        }
        for m in &self.missing {
            out.push_str(&format!("cell '{m}' missing from the new document (skipped)\n"));
        }
        let verdict = if self.regressed() { "REGRESSED" } else { "clean" };
        out.push_str(&format!(
            "\ntriage: {} cell(s) compared, result {verdict}\n",
            self.cells.len()
        ));
        out
    }
}

fn cell_json(c: &CellDiff) -> Json {
    let rollup = |d: &RollupDelta| {
        let mut phases = Json::obj();
        for p in &d.phases {
            phases = phases.set(
                p.phase.label(),
                Json::obj()
                    .set("layer", layer(p.phase))
                    .set("old_total_ns", p.old_total_ns)
                    .set("new_total_ns", p.new_total_ns)
                    .set("old_fraction", p.old_fraction)
                    .set("new_fraction", p.new_fraction)
                    .set("mass_delta", p.mass_delta)
                    .set("growth_per_op_ns", p.growth_per_op_ns)
                    .set("p50_shift", rel_shift(p.p50_log_ratio))
                    .set("p99_shift", rel_shift(p.p99_log_ratio)),
            );
        }
        Json::obj()
            .set("name", d.name.as_str())
            .set("old_ops", d.old_ops)
            .set("new_ops", d.new_ops)
            .set("old_latency_p50_ns", d.old_p50_ns)
            .set("new_latency_p50_ns", d.new_p50_ns)
            .set("old_latency_p99_ns", d.old_p99_ns)
            .set("new_latency_p99_ns", d.new_p99_ns)
            .set("latency_p50_shift", rel_shift(d.p50_log_ratio))
            .set("latency_p99_shift", rel_shift(d.p99_log_ratio))
            .set("phases", phases)
    };
    Json::obj()
        .set("cell", c.cell.as_str())
        .set("verdict", c.verdict.label())
        .set("headline", c.headline.as_str())
        .set("noise_bound", c.noise_bound)
        .set("threshold", c.threshold)
        .set("overall", rollup(&c.overall))
        .set(
            "per_conn",
            c.per_conn.iter().map(&rollup).collect::<Vec<_>>(),
        )
        .set(
            "per_rail",
            c.per_rail.iter().map(&rollup).collect::<Vec<_>>(),
        )
}

fn render_cell(out: &mut String, c: &CellDiff, cfg: &DiffConfig) {
    out.push_str(&format!(
        "== {} ==  {}  (noise bound ±{:.1}%)\n",
        c.cell,
        c.verdict.label(),
        c.threshold * 100.0
    ));
    out.push_str(&format!("   {}\n", c.headline));
    out.push_str(&format!(
        "   latency: p50 {} -> {} ({:+.1}%)   p99 {} -> {} ({:+.1}%)\n",
        fmt_ns(c.overall.old_p50_ns),
        fmt_ns(c.overall.new_p50_ns),
        rel_shift(c.overall.p50_log_ratio) * 100.0,
        fmt_ns(c.overall.old_p99_ns),
        fmt_ns(c.overall.new_p99_ns),
        rel_shift(c.overall.p99_log_ratio) * 100.0,
    ));
    let mut rows: Vec<&PhaseDelta> = c
        .overall
        .phases
        .iter()
        .filter(|p| p.old_total_ns > 0 || p.new_total_ns > 0)
        .filter(|p| p.mass_delta.abs() >= cfg.min_mass_pp || p.growth_per_op_ns != 0.0)
        .collect();
    rows.sort_by(|a, b| b.growth_per_op_ns.abs().total_cmp(&a.growth_per_op_ns.abs()));
    if !rows.is_empty() {
        out.push_str(&format!(
            "   {:<13} {:>7} {:>7} {:>8} {:>12}  layer\n",
            "phase", "old", "new", "Δmass", "per-op Δ"
        ));
        for p in rows {
            out.push_str(&format!(
                "   {:<13} {:>6.1}% {:>6.1}% {:>+7.1}pp {:>12}  {}\n",
                p.phase.label(),
                p.old_fraction * 100.0,
                p.new_fraction * 100.0,
                p.mass_delta * 100.0,
                fmt_signed_ns(p.growth_per_op_ns),
                layer(p.phase),
            ));
        }
    }
    for (section, rollups) in [("conn", &c.per_conn), ("rail", &c.per_rail)] {
        for d in rollups.iter() {
            let dom = d
                .dominant(rel_shift(d.p99_log_ratio) < 0.0)
                .map(|p| format!("  dominant {}{}", if p.growth_per_op_ns > 0.0 { "+" } else { "-" }, p.phase.label()))
                .unwrap_or_default();
            out.push_str(&format!(
                "   {section} {:<8} p50 {:+.1}%  p99 {:+.1}%{dom}\n",
                d.name,
                rel_shift(d.p50_log_ratio) * 100.0,
                rel_shift(d.p99_log_ratio) * 100.0,
            ));
        }
    }
    out.push('\n');
}

/// Diff two artifacts end to end: schema-check both, pair their cells (by
/// `config` + `workload` when present), and compare every pair. Errors on
/// schema mismatch, unparsable attribution sections, or zero matching
/// cells.
pub fn diff_docs(old: &Json, new: &Json, cfg: &DiffConfig) -> Result<DiffReport, String> {
    require_schema(old).map_err(|e| format!("old document: {e}"))?;
    require_schema(new).map_err(|e| format!("new document: {e}"))?;
    let old_cells = collect_cells(old);
    let new_cells = collect_cells(new);
    let mut cells = Vec::new();
    let mut missing = Vec::new();
    for (name, oc) in &old_cells {
        match new_cells.iter().find(|(n, _)| n == name) {
            Some((_, nc)) => cells.push(diff_cell(name, oc, nc, cfg)?),
            None => missing.push(name.clone()),
        }
    }
    if cells.is_empty() {
        return Err("no matching cells between the two documents".into());
    }
    Ok(DiffReport { cells, missing })
}

/// A document is either one cell or a `cells` array (the
/// `BENCH_attribution.json` shape).
fn collect_cells(doc: &Json) -> Vec<(String, &Json)> {
    if let Some(items) = doc.get("cells").and_then(|c| c.items()) {
        return items.iter().map(|c| (cell_name(c), c)).collect();
    }
    vec![(cell_name(doc), doc)]
}

fn cell_name(doc: &Json) -> String {
    match (
        doc.get("config").and_then(|v| v.as_str()),
        doc.get("workload").and_then(|v| v.as_str()),
    ) {
        (Some(c), Some(w)) => format!("{c} {w}"),
        (Some(c), None) => c.to_string(),
        _ => "attribution".to_string(),
    }
}

/// Adaptive time unit: ns under 1 µs, µs under 1 ms, else ms.
fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{:.2}ms", ns as f64 / 1e6)
    }
}

fn fmt_signed_ns(ns: f64) -> String {
    let sign = if ns < 0.0 { "-" } else { "+" };
    format!("{sign}{}", fmt_ns(ns.abs().round() as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A rollup whose latency lives entirely in `phase`, one op per value.
    fn rollup(lat_per_op: &[u64], phase: Phase) -> PhaseRollup {
        let mut r = PhaseRollup::default();
        for &l in lat_per_op {
            r.ops += 1;
            r.bytes += 4096;
            r.latency_total_ns += l;
            r.latency_hist.record(l);
            for (i, _) in PHASES.iter().enumerate() {
                let v = if i == phase.idx() { l } else { 0 };
                r.phase_total_ns[i] += v;
                r.phase_hist[i].record(v);
            }
        }
        r
    }

    fn doc(config: &str, workload: &str, r: &PhaseRollup, noise: f64) -> Json {
        Json::obj()
            .set("schema_version", SCHEMA_VERSION)
            .set("config", config)
            .set("workload", workload)
            .set(
                "noise",
                Json::obj()
                    .set("latency_p50_rel", noise)
                    .set("latency_p99_rel", noise),
            )
            .set(
                "attribution",
                Json::obj()
                    .set("overall", r.to_json())
                    .set("per_conn", Json::obj().set("n0c0", r.to_json()))
                    .set("per_rail", Json::obj()),
            )
    }

    #[test]
    fn every_phase_has_a_layer() {
        for p in PHASES {
            assert!(!layer(p).is_empty());
        }
    }

    #[test]
    fn identical_documents_are_unchanged_with_zero_deltas() {
        let r = rollup(&[100_000, 120_000, 500_000], Phase::Wire);
        let d = doc("1L-1G", "one-way", &r, 0.02);
        let report = diff_docs(&d, &d.clone(), &DiffConfig::default()).unwrap();
        assert!(!report.regressed());
        let c = &report.cells[0];
        assert_eq!(c.verdict, Verdict::Unchanged);
        assert_eq!(c.cell, "1L-1G one-way");
        assert_eq!(c.overall.p50_log_ratio, 0.0);
        assert_eq!(c.overall.p99_log_ratio, 0.0);
        for p in &c.overall.phases {
            assert_eq!(p.mass_delta, 0.0, "{}", p.phase.label());
            assert_eq!(p.growth_per_op_ns, 0.0);
        }
        assert_eq!(c.per_conn.len(), 1);
    }

    #[test]
    fn injected_phase_growth_is_named_in_the_headline() {
        let old = rollup(&[100_000, 110_000, 120_000, 130_000], Phase::Wire);
        // Same op count, ~3x slower, the growth entirely in reorder.
        let mut grown = rollup(&[100_000, 110_000, 120_000, 130_000], Phase::Wire);
        let extra = rollup(&[250_000, 250_000, 250_000, 250_000], Phase::Reorder);
        for i in 0..PHASES.len() {
            grown.phase_total_ns[i] += extra.phase_total_ns[i];
            grown.phase_hist[i].merge(&extra.phase_hist[i]);
        }
        // Rebuild the latency side consistently: each op now ~350us.
        let mut new = PhaseRollup {
            ops: grown.ops,
            bytes: grown.bytes,
            phase_total_ns: grown.phase_total_ns,
            phase_hist: grown.phase_hist.clone(),
            ..PhaseRollup::default()
        };
        for l in [350_000u64, 360_000, 370_000, 380_000] {
            new.latency_total_ns += l;
            new.latency_hist.record(l);
        }
        // Phase totals need to telescope for from_json; align them.
        let drift = new.latency_total_ns as i64 - new.phase_sum_ns() as i64;
        new.phase_total_ns[Phase::Reorder.idx()] =
            (new.phase_total_ns[Phase::Reorder.idx()] as i64 + drift) as u64;

        let od = doc("2Lu-1G", "two-way", &old, 0.02);
        let nd = doc("2Lu-1G", "two-way", &new, 0.02);
        let report = diff_docs(&od, &nd, &DiffConfig::default()).unwrap();
        assert!(report.regressed());
        let c = &report.cells[0];
        assert_eq!(c.verdict, Verdict::Regressed);
        assert!(
            c.headline.contains("+reorder (ordering)"),
            "headline must name the phase: {}",
            c.headline
        );
        assert!(c.headline.starts_with("2Lu-1G two-way:"), "{}", c.headline);
        // Reversed direction reads as an improvement of the same phase.
        let rev = diff_docs(&nd, &od, &DiffConfig::default()).unwrap();
        assert_eq!(rev.cells[0].verdict, Verdict::Improved);
        assert!(rev.cells[0].headline.contains("-reorder"), "{}", rev.cells[0].headline);
    }

    #[test]
    fn op_count_drift_is_flagged_as_incomparable() {
        let old = rollup(&[100_000, 120_000], Phase::Wire);
        let new = rollup(&[100_000, 120_000, 140_000], Phase::Wire);
        let report = diff_docs(
            &doc("1L-1G", "one-way", &old, 0.0),
            &doc("1L-1G", "one-way", &new, 0.0),
            &DiffConfig::default(),
        )
        .unwrap();
        assert!(report.regressed());
        assert!(report.cells[0].headline.contains("op count changed"));
    }

    #[test]
    fn shifts_inside_the_noise_bound_are_unchanged() {
        let old = rollup(&[100_000; 8], Phase::Wire);
        let new = rollup(&[104_000; 8], Phase::Wire); // +4% < 5% floor
        let report = diff_docs(
            &doc("1L-1G", "one-way", &old, 0.0),
            &doc("1L-1G", "one-way", &new, 0.0),
            &DiffConfig::default(),
        )
        .unwrap();
        assert_eq!(report.cells[0].verdict, Verdict::Unchanged);
        // A recorded 10% spread widens the bound past a 12% shift at
        // noise_mult 1.5 → still a regression; at 20% spread it is not.
        let bumped = rollup(&[112_000; 8], Phase::Wire);
        let r1 = diff_docs(
            &doc("1L-1G", "one-way", &old, 0.01),
            &doc("1L-1G", "one-way", &bumped, 0.01),
            &DiffConfig::default(),
        )
        .unwrap();
        assert_eq!(r1.cells[0].verdict, Verdict::Regressed);
        let r2 = diff_docs(
            &doc("1L-1G", "one-way", &old, 0.20),
            &doc("1L-1G", "one-way", &bumped, 0.01),
            &DiffConfig::default(),
        )
        .unwrap();
        assert_eq!(r2.cells[0].verdict, Verdict::Unchanged);
    }

    #[test]
    fn schema_is_enforced_on_both_sides() {
        let r = rollup(&[100_000], Phase::Wire);
        let good = doc("1L-1G", "one-way", &r, 0.0);
        let mut bad = good.clone();
        if let Json::Obj(fields) = &mut bad {
            fields.retain(|(k, _)| k != "schema_version");
        }
        let err = diff_docs(&bad, &good, &DiffConfig::default()).unwrap_err();
        assert!(err.contains("old document"), "{err}");
        let err = diff_docs(&good, &bad, &DiffConfig::default()).unwrap_err();
        assert!(err.contains("new document"), "{err}");
    }

    #[test]
    fn cells_arrays_pair_by_config_and_workload() {
        let r = rollup(&[100_000], Phase::Wire);
        let cell = |c: &str, w: &str| doc(c, w, &r, 0.0);
        let multi = |cells: Vec<Json>| {
            Json::obj()
                .set("schema_version", SCHEMA_VERSION)
                .set("cells", cells)
        };
        let old = multi(vec![cell("A", "one-way"), cell("B", "two-way")]);
        let new = multi(vec![cell("B", "two-way")]);
        let report = diff_docs(&old, &new, &DiffConfig::default()).unwrap();
        assert_eq!(report.cells.len(), 1);
        assert_eq!(report.cells[0].cell, "B two-way");
        assert_eq!(report.missing, vec!["A one-way".to_string()]);
        let human = report.render_human(&DiffConfig::default());
        assert!(human.contains("missing from the new document"));
        // Machine output round-trips through the parser.
        let j = report.to_json();
        assert!(Json::parse(&j.render_pretty()).is_ok());
        assert_eq!(j.get("regressed"), Some(&Json::Bool(false)));
    }
}
