//! Reporters: human-readable summary/timeline and the JSON form consumed by
//! the bench harnesses.

use crate::hist::LogHistogram;
use crate::json::Json;
use crate::tracer::TraceSnapshot;
use std::collections::BTreeMap;

/// Percentiles every report quotes, in order.
const REPORT_PERCENTILES: [(&str, f64); 4] =
    [("p50", 50.0), ("p90", 90.0), ("p99", 99.0), ("p999", 99.9)];

fn hist_line(name: &str, h: &LogHistogram) -> String {
    format!(
        "  {name:<24} n={:<8} min={:<10} p50={:<10} p99={:<10} max={:<10} mean={:.1} ns",
        h.count(),
        h.min(),
        h.percentile(50.0),
        h.percentile(99.0),
        h.max(),
        h.mean()
    )
}

/// Human-readable roll-up: event counts by kind, then every histogram with
/// its headline percentiles.
pub fn summary(snap: &TraceSnapshot) -> String {
    let mut out = String::new();
    out.push_str("trace summary\n");
    out.push_str(&format!(
        "  events retained: {} (plus {} overwritten by ring wraparound)\n",
        snap.events.len(),
        snap.overwritten
    ));
    let mut by_kind: BTreeMap<&'static str, u64> = BTreeMap::new();
    for e in &snap.events {
        *by_kind.entry(e.kind.label()).or_default() += 1;
    }
    for (label, n) in &by_kind {
        out.push_str(&format!("  {label:<16} {n}\n"));
    }
    if !snap.op_latency.is_empty() {
        out.push_str("op latency (issue -> completion), per connection:\n");
        for (conn, h) in &snap.op_latency {
            out.push_str(&hist_line(&format!("conn {conn}"), h));
            out.push('\n');
        }
    }
    if !snap.wire_time.is_empty() {
        out.push_str("frame wire time, per link:\n");
        for (link, h) in &snap.wire_time {
            out.push_str(&hist_line(&format!("link {link}"), h));
            out.push('\n');
        }
    }
    if !snap.fence_stall.is_empty() {
        out.push_str("fence stall duration, per connection:\n");
        for (conn, h) in &snap.fence_stall {
            out.push_str(&hist_line(&format!("conn {conn}"), h));
            out.push('\n');
        }
    }
    out
}

/// Human-readable dump of the last `max_events` events, oldest first.
pub fn timeline(snap: &TraceSnapshot, max_events: usize) -> String {
    let mut out = String::new();
    let skip = snap.events.len().saturating_sub(max_events);
    if snap.overwritten > 0 || skip > 0 {
        out.push_str(&format!(
            "... {} earlier events not shown ...\n",
            snap.overwritten + skip as u64
        ));
    }
    for e in snap.events.iter().skip(skip) {
        out.push_str(&e.render());
        out.push('\n');
    }
    out
}

/// JSON form of one histogram: count/min/max/mean plus the headline
/// percentiles and the raw non-empty buckets (for re-aggregation).
pub fn hist_to_json(h: &LogHistogram) -> Json {
    let mut j = Json::obj()
        .set("count", h.count())
        .set("min_ns", h.min())
        .set("max_ns", h.max())
        .set("mean_ns", h.mean());
    for (name, p) in REPORT_PERCENTILES {
        j = j.set(&format!("{name}_ns"), h.percentile(p));
    }
    let buckets: Vec<Json> = h
        .nonzero_buckets()
        .into_iter()
        .map(|(floor, count)| Json::Arr(vec![Json::from(floor), Json::from(count)]))
        .collect();
    j.set("buckets", buckets)
}

fn hist_map_to_json(map: &BTreeMap<u32, LogHistogram>) -> Json {
    let mut obj = Json::obj();
    for (k, h) in map {
        obj = obj.set(&k.to_string(), hist_to_json(h));
    }
    obj
}

/// JSON form of a whole snapshot: per-kind event counts, the retained
/// timeline, and all histogram families. This is what lands inside the
/// bench crate's `BENCH_*.json` files.
pub fn snapshot_to_json(snap: &TraceSnapshot) -> Json {
    let mut by_kind: BTreeMap<&'static str, u64> = BTreeMap::new();
    for e in &snap.events {
        *by_kind.entry(e.kind.label()).or_default() += 1;
    }
    let mut counts = Json::obj();
    for (label, n) in &by_kind {
        counts = counts.set(label, *n);
    }
    let events: Vec<Json> = snap
        .events
        .iter()
        .map(|e| {
            let mut j = Json::obj()
                .set("t_ns", e.t_ns)
                .set("kind", e.kind.label());
            if let Some(c) = e.conn {
                j = j.set("conn", c);
            }
            if let Some(l) = e.link {
                j = j.set("link", l);
            }
            j
        })
        .collect();
    Json::obj()
        .set("events_retained", snap.events.len())
        .set("events_overwritten", snap.overwritten)
        .set("event_counts", counts)
        .set("op_latency_ns_by_conn", hist_map_to_json(&snap.op_latency))
        .set("wire_time_ns_by_link", hist_map_to_json(&snap.wire_time))
        .set(
            "fence_stall_ns_by_conn",
            hist_map_to_json(&snap.fence_stall),
        )
        .set("events", events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::Tracer;

    #[test]
    fn summary_and_json_cover_all_sections() {
        let t = Tracer::enabled(16);
        t.emit(5, Some(0), None, EventKind::OpIssue { op: 1 });
        t.emit(
            9,
            Some(0),
            Some(2),
            EventKind::FrameSend {
                seq: 0,
                retransmit: false,
            },
        );
        t.op_latency(0, 30_000);
        t.wire_time(2, 12_000);
        t.fence_stall(0, 800);
        let snap = t.snapshot().unwrap();
        let s = summary(&snap);
        assert!(s.contains("op_issue"), "{s}");
        assert!(s.contains("frame wire time"), "{s}");
        let j = snapshot_to_json(&snap).render();
        assert!(j.contains("\"op_latency_ns_by_conn\""), "{j}");
        assert!(j.contains("\"p99_ns\""), "{j}");
        let tl = timeline(&snap, 1);
        assert!(tl.contains("frame_send"), "{tl}");
        assert!(tl.contains("earlier events"), "{tl}");
    }
}
