//! The recording handle threaded through the protocol and the simulator.

use crate::event::{Event, EventKind};
use crate::hist::LogHistogram;
use crate::ring::EventRing;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Shared mutable trace state (single-threaded simulator, so `Rc<RefCell>`).
struct TraceState {
    ring: EventRing,
    op_latency: BTreeMap<u32, LogHistogram>,
    wire_time: BTreeMap<u32, LogHistogram>,
    fence_stall: BTreeMap<u32, LogHistogram>,
}

/// Cheaply cloneable tracing handle.
///
/// A disabled tracer is a `None`: every record method is one branch and
/// returns — no allocation, no locking — so instrumentation can stay
/// permanently in the hot paths. All clones of an enabled tracer share the
/// same ring and histograms, which is what lets the `Endpoint`, the link
/// scheduler and `netsim`'s interrupt path write into a single timeline.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Rc<RefCell<TraceState>>>,
}

impl Tracer {
    /// A tracer that records nothing (the production default).
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// A tracer keeping the latest `ring_capacity` events plus all
    /// histograms.
    pub fn enabled(ring_capacity: usize) -> Self {
        Tracer {
            inner: Some(Rc::new(RefCell::new(TraceState {
                ring: EventRing::new(ring_capacity),
                op_latency: BTreeMap::new(),
                wire_time: BTreeMap::new(),
                fence_stall: BTreeMap::new(),
            }))),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Record a typed event at simulation time `t_ns`.
    pub fn emit(&self, t_ns: u64, conn: Option<u32>, link: Option<u32>, kind: EventKind) {
        if let Some(state) = &self.inner {
            state.borrow_mut().ring.push(Event {
                t_ns,
                conn,
                link,
                kind,
            });
        }
    }

    /// Record an op issue→completion latency sample for `conn`.
    pub fn op_latency(&self, conn: u32, ns: u64) {
        if let Some(state) = &self.inner {
            state
                .borrow_mut()
                .op_latency
                .entry(conn)
                .or_default()
                .record(ns);
        }
    }

    /// Record a frame's wire time (serialization + latency + jitter +
    /// queueing) on link `link`.
    pub fn wire_time(&self, link: u32, ns: u64) {
        if let Some(state) = &self.inner {
            state
                .borrow_mut()
                .wire_time
                .entry(link)
                .or_default()
                .record(ns);
        }
    }

    /// Record how long a fence held a fragment back on `conn`.
    pub fn fence_stall(&self, conn: u32, ns: u64) {
        if let Some(state) = &self.inner {
            state
                .borrow_mut()
                .fence_stall
                .entry(conn)
                .or_default()
                .record(ns);
        }
    }

    /// Copy the current state out for reporting; `None` when disabled.
    pub fn snapshot(&self) -> Option<TraceSnapshot> {
        self.inner.as_ref().map(|state| {
            let s = state.borrow();
            TraceSnapshot {
                events: s.ring.events(),
                overwritten: s.ring.overwritten(),
                op_latency: s.op_latency.clone(),
                wire_time: s.wire_time.clone(),
                fence_stall: s.fence_stall.clone(),
            }
        })
    }
}

/// An owned copy of everything a tracer has recorded, used by the
/// reporters in [`crate::report`] and by tests.
#[derive(Clone, Debug)]
pub struct TraceSnapshot {
    /// The retained events, oldest first.
    pub events: Vec<Event>,
    /// Events lost to ring wraparound before the oldest retained one.
    pub overwritten: u64,
    /// Op issue→completion latency per connection id.
    pub op_latency: BTreeMap<u32, LogHistogram>,
    /// Frame wire time per link id.
    pub wire_time: BTreeMap<u32, LogHistogram>,
    /// Fence-stall duration per connection id.
    pub fence_stall: BTreeMap<u32, LogHistogram>,
}

impl TraceSnapshot {
    /// Count of retained events matching `pred`.
    pub fn count_events(&self, pred: impl Fn(&EventKind) -> bool) -> u64 {
        self.events.iter().filter(|e| pred(&e.kind)).count() as u64
    }

    /// All per-connection op-latency histograms merged into one.
    pub fn op_latency_merged(&self) -> LogHistogram {
        let mut all = LogHistogram::new();
        for h in self.op_latency.values() {
            all.merge(h);
        }
        all
    }
}
