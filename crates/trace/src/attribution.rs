//! Critical-path latency attribution over completed [`OpSpan`]s.
//!
//! Each completed span's milestones are clamped into a monotone chain and
//! differenced into **exclusive phases**: every nanosecond of
//! `complete - created` lands in exactly one phase, so per-phase sums
//! telescope *exactly* back to the op's measured latency (the property the
//! attribution proptests pin). Phases roll up per connection and per rail
//! into mergeable [`LogHistogram`]s and render as the
//! `BENCH_attribution.json` artifact.
//!
//! The taxonomy is a superset of the seven-phase split in the issue: the
//! wire-facing phases (send-window stall, rail queueing, wire time,
//! retransmit repair, reorder wait, fence stall, ACK return) are joined by
//! host-side bookends (issue cost, receive processing, ack trigger delay,
//! completion wake) so the telescoping is airtight end to end.

use crate::hist::LogHistogram;
use crate::json::Json;
use crate::span::{OpSpan, SpanKind, SpanSnapshot};
use std::collections::BTreeMap;

/// Exclusive latency phases, in causal order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Issue-path CPU: application call to frames queued.
    HostIssue,
    /// Waiting for send-window credit (first critical transmission held
    /// back; for reads also the target-side response queue delay).
    SendWindow,
    /// Repair time: first to last transmission of the critical frame.
    Retransmit,
    /// NIC transmit backlog ahead of the deciding transmission.
    RailQueue,
    /// Propagation + serialization of the deciding transmission.
    Wire,
    /// Receive-path CPU: NIC delivery to sequence admission.
    RxProcess,
    /// Admitted but waiting for earlier sequences (reorder buffer).
    Reorder,
    /// Fence-induced stall on the op's completion path.
    Fence,
    /// Receiver had the data but had not yet emitted a covering ack.
    AckDelay,
    /// The covering ack's flight back to the sender.
    AckReturn,
    /// Sender-side completion dispatch and application wake.
    CompleteWake,
}

/// All phases, in causal order (stable for JSON column ordering).
pub const PHASES: [Phase; 11] = [
    Phase::HostIssue,
    Phase::SendWindow,
    Phase::Retransmit,
    Phase::RailQueue,
    Phase::Wire,
    Phase::RxProcess,
    Phase::Reorder,
    Phase::Fence,
    Phase::AckDelay,
    Phase::AckReturn,
    Phase::CompleteWake,
];

impl Phase {
    /// Stable snake_case label (JSON keys, report columns).
    pub fn label(&self) -> &'static str {
        match self {
            Phase::HostIssue => "host_issue",
            Phase::SendWindow => "send_window",
            Phase::Retransmit => "retransmit",
            Phase::RailQueue => "rail_queue",
            Phase::Wire => "wire",
            Phase::RxProcess => "rx_process",
            Phase::Reorder => "reorder",
            Phase::Fence => "fence",
            Phase::AckDelay => "ack_delay",
            Phase::AckReturn => "ack_return",
            Phase::CompleteWake => "complete_wake",
        }
    }

    /// Index into [`PHASES`]-shaped arrays.
    pub fn idx(&self) -> usize {
        PHASES.iter().position(|p| p == self).expect("phase listed")
    }
}

/// One op's exclusive phase durations (ns). Produced by
/// [`PhaseBreakdown::from_span`]; `phases` always sums to `latency_ns`.
#[derive(Debug, Clone, Copy)]
pub struct PhaseBreakdown {
    /// The analyzed span (copied for rail/conn attribution downstream).
    pub span: OpSpan,
    /// `complete - created` (ns).
    pub latency_ns: u64,
    /// Exclusive durations, indexed like [`PHASES`].
    pub phases: [u64; PHASES.len()],
}

impl PhaseBreakdown {
    /// Attribute one completed span. Milestones are first clamped into a
    /// monotone chain (an unstamped milestone collapses onto its
    /// predecessor, yielding a zero-width phase), then differenced; the
    /// fence share of a wait is carved out of the enclosing hold, never
    /// added on top — so the total telescopes exactly.
    pub fn from_span(span: &OpSpan) -> Self {
        let mut phases = [0u64; PHASES.len()];
        let mut add = |p: Phase, ns: u64| phases[p.idx()] += ns;

        // Clamp into a monotone chain starting at `created`.
        let created = span.created;
        let issue = span.issue.max(created);
        let first_tx = span.first_tx.max(issue);
        let last_tx = span.last_tx.max(first_tx);
        let arrival = span.arrival.max(last_tx);
        let admit = span.admit.max(arrival);

        add(Phase::HostIssue, issue - created);
        add(Phase::SendWindow, first_tx - issue);
        add(Phase::Retransmit, last_tx - first_tx);
        let queue = span.tx_queue.min(arrival - last_tx);
        add(Phase::RailQueue, queue);
        add(Phase::Wire, arrival - last_tx - queue);
        add(Phase::RxProcess, admit - arrival);

        let end = match span.kind {
            SpanKind::Write => {
                // admit ≤ cum ≤ ack_tx ≤ ack_rx ≤ complete
                let cum = span.cum.max(admit);
                let ack_tx = span.ack_tx.max(cum);
                let ack_rx = span.ack_rx.max(ack_tx);
                add(Phase::Reorder, cum - admit);
                add(Phase::AckDelay, ack_tx - cum);
                // A lost covering ack is repaired by a later one; the
                // repair rides in AckReturn (ack_tx stays the first
                // emission).
                add(Phase::AckReturn, ack_rx - ack_tx);
                ack_rx
            }
            SpanKind::Read => {
                // admit ≤ serve ≤ resp_first_tx ≤ resp_last_tx ≤
                // resp_arrival ≤ resp_admit ≤ released ≤ complete
                let serve = span.serve.max(admit);
                let resp_first_tx = span.resp_first_tx.max(serve);
                let resp_last_tx = span.resp_last_tx.max(resp_first_tx);
                let resp_arrival = span.resp_arrival.max(resp_last_tx);
                let resp_admit = span.resp_admit.max(resp_arrival);
                let released = span.released.max(resp_admit);

                // Request held at the target before service: the fence
                // share is carved out of the hold, the rest is reorder.
                let hold = serve - admit;
                let fence_req = span.fence_req_ns.min(hold);
                add(Phase::Fence, fence_req);
                add(Phase::Reorder, hold - fence_req);

                add(Phase::SendWindow, resp_first_tx - serve);
                add(Phase::Retransmit, resp_last_tx - resp_first_tx);
                let rq = span.resp_queue.min(resp_arrival - resp_last_tx);
                add(Phase::RailQueue, rq);
                add(Phase::Wire, resp_arrival - resp_last_tx - rq);
                add(Phase::RxProcess, resp_admit - resp_arrival);

                let hold = released - resp_admit;
                let fence_resp = span.fence_resp_ns.min(hold);
                add(Phase::Fence, fence_resp);
                add(Phase::Reorder, hold - fence_resp);
                released
            }
        };
        let complete = span.complete.max(end);
        add(Phase::CompleteWake, complete - end);

        PhaseBreakdown {
            span: *span,
            latency_ns: complete - created,
            phases,
        }
    }
}

/// Mergeable rollup of breakdowns (per connection, per rail, overall).
#[derive(Debug, Clone, Default)]
pub struct PhaseRollup {
    /// Ops folded in.
    pub ops: u64,
    /// Payload bytes across those ops.
    pub bytes: u64,
    /// Retransmitted frame transmissions across those ops.
    pub retransmits: u64,
    /// Sum of op latencies (ns) — always equals the sum of `phase_total`.
    pub latency_total_ns: u64,
    /// Op latency distribution.
    pub latency_hist: LogHistogram,
    /// Per-phase exclusive totals (ns), indexed like [`PHASES`].
    pub phase_total_ns: [u64; PHASES.len()],
    /// Per-phase distributions over ops.
    pub phase_hist: [LogHistogram; PHASES.len()],
}

impl PhaseRollup {
    /// Fold one breakdown in.
    pub fn add(&mut self, b: &PhaseBreakdown) {
        self.ops += 1;
        self.bytes += b.span.bytes;
        self.retransmits += b.span.retransmits as u64;
        self.latency_total_ns += b.latency_ns;
        self.latency_hist.record(b.latency_ns);
        for (i, &ns) in b.phases.iter().enumerate() {
            self.phase_total_ns[i] += ns;
            self.phase_hist[i].record(ns);
        }
    }

    /// Merge another rollup in (histograms are bucket-wise mergeable).
    pub fn merge(&mut self, other: &PhaseRollup) {
        self.ops += other.ops;
        self.bytes += other.bytes;
        self.retransmits += other.retransmits;
        self.latency_total_ns += other.latency_total_ns;
        self.latency_hist.merge(&other.latency_hist);
        for i in 0..PHASES.len() {
            self.phase_total_ns[i] += other.phase_total_ns[i];
            self.phase_hist[i].merge(&other.phase_hist[i]);
        }
    }

    /// Sum of all exclusive phase totals — equals `latency_total_ns` by
    /// construction.
    pub fn phase_sum_ns(&self) -> u64 {
        self.phase_total_ns.iter().sum()
    }

    /// Render as JSON (totals, per-phase totals/fractions, percentiles,
    /// and the full histograms so two artifacts can be diffed or merged
    /// without re-running the workload).
    pub fn to_json(&self) -> Json {
        let mut phases = Json::obj();
        for (i, p) in PHASES.iter().enumerate() {
            let h = &self.phase_hist[i];
            phases = phases.set(
                p.label(),
                Json::obj()
                    .set("total_ns", self.phase_total_ns[i])
                    .set(
                        "fraction",
                        if self.latency_total_ns == 0 {
                            0.0
                        } else {
                            self.phase_total_ns[i] as f64 / self.latency_total_ns as f64
                        },
                    )
                    .set("p50_ns", h.percentile(50.0))
                    .set("p99_ns", h.percentile(99.0))
                    .set("hist", h.to_json()),
            );
        }
        Json::obj()
            .set("ops", self.ops)
            .set("bytes", self.bytes)
            .set("retransmits", self.retransmits)
            .set("latency_total_ns", self.latency_total_ns)
            .set("phase_sum_ns", self.phase_sum_ns())
            .set("latency_p50_ns", self.latency_hist.percentile(50.0))
            .set("latency_p99_ns", self.latency_hist.percentile(99.0))
            .set("latency_hist", self.latency_hist.to_json())
            .set("phases", phases)
    }

    /// Rebuild a rollup from [`PhaseRollup::to_json`] output (the
    /// histogram round-trip is exact, so percentiles and merges behave
    /// identically to the original in-memory rollup). Derived fields
    /// (fractions, percentiles) are recomputed, not read back.
    pub fn from_json(j: &Json) -> Result<PhaseRollup, String> {
        let num = |k: &str| {
            j.get(k)
                .and_then(|v| v.as_u64())
                .ok_or_else(|| format!("rollup: missing field '{k}'"))
        };
        let mut r = PhaseRollup {
            ops: num("ops")?,
            bytes: num("bytes")?,
            retransmits: num("retransmits")?,
            latency_total_ns: num("latency_total_ns")?,
            latency_hist: LogHistogram::from_json(
                j.get("latency_hist").ok_or("rollup: missing latency_hist")?,
            )?,
            ..PhaseRollup::default()
        };
        let phases = j.get("phases").ok_or("rollup: missing phases")?;
        for (i, p) in PHASES.iter().enumerate() {
            let pj = phases
                .get(p.label())
                .ok_or_else(|| format!("rollup: missing phase '{}'", p.label()))?;
            r.phase_total_ns[i] = pj
                .get("total_ns")
                .and_then(|v| v.as_u64())
                .ok_or_else(|| format!("rollup: phase '{}' missing total_ns", p.label()))?;
            r.phase_hist[i] = LogHistogram::from_json(
                pj.get("hist")
                    .ok_or_else(|| format!("rollup: phase '{}' missing hist", p.label()))?,
            )?;
        }
        if r.phase_sum_ns() != r.latency_total_ns {
            return Err(format!(
                "rollup: phase totals sum to {}, latency_total_ns is {}",
                r.phase_sum_ns(),
                r.latency_total_ns
            ));
        }
        Ok(r)
    }
}

/// Full attribution over a snapshot: overall, per-connection (keyed by the
/// issuing `(node, conn)`), and per-rail rollups.
#[derive(Debug, Clone, Default)]
pub struct Attribution {
    /// Every retained completed op folded together.
    pub overall: PhaseRollup,
    /// Rollup per issuing `(node, conn)`.
    pub per_conn: BTreeMap<(u16, u16), PhaseRollup>,
    /// Per-rail rollup of ops whose critical request frame's deciding
    /// transmission used that rail.
    pub per_rail: BTreeMap<u32, PhaseRollup>,
    /// Per-rail NIC transmit-backlog histograms (all data transmissions,
    /// from the span recorder's rail counters).
    pub rail_queue: Vec<LogHistogram>,
    /// Per-rail data-frame transmission counts.
    pub rail_frames: Vec<u64>,
    /// Per-rail retransmission counts.
    pub rail_retransmits: Vec<u64>,
    /// Completed spans lost to the snapshot ring bound (attribution covers
    /// the retained tail only when this is non-zero).
    pub overwritten: u64,
}

/// Analyze a snapshot into per-connection / per-rail phase rollups.
pub fn analyze(snap: &SpanSnapshot) -> Attribution {
    let mut attr = Attribution {
        rail_queue: snap.rail_queue.clone(),
        rail_frames: snap.rail_frames.clone(),
        rail_retransmits: snap.rail_retransmits.clone(),
        overwritten: snap.overwritten,
        ..Attribution::default()
    };
    for span in &snap.spans {
        let b = PhaseBreakdown::from_span(span);
        attr.overall.add(&b);
        attr.per_conn
            .entry((span.key.node, span.key.conn))
            .or_default()
            .add(&b);
        if span.crit_rail != u32::MAX {
            attr.per_rail.entry(span.crit_rail).or_default().add(&b);
        }
    }
    attr
}

impl Attribution {
    /// Merge another attribution in (all rollups and per-rail counters are
    /// bucket-wise / element-wise additive). The triage runner uses this to
    /// fold multiple seeds of the same cell into one mergeable document.
    pub fn merge(&mut self, other: &Attribution) {
        self.overall.merge(&other.overall);
        for (k, r) in &other.per_conn {
            self.per_conn.entry(*k).or_default().merge(r);
        }
        for (k, r) in &other.per_rail {
            self.per_rail.entry(*k).or_default().merge(r);
        }
        if self.rail_queue.len() < other.rail_queue.len() {
            self.rail_queue.resize(other.rail_queue.len(), LogHistogram::new());
        }
        for (h, o) in self.rail_queue.iter_mut().zip(&other.rail_queue) {
            h.merge(o);
        }
        if self.rail_frames.len() < other.rail_frames.len() {
            self.rail_frames.resize(other.rail_frames.len(), 0);
        }
        for (f, o) in self.rail_frames.iter_mut().zip(&other.rail_frames) {
            *f += o;
        }
        if self.rail_retransmits.len() < other.rail_retransmits.len() {
            self.rail_retransmits.resize(other.rail_retransmits.len(), 0);
        }
        for (f, o) in self.rail_retransmits.iter_mut().zip(&other.rail_retransmits) {
            *f += o;
        }
        self.overwritten += other.overwritten;
    }

    /// Render the whole attribution as a JSON object.
    pub fn to_json(&self) -> Json {
        let mut conns = Json::obj();
        for ((node, conn), r) in &self.per_conn {
            conns = conns.set(&format!("n{node}c{conn}"), r.to_json());
        }
        let mut rails = Json::obj();
        for (rail, r) in &self.per_rail {
            let mut j = r.to_json();
            if let Some(h) = self.rail_queue.get(*rail as usize) {
                j = j
                    .set("nic_queue_p50_ns", h.percentile(50.0))
                    .set("nic_queue_p99_ns", h.percentile(99.0));
            }
            if let Some(&f) = self.rail_frames.get(*rail as usize) {
                j = j.set("frames_tx", f);
            }
            if let Some(&rt) = self.rail_retransmits.get(*rail as usize) {
                j = j.set("frames_retransmitted", rt);
            }
            rails = rails.set(&format!("rail{rail}"), j);
        }
        Json::obj()
            .set("overall", self.overall.to_json())
            .set("per_conn", conns)
            .set("per_rail", rails)
            .set("spans_overwritten", self.overwritten)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Leg, SpanKey, SpanRecorder};

    fn k(op: u32) -> SpanKey {
        SpanKey::new(0, 0, op)
    }

    #[test]
    fn write_breakdown_telescopes_exactly() {
        let r = SpanRecorder::enabled(4);
        let key = k(0);
        r.op_issued(key, SpanKind::Write, 100, 180, 1, 4096);
        r.frame_tx(key, Leg::Req, true, false, 0, 40, 250);
        r.frame_tx(key, Leg::Req, true, true, 1, 10, 900);
        r.frame_arrival(key, Leg::Req, 1400);
        r.frame_admitted(key, Leg::Req, 1450);
        r.await_cum(1, 0, 0, key);
        r.cum_advanced(1, 0, 1, 1500);
        r.ack_sent(1, 0, 1, 1600);
        r.ack_rx(key, 2100);
        r.op_completed(key, 2200);
        let b = PhaseBreakdown::from_span(&r.snapshot().unwrap().spans[0]);
        assert_eq!(b.latency_ns, 2100);
        assert_eq!(b.phases.iter().sum::<u64>(), b.latency_ns);
        let g = |p: Phase| b.phases[p.idx()];
        assert_eq!(g(Phase::HostIssue), 80);
        assert_eq!(g(Phase::SendWindow), 70);
        assert_eq!(g(Phase::Retransmit), 650);
        assert_eq!(g(Phase::RailQueue), 10);
        assert_eq!(g(Phase::Wire), 490);
        assert_eq!(g(Phase::RxProcess), 50);
        assert_eq!(g(Phase::Reorder), 50);
        assert_eq!(g(Phase::AckDelay), 100);
        assert_eq!(g(Phase::AckReturn), 500);
        assert_eq!(g(Phase::CompleteWake), 100);
        assert_eq!(g(Phase::Fence), 0);
    }

    #[test]
    fn read_breakdown_with_fences_telescopes_exactly() {
        let r = SpanRecorder::enabled(4);
        let key = k(1);
        r.op_issued(key, SpanKind::Read, 0, 50, 1, 8192);
        r.frame_tx(key, Leg::Req, true, false, 0, 0, 60);
        r.frame_arrival(key, Leg::Req, 500);
        r.frame_admitted(key, Leg::Req, 520);
        r.fence_req(key, 30); // request held 30ns of an 80ns hold by a fence
        r.serve_started(key, 600);
        r.frame_tx(key, Leg::Resp, true, false, 1, 20, 650);
        r.frame_arrival(key, Leg::Resp, 1200);
        r.frame_admitted(key, Leg::Resp, 1230);
        r.fence_resp(key, 1000); // claims more than the hold: clamped
        r.resp_released(key, 1300);
        r.op_completed(key, 1400);
        let b = PhaseBreakdown::from_span(&r.snapshot().unwrap().spans[0]);
        assert_eq!(b.latency_ns, 1400);
        assert_eq!(b.phases.iter().sum::<u64>(), b.latency_ns);
        let g = |p: Phase| b.phases[p.idx()];
        // Fence: 30 (request hold) + 70 (response hold, clamped to it).
        assert_eq!(g(Phase::Fence), 100);
        // Reorder: (80-30) request + (70-70) response.
        assert_eq!(g(Phase::Reorder), 50);
        // SendWindow: 10 (issue→first_tx) + 50 (serve→resp_first_tx).
        assert_eq!(g(Phase::SendWindow), 60);
        assert_eq!(g(Phase::RailQueue), 20);
        assert_eq!(g(Phase::Wire), 440 + 530);
        assert_eq!(g(Phase::CompleteWake), 100);
    }

    #[test]
    fn partially_stamped_span_still_telescopes() {
        // A span that never made it past issue (e.g. snapshotted after a
        // forced completion) must still attribute exactly.
        let r = SpanRecorder::enabled(4);
        let key = k(2);
        r.op_issued(key, SpanKind::Write, 10, 25, 1, 64);
        r.op_completed(key, 500);
        let b = PhaseBreakdown::from_span(&r.snapshot().unwrap().spans[0]);
        assert_eq!(b.latency_ns, 490);
        assert_eq!(b.phases.iter().sum::<u64>(), 490);
        assert_eq!(b.phases[Phase::HostIssue.idx()], 15);
        assert_eq!(b.phases[Phase::CompleteWake.idx()], 475);
    }

    #[test]
    fn rollup_merge_matches_sequential_adds() {
        let mk = |lat: u64| {
            let r = SpanRecorder::enabled(2);
            r.op_issued(k(0), SpanKind::Write, 0, 0, 1, 10);
            r.op_completed(k(0), lat);
            PhaseBreakdown::from_span(&r.snapshot().unwrap().spans[0])
        };
        let (a, b) = (mk(100), mk(300));
        let mut seq = PhaseRollup::default();
        seq.add(&a);
        seq.add(&b);
        let mut merged = PhaseRollup::default();
        let mut other = PhaseRollup::default();
        merged.add(&a);
        other.add(&b);
        merged.merge(&other);
        assert_eq!(merged.ops, seq.ops);
        assert_eq!(merged.latency_total_ns, seq.latency_total_ns);
        assert_eq!(merged.phase_total_ns, seq.phase_total_ns);
        assert_eq!(merged.latency_hist, seq.latency_hist);
        assert_eq!(merged.phase_sum_ns(), merged.latency_total_ns);
    }

    #[test]
    fn rollup_json_round_trip_is_exact() {
        let r = SpanRecorder::enabled(4);
        let key = k(0);
        r.op_issued(key, SpanKind::Write, 100, 180, 1, 4096);
        r.frame_tx(key, Leg::Req, true, false, 0, 40, 250);
        r.frame_arrival(key, Leg::Req, 1400);
        r.frame_admitted(key, Leg::Req, 1450);
        r.op_completed(key, 2200);
        let mut roll = PhaseRollup::default();
        roll.add(&PhaseBreakdown::from_span(&r.snapshot().unwrap().spans[0]));
        let text = roll.to_json().render_pretty();
        let back = PhaseRollup::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.ops, roll.ops);
        assert_eq!(back.bytes, roll.bytes);
        assert_eq!(back.latency_total_ns, roll.latency_total_ns);
        assert_eq!(back.phase_total_ns, roll.phase_total_ns);
        assert_eq!(back.latency_hist, roll.latency_hist);
        assert_eq!(back.phase_hist, roll.phase_hist);
        // Corrupting a phase total breaks the telescoping check.
        let mut doc = Json::parse(&text).unwrap();
        if let Json::Obj(fields) = &mut doc {
            for (key, v) in fields.iter_mut() {
                if key == "latency_total_ns" {
                    *v = Json::from(1u64);
                }
            }
        }
        assert!(PhaseRollup::from_json(&doc).is_err());
    }

    #[test]
    fn attribution_merge_matches_joint_analysis() {
        let mk = |op: u32, lat: u64, rail: u32| {
            let r = SpanRecorder::enabled(4);
            let key = SpanKey::new(0, op as usize % 2, op);
            r.op_issued(key, SpanKind::Write, 0, 10, 1, 100);
            r.frame_tx(key, Leg::Req, true, false, rail, 5, 20);
            r.frame_arrival(key, Leg::Req, lat / 2);
            r.frame_admitted(key, Leg::Req, lat / 2 + 10);
            r.op_completed(key, lat);
            r.snapshot().unwrap()
        };
        let (s1, s2) = (mk(0, 1_000, 0), mk(1, 3_000, 1));
        let mut merged = analyze(&s1);
        merged.merge(&analyze(&s2));
        assert_eq!(merged.overall.ops, 2);
        assert_eq!(merged.per_conn.len(), 2);
        assert_eq!(merged.per_rail.len(), 2);
        assert_eq!(
            merged.overall.latency_total_ns,
            analyze(&s1).overall.latency_total_ns + analyze(&s2).overall.latency_total_ns
        );
        assert_eq!(merged.overall.phase_sum_ns(), merged.overall.latency_total_ns);
        assert_eq!(merged.rail_frames, vec![1, 1]);
    }

    #[test]
    fn analyze_groups_by_conn_and_rail() {
        let r = SpanRecorder::enabled(8);
        for (conn, rail) in [(0usize, 0u32), (1, 1)] {
            let key = SpanKey::new(0, conn, 7);
            r.op_issued(key, SpanKind::Write, 0, 10, 1, 100);
            r.frame_tx(key, Leg::Req, true, false, rail, 5, 20);
            r.frame_arrival(key, Leg::Req, 200);
            r.frame_admitted(key, Leg::Req, 210);
            r.op_completed(key, 400);
        }
        let attr = analyze(&r.snapshot().unwrap());
        assert_eq!(attr.overall.ops, 2);
        assert_eq!(attr.per_conn.len(), 2);
        assert_eq!(attr.per_rail.len(), 2);
        assert_eq!(attr.overall.phase_sum_ns(), attr.overall.latency_total_ns);
        let json = attr.to_json().render();
        assert!(json.contains("n0c1"));
        assert!(json.contains("rail1"));
    }
}
