//! Minimal JSON value model and serializer.
//!
//! The workspace builds offline with no `serde`, and the only JSON need is
//! *emission* of benchmark/trace reports, so a tiny tree-plus-renderer is
//! the whole story. No parsing.

/// A JSON value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (rendered without a fraction when integral).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Num(v as f64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::Num(v as f64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Num(v as f64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Num(v as f64)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Self {
        Json::Arr(v)
    }
}

impl Json {
    /// Empty object, to be extended with [`Json::set`].
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Insert/append `key` into an object (panics on non-objects — caller
    /// bug). Returns `self` for chaining.
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("Json::set on non-object"),
        }
        self
    }

    /// Serialize compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serialize with two-space indentation, for human-inspected files.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_str(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::Json;

    #[test]
    fn renders_nested_compact() {
        let j = Json::obj()
            .set("n", 3u64)
            .set("f", 0.5)
            .set("s", "a\"b")
            .set("a", vec![Json::from(1u64), Json::Null, Json::from(true)]);
        assert_eq!(j.render(), r#"{"n":3,"f":0.5,"s":"a\"b","a":[1,null,true]}"#);
    }

    #[test]
    fn pretty_round_trips_shape() {
        let j = Json::obj().set("x", Json::obj().set("y", 1u64));
        let p = j.render_pretty();
        assert!(p.contains("\"x\": {"));
        assert!(p.ends_with("}\n"));
    }
}
