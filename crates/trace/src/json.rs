//! Minimal JSON value model, serializer, and parser.
//!
//! The workspace builds offline with no `serde`; benchmark/trace reports
//! are emitted through this tree, and the `me-inspect` tool reads flight
//! recorder dumps back through [`Json::parse`] — a small recursive-descent
//! parser that accepts exactly what the renderer emits (plus arbitrary
//! whitespace), which is all the workspace ever needs to read.

/// Schema version stamped into every JSON artifact the workspace emits
/// (bench results, baselines, flight dumps, diff reports). Version 1 is the
/// implicit pre-stamp era; version 2 added the stamp itself plus embedded
/// histogram buckets in attribution rollups. Bump this whenever an emitted
/// layout changes in a way existing consumers would silently mis-read.
pub const SCHEMA_VERSION: u64 = 2;

/// Check an artifact's `schema_version` against [`SCHEMA_VERSION`].
///
/// Consumers that feed artifacts back through [`Json::parse`] (the triage
/// differ, `me-inspect`, bench baseline loaders) call this first so a stale
/// or future-format file fails loudly instead of being silently mis-read.
pub fn require_schema(doc: &Json) -> Result<u64, String> {
    match doc.get("schema_version").and_then(|v| v.as_u64()) {
        Some(v) if v == SCHEMA_VERSION => Ok(v),
        Some(v) => Err(format!(
            "unsupported schema_version {v} (this build reads v{SCHEMA_VERSION}); \
             regenerate the artifact with the matching build"
        )),
        None => Err(format!(
            "artifact has no schema_version (predates v{SCHEMA_VERSION}); \
             regenerate it with this build"
        )),
    }
}

/// A JSON value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (rendered without a fraction when integral).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Num(v as f64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::Num(v as f64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Num(v as f64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Num(v as f64)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Self {
        Json::Arr(v)
    }
}

impl Json {
    /// Empty object, to be extended with [`Json::set`].
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Insert/append `key` into an object (panics on non-objects — caller
    /// bug). Returns `self` for chaining.
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("Json::set on non-object"),
        }
        self
    }

    /// Serialize compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serialize with two-space indentation, for human-inspected files.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    /// Parse a JSON document (the renderer's dialect: finite numbers,
    /// `\uXXXX` escapes, no trailing garbage). Returns a message with the
    /// byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Object fields in insertion order; `None` on non-objects.
    pub fn entries(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Array elements; `None` on non-arrays.
    pub fn items(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Boolean value; `None` on non-booleans.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric value; `None` on non-numbers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric value truncated to `u64` (negative → `None`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// String value; `None` on non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_str(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') if self.eat_lit("null") => Ok(Json::Null),
            Some(b't') if self.eat_lit("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_lit("false") => Ok(Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogates are not emitted by the renderer;
                            // map them to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(format!("bad escape '\\{}'", other as char));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are trustworthy).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8")?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::Json;

    #[test]
    fn renders_nested_compact() {
        let j = Json::obj()
            .set("n", 3u64)
            .set("f", 0.5)
            .set("s", "a\"b")
            .set("a", vec![Json::from(1u64), Json::Null, Json::from(true)]);
        assert_eq!(j.render(), r#"{"n":3,"f":0.5,"s":"a\"b","a":[1,null,true]}"#);
    }

    #[test]
    fn pretty_round_trips_shape() {
        let j = Json::obj().set("x", Json::obj().set("y", 1u64));
        let p = j.render_pretty();
        assert!(p.contains("\"x\": {"));
        assert!(p.ends_with("}\n"));
    }

    #[test]
    fn parse_round_trips_renderer_output() {
        let j = Json::obj()
            .set("n", 3u64)
            .set("neg", -7i64)
            .set("f", 0.25)
            .set("s", "a\"b\\c\nd\u{1}e")
            .set("empty_obj", Json::obj())
            .set("empty_arr", Vec::<Json>::new())
            .set(
                "a",
                vec![Json::from(1u64), Json::Null, Json::from(false), Json::from("x")],
            );
        for text in [j.render(), j.render_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), j, "source: {text}");
        }
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "1 2", "\"unterminated", "nul"] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn schema_gate_accepts_current_rejects_others() {
        use super::{require_schema, SCHEMA_VERSION};
        let ok = Json::obj().set("schema_version", SCHEMA_VERSION);
        assert_eq!(require_schema(&ok), Ok(SCHEMA_VERSION));
        let future = Json::obj().set("schema_version", SCHEMA_VERSION + 1);
        let err = require_schema(&future).unwrap_err();
        assert!(err.contains("unsupported schema_version"), "{err}");
        let missing = Json::obj().set("kind", "anything");
        let err = require_schema(&missing).unwrap_err();
        assert!(err.contains("no schema_version"), "{err}");
    }

    #[test]
    fn accessors_navigate_parsed_tree() {
        let j = Json::parse(r#"{"a":{"b":[1,2.5,"x"]},"t":true}"#).unwrap();
        let arr = j.get("a").and_then(|a| a.get("b")).unwrap();
        let items = arr.items().unwrap();
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(items[1].as_f64(), Some(2.5));
        assert_eq!(items[2].as_str(), Some("x"));
        assert_eq!(j.get("missing"), None);
        assert_eq!(j.get("t"), Some(&Json::Bool(true)));
    }
}
