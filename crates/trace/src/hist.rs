//! Log-bucketed latency histogram (HdrHistogram-lite).
//!
//! Values are `u64` (this workspace records nanoseconds). Each power-of-two
//! octave is split into `2^SUB_BITS = 32` linear sub-buckets, bounding the
//! relative quantization error at ≈ 1/32 ≈ 3% while keeping the whole
//! histogram a flat 1920-slot array that merges with plain addition —
//! exactly what per-connection rollups need.

use crate::json::Json;

/// Sub-bucket resolution: 32 linear sub-buckets per octave.
const SUB_BITS: u32 = 5;
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count for the full `u64` range:
/// `SUB` identity buckets + `(64 - SUB_BITS)` octaves × `SUB` sub-buckets.
const BUCKETS: usize = (SUB as usize) * (65 - SUB_BITS as usize);

/// Mergeable log-bucketed histogram of `u64` samples.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // >= SUB_BITS
    let oct = msb - SUB_BITS;
    let sub = (v >> oct) - SUB; // top SUB_BITS+1 bits, minus the leading 1
    ((oct as usize + 1) << SUB_BITS) + sub as usize
}

/// Inclusive lower bound of bucket `i` (the value reported for samples that
/// landed in it).
fn bucket_floor(i: usize) -> u64 {
    if i < SUB as usize {
        return i as u64;
    }
    let oct = (i >> SUB_BITS) as u32 - 1;
    let sub = (i & (SUB as usize - 1)) as u64;
    (SUB + sub) << oct
}

impl LogHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold another histogram into this one (bucket-wise addition).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of the recorded samples (saturating at `u64::MAX`).
    /// Unlike the percentiles this is not quantized, so two histograms
    /// recording the same underlying durations report identical sums —
    /// the attribution layer relies on that for exact reconciliation.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the exact samples (not the bucket floors); 0 when
    /// empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at percentile `p` (0–100): the floor of the bucket containing
    /// the `ceil(p% · count)`-th sample, clamped to the observed min/max so
    /// quantization never reports a value outside the recorded range.
    /// Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_floor(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(floor_value, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_floor(i), c))
            .collect()
    }

    /// Serialize for baseline/diff artifacts. Buckets are packed as a
    /// compact `"floor:count,floor:count,…"` string — a nested array would
    /// explode the pretty renderer (one line per element) and MB-scale
    /// committed baselines. `min` is omitted when empty (the internal
    /// sentinel `u64::MAX` is not exactly representable in JSON's f64).
    /// Values must stay below 2^53 to round-trip exactly; nanosecond
    /// durations do by a wide margin.
    pub fn to_json(&self) -> Json {
        let buckets = self
            .nonzero_buckets()
            .iter()
            .map(|(f, c)| format!("{f}:{c}"))
            .collect::<Vec<_>>()
            .join(",");
        let mut j = Json::obj().set("count", self.count).set("sum", self.sum);
        if self.count > 0 {
            j = j.set("min", self.min).set("max", self.max);
        }
        j.set("buckets", buckets)
    }

    /// Rebuild a histogram from [`LogHistogram::to_json`] output. Restores
    /// the exact internal state (so `from_json(to_json(h)) == h`), checking
    /// that every floor is a real bucket floor and that the bucket counts
    /// sum to `count`.
    pub fn from_json(j: &Json) -> Result<LogHistogram, String> {
        let num = |k: &str| {
            j.get(k)
                .and_then(|v| v.as_u64())
                .ok_or_else(|| format!("hist: missing field '{k}'"))
        };
        let count = num("count")?;
        let mut h = LogHistogram::new();
        if count == 0 {
            return Ok(h);
        }
        let buckets = j
            .get("buckets")
            .and_then(|v| v.as_str())
            .ok_or("hist: missing field 'buckets'")?;
        let mut total = 0u64;
        for pair in buckets.split(',').filter(|s| !s.is_empty()) {
            let (floor, c) = pair
                .split_once(':')
                .ok_or_else(|| format!("hist: malformed bucket '{pair}'"))?;
            let floor: u64 = floor
                .parse()
                .map_err(|_| format!("hist: bad bucket floor '{floor}'"))?;
            let c: u64 = c.parse().map_err(|_| format!("hist: bad bucket count '{c}'"))?;
            let i = bucket_index(floor);
            if bucket_floor(i) != floor {
                return Err(format!("hist: {floor} is not a bucket floor"));
            }
            h.counts[i] += c;
            total += c;
        }
        if total != count {
            return Err(format!("hist: bucket counts sum to {total}, expected {count}"));
        }
        h.count = count;
        h.sum = num("sum")?;
        h.min = num("min")?;
        h.max = num("max")?;
        if h.min > h.max {
            return Err(format!("hist: min {} above max {}", h.min, h.max));
        }
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_range_is_exact() {
        let mut h = LogHistogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        for v in 0..32usize {
            assert_eq!(bucket_floor(v), v as u64);
        }
        assert_eq!(h.count(), 32);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
    }

    #[test]
    fn floor_below_value_and_within_3pct() {
        for v in [
            32u64,
            33,
            100,
            1_000,
            27_500,
            1 << 20,
            (1 << 40) + 12345,
            u64::MAX,
        ] {
            let f = bucket_floor(bucket_index(v));
            assert!(f <= v, "floor {f} above value {v}");
            assert!(
                (v - f) as f64 <= v as f64 / 32.0 + 1.0,
                "quantization too coarse for {v}: floor {f}"
            );
        }
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.percentile(100.0), 0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn single_value_dominates_every_percentile() {
        let mut h = LogHistogram::new();
        h.record(27_500);
        for p in [0.0, 0.001, 50.0, 99.9, 100.0] {
            assert_eq!(h.percentile(p), 27_500, "p{p}");
        }
        assert_eq!((h.min(), h.max()), (27_500, 27_500));
        assert_eq!(h.mean(), 27_500.0);
    }

    #[test]
    fn percentile_edges_clamp_to_observed_range() {
        let mut h = LogHistogram::new();
        for v in [10u64, 20, 30, 1_000_000] {
            h.record(v);
        }
        // p0 (and out-of-range negatives) resolve to the first sample; p100
        // (and overshoots) to the last, never outside [min, max].
        assert_eq!(h.percentile(0.0), 10);
        assert_eq!(h.percentile(-5.0), 10);
        assert_eq!(h.percentile(100.0), h.percentile(200.0));
        assert!(h.percentile(100.0) <= h.max());
        assert!(h.percentile(100.0) >= 983_040); // within 3% below 1e6
        // p25 covers exactly the first sample (ceil(0.25*4) = 1).
        assert_eq!(h.percentile(25.0), 10);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let vals_a = [3u64, 33, 1_000, 27_500, 1 << 33];
        let vals_b = [0u64, 5, 40, 999, 27_500, u64::MAX];
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut both = LogHistogram::new();
        for v in vals_a {
            a.record(v);
            both.record(v);
        }
        for v in vals_b {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        // Bucket-wise addition must be indistinguishable from having
        // recorded every sample into a single histogram.
        assert_eq!(a, both);
        assert_eq!(a.count(), (vals_a.len() + vals_b.len()) as u64);
        assert_eq!(a.min(), 0);
        assert_eq!(a.max(), u64::MAX);
        for p in [1.0, 25.0, 50.0, 75.0, 99.0] {
            assert_eq!(a.percentile(p), both.percentile(p), "p{p}");
        }
    }

    #[test]
    fn merging_empty_is_identity() {
        let mut h = LogHistogram::new();
        h.record(42);
        let before = h.clone();
        h.merge(&LogHistogram::new());
        assert_eq!(h, before);
        let mut e = LogHistogram::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn json_round_trip_is_exact() {
        let mut h = LogHistogram::new();
        for v in [0u64, 3, 33, 1_000, 27_500, 27_500, 1 << 33, (1 << 50) + 7] {
            h.record(v);
        }
        let text = h.to_json().render_pretty();
        let back = LogHistogram::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, h);
        for p in [1.0, 50.0, 99.0] {
            assert_eq!(back.percentile(p), h.percentile(p));
        }
    }

    #[test]
    fn json_round_trip_empty() {
        let h = LogHistogram::new();
        let j = h.to_json();
        assert!(j.get("min").is_none(), "empty hist must omit min");
        let back = LogHistogram::from_json(&j).unwrap();
        assert_eq!(back, h);
        assert_eq!(back.min, u64::MAX, "empty sentinel restored");
    }

    #[test]
    fn from_json_rejects_corrupt_documents() {
        for (bad, why) in [
            (Json::obj(), "missing count"),
            (
                Json::obj().set("count", 1u64).set("sum", 100u64).set("min", 100u64).set("max", 100u64),
                "missing buckets",
            ),
            (
                Json::obj().set("count", 1u64).set("sum", 100u64).set("min", 100u64).set("max", 100u64).set("buckets", "101:1"),
                "non-floor bucket",
            ),
            (
                Json::obj().set("count", 1u64).set("sum", 100u64).set("min", 100u64).set("max", 100u64).set("buckets", "96:2"),
                "count/bucket mismatch",
            ),
            (
                Json::obj().set("count", 1u64).set("sum", 100u64).set("min", 200u64).set("max", 100u64).set("buckets", "96:1"),
                "min above max",
            ),
        ] {
            assert!(LogHistogram::from_json(&bad).is_err(), "accepted: {why}");
        }
    }

    #[test]
    fn indices_monotone_across_octave_boundaries() {
        let mut prev = 0usize;
        for msb in 5..63u32 {
            for v in [(1u64 << msb) - 1, 1u64 << msb, (1u64 << msb) + 1] {
                let i = bucket_index(v);
                assert!(i >= prev, "index not monotone at {v}");
                assert!(i < BUCKETS);
                prev = i;
            }
        }
    }
}
