//! Simulated Ethernet addressing.
//!
//! Real MultiEdge uses 48-bit MACs; in the simulator an address is the pair
//! *(node, rail)*: NIC `r` of node `n`. One switch connects NIC `r` of every
//! node (the paper's "rail" topology: two 1-GbE switches for the 2L setups).

use std::fmt;

/// Address of one NIC: `(node, rail)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr {
    /// Node index within the cluster.
    pub node: u16,
    /// Rail (NIC index within the node); NIC `r` attaches to switch `r`.
    pub rail: u8,
}

impl MacAddr {
    /// Address of NIC `rail` on node `node`.
    pub const fn new(node: u16, rail: u8) -> Self {
        Self { node, rail }
    }

    /// Pack into a `u32` for compact headers: `node << 8 | rail`.
    pub const fn to_u32(self) -> u32 {
        ((self.node as u32) << 8) | self.rail as u32
    }

    /// Inverse of [`MacAddr::to_u32`].
    pub const fn from_u32(v: u32) -> Self {
        Self {
            node: (v >> 8) as u16,
            rail: (v & 0xff) as u8,
        }
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}r{}", self.node, self.rail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_round_trip() {
        for node in [0u16, 1, 15, 255, 1000] {
            for rail in [0u8, 1, 3, 255] {
                let m = MacAddr::new(node, rail);
                assert_eq!(MacAddr::from_u32(m.to_u32()), m);
            }
        }
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(MacAddr::new(3, 1).to_string(), "n3r1");
    }
}
