//! Negative-acknowledgement payload: the set of missing sequence ranges.
//!
//! When the receiver observes a gap in the sequence space it reports the
//! missing frames back to the sender (paper §2.4). The NACK payload is a list
//! of half-open `[from, to)` ranges in sequence space, encoded as pairs of
//! little-endian `u32`s. Ranges may wrap modulo 2^32 (`from > to` is legal
//! and means the range crosses the wrap point).

use bytes::Bytes;

/// A set of missing sequence ranges carried by a NACK frame.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NackRanges {
    /// Half-open `[from, to)` ranges of missing sequence numbers.
    pub ranges: Vec<(u32, u32)>,
}

/// Each encoded range occupies 8 bytes; cap so a NACK always fits one frame.
pub const MAX_RANGES_PER_NACK: usize = 64;

impl NackRanges {
    /// A NACK for a single contiguous gap.
    pub fn single(from: u32, to: u32) -> Self {
        Self {
            ranges: vec![(from, to)],
        }
    }

    /// Total number of sequence numbers covered (wrapping-aware).
    pub fn frame_count(&self) -> u64 {
        self.ranges
            .iter()
            .map(|&(f, t)| t.wrapping_sub(f) as u64)
            .sum()
    }

    /// Serialize to a frame payload. Truncates to [`MAX_RANGES_PER_NACK`]
    /// ranges; the remaining gaps will be re-reported by a later NACK.
    pub fn encode(&self) -> Bytes {
        let n = self.ranges.len().min(MAX_RANGES_PER_NACK);
        let mut buf = Vec::with_capacity(n * 8);
        for &(from, to) in &self.ranges[..n] {
            buf.extend_from_slice(&from.to_le_bytes());
            buf.extend_from_slice(&to.to_le_bytes());
        }
        Bytes::from(buf)
    }

    /// Parse a NACK payload. Trailing partial records are ignored (a damaged
    /// NACK costs only a retransmission-timeout fallback, never correctness).
    pub fn decode(payload: &[u8]) -> Self {
        let mut ranges = Vec::with_capacity(payload.len() / 8);
        for chunk in payload.chunks_exact(8) {
            let from = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
            let to = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
            ranges.push((from, to));
        }
        Self { ranges }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let n = NackRanges {
            ranges: vec![(5, 9), (100, 101), (u32::MAX - 1, 3)],
        };
        assert_eq!(NackRanges::decode(&n.encode()), n);
    }

    #[test]
    fn frame_count_handles_wrap() {
        let n = NackRanges::single(u32::MAX - 1, 3);
        assert_eq!(n.frame_count(), 5);
        let m = NackRanges {
            ranges: vec![(0, 4), (10, 12)],
        };
        assert_eq!(m.frame_count(), 6);
    }

    #[test]
    fn truncates_to_cap() {
        let n = NackRanges {
            ranges: (0..200u32).map(|i| (i * 10, i * 10 + 1)).collect(),
        };
        let decoded = NackRanges::decode(&n.encode());
        assert_eq!(decoded.ranges.len(), MAX_RANGES_PER_NACK);
        assert_eq!(decoded.ranges[..], n.ranges[..MAX_RANGES_PER_NACK]);
    }

    #[test]
    fn ignores_trailing_garbage() {
        let n = NackRanges::single(1, 2);
        let mut bytes = n.encode().to_vec();
        bytes.extend_from_slice(&[1, 2, 3]); // partial record
        assert_eq!(NackRanges::decode(&bytes), n);
    }
}
