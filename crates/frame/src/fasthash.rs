//! A minimal FxHash-style hasher for the datapath's small integer keys.
//!
//! The protocol's per-frame maps (op metadata, pending reads, switch MAC
//! tables) are keyed by sequential small integers, where SipHash's
//! DoS-resistance buys nothing and its per-lookup cost is measurable — two
//! hashes per received frame on the hot path. This hasher is a single
//! multiply-xor round per word (the Firefox/rustc "Fx" construction), which
//! hashes a `u64` key in a couple of cycles.
//!
//! Not DoS-resistant: only use it for maps whose keys an adversary cannot
//! choose (protocol-assigned ids, configured addresses).

use std::hash::{BuildHasherDefault, Hasher};

/// One multiply-xor round per word; see module docs.
#[derive(Default)]
pub struct FastHasher(u64);

/// Knuth's 64-bit multiplicative-hashing constant (same one Fx uses).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FastHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.mix(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// `HashMap` alias using [`FastHasher`].
pub type FastMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips() {
        let mut m: FastMap<u64, u32> = FastMap::default();
        for i in 0..1000u64 {
            m.insert(i * 7, i as u32);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i * 7)), Some(&(i as u32)));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn sequential_keys_spread() {
        // Sequential ids must not collapse onto a few buckets: check the
        // low bits of the hash differ across consecutive keys.
        use std::collections::HashSet;
        let low: HashSet<u64> = (0..64u64)
            .map(|k| {
                let mut h = FastHasher::default();
                h.write_u64(k);
                h.finish() & 63
            })
            .collect();
        assert!(low.len() > 32, "only {} distinct low-6-bit values", low.len());
    }
}
