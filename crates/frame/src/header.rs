//! The MultiEdge protocol header.

/// Serialized header size in bytes (fixed layout, see [`crate::codec`]).
pub const HEADER_LEN: usize = 50;

/// What a frame is for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FrameKind {
    /// Fragment of a remote-write operation.
    Data = 0,
    /// Explicit positive acknowledgement (header-only).
    Ack = 1,
    /// Negative acknowledgement; payload carries missing sequence ranges.
    Nack = 2,
    /// Remote-read request: `remote_addr` is the address to read at the
    /// target, `aux` the initiator address the response must land at.
    ReadRequest = 3,
    /// Fragment of a remote-read response (flows target → initiator).
    ReadResponse = 4,
    /// Connection setup handshake.
    Connect = 5,
    /// Connection setup acknowledgement.
    ConnectAck = 6,
}

impl FrameKind {
    /// Parse from the wire byte.
    pub fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            0 => Self::Data,
            1 => Self::Ack,
            2 => Self::Nack,
            3 => Self::ReadRequest,
            4 => Self::ReadResponse,
            5 => Self::Connect,
            6 => Self::ConnectAck,
            _ => return None,
        })
    }
}

/// A tiny local `bitflags`-style macro so we do not pull in an extra
/// dependency for one type.
macro_rules! bitflags_lite {
    (
        $(#[$meta:meta])*
        pub struct $name:ident: $ty:ty {
            $(
                $(#[$fmeta:meta])*
                const $flag:ident = $val:expr;
            )*
        }
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
        pub struct $name(pub $ty);

        impl $name {
            $(
                $(#[$fmeta])*
                pub const $flag: Self = Self($val);
            )*

            /// No flags set.
            pub const fn empty() -> Self {
                Self(0)
            }

            /// True if every bit of `other` is set in `self`.
            pub const fn contains(self, other: Self) -> bool {
                self.0 & other.0 == other.0
            }

            /// Raw bits.
            pub const fn bits(self) -> $ty {
                self.0
            }

            /// Construct from raw bits (unknown bits preserved).
            pub const fn from_bits(bits: $ty) -> Self {
                Self(bits)
            }
        }

        impl core::ops::BitOr for $name {
            type Output = Self;
            fn bitor(self, rhs: Self) -> Self {
                Self(self.0 | rhs.0)
            }
        }

        impl core::ops::BitOrAssign for $name {
            fn bitor_assign(&mut self, rhs: Self) {
                self.0 |= rhs.0;
            }
        }

        impl core::ops::BitAnd for $name {
            type Output = Self;
            fn bitand(self, rhs: Self) -> Self {
                Self(self.0 & rhs.0)
            }
        }
    };
}

bitflags_lite! {
    /// Per-frame option bits.
    ///
    /// `FENCE_BACKWARD` / `FENCE_FORWARD` implement the paper's §2.5 ordering
    /// flags; they are properties of the *operation* and are replicated into
    /// every frame of that operation. `NOTIFY` requests a completion
    /// notification at the remote node once the whole operation has been
    /// applied. `RETRANSMIT` marks retransmitted frames (statistics only;
    /// the receiver treats them identically).
    pub struct FrameFlags: u16 {
        /// This operation must not be applied before any earlier operation.
        const FENCE_BACKWARD = 1 << 0;
        /// No later operation may be applied before this one.
        const FENCE_FORWARD = 1 << 1;
        /// Notify the remote application once the operation is applied.
        const NOTIFY = 1 << 2;
        /// Retransmitted frame (statistics only; handled identically).
        const RETRANSMIT = 1 << 3;
        /// First fragment of its operation.
        const FIRST_FRAGMENT = 1 << 4;
        /// Last fragment of its operation.
        const LAST_FRAGMENT = 1 << 5;
    }
}

/// MultiEdge protocol header, carried in every frame.
///
/// Sequence numbers (`seq`) are per connection *direction* and wrap modulo
/// 2^32; window arithmetic uses wrapping comparisons. `ack` is cumulative:
/// "I have received and applied every frame with sequence `< ack`". Every
/// frame — data or control — piggybacks `ack` for the reverse direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Frame purpose.
    pub kind: FrameKind,
    /// Option bits.
    pub flags: FrameFlags,
    /// Connection identifier (index into the receiver's connection table).
    pub conn: u32,
    /// Per-direction frame sequence number (data-bearing kinds only;
    /// control frames carry the sender's next unsent sequence).
    pub seq: u32,
    /// Piggybacked cumulative acknowledgement for the reverse direction.
    pub ack: u32,
    /// Operation this fragment belongs to (monotonic per direction).
    pub op_id: u32,
    /// Total payload bytes of the whole operation (so any fragment lets the
    /// receiver track operation completion).
    pub op_total_len: u32,
    /// Fence floor: every operation with id below this value must be fully
    /// applied at the receiver before this frame's operation may be applied.
    /// The sender sets it to one past the most recent forward-fenced
    /// operation issued before this one, which lets the receiver honour
    /// forward fences even when earlier operations have not arrived yet.
    pub fence_floor: u32,
    /// Destination virtual address of this fragment at the receiver
    /// (for `ReadRequest`: the address to read at the target).
    pub remote_addr: u64,
    /// Auxiliary address: for `ReadRequest`, the initiator-side buffer the
    /// response data must be written to; unused otherwise.
    pub aux: u64,
}

impl Default for FrameHeader {
    fn default() -> Self {
        Self {
            kind: FrameKind::Data,
            flags: FrameFlags::empty(),
            conn: 0,
            seq: 0,
            ack: 0,
            op_id: 0,
            op_total_len: 0,
            fence_floor: 0,
            remote_addr: 0,
            aux: 0,
        }
    }
}

impl FrameHeader {
    /// True if the operation carries both fences (fully ordered operation).
    pub fn strictly_ordered(&self) -> bool {
        self.flags
            .contains(FrameFlags::FENCE_BACKWARD | FrameFlags::FENCE_FORWARD)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_round_trip() {
        for k in [
            FrameKind::Data,
            FrameKind::Ack,
            FrameKind::Nack,
            FrameKind::ReadRequest,
            FrameKind::ReadResponse,
            FrameKind::Connect,
            FrameKind::ConnectAck,
        ] {
            assert_eq!(FrameKind::from_u8(k as u8), Some(k));
        }
        assert_eq!(FrameKind::from_u8(200), None);
    }

    #[test]
    fn flags_ops() {
        let f = FrameFlags::FENCE_BACKWARD | FrameFlags::NOTIFY;
        assert!(f.contains(FrameFlags::FENCE_BACKWARD));
        assert!(f.contains(FrameFlags::NOTIFY));
        assert!(!f.contains(FrameFlags::FENCE_FORWARD));
        assert!(!f.contains(FrameFlags::FENCE_BACKWARD | FrameFlags::FENCE_FORWARD));
    }

    #[test]
    fn strictly_ordered_requires_both_fences() {
        let mut h = FrameHeader::default();
        assert!(!h.strictly_ordered());
        h.flags = FrameFlags::FENCE_BACKWARD;
        assert!(!h.strictly_ordered());
        h.flags = FrameFlags::FENCE_BACKWARD | FrameFlags::FENCE_FORWARD;
        assert!(h.strictly_ordered());
    }
}
