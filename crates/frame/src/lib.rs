//! MultiEdge wire format.
//!
//! This crate defines everything that crosses the simulated wire: the
//! Ethernet-level addressing ([`MacAddr`]), the MultiEdge protocol header
//! ([`FrameHeader`]), the full frame ([`Frame`]) and the binary codec used to
//! serialize frames onto (and parse them off of) raw Ethernet payloads.
//!
//! MultiEdge (Karlsson et al., IPPS 2007) runs directly on raw Ethernet
//! frames — there is no IP or TCP layer. A single fixed-size header carries:
//!
//! * the connection identifier,
//! * a per-direction **frame sequence number** used by the sliding-window
//!   flow control,
//! * a **piggybacked cumulative acknowledgement** for the reverse direction
//!   (every data frame carries positive-ACK information, §2.4 of the paper),
//! * the **operation id** and destination virtual address of the RDMA
//!   fragment the frame carries, and
//! * the **fence flags** controlling out-of-order delivery (§2.5).
//!
//! The codec is deliberately explicit (no `serde` on the wire) so that header
//! layout, sizes and the checksum are under test and stable.

#![warn(missing_docs)]

pub mod codec;
pub mod fasthash;
pub mod header;
pub mod mac;
pub mod nack;

pub use codec::{decode_frame, encode_frame, encode_frame_into, CodecError};
pub use fasthash::{FastHasher, FastMap};
pub use header::{FrameFlags, FrameHeader, FrameKind, HEADER_LEN};
pub use mac::MacAddr;
pub use nack::NackRanges;

use bytes::Bytes;

/// Standard Ethernet MTU in bytes. The paper's switches did not support jumbo
/// frames, so every MultiEdge frame fits in 1500 bytes of Ethernet payload.
pub const ETHERNET_MTU: usize = 1500;

/// Ethernet-level overhead per frame on the wire, in bytes: preamble (7) +
/// SFD (1) + destination/source MAC (12) + ethertype (2) + FCS (4) +
/// inter-frame gap (12). Used by the link model to compute wire occupancy.
pub const ETHERNET_WIRE_OVERHEAD: usize = 38;

/// Minimum Ethernet payload (frames are padded up to this on the wire).
pub const ETHERNET_MIN_PAYLOAD: usize = 46;

/// Maximum MultiEdge payload bytes per frame: MTU minus our header.
pub const MAX_PAYLOAD: usize = ETHERNET_MTU - HEADER_LEN;

/// A full MultiEdge frame: protocol header plus payload.
///
/// The payload is reference-counted ([`Bytes`]) so that retransmission
/// buffers and in-flight copies share one allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Ethernet destination (selects node + rail).
    pub dst: MacAddr,
    /// Ethernet source.
    pub src: MacAddr,
    /// MultiEdge protocol header.
    pub header: FrameHeader,
    /// Fragment payload (data frames) or auxiliary payload (NACK ranges).
    pub payload: Bytes,
}

impl Frame {
    /// Bytes of Ethernet payload this frame occupies (header + payload,
    /// padded to the Ethernet minimum).
    pub fn ethernet_payload_len(&self) -> usize {
        (HEADER_LEN + self.payload.len()).max(ETHERNET_MIN_PAYLOAD)
    }

    /// Total bytes of wire time this frame consumes, including preamble,
    /// MACs, FCS and inter-frame gap.
    pub fn wire_len(&self) -> usize {
        self.ethernet_payload_len() + ETHERNET_WIRE_OVERHEAD
    }

    /// True if this frame carries RDMA data (write fragment or read
    /// response fragment).
    pub fn is_data(&self) -> bool {
        matches!(
            self.header.kind,
            FrameKind::Data | FrameKind::ReadResponse
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_len_includes_overhead_and_padding() {
        let f = Frame {
            dst: MacAddr::new(1, 0),
            src: MacAddr::new(0, 0),
            header: FrameHeader::default(),
            payload: Bytes::new(),
        };
        // Header alone is below the Ethernet minimum payload; the frame is
        // padded to 46 bytes and then the fixed 38-byte overhead applies.
        assert_eq!(f.ethernet_payload_len(), ETHERNET_MIN_PAYLOAD.max(HEADER_LEN));
        assert_eq!(f.wire_len(), f.ethernet_payload_len() + ETHERNET_WIRE_OVERHEAD);
    }

    #[test]
    fn max_payload_fits_mtu() {
        assert_eq!(MAX_PAYLOAD + HEADER_LEN, ETHERNET_MTU);
        const { assert!(MAX_PAYLOAD > 1400, "header overhead should be small") }
    }
}
