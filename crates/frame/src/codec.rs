//! Binary codec for MultiEdge frames.
//!
//! Layout (little-endian, fixed [`HEADER_LEN`] = 50 bytes):
//!
//! ```text
//! offset  size  field
//!      0     1  kind
//!      1     1  reserved (0)
//!      2     2  flags
//!      4     4  conn
//!      8     4  seq
//!     12     4  ack
//!     16     4  op_id
//!     20     4  op_total_len
//!     24     4  fence_floor
//!     28     8  remote_addr
//!     36     8  aux
//!     44     2  payload_len
//!     46     4  checksum (FNV-1a over header-with-zeroed-checksum + payload)
//!     50  var   payload
//! ```

use crate::header::{FrameFlags, FrameHeader, FrameKind, HEADER_LEN};
use crate::{Frame, MacAddr, MAX_PAYLOAD};
use bytes::Bytes;

/// Errors from [`decode_frame`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Buffer shorter than the fixed header.
    Truncated {
        /// Bytes available.
        got: usize,
    },
    /// `kind` byte is not a known [`FrameKind`].
    BadKind(u8),
    /// Declared payload length exceeds the buffer or the MTU.
    BadLength {
        /// Declared payload length.
        declared: usize,
        /// Bytes available after the header.
        available: usize,
    },
    /// Checksum mismatch (corrupt frame). The receive path treats this as a
    /// damaged frame and NACKs it (paper §2.4).
    Checksum {
        /// Checksum carried in the frame.
        expected: u32,
        /// Checksum computed over the received bytes.
        actual: u32,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated { got } => write!(f, "frame truncated: {got} bytes"),
            Self::BadKind(k) => write!(f, "unknown frame kind {k}"),
            Self::BadLength {
                declared,
                available,
            } => write!(
                f,
                "bad payload length: declared {declared}, available {available}"
            ),
            Self::Checksum { expected, actual } => {
                write!(f, "checksum mismatch: header {expected:#x}, computed {actual:#x}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// FNV-1a, 32-bit. Fast, deterministic, adequate as a frame check sequence
/// stand-in for the simulator (real hardware has the Ethernet FCS).
fn fnv1a(chunks: &[&[u8]]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for chunk in chunks {
        for &b in *chunk {
            h ^= b as u32;
            h = h.wrapping_mul(0x0100_0193);
        }
    }
    h
}

fn write_header(buf: &mut [u8], h: &FrameHeader, payload_len: usize) {
    buf[0] = h.kind as u8;
    buf[1] = 0;
    buf[2..4].copy_from_slice(&h.flags.bits().to_le_bytes());
    buf[4..8].copy_from_slice(&h.conn.to_le_bytes());
    buf[8..12].copy_from_slice(&h.seq.to_le_bytes());
    buf[12..16].copy_from_slice(&h.ack.to_le_bytes());
    buf[16..20].copy_from_slice(&h.op_id.to_le_bytes());
    buf[20..24].copy_from_slice(&h.op_total_len.to_le_bytes());
    buf[24..28].copy_from_slice(&h.fence_floor.to_le_bytes());
    buf[28..36].copy_from_slice(&h.remote_addr.to_le_bytes());
    buf[36..44].copy_from_slice(&h.aux.to_le_bytes());
    buf[44..46].copy_from_slice(&(payload_len as u16).to_le_bytes());
    buf[46..50].copy_from_slice(&0u32.to_le_bytes()); // checksum placeholder
}

/// Serialize a frame into raw Ethernet payload bytes.
///
/// # Panics
///
/// Panics if the payload exceeds [`MAX_PAYLOAD`] — fragmentation is the
/// sender's job and a larger payload is a protocol-layer bug.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_frame_into(frame, &mut buf);
    buf
}

/// Serialize a frame into a caller-owned scratch buffer, reusing its
/// capacity. The buffer is cleared first; after the call it holds exactly
/// the encoded frame. Hot paths that encode many frames should hold one
/// scratch `Vec` and call this instead of [`encode_frame`].
///
/// # Panics
///
/// Panics if the payload exceeds [`MAX_PAYLOAD`] — fragmentation is the
/// sender's job and a larger payload is a protocol-layer bug.
pub fn encode_frame_into(frame: &Frame, buf: &mut Vec<u8>) {
    assert!(
        frame.payload.len() <= MAX_PAYLOAD,
        "payload {} exceeds MTU budget {}",
        frame.payload.len(),
        MAX_PAYLOAD
    );
    buf.clear();
    buf.resize(HEADER_LEN + frame.payload.len(), 0);
    write_header(buf, &frame.header, frame.payload.len());
    buf[HEADER_LEN..].copy_from_slice(&frame.payload);
    let sum = fnv1a(&[buf.as_slice()]);
    buf[46..50].copy_from_slice(&sum.to_le_bytes());
}

fn rd_u16(b: &[u8], o: usize) -> u16 {
    u16::from_le_bytes([b[o], b[o + 1]])
}
fn rd_u32(b: &[u8], o: usize) -> u32 {
    u32::from_le_bytes([b[o], b[o + 1], b[o + 2], b[o + 3]])
}
fn rd_u64(b: &[u8], o: usize) -> u64 {
    let mut a = [0u8; 8];
    a.copy_from_slice(&b[o..o + 8]);
    u64::from_le_bytes(a)
}

/// Parse raw Ethernet payload bytes back into a [`Frame`].
///
/// `src`/`dst` come from the (simulated) Ethernet layer. Verifies the
/// checksum; a mismatch models a frame damaged in flight.
pub fn decode_frame(src: MacAddr, dst: MacAddr, bytes: &[u8]) -> Result<Frame, CodecError> {
    if bytes.len() < HEADER_LEN {
        return Err(CodecError::Truncated { got: bytes.len() });
    }
    let kind = FrameKind::from_u8(bytes[0]).ok_or(CodecError::BadKind(bytes[0]))?;
    let payload_len = rd_u16(bytes, 44) as usize;
    if payload_len > MAX_PAYLOAD || HEADER_LEN + payload_len > bytes.len() {
        return Err(CodecError::BadLength {
            declared: payload_len,
            available: bytes.len() - HEADER_LEN,
        });
    }
    let expected = rd_u32(bytes, 46);
    // Recompute with the checksum field zeroed.
    let actual = fnv1a(&[
        &bytes[..46],
        &[0, 0, 0, 0],
        &bytes[HEADER_LEN..HEADER_LEN + payload_len],
    ]);
    if expected != actual {
        return Err(CodecError::Checksum { expected, actual });
    }
    let header = FrameHeader {
        kind,
        flags: FrameFlags::from_bits(rd_u16(bytes, 2)),
        conn: rd_u32(bytes, 4),
        seq: rd_u32(bytes, 8),
        ack: rd_u32(bytes, 12),
        op_id: rd_u32(bytes, 16),
        op_total_len: rd_u32(bytes, 20),
        fence_floor: rd_u32(bytes, 24),
        remote_addr: rd_u64(bytes, 28),
        aux: rd_u64(bytes, 36),
    };
    Ok(Frame {
        src,
        dst,
        header,
        payload: Bytes::copy_from_slice(&bytes[HEADER_LEN..HEADER_LEN + payload_len]),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frame(payload: &[u8]) -> Frame {
        Frame {
            dst: MacAddr::new(2, 1),
            src: MacAddr::new(0, 1),
            header: FrameHeader {
                kind: FrameKind::Data,
                flags: FrameFlags::FENCE_FORWARD | FrameFlags::LAST_FRAGMENT,
                conn: 7,
                seq: 0xdead_beef,
                ack: 42,
                op_id: 9,
                op_total_len: 4096,
                fence_floor: 3,
                remote_addr: 0x1000_0000_2000,
                aux: 0,
            },
            payload: Bytes::copy_from_slice(payload),
        }
    }

    /// Test-local scratch encode, exercising the reuse entry point.
    fn encode(f: &Frame) -> Vec<u8> {
        let mut buf = Vec::new();
        encode_frame_into(f, &mut buf);
        buf
    }

    #[test]
    fn round_trip() {
        let f = sample_frame(b"hello multiedge");
        let wire = encode(&f);
        let g = decode_frame(f.src, f.dst, &wire).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn round_trip_empty_payload() {
        let f = sample_frame(b"");
        let wire = encode(&f);
        assert_eq!(wire.len(), HEADER_LEN);
        let g = decode_frame(f.src, f.dst, &wire).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn corrupt_payload_detected() {
        let f = sample_frame(b"payload bytes here");
        let mut wire = encode(&f);
        *wire.last_mut().unwrap() ^= 0x40;
        match decode_frame(f.src, f.dst, &wire) {
            Err(CodecError::Checksum { .. }) => {}
            other => panic!("expected checksum error, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_header_detected() {
        let f = sample_frame(b"x");
        let mut wire = encode(&f);
        wire[8] ^= 1; // flip a seq bit
        assert!(matches!(
            decode_frame(f.src, f.dst, &wire),
            Err(CodecError::Checksum { .. })
        ));
    }

    #[test]
    fn truncated_detected() {
        let f = sample_frame(b"abc");
        let wire = encode(&f);
        assert!(matches!(
            decode_frame(f.src, f.dst, &wire[..10]),
            Err(CodecError::Truncated { got: 10 })
        ));
    }

    #[test]
    fn bad_kind_detected() {
        let f = sample_frame(b"");
        let mut wire = encode(&f);
        wire[0] = 99;
        assert!(matches!(
            decode_frame(f.src, f.dst, &wire),
            Err(CodecError::BadKind(99))
        ));
    }

    #[test]
    fn encode_into_reuses_capacity_and_matches_wrapper() {
        let big = sample_frame(&[7u8; 900]);
        let small = sample_frame(b"tiny");
        let mut scratch = Vec::new();
        encode_frame_into(&big, &mut scratch);
        assert_eq!(scratch, encode_frame(&big));
        let cap = scratch.capacity();
        encode_frame_into(&small, &mut scratch);
        assert_eq!(scratch, encode_frame(&small));
        assert_eq!(scratch.capacity(), cap, "scratch must be reused");
    }

    #[test]
    fn declared_length_beyond_buffer_detected() {
        let f = sample_frame(b"abcd");
        let mut wire = encode(&f);
        wire[44..46].copy_from_slice(&100u16.to_le_bytes());
        assert!(matches!(
            decode_frame(f.src, f.dst, &wire),
            Err(CodecError::BadLength { .. })
        ));
    }
}
