//! Host CPU cost accounting.
//!
//! The paper dedicates one CPU per node to the application and one to the
//! communication protocol (§3). A [`CpuTimeline`] serializes work on one such
//! CPU: each charge starts no earlier than the previous charge finished, and
//! the total busy time is accumulated so utilization can be reported
//! (Figure 2c plots protocol CPU utilization out of 200% for the two CPUs).

use crate::time::{Dur, SimTime};

/// A single simulated CPU: serialized work, busy-time accounting.
#[derive(Debug, Default, Clone)]
pub struct CpuTimeline {
    /// Earliest instant new work can start.
    avail: SimTime,
    /// Accumulated busy nanoseconds.
    busy: Dur,
}

impl CpuTimeline {
    /// Fresh idle CPU.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserve `cost` of CPU starting no earlier than `now`. Returns the
    /// `(start, end)` of the reserved slot and records the busy time.
    pub fn reserve(&mut self, now: SimTime, cost: Dur) -> (SimTime, SimTime) {
        let start = now.max(self.avail);
        let end = start + cost;
        self.avail = end;
        self.busy += cost;
        (start, end)
    }

    /// Record busy time without serializing (used for costs already placed
    /// in time by the caller, e.g. interrupt handler slices).
    pub fn account(&mut self, cost: Dur) {
        self.busy += cost;
    }

    /// When the CPU next becomes free.
    pub fn available_at(&self) -> SimTime {
        self.avail
    }

    /// Total busy time so far.
    pub fn busy_time(&self) -> Dur {
        self.busy
    }

    /// Utilization over `[0, elapsed]` as a fraction (may exceed 1.0 only by
    /// rounding; clamped).
    pub fn utilization(&self, elapsed: Dur) -> f64 {
        if elapsed.as_nanos() == 0 {
            return 0.0;
        }
        (self.busy.as_nanos() as f64 / elapsed.as_nanos() as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::us;

    #[test]
    fn serializes_overlapping_work() {
        let mut cpu = CpuTimeline::new();
        let (s1, e1) = cpu.reserve(SimTime(0), us(10));
        assert_eq!((s1, e1), (SimTime(0), SimTime(10_000)));
        // Submitted "now" at t=2us but the CPU is busy until 10us.
        let (s2, e2) = cpu.reserve(SimTime(2_000), us(5));
        assert_eq!((s2, e2), (SimTime(10_000), SimTime(15_000)));
        // Submitted after the CPU went idle.
        let (s3, _) = cpu.reserve(SimTime(20_000), us(1));
        assert_eq!(s3, SimTime(20_000));
        assert_eq!(cpu.busy_time(), us(16));
    }

    #[test]
    fn utilization_fraction() {
        let mut cpu = CpuTimeline::new();
        cpu.reserve(SimTime(0), us(25));
        assert!((cpu.utilization(us(100)) - 0.25).abs() < 1e-9);
        assert_eq!(cpu.utilization(Dur::ZERO), 0.0);
    }
}
