//! Scripted, seed-deterministic fault injection.
//!
//! The stationary [`FaultModel`](crate::net::FaultModel) draws i.i.d. loss
//! and corruption per hop — good for steady background noise, useless for
//! the scenarios §2.4 of the paper actually worries about: a rail that goes
//! *dark* for ten milliseconds, a link that flaps, a NIC whose receive path
//! stalls under an interrupt storm, or error bursts that cluster instead of
//! spreading evenly. This module adds those as a **fault plan**: a scripted
//! timeline of fault events, applied to the network at exact virtual times,
//! so every failure scenario is bit-for-bit reproducible for a given seed.
//!
//! Three layers compose:
//!
//! 1. The stationary [`FaultModel`](crate::net::FaultModel) (unchanged) —
//!    i.i.d. per-hop loss/corruption.
//! 2. A per-link [`GilbertElliott`] burst process installed/removed by plan
//!    events — a two-state Markov chain whose *bad* state has elevated
//!    loss/corruption, producing the clustered errors real copper shows.
//! 3. Hard faults — [`FaultAction::LinkDown`]/[`FaultAction::LinkUp`]
//!    (administrative link state; frames in flight when the link drops are
//!    lost too) and [`FaultAction::NicStall`] (the receive path freezes and
//!    delivers its backlog, in order, when the stall ends).
//!
//! All random draws the fault layer makes (stationary loss, burst-state
//! transitions) come from a dedicated RNG seeded by
//! [`ClusterSpec::fault_seed`](crate::topology::ClusterSpec::fault_seed),
//! independent of the jitter RNG — so the loss pattern for a given fault
//! seed is stable even when unrelated timing randomness changes.
//!
//! ```
//! use netsim::time::ms;
//! use netsim::FaultPlan;
//!
//! // Rail 1 dies 5 ms in, comes back at 20 ms; rail 0 flaps twice.
//! let plan = FaultPlan::new()
//!     .rail_down(ms(5), 1)
//!     .rail_up(ms(20), 1)
//!     .flap_link(ms(8), 0, 0, ms(1), ms(2), 2);
//! assert_eq!(plan.events().len(), 2 + 4);
//! ```

use crate::time::{Dur, SimTime};

/// Parameters of a two-state Gilbert–Elliott error process.
///
/// The channel is either in the *good* or the *bad* state; each frame
/// arrival first advances the state (good→bad with probability
/// `p_good_to_bad`, bad→good with `p_bad_to_good`), then draws loss and
/// corruption at the current state's rates. Burst length is geometric with
/// mean `1 / p_bad_to_good` frames.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliott {
    /// Per-frame probability of entering the bad state from the good state.
    pub p_good_to_bad: f64,
    /// Per-frame probability of leaving the bad state back to good.
    pub p_bad_to_good: f64,
    /// Loss probability per frame while in the good state.
    pub loss_good: f64,
    /// Loss probability per frame while in the bad state.
    pub loss_bad: f64,
    /// Corruption probability per frame while in the good state.
    pub corrupt_good: f64,
    /// Corruption probability per frame while in the bad state.
    pub corrupt_bad: f64,
}

impl GilbertElliott {
    /// A pure burst-loss process: clean good state, lossy bad state.
    pub fn bursty_loss(p_good_to_bad: f64, p_bad_to_good: f64, loss_bad: f64) -> Self {
        Self {
            p_good_to_bad,
            p_bad_to_good,
            loss_good: 0.0,
            loss_bad,
            corrupt_good: 0.0,
            corrupt_bad: 0.0,
        }
    }

    /// Long-run fraction of frames spent in the bad state (stationary
    /// distribution of the two-state chain).
    pub fn stationary_bad(&self) -> f64 {
        let denom = self.p_good_to_bad + self.p_bad_to_good;
        if denom <= 0.0 {
            0.0
        } else {
            self.p_good_to_bad / denom
        }
    }

    /// Long-run average loss rate implied by the process.
    pub fn mean_loss(&self) -> f64 {
        let b = self.stationary_bad();
        (1.0 - b) * self.loss_good + b * self.loss_bad
    }
}

/// Which link(s) a fault event applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// The full-duplex link between `node`'s NIC on `rail` and its switch.
    Link {
        /// Node index in the cluster.
        node: usize,
        /// Rail (NIC index within the node).
        rail: usize,
    },
    /// Every node's link on `rail` — takes the whole rail (switch) out.
    Rail {
        /// Rail index.
        rail: usize,
    },
}

/// What a fault event does when it fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// Force the link administratively down: frames submitted while down are
    /// dropped at the NIC, and frames already in flight on the link are lost
    /// at arrival time.
    LinkDown,
    /// Restore a downed link.
    LinkUp,
    /// Freeze the NIC's receive path for `dur`: frames that arrive while
    /// stalled are held and delivered, in order, when the stall ends.
    NicStall {
        /// How long the receive path stays frozen.
        dur: Dur,
    },
    /// Install (or replace) a [`GilbertElliott`] burst process on the
    /// target's channels.
    SetBurst {
        /// The burst process parameters.
        model: GilbertElliott,
    },
    /// Remove any installed burst process from the target's channels.
    ClearBurst,
}

/// One scheduled fault: at virtual time `at`, apply `action` to `target`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Absolute virtual time the fault fires.
    pub at: SimTime,
    /// Which link(s) it hits.
    pub target: FaultTarget,
    /// What it does.
    pub action: FaultAction,
}

/// A scripted timeline of fault events.
///
/// Built with the chainable helpers below (times are offsets from the start
/// of the simulation) and applied to a built cluster with
/// [`Cluster::apply_fault_plan`](crate::topology::Cluster::apply_fault_plan),
/// which schedules one simulator event per fault.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Add an arbitrary event.
    pub fn event(mut self, at: Dur, target: FaultTarget, action: FaultAction) -> Self {
        self.events.push(FaultEvent {
            at: SimTime::ZERO + at,
            target,
            action,
        });
        self
    }

    /// Take one node's link on `rail` down at `at`.
    pub fn link_down(self, at: Dur, node: usize, rail: usize) -> Self {
        self.event(at, FaultTarget::Link { node, rail }, FaultAction::LinkDown)
    }

    /// Restore one node's link on `rail` at `at`.
    pub fn link_up(self, at: Dur, node: usize, rail: usize) -> Self {
        self.event(at, FaultTarget::Link { node, rail }, FaultAction::LinkUp)
    }

    /// Take a whole rail (every node's link on it) down at `at`.
    pub fn rail_down(self, at: Dur, rail: usize) -> Self {
        self.event(at, FaultTarget::Rail { rail }, FaultAction::LinkDown)
    }

    /// Restore a whole rail at `at`.
    pub fn rail_up(self, at: Dur, rail: usize) -> Self {
        self.event(at, FaultTarget::Rail { rail }, FaultAction::LinkUp)
    }

    /// Flap one node's link: starting at `first_down`, repeat `cycles` times
    /// (down for `down_for`, then up for `up_for`).
    pub fn flap_link(
        mut self,
        first_down: Dur,
        node: usize,
        rail: usize,
        down_for: Dur,
        up_for: Dur,
        cycles: usize,
    ) -> Self {
        let mut t = first_down;
        for _ in 0..cycles {
            self = self.link_down(t, node, rail);
            self = self.link_up(t + down_for, node, rail);
            t = t + down_for + up_for;
        }
        self
    }

    /// Freeze the receive path of `node`'s NIC on `rail` for `dur`,
    /// starting at `at`.
    pub fn nic_stall(self, at: Dur, node: usize, rail: usize, dur: Dur) -> Self {
        self.event(
            at,
            FaultTarget::Link { node, rail },
            FaultAction::NicStall { dur },
        )
    }

    /// Install a burst process on the target's channels at `at`.
    pub fn burst(self, at: Dur, target: FaultTarget, model: GilbertElliott) -> Self {
        self.event(at, target, FaultAction::SetBurst { model })
    }

    /// Remove the burst process from the target's channels at `at`.
    pub fn clear_burst(self, at: Dur, target: FaultTarget) -> Self {
        self.event(at, target, FaultAction::ClearBurst)
    }

    /// Events whose target covers `node`'s link on `rail` (either the
    /// specific [`FaultTarget::Link`] or the whole [`FaultTarget::Rail`]),
    /// sorted by fire time.
    fn events_for(&self, node: usize, rail: usize) -> Vec<&FaultEvent> {
        let mut hits: Vec<&FaultEvent> = self
            .events
            .iter()
            .filter(|e| match e.target {
                FaultTarget::Link { node: n, rail: r } => n == node && r == rail,
                FaultTarget::Rail { rail: r } => r == rail,
            })
            .collect();
        hits.sort_by_key(|e| e.at);
        hits
    }

    /// The half-open `[from_ns, to_ns)` intervals during which `node`'s
    /// link on `rail` is administratively down, merged and sorted. A
    /// [`FaultAction::LinkDown`] with no matching up extends to
    /// `u64::MAX`. This is the plan's *interpretation* — backends that
    /// cannot replay events live (the chaos interposer over real sockets)
    /// consume the same plan through this view, so one schedule drives
    /// both transports identically.
    pub fn down_intervals(&self, node: usize, rail: usize) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut down_since: Option<u64> = None;
        for e in self.events_for(node, rail) {
            let t = e.at.0;
            match e.action {
                FaultAction::LinkDown if down_since.is_none() => down_since = Some(t),
                FaultAction::LinkUp => {
                    if let Some(from) = down_since.take() {
                        if t > from {
                            out.push((from, t));
                        }
                    }
                }
                _ => {}
            }
        }
        if let Some(from) = down_since {
            out.push((from, u64::MAX));
        }
        out
    }

    /// The half-open `[from_ns, to_ns)` intervals during which `node`'s
    /// receive path on `rail` is frozen by a [`FaultAction::NicStall`],
    /// sorted by start (overlapping stalls are merged).
    pub fn stall_intervals(&self, node: usize, rail: usize) -> Vec<(u64, u64)> {
        let mut out: Vec<(u64, u64)> = Vec::new();
        for e in self.events_for(node, rail) {
            let FaultAction::NicStall { dur } = e.action else {
                continue;
            };
            let from = e.at.0;
            let to = from.saturating_add(dur.as_nanos());
            match out.last_mut() {
                Some(last) if from <= last.1 => last.1 = last.1.max(to),
                _ => out.push((from, to)),
            }
        }
        out
    }

    /// The burst-process timeline for `node`'s link on `rail`: `(at_ns,
    /// model)` transitions, where `None` means the burst process was
    /// cleared. The model in force at time `t` is the last entry at or
    /// before `t` (none before the first entry).
    pub fn burst_timeline(&self, node: usize, rail: usize) -> Vec<(u64, Option<GilbertElliott>)> {
        let mut out = Vec::new();
        for e in self.events_for(node, rail) {
            match e.action {
                FaultAction::SetBurst { model } => out.push((e.at.0, Some(model))),
                FaultAction::ClearBurst => out.push((e.at.0, None)),
                _ => {}
            }
        }
        out
    }
}

/// Whether `t` falls inside any of the sorted half-open `intervals`.
pub fn covered(intervals: &[(u64, u64)], t: u64) -> bool {
    intervals
        .iter()
        .take_while(|&&(from, _)| from <= t)
        .any(|&(_, to)| t < to)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::ms;

    #[test]
    fn flap_expands_to_down_up_pairs() {
        let plan = FaultPlan::new().flap_link(ms(1), 0, 1, ms(2), ms(3), 2);
        let ev = plan.events();
        assert_eq!(ev.len(), 4);
        assert_eq!(ev[0].at, SimTime::ZERO + ms(1));
        assert_eq!(ev[0].action, FaultAction::LinkDown);
        assert_eq!(ev[1].at, SimTime::ZERO + ms(3));
        assert_eq!(ev[1].action, FaultAction::LinkUp);
        assert_eq!(ev[2].at, SimTime::ZERO + ms(6));
        assert_eq!(ev[3].at, SimTime::ZERO + ms(8));
        for e in ev {
            assert_eq!(e.target, FaultTarget::Link { node: 0, rail: 1 });
        }
    }

    #[test]
    fn down_intervals_merge_links_and_rails() {
        let plan = FaultPlan::new()
            .link_down(ms(1), 0, 1)
            .link_up(ms(3), 0, 1)
            .rail_down(ms(5), 1)
            .rail_up(ms(7), 1)
            .link_down(ms(9), 0, 1); // never comes back up
        let iv = plan.down_intervals(0, 1);
        assert_eq!(
            iv,
            vec![
                (ms(1).as_nanos(), ms(3).as_nanos()),
                (ms(5).as_nanos(), ms(7).as_nanos()),
                (ms(9).as_nanos(), u64::MAX),
            ]
        );
        // Node 1 only sees the rail-wide outage.
        assert_eq!(
            plan.down_intervals(1, 1),
            vec![(ms(5).as_nanos(), ms(7).as_nanos())]
        );
        // Other rails are untouched.
        assert!(plan.down_intervals(0, 0).is_empty());
        assert!(covered(&iv, ms(2).as_nanos()));
        assert!(!covered(&iv, ms(4).as_nanos()));
        assert!(covered(&iv, ms(20).as_nanos()));
        // Half-open: the up instant is already up.
        assert!(!covered(&iv, ms(3).as_nanos()));
    }

    #[test]
    fn stall_intervals_merge_overlaps() {
        let plan = FaultPlan::new()
            .nic_stall(ms(1), 0, 0, ms(2))
            .nic_stall(ms(2), 0, 0, ms(3))
            .nic_stall(ms(10), 0, 0, ms(1));
        assert_eq!(
            plan.stall_intervals(0, 0),
            vec![
                (ms(1).as_nanos(), ms(5).as_nanos()),
                (ms(10).as_nanos(), ms(11).as_nanos()),
            ]
        );
        assert!(plan.stall_intervals(1, 0).is_empty());
    }

    #[test]
    fn burst_timeline_orders_transitions() {
        let ge = GilbertElliott::bursty_loss(0.1, 0.5, 0.8);
        let plan = FaultPlan::new()
            .burst(ms(4), FaultTarget::Rail { rail: 0 }, ge)
            .clear_burst(ms(9), FaultTarget::Rail { rail: 0 });
        let tl = plan.burst_timeline(1, 0);
        assert_eq!(tl.len(), 2);
        assert_eq!(tl[0], (ms(4).as_nanos(), Some(ge)));
        assert_eq!(tl[1], (ms(9).as_nanos(), None));
    }

    #[test]
    fn gilbert_elliott_stationary_math() {
        let ge = GilbertElliott::bursty_loss(0.01, 0.09, 0.5);
        let b = ge.stationary_bad();
        assert!((b - 0.1).abs() < 1e-12);
        assert!((ge.mean_loss() - 0.05).abs() < 1e-12);
        let clean = GilbertElliott::bursty_loss(0.0, 0.0, 1.0);
        assert_eq!(clean.stationary_bad(), 0.0);
    }
}
