//! Cluster topology builder.
//!
//! The paper's testbeds are "rail" topologies: NIC `r` of every node attaches
//! to switch `r`. The 16-node 1-GbE cluster has one or two rails; the 4-node
//! 10-GbE cluster has one. [`build_cluster`] constructs exactly that shape.

use crate::engine::Sim;
use crate::faults::{FaultPlan, FaultTarget};
use crate::net::{ChannelParams, FaultModel, Network, NicId};
use crate::time::{us_f64, Dur};
use frame::MacAddr;

/// Fault-RNG seed used when a spec does not choose one explicitly.
pub const DEFAULT_FAULT_SEED: u64 = 0x5EED_F417;

/// Shape and parameters of a rail-connected cluster.
#[derive(Debug, Clone, Copy)]
pub struct ClusterSpec {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of rails (NICs per node, switches total).
    pub rails: usize,
    /// Link parameters, identical for every NIC↔switch link.
    pub link: ChannelParams,
    /// Per-frame store-and-forward delay at each switch.
    pub switch_delay: Dur,
    /// Transient-fault model applied on every hop.
    pub fault: FaultModel,
    /// Seed for the network's dedicated fault RNG: pins every
    /// loss/corruption/burst draw, independently of timing jitter, so fault
    /// scenarios are reproducible.
    pub fault_seed: u64,
}

impl ClusterSpec {
    /// `nodes` nodes, `rails` 1-GbE rails (the paper's 1L-1G / 2L-1G).
    pub fn gbe_1(nodes: usize, rails: usize) -> Self {
        Self {
            nodes,
            rails,
            link: ChannelParams::gbe_1(),
            switch_delay: us_f64(1.0),
            fault: FaultModel::default(),
            fault_seed: DEFAULT_FAULT_SEED,
        }
    }

    /// `nodes` nodes on a single 10-GbE rail (the paper's 1L-10G).
    pub fn gbe_10(nodes: usize) -> Self {
        Self {
            nodes,
            rails: 1,
            link: ChannelParams::gbe_10(),
            switch_delay: us_f64(1.0),
            fault: FaultModel::default(),
            fault_seed: DEFAULT_FAULT_SEED,
        }
    }
}

/// A built cluster: the network plus each node's NICs.
pub struct Cluster {
    /// The underlying network.
    pub net: Network,
    /// `nics[node][rail]`.
    pub nics: Vec<Vec<NicId>>,
    /// The spec this cluster was built from.
    pub spec: ClusterSpec,
}

impl Cluster {
    /// The NICs a fault target resolves to in this cluster's rail shape.
    pub fn resolve_target(&self, target: FaultTarget) -> Vec<NicId> {
        match target {
            FaultTarget::Link { node, rail } => vec![self.nics[node][rail]],
            FaultTarget::Rail { rail } => self.nics.iter().map(|row| row[rail]).collect(),
        }
    }

    /// Schedule every event of `plan` onto `sim`: at each event's virtual
    /// time the action is applied to every NIC its target resolves to (a
    /// [`FaultTarget::Rail`] hits all nodes' links on that rail at once).
    pub fn apply_fault_plan(&self, sim: &Sim, plan: &FaultPlan) {
        for ev in plan.events() {
            let nics = self.resolve_target(ev.target);
            let net = self.net.clone();
            let action = ev.action;
            sim.schedule_at(ev.at, move |_| {
                for nic in nics {
                    net.apply_fault(nic, action);
                }
            });
        }
    }
}

/// Build a rail topology per `spec`.
pub fn build_cluster(sim: &Sim, spec: ClusterSpec) -> Cluster {
    assert!(spec.nodes >= 1 && spec.rails >= 1);
    let net = Network::with_fault_seed(sim, spec.fault, spec.fault_seed);
    let switches: Vec<_> = (0..spec.rails)
        .map(|_| net.add_switch(spec.switch_delay))
        .collect();
    let mut nics = Vec::with_capacity(spec.nodes);
    for node in 0..spec.nodes {
        let mut row = Vec::with_capacity(spec.rails);
        for (rail, &switch) in switches.iter().enumerate() {
            let nic = net.add_nic(MacAddr::new(node as u16, rail as u8));
            net.connect(nic, switch, spec.link);
            row.push(nic);
        }
        nics.push(row);
    }
    Cluster {
        net,
        nics,
        spec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use frame::{Frame, FrameHeader};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn netsim_zero_jitter() -> Dur {
        Dur::ZERO
    }

    #[test]
    fn rails_are_independent() {
        // A frame on rail 0 and a frame on rail 1 between the same pair of
        // nodes never share a switch or link: both arrive after exactly the
        // single-frame path latency (no serialization behind each other).
        let sim = Sim::new(0);
        let mut spec = ClusterSpec::gbe_1(2, 2);
        spec.link.jitter = netsim_zero_jitter();
        let cluster = build_cluster(&sim, spec);
        let times: Rc<RefCell<Vec<u64>>> = Rc::default();
        for rail in 0..2 {
            let t = times.clone();
            cluster
                .net
                .set_rx_handler(cluster.nics[1][rail], move |sim, _| {
                    t.borrow_mut().push(sim.now().as_nanos())
                });
        }
        for rail in 0..2u8 {
            let f = Frame {
                src: MacAddr::new(0, rail),
                dst: MacAddr::new(1, rail),
                header: FrameHeader::default(),
                payload: Bytes::from(vec![0u8; 1000]),
            };
            cluster.net.nic_send(cluster.nics[0][rail as usize], f);
        }
        sim.run();
        let times = times.borrow();
        assert_eq!(times.len(), 2);
        assert_eq!(times[0], times[1], "rails should not interfere");
    }

    #[test]
    fn all_pairs_reachable() {
        let sim = Sim::new(0);
        let cluster = build_cluster(&sim, ClusterSpec::gbe_1(4, 1));
        let got: Rc<RefCell<u32>> = Rc::default();
        for n in 0..4 {
            let g = got.clone();
            cluster
                .net
                .set_rx_handler(cluster.nics[n][0], move |_, _| *g.borrow_mut() += 1);
        }
        for s in 0..4u16 {
            for d in 0..4u16 {
                if s != d {
                    let f = Frame {
                        src: MacAddr::new(s, 0),
                        dst: MacAddr::new(d, 0),
                        header: FrameHeader::default(),
                        payload: Bytes::new(),
                    };
                    cluster.net.nic_send(cluster.nics[s as usize][0], f);
                }
            }
        }
        sim.run();
        assert_eq!(*got.borrow(), 12);
    }
}
