//! `netsim` — a deterministic discrete-event network simulator.
//!
//! This crate is the hardware substrate for the MultiEdge reproduction: it
//! stands in for the paper's 16-node Opteron cluster, its Broadcom/Myricom
//! NICs and its D-Link/HP Ethernet switches. Everything above this crate
//! (the MultiEdge protocol, the DSM, the applications) is a faithful
//! implementation of the published system; everything inside this crate is a
//! timing model.
//!
//! # Pieces
//!
//! * [`Sim`] — event queue + virtual clock + a cooperative, single-threaded
//!   async task executor ([`Sim::spawn`]). Deterministic for a given seed.
//! * [`sync`] — futures for simulation tasks: [`sync::sleep`],
//!   [`sync::Flag`], [`sync::Channel`], [`sync::Semaphore`],
//!   [`sync::join_all`].
//! * [`net`] — frame-granular models of links, store-and-forward switches
//!   and NICs, with bounded queues (congestion loss) and a transient-fault
//!   model (random loss / corruption).
//! * [`cpu`] — per-CPU busy-time accounting used to report the paper's
//!   CPU-utilization figures.
//! * [`topology`] — the paper's rail-shaped cluster builder.
//! * [`faults`] — scripted, seed-deterministic fault plans layered on the
//!   stationary model: timed link outages, flapping, NIC stalls, and
//!   [`GilbertElliott`] burst loss/corruption ([`FaultPlan`]).
//! * [`shard`] — conservative-lookahead parallel runtime: partitions a
//!   cluster across per-thread [`Sim`] instances synchronized by the link
//!   propagation delay, with a hard cross-shard-count determinism contract
//!   ([`shard::run_sharded`]).
//!
//! # Example
//!
//! ```
//! use netsim::{Sim, sync::sleep, time::us};
//!
//! let sim = Sim::new(7);
//! let s = sim.clone();
//! let task = sim.spawn("hello", async move {
//!     sleep(&s, us(10)).await;
//!     s.now().as_nanos()
//! });
//! sim.run().expect_quiescent();
//! assert_eq!(task.try_take(), Some(10_000));
//! ```

#![warn(missing_docs)]

pub mod cpu;
pub mod engine;
pub mod faults;
pub mod net;
pub mod shard;
pub mod sync;
pub mod time;
pub mod topology;

pub use engine::{RunReport, Sim, TaskId, TimerId};
pub use faults::{covered, FaultAction, FaultEvent, FaultPlan, FaultTarget, GilbertElliott};
pub use net::{
    BoundaryTx, ChannelParams, FaultDecision, FaultModel, NetStats, Network, NicId, RemoteDest,
    RxFrame, SwitchId,
};
pub use shard::{
    run_sharded, BoundaryMsg, PartitionError, ShardError, ShardMode, ShardNet, ShardPlan,
    ShardRunConfig, ShardRunReport, ShardStats,
};
pub use time::{Dur, SimTime};
pub use topology::{build_cluster, Cluster, ClusterSpec, DEFAULT_FAULT_SEED};
