//! The discrete-event engine and its cooperative task executor.
//!
//! A [`Sim`] owns a priority queue of events keyed by `(time, sequence)`.
//! Events are either boxed closures (used by the network and protocol state
//! machines) or *task polls*. Tasks are ordinary Rust futures driven by a
//! bespoke single-threaded executor: every leaf future in this workspace
//! ([`crate::sync::Delay`], [`crate::sync::Flag`], …) registers the task that
//! polled it with a simulator event, and event completion schedules a re-poll.
//! There are no OS threads and no real wakers, so a run is bit-for-bit
//! deterministic for a given seed.
//!
//! The paper's "application CPU vs. protocol CPU" split maps onto this:
//! application code runs in tasks; protocol processing runs in event closures
//! whose costs are charged to the node's second CPU (see
//! [`crate::cpu::CpuTimeline`]).

use crate::time::{Dur, SimTime};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

/// Identifier of a spawned task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskId(usize);

type EventFn = Box<dyn FnOnce(&Sim)>;

enum What {
    Call(EventFn),
    Poll(TaskId),
}

struct Scheduled {
    time: SimTime,
    seq: u64,
    what: What,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    // Reverse order: BinaryHeap is a max-heap, we want the earliest first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

struct Task {
    future: Pin<Box<dyn Future<Output = ()>>>,
    name: String,
    /// A poll event is already queued; avoids redundant polls.
    poll_queued: bool,
}

struct SimInner {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Scheduled>,
    tasks: Vec<Option<Task>>,
    live_tasks: usize,
    current_task: Option<TaskId>,
    rng: SmallRng,
    events_executed: u64,
}

/// Outcome of [`Sim::run`].
#[derive(Debug)]
pub struct RunReport {
    /// Virtual time when the event queue drained (or the limit fired).
    pub end_time: SimTime,
    /// Total events executed.
    pub events: u64,
    /// Names of tasks that never completed — non-empty means deadlock (a
    /// task is waiting on an event nobody will fire).
    pub stuck_tasks: Vec<String>,
}

impl RunReport {
    /// Panic with a readable message if any task never completed.
    pub fn expect_quiescent(&self) {
        assert!(
            self.stuck_tasks.is_empty(),
            "simulation deadlock: stuck tasks {:?}",
            self.stuck_tasks
        );
    }
}

/// Handle to the simulator. Cheap to clone; all clones share state.
#[derive(Clone)]
pub struct Sim {
    inner: Rc<RefCell<SimInner>>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new(0)
    }
}

impl Sim {
    /// Fresh simulator with the given RNG seed. Identical seeds yield
    /// identical runs.
    pub fn new(seed: u64) -> Self {
        Self {
            inner: Rc::new(RefCell::new(SimInner {
                now: SimTime::ZERO,
                seq: 0,
                heap: BinaryHeap::new(),
                tasks: Vec::new(),
                live_tasks: 0,
                current_task: None,
                rng: SmallRng::seed_from_u64(seed),
                events_executed: 0,
            })),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.inner.borrow().now
    }

    /// Total events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.inner.borrow().events_executed
    }

    /// Schedule `f` to run at absolute time `at` (clamped to now).
    pub fn schedule_at(&self, at: SimTime, f: impl FnOnce(&Sim) + 'static) {
        let mut inner = self.inner.borrow_mut();
        let at = at.max(inner.now);
        let seq = inner.seq;
        inner.seq += 1;
        inner.heap.push(Scheduled {
            time: at,
            seq,
            what: What::Call(Box::new(f)),
        });
    }

    /// Schedule `f` to run after `d`.
    pub fn schedule_in(&self, d: Dur, f: impl FnOnce(&Sim) + 'static) {
        let at = self.now() + d;
        self.schedule_at(at, f);
    }

    /// Run `f` with the simulator RNG.
    pub fn with_rng<T>(&self, f: impl FnOnce(&mut SmallRng) -> T) -> T {
        f(&mut self.inner.borrow_mut().rng)
    }

    /// The task currently being polled.
    ///
    /// # Panics
    ///
    /// Panics when called outside a task poll — leaf futures are the only
    /// legitimate callers.
    pub(crate) fn current_task(&self) -> TaskId {
        self.inner
            .borrow()
            .current_task
            .expect("current_task() called outside a task poll")
    }

    /// Queue a re-poll of `task` at the current time. Idempotent while a
    /// poll is already queued.
    pub(crate) fn wake_task(&self, task: TaskId) {
        let mut inner = self.inner.borrow_mut();
        let Some(slot) = inner.tasks.get_mut(task.0) else {
            return;
        };
        let Some(t) = slot.as_mut() else {
            return; // already finished
        };
        if t.poll_queued {
            return;
        }
        t.poll_queued = true;
        let (time, seq) = (inner.now, inner.seq);
        inner.seq += 1;
        inner.heap.push(Scheduled {
            time,
            seq,
            what: What::Poll(task),
        });
    }

    /// Queue a re-poll of `task` at absolute time `at` (used by timers).
    pub(crate) fn wake_task_at(&self, task: TaskId, at: SimTime) {
        let mut inner = self.inner.borrow_mut();
        let at = at.max(inner.now);
        let seq = inner.seq;
        inner.seq += 1;
        inner.heap.push(Scheduled {
            time: at,
            seq,
            what: What::Poll(task),
        });
    }

    /// Spawn a future as a simulation task; it begins running at the current
    /// virtual time. Returns a [`crate::sync::JoinHandle`] yielding its output.
    pub fn spawn<T: 'static>(
        &self,
        name: impl Into<String>,
        fut: impl Future<Output = T> + 'static,
    ) -> crate::sync::JoinHandle<T> {
        let flag = crate::sync::Flag::new(self);
        let cell: Rc<RefCell<Option<T>>> = Rc::new(RefCell::new(None));
        let handle = crate::sync::JoinHandle::new(cell.clone(), flag.clone());
        let wrapper = async move {
            let out = fut.await;
            *cell.borrow_mut() = Some(out);
            flag.fire();
        };
        let id = {
            let mut inner = self.inner.borrow_mut();
            let id = TaskId(inner.tasks.len());
            inner.tasks.push(Some(Task {
                future: Box::pin(wrapper),
                name: name.into(),
                poll_queued: true,
            }));
            inner.live_tasks += 1;
            let (time, seq) = (inner.now, inner.seq);
            inner.seq += 1;
            inner.heap.push(Scheduled {
                time,
                seq,
                what: What::Poll(id),
            });
            id
        };
        let _ = id;
        handle
    }

    fn poll_task(&self, id: TaskId) {
        // Take the task out so the future can re-borrow the simulator.
        let mut task = {
            let mut inner = self.inner.borrow_mut();
            let Some(slot) = inner.tasks.get_mut(id.0) else {
                return;
            };
            let Some(mut t) = slot.take() else {
                return;
            };
            t.poll_queued = false;
            inner.current_task = Some(id);
            t
        };
        let waker = Waker::noop();
        let mut cx = Context::from_waker(waker);
        let poll = task.future.as_mut().poll(&mut cx);
        let mut inner = self.inner.borrow_mut();
        inner.current_task = None;
        match poll {
            Poll::Ready(()) => {
                inner.live_tasks -= 1;
                // slot stays None: task retired
            }
            Poll::Pending => {
                inner.tasks[id.0] = Some(task);
            }
        }
    }

    /// Run until the event queue is empty or virtual time would exceed
    /// `limit` (if given). Returns a report including any stuck tasks.
    pub fn run_with_limit(&self, limit: Option<SimTime>) -> RunReport {
        loop {
            let next = {
                let mut inner = self.inner.borrow_mut();
                match inner.heap.pop() {
                    None => break,
                    Some(ev) => {
                        if let Some(lim) = limit {
                            if ev.time > lim {
                                // Push back and stop: caller inspects state.
                                inner.heap.push(ev);
                                break;
                            }
                        }
                        inner.now = ev.time;
                        inner.events_executed += 1;
                        ev
                    }
                }
            };
            match next.what {
                What::Call(f) => f(self),
                What::Poll(id) => self.poll_task(id),
            }
        }
        let inner = self.inner.borrow();
        RunReport {
            end_time: inner.now,
            events: inner.events_executed,
            stuck_tasks: inner
                .tasks
                .iter()
                .filter_map(|t| t.as_ref().map(|t| t.name.clone()))
                .collect(),
        }
    }

    /// Run to quiescence (no virtual-time limit).
    pub fn run(&self) -> RunReport {
        self.run_with_limit(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::us;

    #[test]
    fn events_run_in_time_order_with_fifo_ties() {
        let sim = Sim::new(1);
        let log: Rc<RefCell<Vec<u32>>> = Rc::default();
        let (a, b, c, d) = (log.clone(), log.clone(), log.clone(), log.clone());
        sim.schedule_in(us(10), move |_| a.borrow_mut().push(2));
        sim.schedule_in(us(5), move |_| b.borrow_mut().push(1));
        sim.schedule_in(us(10), move |_| c.borrow_mut().push(3)); // tie: after first us(10)
        sim.schedule_in(us(20), move |_| d.borrow_mut().push(4));
        let report = sim.run();
        assert_eq!(*log.borrow(), vec![1, 2, 3, 4]);
        assert_eq!(report.end_time, SimTime::ZERO + us(20));
        assert_eq!(report.events, 4);
    }

    #[test]
    fn nested_scheduling_advances_time() {
        let sim = Sim::new(1);
        let log: Rc<RefCell<Vec<u64>>> = Rc::default();
        let l = log.clone();
        sim.schedule_in(us(1), move |sim| {
            let l2 = l.clone();
            l.borrow_mut().push(sim.now().as_nanos());
            sim.schedule_in(us(2), move |sim| {
                l2.borrow_mut().push(sim.now().as_nanos());
            });
        });
        sim.run();
        assert_eq!(*log.borrow(), vec![1_000, 3_000]);
    }

    #[test]
    fn deterministic_rng() {
        use rand::Rng;
        let draws = |seed| {
            let sim = Sim::new(seed);
            (0..4)
                .map(|_| sim.with_rng(|r| r.gen::<u64>()))
                .collect::<Vec<_>>()
        };
        assert_eq!(draws(7), draws(7));
        assert_ne!(draws(7), draws(8));
    }

    #[test]
    fn run_with_limit_stops_before_later_events() {
        let sim = Sim::new(0);
        let hit: Rc<RefCell<u32>> = Rc::default();
        let h = hit.clone();
        sim.schedule_in(us(100), move |_| *h.borrow_mut() += 1);
        let report = sim.run_with_limit(Some(SimTime::ZERO + us(10)));
        assert_eq!(*hit.borrow(), 0);
        assert!(report.end_time <= SimTime::ZERO + us(10));
        // The event is still queued and fires on a later unrestricted run.
        sim.run();
        assert_eq!(*hit.borrow(), 1);
    }
}
