//! The discrete-event engine and its cooperative task executor.
//!
//! A [`Sim`] owns a priority queue of events keyed by `(time, sequence)`.
//! Events are either closures (used by the network and protocol state
//! machines) or *task polls*. Tasks are ordinary Rust futures driven by a
//! bespoke single-threaded executor: every leaf future in this workspace
//! ([`crate::sync::Delay`], [`crate::sync::Flag`], …) registers the task that
//! polled it with a simulator event, and event completion schedules a re-poll.
//! There are no OS threads and no real wakers, so a run is bit-for-bit
//! deterministic for a given seed.
//!
//! # Mechanical sympathy
//!
//! The event queue is the innermost loop of every benchmark, so it avoids
//! per-event heap traffic twice over:
//!
//! * **Inline closures.** Event closures are stored in a fixed 160-byte
//!   buffer inside the queue entry (`InlineEvent`) instead of a
//!   `Box<dyn FnOnce>`; only closures too big for the buffer fall back to a
//!   box. The protocol's hot closures (a handful of `Rc` handles plus a
//!   frame) fit inline, so steady-state scheduling allocates nothing.
//!
//! * **A staging timer wheel.** Near-future events land in a hashed wheel
//!   (slot = time quantum mod wheel size) as an O(1) append; only events
//!   beyond the wheel horizon use the `BinaryHeap`. A slot is sorted once,
//!   lazily, when it becomes the next candidate. Because the pop loop
//!   always takes the global `(time, seq)` minimum across wheel and heap,
//!   execution order — and therefore every RNG draw and statistic — is
//!   bit-identical to the heap-only engine.
//!
//! High-churn timers (interrupt moderation and the like) can additionally be
//! armed through [`Sim::schedule_timer_in`], which returns a [`TimerId`]
//! whose [`Sim::cancel_timer`] is an O(1) tombstone: the queue entry is
//! skipped at pop time without executing or counting it.
//!
//! The paper's "application CPU vs. protocol CPU" split maps onto this:
//! application code runs in tasks; protocol processing runs in event closures
//! whose costs are charged to the node's second CPU (see
//! [`crate::cpu::CpuTimeline`]).

use crate::time::{Dur, SimTime};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::future::Future;
use std::mem::MaybeUninit;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

/// Identifier of a spawned task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskId(usize);

// ---------------------------------------------------------------------------
// Inline event storage
// ---------------------------------------------------------------------------

/// Closure payload capacity of an `InlineEvent`. Sized for the protocol's
/// receive/transmit closures (endpoint handle + frame ≈ 120 bytes).
const INLINE_BYTES: usize = 160;
const INLINE_WORDS: usize = INLINE_BYTES / 16;

struct EventVtable {
    call: unsafe fn(*mut u8, &Sim),
    drop_in_place: unsafe fn(*mut u8),
}

unsafe fn call_impl<F: FnOnce(&Sim)>(p: *mut u8, sim: &Sim) {
    // Safety: `p` points at a valid, initialized `F` that is read exactly
    // once (the vtable is cleared by the caller before invoking).
    let f = unsafe { std::ptr::read(p.cast::<F>()) };
    f(sim);
}

unsafe fn drop_impl<F>(p: *mut u8) {
    // Safety: same ownership contract as `call_impl`.
    unsafe { std::ptr::drop_in_place(p.cast::<F>()) }
}

struct Vt<F>(std::marker::PhantomData<F>);

impl<F: FnOnce(&Sim) + 'static> Vt<F> {
    const VTABLE: EventVtable = EventVtable {
        call: call_impl::<F>,
        drop_in_place: drop_impl::<F>,
    };
}

/// A `FnOnce(&Sim)` stored inline in the queue entry (no allocation) when it
/// fits in [`INLINE_BYTES`], with a boxed fallback for oversized closures.
struct InlineEvent {
    buf: [MaybeUninit<u128>; INLINE_WORDS],
    /// `None` after the closure has been taken (invoked) — also the Drop
    /// guard: a live vtable means the buffer holds a value to destroy.
    vtable: Option<&'static EventVtable>,
}

impl InlineEvent {
    fn new<F: FnOnce(&Sim) + 'static>(f: F) -> Self {
        if std::mem::size_of::<F>() <= INLINE_BYTES && std::mem::align_of::<F>() <= 16 {
            Self::store(f)
        } else {
            // The box itself (a 16-byte fat pointer) is stored inline; its
            // `FnOnce` impl forwards to the heap closure.
            let boxed: Box<dyn FnOnce(&Sim)> = Box::new(f);
            Self::store(boxed)
        }
    }

    fn store<F: FnOnce(&Sim) + 'static>(f: F) -> Self {
        debug_assert!(std::mem::size_of::<F>() <= INLINE_BYTES);
        debug_assert!(std::mem::align_of::<F>() <= 16);
        let mut buf = [MaybeUninit::<u128>::uninit(); INLINE_WORDS];
        // Safety: the buffer is 16-byte aligned and large enough (checked
        // above); ownership of `f` moves into the buffer.
        unsafe { std::ptr::write(buf.as_mut_ptr().cast::<F>(), f) };
        Self {
            buf,
            vtable: Some(&Vt::<F>::VTABLE),
        }
    }

    fn invoke(mut self, sim: &Sim) {
        if let Some(vt) = self.vtable.take() {
            // Safety: vtable was live, so the buffer holds the closure; it
            // is read exactly once and the cleared vtable disarms Drop.
            unsafe { (vt.call)(self.buf.as_mut_ptr().cast::<u8>(), sim) }
        }
    }
}

impl Drop for InlineEvent {
    fn drop(&mut self) {
        if let Some(vt) = self.vtable.take() {
            // Safety: a live vtable means the buffer still owns the closure.
            unsafe { (vt.drop_in_place)(self.buf.as_mut_ptr().cast::<u8>()) }
        }
    }
}

// ---------------------------------------------------------------------------
// Cancellable timers
// ---------------------------------------------------------------------------

/// Handle to a timer armed with [`Sim::schedule_timer_in`] /
/// [`Sim::schedule_timer_at`]. Generation-checked, so a stale id (fired or
/// already cancelled) is a harmless no-op to cancel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerId {
    idx: u32,
    gen: u32,
}

impl TimerId {
    /// Sentinel meaning "no timer armed"; cancelling it is a no-op.
    pub const NONE: TimerId = TimerId {
        idx: u32::MAX,
        gen: 0,
    };
}

#[derive(Clone, Copy)]
struct TimerRec {
    gen: u32,
    armed: bool,
}

// ---------------------------------------------------------------------------
// Queue entries
// ---------------------------------------------------------------------------

/// What a queue entry runs. `Call` holds a handle into the event slab
/// rather than the closure itself, keeping queue entries small and `Copy` —
/// heap sifts and wheel-slot sorts move 40 bytes, not a 160-byte closure
/// buffer.
#[derive(Clone, Copy)]
enum What {
    Call(u32),
    Poll(TaskId),
}

#[derive(Clone, Copy)]
struct Scheduled {
    time: SimTime,
    seq: u64,
    /// Slab handle of the owning timer, or [`TimerId::NONE`]. A cancelled
    /// timer's entry is skipped at pop time.
    timer: TimerId,
    what: What,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    // Reverse order: BinaryHeap is a max-heap, we want the earliest first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

// ---------------------------------------------------------------------------
// Timer wheel
// ---------------------------------------------------------------------------

/// log2 of the wheel quantum in nanoseconds (2^15 ns ≈ 32.8 µs).
const QUANTUM_SHIFT: u32 = 15;
/// Number of wheel slots. Horizon = slots × quantum ≈ 134 ms, comfortably
/// past the protocol's largest timer (`rto_max` = 100 ms); later events go
/// to the heap.
const WHEEL_SLOTS: u64 = 1 << 12;

/// Null arena index.
const NIL: u32 = u32::MAX;

/// One wheel entry in the shared arena: the event plus the next link of its
/// slot's chain. Slots chain into one arena rather than owning a `Vec`
/// each — a fresh simulation touches a new slot every quantum of virtual
/// time, and growing per-slot storage there would allocate in proportion to
/// simulated time. The arena's capacity tracks the maximum number of
/// *concurrent* wheel entries instead, so its growth is bounded and the
/// steady state allocates nothing.
#[derive(Clone, Copy)]
struct WheelEntry {
    ev: Scheduled,
    next: u32,
}

#[derive(Clone, Copy)]
struct WheelSlot {
    /// Head of this slot's arena chain (`NIL` when empty). Push order until
    /// first drain contact, then relinked in ascending `(time, seq)`.
    head: u32,
    /// The chain is sorted and being drained. While set, new arrivals for
    /// this quantum divert to the heap so sortedness holds.
    sorted: bool,
}

impl Default for WheelSlot {
    fn default() -> Self {
        Self {
            head: NIL,
            sorted: false,
        }
    }
}

fn quantum(t: SimTime) -> u64 {
    t.as_nanos() >> QUANTUM_SHIFT
}

struct Task {
    future: Pin<Box<dyn Future<Output = ()>>>,
    name: String,
    /// A poll event is already queued; avoids redundant polls.
    poll_queued: bool,
}

struct SimInner {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Scheduled>,
    wheel: Vec<WheelSlot>,
    /// Backing store for every slot's entry chain.
    wheel_arena: Vec<WheelEntry>,
    wheel_free: Vec<u32>,
    /// Reused by [`SimInner::sort_slot`].
    wheel_scratch: Vec<(SimTime, u64, u32)>,
    /// Undrained entries currently in the wheel.
    wheel_len: usize,
    /// No occupied slot has a quantum below this (scan start hint).
    wheel_min_q: u64,
    timers: Vec<TimerRec>,
    timer_free: Vec<u32>,
    /// Slab of queued closures, addressed by [`What::Call`] handles. Slots
    /// are recycled through `event_free`, so the steady state allocates
    /// nothing per event.
    event_store: Vec<InlineEvent>,
    event_free: Vec<u32>,
    tasks: Vec<Option<Task>>,
    live_tasks: usize,
    current_task: Option<TaskId>,
    rng: SmallRng,
    events_executed: u64,
}

impl SimInner {
    /// Park a closure in the event slab, returning its handle.
    fn store_event(&mut self, ev: InlineEvent) -> u32 {
        if let Some(i) = self.event_free.pop() {
            self.event_store[i as usize] = ev;
            i
        } else {
            self.event_store.push(ev);
            (self.event_store.len() - 1) as u32
        }
    }

    /// Move a closure out of the slab, recycling its slot. Only the vtable
    /// is cleared in place (that alone disarms the slot's Drop); the stale
    /// buffer bytes are dead and get overwritten by the next occupant.
    fn take_event(&mut self, i: u32) -> InlineEvent {
        self.event_free.push(i);
        let slot = &mut self.event_store[i as usize];
        InlineEvent {
            buf: slot.buf,
            vtable: slot.vtable.take(),
        }
    }

    /// Assign the next sequence number and enqueue, routing near-future
    /// events to the wheel and far-future ones to the heap.
    fn push_event(&mut self, at: SimTime, timer: TimerId, what: What) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        let ev = Scheduled {
            time: at,
            seq,
            timer,
            what,
        };
        let q = quantum(at);
        if q >= quantum(self.now) + WHEEL_SLOTS {
            self.heap.push(ev);
            return;
        }
        let s = (q % WHEEL_SLOTS) as usize;
        let idx = if let Some(i) = self.wheel_free.pop() {
            i
        } else {
            self.wheel_arena.push(WheelEntry { ev, next: NIL });
            (self.wheel_arena.len() - 1) as u32
        };
        if self.wheel[s].sorted {
            // Mid-drain: splice into the chain at its key position so drain
            // order stays `(time, seq)`-ascending. Chains hold a handful of
            // entries, so the walk is cheap — and it keeps same-quantum
            // arrivals (the common case in a busy simulation) off the heap.
            let key = (ev.time, ev.seq);
            let mut prev = NIL;
            let mut cur = self.wheel[s].head;
            while cur != NIL {
                let e = &self.wheel_arena[cur as usize];
                if (e.ev.time, e.ev.seq) > key {
                    break;
                }
                prev = cur;
                cur = e.next;
            }
            self.wheel_arena[idx as usize] = WheelEntry { ev, next: cur };
            if prev == NIL {
                self.wheel[s].head = idx;
            } else {
                self.wheel_arena[prev as usize].next = idx;
            }
        } else {
            let head = self.wheel[s].head;
            self.wheel_arena[idx as usize] = WheelEntry { ev, next: head };
            self.wheel[s].head = idx;
        }
        self.wheel_len += 1;
        if q < self.wheel_min_q {
            self.wheel_min_q = q;
        }
    }

    /// Relink slot `s`'s chain in ascending `(time, seq)` order.
    fn sort_slot(&mut self, s: usize) {
        let mut scratch = std::mem::take(&mut self.wheel_scratch);
        scratch.clear();
        let mut i = self.wheel[s].head;
        while i != NIL {
            let e = &self.wheel_arena[i as usize];
            scratch.push((e.ev.time, e.ev.seq, i));
            i = e.next;
        }
        // Relink back-to-front so the minimum key ends up at the head.
        scratch.sort_unstable_by_key(|&(t, seq, _)| std::cmp::Reverse((t, seq)));
        let mut head = NIL;
        for &(_, _, i) in scratch.iter() {
            self.wheel_arena[i as usize].next = head;
            head = i;
        }
        self.wheel[s].head = head;
        self.wheel[s].sorted = true;
        self.wheel_scratch = scratch;
    }

    /// Locate the wheel's minimum-key entry: the first occupied slot at or
    /// above the scan hint (slot quanta are unique among live entries, so
    /// the first occupied slot holds the minimum quantum). Sorts the slot
    /// on first contact. Only called when `wheel_len > 0`.
    ///
    /// The hint may be stale after an idle gap (e.g. only heap events ran
    /// for a while): every live entry's quantum lies in
    /// `[quantum(now), quantum(now) + WHEEL_SLOTS)`, so scanning from below
    /// `quantum(now)` could wrap onto a slot whose sole occupant belongs to
    /// a *later* quantum with the same residue. Clamping the scan start to
    /// `quantum(now)` keeps one residue per live window.
    fn wheel_candidate(&mut self) -> usize {
        let mut q = self.wheel_min_q.max(quantum(self.now));
        loop {
            let s = (q % WHEEL_SLOTS) as usize;
            if self.wheel[s].head != NIL {
                if !self.wheel[s].sorted {
                    self.sort_slot(s);
                }
                self.wheel_min_q = q;
                return s;
            }
            q += 1;
        }
    }

    /// Pop the globally earliest event, skipping cancelled timers. Advances
    /// `now` and the event counter for the returned event. Returns `None`
    /// when the queue is empty or the next event lies beyond `limit` (the
    /// event stays queued).
    fn pop_next(&mut self, limit: Option<SimTime>) -> Option<Scheduled> {
        loop {
            let heap_key = self.heap.peek().map(|e| (e.time, e.seq));
            let wheel_slot = if self.wheel_len > 0 {
                Some(self.wheel_candidate())
            } else {
                None
            };
            let wheel_key = wheel_slot.map(|s| {
                let e = &self.wheel_arena[self.wheel[s].head as usize].ev;
                (e.time, e.seq)
            });
            let take_wheel = match (heap_key, wheel_key) {
                (None, None) => return None,
                (Some(_), None) => false,
                (None, Some(_)) => true,
                (Some(h), Some(w)) => w < h,
            };
            let key = if take_wheel { wheel_key } else { heap_key }.unwrap();
            if let Some(lim) = limit {
                if key.0 > lim {
                    return None;
                }
            }
            let ev = if take_wheel {
                let s = wheel_slot.unwrap();
                let head = self.wheel[s].head;
                let WheelEntry { ev, next } = self.wheel_arena[head as usize];
                self.wheel_free.push(head);
                self.wheel[s].head = next;
                if next == NIL {
                    self.wheel[s].sorted = false;
                }
                self.wheel_len -= 1;
                ev
            } else {
                self.heap.pop().unwrap()
            };
            if ev.timer != TimerId::NONE {
                let rec = &mut self.timers[ev.timer.idx as usize];
                if !(rec.armed && rec.gen == ev.timer.gen) {
                    // Cancelled: drop the closure without running it. The
                    // clock and event counter are untouched — a later live
                    // event will advance them past this point anyway.
                    if let What::Call(idx) = ev.what {
                        drop(self.take_event(idx));
                    }
                    continue;
                }
                // Fires now: retire the slab entry so the id goes stale.
                rec.armed = false;
                rec.gen = rec.gen.wrapping_add(1);
                self.timer_free.push(ev.timer.idx);
            }
            self.now = ev.time;
            self.events_executed += 1;
            return Some(ev);
        }
    }

    fn alloc_timer(&mut self) -> TimerId {
        if let Some(idx) = self.timer_free.pop() {
            let rec = &mut self.timers[idx as usize];
            rec.armed = true;
            TimerId { idx, gen: rec.gen }
        } else {
            let idx = self.timers.len() as u32;
            self.timers.push(TimerRec {
                gen: 0,
                armed: true,
            });
            TimerId { idx, gen: 0 }
        }
    }
}

/// Outcome of [`Sim::run`].
#[derive(Debug)]
pub struct RunReport {
    /// Virtual time when the event queue drained (or the limit fired).
    pub end_time: SimTime,
    /// Total events executed.
    pub events: u64,
    /// Names of tasks that never completed — non-empty means deadlock (a
    /// task is waiting on an event nobody will fire).
    pub stuck_tasks: Vec<String>,
}

impl RunReport {
    /// Panic with a readable message if any task never completed.
    pub fn expect_quiescent(&self) {
        assert!(
            self.stuck_tasks.is_empty(),
            "simulation deadlock: stuck tasks {:?}",
            self.stuck_tasks
        );
    }
}

/// Handle to the simulator. Cheap to clone; all clones share state.
#[derive(Clone)]
pub struct Sim {
    inner: Rc<RefCell<SimInner>>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new(0)
    }
}

impl Sim {
    /// Fresh simulator with the given RNG seed. Identical seeds yield
    /// identical runs.
    pub fn new(seed: u64) -> Self {
        Self {
            inner: Rc::new(RefCell::new(SimInner {
                now: SimTime::ZERO,
                seq: 0,
                heap: BinaryHeap::new(),
                wheel: (0..WHEEL_SLOTS).map(|_| WheelSlot::default()).collect(),
                wheel_arena: Vec::new(),
                wheel_free: Vec::new(),
                wheel_scratch: Vec::new(),
                wheel_len: 0,
                wheel_min_q: 0,
                timers: Vec::new(),
                timer_free: Vec::new(),
                event_store: Vec::new(),
                event_free: Vec::new(),
                tasks: Vec::new(),
                live_tasks: 0,
                current_task: None,
                rng: SmallRng::seed_from_u64(seed),
                events_executed: 0,
            })),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.inner.borrow().now
    }

    /// Total events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.inner.borrow().events_executed
    }

    /// Number of queued entries (wheel + heap). Counts cancelled-timer
    /// tombstones still awaiting their lazy pop, so `0` means the queue is
    /// truly drained — the shard runtime's quiescence check.
    pub fn pending_events(&self) -> usize {
        let inner = self.inner.borrow();
        inner.wheel_len + inner.heap.len()
    }

    /// Timestamp of the earliest queued entry, or `None` when the queue is
    /// empty. Cancelled-timer tombstones count (their entries are popped
    /// lazily), so this is a conservative lower bound on the next time
    /// anything can execute — exactly what a conservative-lookahead
    /// scheduler needs for idle fast-forwarding.
    pub fn next_event_time(&self) -> Option<SimTime> {
        let mut inner = self.inner.borrow_mut();
        let heap_t = inner.heap.peek().map(|e| e.time);
        let wheel_t = if inner.wheel_len > 0 {
            let s = inner.wheel_candidate();
            Some(inner.wheel_arena[inner.wheel[s].head as usize].ev.time)
        } else {
            None
        };
        match (heap_t, wheel_t) {
            (None, None) => None,
            (Some(h), None) => Some(h),
            (None, Some(w)) => Some(w),
            (Some(h), Some(w)) => Some(h.min(w)),
        }
    }

    /// Number of spawned tasks that have not yet completed.
    pub fn live_tasks(&self) -> usize {
        self.inner.borrow().live_tasks
    }

    /// Names of tasks that have not completed. With an empty event queue a
    /// non-empty result means deadlock: the tasks wait on events nobody
    /// will fire.
    pub fn stuck_task_names(&self) -> Vec<String> {
        self.inner
            .borrow()
            .tasks
            .iter()
            .filter_map(|t| t.as_ref().map(|t| t.name.clone()))
            .collect()
    }

    /// Schedule `f` to run at absolute time `at` (clamped to now).
    pub fn schedule_at(&self, at: SimTime, f: impl FnOnce(&Sim) + 'static) {
        let mut inner = self.inner.borrow_mut();
        let idx = inner.store_event(InlineEvent::new(f));
        inner.push_event(at, TimerId::NONE, What::Call(idx));
    }

    /// Schedule `f` to run after `d`.
    pub fn schedule_in(&self, d: Dur, f: impl FnOnce(&Sim) + 'static) {
        let at = self.now() + d;
        self.schedule_at(at, f);
    }

    /// Schedule `f` at absolute time `at` as a *cancellable* timer. The
    /// returned id is single-shot: it goes stale once the timer fires.
    pub fn schedule_timer_at(&self, at: SimTime, f: impl FnOnce(&Sim) + 'static) -> TimerId {
        let mut inner = self.inner.borrow_mut();
        let id = inner.alloc_timer();
        let idx = inner.store_event(InlineEvent::new(f));
        inner.push_event(at, id, What::Call(idx));
        id
    }

    /// Schedule `f` after `d` as a *cancellable* timer.
    pub fn schedule_timer_in(&self, d: Dur, f: impl FnOnce(&Sim) + 'static) -> TimerId {
        let at = self.now() + d;
        self.schedule_timer_at(at, f)
    }

    /// Cancel a timer in O(1). The queued closure is dropped unexecuted at
    /// pop time (it does not count as an executed event). Returns whether
    /// the timer was still pending; cancelling a fired or already-cancelled
    /// timer is a no-op.
    pub fn cancel_timer(&self, id: TimerId) -> bool {
        if id == TimerId::NONE {
            return false;
        }
        let mut inner = self.inner.borrow_mut();
        let Some(rec) = inner.timers.get_mut(id.idx as usize) else {
            return false;
        };
        if rec.armed && rec.gen == id.gen {
            rec.armed = false;
            rec.gen = rec.gen.wrapping_add(1);
            inner.timer_free.push(id.idx);
            true
        } else {
            false
        }
    }

    /// Run `f` with the simulator RNG.
    pub fn with_rng<T>(&self, f: impl FnOnce(&mut SmallRng) -> T) -> T {
        f(&mut self.inner.borrow_mut().rng)
    }

    /// The task currently being polled.
    ///
    /// # Panics
    ///
    /// Panics when called outside a task poll — leaf futures are the only
    /// legitimate callers.
    pub(crate) fn current_task(&self) -> TaskId {
        self.inner
            .borrow()
            .current_task
            .expect("current_task() called outside a task poll")
    }

    /// Queue a re-poll of `task` at the current time. Idempotent while a
    /// poll is already queued.
    pub(crate) fn wake_task(&self, task: TaskId) {
        let mut inner = self.inner.borrow_mut();
        let Some(slot) = inner.tasks.get_mut(task.0) else {
            return;
        };
        let Some(t) = slot.as_mut() else {
            return; // already finished
        };
        if t.poll_queued {
            return;
        }
        t.poll_queued = true;
        let now = inner.now;
        inner.push_event(now, TimerId::NONE, What::Poll(task));
    }

    /// Queue a re-poll of `task` at absolute time `at` (used by timers).
    pub(crate) fn wake_task_at(&self, task: TaskId, at: SimTime) {
        self.inner
            .borrow_mut()
            .push_event(at, TimerId::NONE, What::Poll(task));
    }

    /// Spawn a future as a simulation task; it begins running at the current
    /// virtual time. Returns a [`crate::sync::JoinHandle`] yielding its output.
    pub fn spawn<T: 'static>(
        &self,
        name: impl Into<String>,
        fut: impl Future<Output = T> + 'static,
    ) -> crate::sync::JoinHandle<T> {
        let flag = crate::sync::Flag::new(self);
        let cell: Rc<RefCell<Option<T>>> = Rc::new(RefCell::new(None));
        let handle = crate::sync::JoinHandle::new(cell.clone(), flag.clone());
        let wrapper = async move {
            let out = fut.await;
            *cell.borrow_mut() = Some(out);
            flag.fire();
        };
        {
            let mut inner = self.inner.borrow_mut();
            let id = TaskId(inner.tasks.len());
            inner.tasks.push(Some(Task {
                future: Box::pin(wrapper),
                name: name.into(),
                poll_queued: true,
            }));
            inner.live_tasks += 1;
            let now = inner.now;
            inner.push_event(now, TimerId::NONE, What::Poll(id));
        }
        handle
    }

    fn poll_task(&self, id: TaskId) {
        // Take the task out so the future can re-borrow the simulator.
        let mut task = {
            let mut inner = self.inner.borrow_mut();
            let Some(slot) = inner.tasks.get_mut(id.0) else {
                return;
            };
            let Some(mut t) = slot.take() else {
                return;
            };
            t.poll_queued = false;
            inner.current_task = Some(id);
            t
        };
        let waker = Waker::noop();
        let mut cx = Context::from_waker(waker);
        let poll = task.future.as_mut().poll(&mut cx);
        let mut inner = self.inner.borrow_mut();
        inner.current_task = None;
        match poll {
            Poll::Ready(()) => {
                inner.live_tasks -= 1;
                // slot stays None: task retired
            }
            Poll::Pending => {
                inner.tasks[id.0] = Some(task);
            }
        }
    }

    /// Run until the event queue is empty or virtual time would exceed
    /// `limit` (if given). Returns a report including any stuck tasks.
    pub fn run_with_limit(&self, limit: Option<SimTime>) -> RunReport {
        loop {
            let next = {
                let mut inner = self.inner.borrow_mut();
                match inner.pop_next(limit) {
                    None => break,
                    Some(ev) => ev,
                }
            };
            match next.what {
                What::Call(idx) => {
                    let f = self.inner.borrow_mut().take_event(idx);
                    f.invoke(self);
                }
                What::Poll(id) => self.poll_task(id),
            }
        }
        let inner = self.inner.borrow();
        RunReport {
            end_time: inner.now,
            events: inner.events_executed,
            stuck_tasks: inner
                .tasks
                .iter()
                .filter_map(|t| t.as_ref().map(|t| t.name.clone()))
                .collect(),
        }
    }

    /// Run to quiescence (no virtual-time limit).
    pub fn run(&self) -> RunReport {
        self.run_with_limit(None)
    }

    /// Drive the simulator from an external deadline loop: execute every
    /// event with `time <= limit`, checking `stop()` between events and
    /// returning early (at the current clock) as soon as it reports true.
    ///
    /// Unlike [`Sim::run_with_limit`], when the queue drains — or only
    /// events beyond `limit` remain — the clock is **advanced to `limit`**
    /// before returning, so an idle simulation still reaches an externally
    /// imposed deadline. This is the primitive the sim transport backplane
    /// uses: the protocol driver computes its next timer deadline, calls
    /// `advance_until(deadline, ..)`, and the stop predicate fires the
    /// moment a frame is delivered so the driver can process it at the
    /// correct virtual time instead of at the deadline.
    ///
    /// Forcing the clock forward is safe because every scheduling entry
    /// point clamps new events to `at.max(now)` — nothing can be scheduled
    /// in the skipped-over span.
    pub fn advance_until(&self, limit: SimTime, mut stop: impl FnMut() -> bool) -> SimTime {
        loop {
            if stop() {
                return self.now();
            }
            let next = {
                let mut inner = self.inner.borrow_mut();
                match inner.pop_next(Some(limit)) {
                    None => break,
                    Some(ev) => ev,
                }
            };
            match next.what {
                What::Call(idx) => {
                    let f = self.inner.borrow_mut().take_event(idx);
                    f.invoke(self);
                }
                What::Poll(id) => self.poll_task(id),
            }
        }
        let mut inner = self.inner.borrow_mut();
        if inner.now < limit {
            inner.now = limit;
        }
        inner.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{ms, us};

    #[test]
    fn events_run_in_time_order_with_fifo_ties() {
        let sim = Sim::new(1);
        let log: Rc<RefCell<Vec<u32>>> = Rc::default();
        let (a, b, c, d) = (log.clone(), log.clone(), log.clone(), log.clone());
        sim.schedule_in(us(10), move |_| a.borrow_mut().push(2));
        sim.schedule_in(us(5), move |_| b.borrow_mut().push(1));
        sim.schedule_in(us(10), move |_| c.borrow_mut().push(3)); // tie: after first us(10)
        sim.schedule_in(us(20), move |_| d.borrow_mut().push(4));
        let report = sim.run();
        assert_eq!(*log.borrow(), vec![1, 2, 3, 4]);
        assert_eq!(report.end_time, SimTime::ZERO + us(20));
        assert_eq!(report.events, 4);
    }

    #[test]
    fn nested_scheduling_advances_time() {
        let sim = Sim::new(1);
        let log: Rc<RefCell<Vec<u64>>> = Rc::default();
        let l = log.clone();
        sim.schedule_in(us(1), move |sim| {
            let l2 = l.clone();
            l.borrow_mut().push(sim.now().as_nanos());
            sim.schedule_in(us(2), move |sim| {
                l2.borrow_mut().push(sim.now().as_nanos());
            });
        });
        sim.run();
        assert_eq!(*log.borrow(), vec![1_000, 3_000]);
    }

    #[test]
    fn deterministic_rng() {
        use rand::Rng;
        let draws = |seed| {
            let sim = Sim::new(seed);
            (0..4)
                .map(|_| sim.with_rng(|r| r.gen::<u64>()))
                .collect::<Vec<_>>()
        };
        assert_eq!(draws(7), draws(7));
        assert_ne!(draws(7), draws(8));
    }

    #[test]
    fn run_with_limit_stops_before_later_events() {
        let sim = Sim::new(0);
        let hit: Rc<RefCell<u32>> = Rc::default();
        let h = hit.clone();
        sim.schedule_in(us(100), move |_| *h.borrow_mut() += 1);
        let report = sim.run_with_limit(Some(SimTime::ZERO + us(10)));
        assert_eq!(*hit.borrow(), 0);
        assert!(report.end_time <= SimTime::ZERO + us(10));
        // The event is still queued and fires on a later unrestricted run.
        sim.run();
        assert_eq!(*hit.borrow(), 1);
    }

    #[test]
    fn wheel_and_heap_interleave_in_time_order() {
        // Mix near events (wheel) with far ones (beyond the ~134 ms wheel
        // horizon, so they sit in the heap) and events scheduled from inside
        // events; order must be globally sorted regardless of the backing
        // structure.
        let sim = Sim::new(3);
        let log: Rc<RefCell<Vec<u64>>> = Rc::default();
        let mut expect = Vec::new();
        for &t_us in &[250_000u64, 3, 140_000, 7, 500_000, 7, 33, 160_000] {
            let l = log.clone();
            sim.schedule_in(us(t_us), move |sim| l.borrow_mut().push(sim.now().as_nanos()));
            expect.push(t_us * 1_000);
        }
        let l = log.clone();
        sim.schedule_in(us(1), move |sim| {
            // From t=1µs, +200ms is beyond the horizon (heap), +5µs is not.
            let l2 = l.clone();
            sim.schedule_in(ms(200), move |sim| l2.borrow_mut().push(sim.now().as_nanos()));
            let l3 = l.clone();
            sim.schedule_in(us(5), move |sim| l3.borrow_mut().push(sim.now().as_nanos()));
        });
        expect.push(200_001_000);
        expect.push(6_000);
        expect.sort_unstable();
        sim.run().expect_quiescent();
        assert_eq!(*log.borrow(), expect);
    }

    #[test]
    fn fifo_ties_hold_across_wheel_and_heap() {
        // Two events at the same instant, one landing in the wheel and one
        // diverted to the heap (scheduled before the horizon reaches it),
        // must still run in scheduling order.
        let sim = Sim::new(0);
        let log: Rc<RefCell<Vec<u32>>> = Rc::default();
        let (a, b) = (log.clone(), log.clone());
        sim.schedule_in(ms(200), move |_| a.borrow_mut().push(1)); // heap (beyond horizon)
        let s = sim.clone();
        sim.schedule_in(ms(190), move |_| {
            // Now ms(200) is within the horizon: lands in the wheel, but
            // carries a later seq than the heap-resident tie.
            s.schedule_in(ms(10), move |_| b.borrow_mut().push(2));
        });
        sim.run().expect_quiescent();
        assert_eq!(*log.borrow(), vec![1, 2]);
    }

    #[test]
    fn cancelled_timer_never_fires() {
        let sim = Sim::new(0);
        let hit: Rc<RefCell<u32>> = Rc::default();
        let h = hit.clone();
        let id = sim.schedule_timer_in(us(10), move |_| *h.borrow_mut() += 1);
        assert!(sim.cancel_timer(id));
        assert!(!sim.cancel_timer(id), "double cancel is a no-op");
        let report = sim.run();
        assert_eq!(*hit.borrow(), 0);
        // The tombstone is skipped silently: no event executed.
        assert_eq!(report.events, 0);
    }

    #[test]
    fn fired_timer_id_goes_stale() {
        let sim = Sim::new(0);
        let hit: Rc<RefCell<u32>> = Rc::default();
        let h = hit.clone();
        let id = sim.schedule_timer_in(us(10), move |_| *h.borrow_mut() += 1);
        sim.run();
        assert_eq!(*hit.borrow(), 1);
        assert!(!sim.cancel_timer(id), "cancel after fire is a no-op");
        // Slab slot reuse must not resurrect the stale id.
        let h2 = hit.clone();
        let id2 = sim.schedule_timer_in(us(10), move |_| *h2.borrow_mut() += 10);
        assert_ne!(id, id2);
        assert!(!sim.cancel_timer(id));
        sim.run();
        assert_eq!(*hit.borrow(), 11);
    }

    #[test]
    fn cancel_reschedule_churn_is_correct() {
        // The moderation pattern: arm, cancel, re-arm many times; only the
        // last armed timer fires.
        let sim = Sim::new(0);
        let hits: Rc<RefCell<Vec<u32>>> = Rc::default();
        let mut last = None;
        for i in 0..100u32 {
            if let Some(id) = last.take() {
                sim.cancel_timer(id);
            }
            let h = hits.clone();
            last = Some(sim.schedule_timer_in(us(10 + (i % 7) as u64), move |_| {
                h.borrow_mut().push(i)
            }));
        }
        sim.run().expect_quiescent();
        assert_eq!(*hits.borrow(), vec![99]);
    }

    #[test]
    fn oversized_closures_fall_back_to_box() {
        // Capture far more than INLINE_BYTES; the event must still run and
        // drop cleanly (including when never invoked).
        let sim = Sim::new(0);
        let big = [7u8; 4 * INLINE_BYTES];
        let sum: Rc<RefCell<u64>> = Rc::default();
        let s = sum.clone();
        sim.schedule_in(us(1), move |_| {
            *s.borrow_mut() = big.iter().map(|&b| b as u64).sum();
        });
        sim.run().expect_quiescent();
        assert_eq!(*sum.borrow(), 7 * 4 * INLINE_BYTES as u64);

        // Never-invoked oversized closure: cancelled timer drops the box.
        let big2 = vec![1u8; 4 * INLINE_BYTES];
        let id = sim.schedule_timer_in(us(1), move |_| drop(big2));
        sim.cancel_timer(id);
        sim.run().expect_quiescent();
    }

    #[test]
    fn advance_until_reaches_deadline_when_idle() {
        let sim = Sim::new(0);
        // No events at all: the clock must still reach the deadline.
        let end = sim.advance_until(SimTime::ZERO + ms(3), || false);
        assert_eq!(end, SimTime::ZERO + ms(3));
        assert_eq!(sim.now(), SimTime::ZERO + ms(3));
        // Events beyond the limit stay queued and the clock stops at the
        // new, later limit — not at the event.
        let fired = Rc::new(RefCell::new(false));
        let f = fired.clone();
        sim.schedule_in(ms(10), move |_| *f.borrow_mut() = true);
        let end = sim.advance_until(SimTime::ZERO + ms(5), || false);
        assert_eq!(end, SimTime::ZERO + ms(5));
        assert!(!*fired.borrow());
        // A later advance past the event runs it.
        sim.advance_until(SimTime::ZERO + ms(20), || false);
        assert!(*fired.borrow());
        assert_eq!(sim.now(), SimTime::ZERO + ms(20));
    }

    #[test]
    fn advance_until_stops_early_on_predicate() {
        let sim = Sim::new(0);
        let hits: Rc<RefCell<Vec<u64>>> = Rc::default();
        for t in [1u64, 2, 3] {
            let h = hits.clone();
            sim.schedule_in(ms(t), move |s| h.borrow_mut().push(s.now().as_nanos()));
        }
        // Stop as soon as the first event has run: the clock must sit at
        // that event's time, with the later events still queued.
        let h = hits.clone();
        let end = sim.advance_until(SimTime::ZERO + ms(10), move || !h.borrow().is_empty());
        assert_eq!(end, SimTime::ZERO + ms(1));
        assert_eq!(hits.borrow().len(), 1);
        // Resuming without the predicate drains the rest and pins to limit.
        let end = sim.advance_until(SimTime::ZERO + ms(10), || false);
        assert_eq!(end, SimTime::ZERO + ms(10));
        assert_eq!(hits.borrow().len(), 3);
    }
}

#[cfg(test)]
mod review_repro {
    use super::*;
    use crate::time::{us, ms};

    #[test]
    fn stale_wheel_hint_after_idle_gap_keeps_order() {
        // Wheel never touched before t=1s (heap event), so wheel_min_q
        // stays at its initial 0 while now jumps to 1s. The far event
        // then schedules two near events whose slot residues straddle
        // the stale hint phase.
        let sim = Sim::new(0);
        let log: Rc<RefCell<Vec<u64>>> = Rc::default();
        let l = log.clone();
        sim.schedule_at(SimTime::ZERO + ms(1000), move |sim| {
            let (a, b) = (l.clone(), l.clone());
            // X: 1us out -> small residue-distance in *time*, large residue.
            sim.schedule_in(us(1), move |s| a.borrow_mut().push(s.now().as_nanos()));
            // Y: ~73.8ms out -> later in time, but residue 0 (slot 0).
            let q_now = s_quantum(sim.now());
            let target_q = ((q_now / WHEEL_SLOTS) + 1) * WHEEL_SLOTS; // residue 0, within horizon
            let delta_ns = (target_q << QUANTUM_SHIFT) - sim.now().as_nanos();
            sim.schedule_in(Dur(delta_ns), move |s| b.borrow_mut().push(s.now().as_nanos()));
        });
        sim.run().expect_quiescent();
        let v = log.borrow().clone();
        assert!(v.windows(2).all(|w| w[0] <= w[1]), "events ran out of order: {v:?}");
    }

    fn s_quantum(t: SimTime) -> u64 { t.as_nanos() >> QUANTUM_SHIFT }
}
