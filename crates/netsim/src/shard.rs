//! Conservative-lookahead parallel discrete-event runtime.
//!
//! A cluster is partitioned into **shards**: each shard owns a contiguous
//! block of nodes plus a round-robin subset of the rail switches, and runs
//! its own single-threaded [`Sim`] over an eager-mode [`Network`]
//! ([`Network::sharded`]). Shards synchronize in **windows** of length
//! `L` = the minimum cross-shard link propagation delay (the *lookahead*):
//! because every frame submitted inside window `k` arrives at its far end
//! no earlier than `submit + L ≥ (k+1)·L`, a shard can execute window `k`
//! to completion knowing every boundary frame that could land inside it was
//! produced in an *earlier* window and has already been exchanged.
//!
//! ```text
//!   shard 0  ─┐ window k ┌─ exchange ─┐ window k+1 ┌─ …
//!   shard 1  ─┤ (advance │  boundary  │  (inject   │
//!   shard 2  ─┤  to kL+L)│  frames    │   + run)   │
//!   shard 3  ─┘          └─ barrier ──┘            └─ …
//! ```
//!
//! Cross-shard frames travel as [`BoundaryMsg`] — a `Send`-safe owned copy
//! of the frame, deep-copied out of the `Rc`-backed `Bytes` shim at the
//! boundary (asserted at compile time below). Deliveries are injected in
//! `(arrival time, source shard, per-source sequence)` order, so a shard's
//! event stream is a pure function of the seed and the topology.
//!
//! # Determinism contract
//!
//! For a fixed seed the runtime guarantees, at every shard count:
//! * each channel's jitter and loss/corruption stream is identical (pure
//!   functions of `(seed, channel stream key, attempt index)` — see
//!   eager mode in `net.rs`),
//! * boundary deliveries are injected in the same total order,
//! * per-shard protocol RNGs are seeded as `mix(seed, shard)` and drawn
//!   only by shard-local decisions.
//!
//! What it does **not** guarantee is that same-timestamp events interleave
//! identically across shard counts (event sequence numbers depend on
//! scheduling history). Timing-*independent* outcomes — bytes delivered,
//! receiver memory contents, completed operations — are bit-identical;
//! timing-*dependent* counters (retransmit counts, exact drop totals under
//! congestion) may differ. The determinism tests and CI gate compare the
//! former.

use crate::engine::Sim;
use crate::faults::{FaultPlan, FaultTarget};
use crate::net::{splitmix64, BoundaryTx, ChannelId, Network, NicId, RemoteDest, SwitchId};
use crate::time::{Dur, SimTime};
use crate::topology::ClusterSpec;
use frame::{FastMap, MacAddr};
use me_trace::{HealthConfig, HealthReport, SourceId, Timeline, TimelineBuilder};
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::Instant;

/// Compile-time proof that a type is **not** `Send`. Expands to a trait
/// with one blanket impl for every type and a second for `Send` types:
/// if the asserted type is `Send`, both impls apply and method resolution
/// is ambiguous — a compile error. A future refactor that accidentally
/// makes `Sim` or `Network` shareable across shard threads therefore fails
/// to build instead of racing.
#[macro_export]
macro_rules! assert_not_send {
    ($($t:ty),+ $(,)?) => {
        const _: () = {
            trait AmbiguousIfSend<A> {
                fn here() {}
            }
            impl<T: ?Sized> AmbiguousIfSend<()> for T {}
            #[allow(dead_code)]
            struct IsSend;
            impl<T: ?Sized + Send> AmbiguousIfSend<IsSend> for T {}
            $( let _ = <$t as AmbiguousIfSend<_>>::here; )+
        };
    };
}

// The shard boundary's two sides, pinned at compile time: everything built
// on `Rc` must stay inside one shard thread...
crate::assert_not_send!(Sim, Network, bytes::Bytes, frame::Frame);

// ...and the boundary message itself must be safe to hand across.
const _: () = {
    fn assert_send<T: Send>() {}
    #[allow(dead_code)]
    fn check() {
        assert_send::<BoundaryMsg>();
    }
};

/// Why a cluster could not be partitioned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionError {
    /// Zero shards requested.
    ZeroShards,
    /// The spec has no nodes.
    NoNodes,
    /// More shards than nodes — some shard would own nothing.
    TooManyShards {
        /// Requested shard count.
        shards: usize,
        /// Nodes available.
        nodes: usize,
    },
    /// The minimum cross-shard link latency is zero: conservative lookahead
    /// degenerates to zero-length windows (no parallelism, no progress
    /// bound), so the partition is rejected instead of hanging.
    ZeroLookahead,
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ZeroShards => write!(f, "cannot partition into zero shards"),
            Self::NoNodes => write!(f, "cluster has no nodes"),
            Self::TooManyShards { shards, nodes } => {
                write!(f, "{shards} shards requested but only {nodes} nodes")
            }
            Self::ZeroLookahead => {
                write!(f, "zero link latency leaves no lookahead window")
            }
        }
    }
}

impl std::error::Error for PartitionError {}

/// Deterministic balanced partition of a rail cluster.
///
/// Nodes are split into contiguous blocks (`node_shard(n) = n·K / N`, so
/// shard sizes differ by at most one); rail switches are dealt round-robin
/// (`switch_shard(r) = r mod K`). The lookahead window is the minimum
/// propagation delay over all cross-shard links — with a homogeneous
/// [`ClusterSpec`] that is simply `spec.link.latency`, but the bound is
/// validated so a future heterogeneous topology cannot silently violate it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    nodes: usize,
    rails: usize,
    shards: usize,
    lookahead: Dur,
}

impl ShardPlan {
    /// Partition `spec` into `shards` shards, or say precisely why not.
    pub fn partition(spec: &ClusterSpec, shards: usize) -> Result<Self, PartitionError> {
        if shards == 0 {
            return Err(PartitionError::ZeroShards);
        }
        if spec.nodes == 0 {
            return Err(PartitionError::NoNodes);
        }
        if shards > spec.nodes {
            return Err(PartitionError::TooManyShards {
                shards,
                nodes: spec.nodes,
            });
        }
        let lookahead = spec.link.latency;
        if lookahead == Dur::ZERO {
            return Err(PartitionError::ZeroLookahead);
        }
        Ok(Self {
            nodes: spec.nodes,
            rails: spec.rails,
            shards,
            lookahead,
        })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The synchronization window: every cross-shard frame arrives at least
    /// this far in the future.
    pub fn lookahead(&self) -> Dur {
        self.lookahead
    }

    /// Which shard owns node `node`.
    pub fn node_shard(&self, node: usize) -> usize {
        node * self.shards / self.nodes
    }

    /// Which shard owns rail `rail`'s switch.
    pub fn switch_shard(&self, rail: usize) -> usize {
        rail % self.shards
    }

    /// The (contiguous, ascending) nodes owned by `shard`.
    pub fn local_nodes(&self, shard: usize) -> Vec<usize> {
        (0..self.nodes)
            .filter(|&n| self.node_shard(n) == shard)
            .collect()
    }

    /// Number of rails in the partitioned spec.
    pub fn rails(&self) -> usize {
        self.rails
    }
}

/// A frame crossing between shards: `Send`-safe by construction (owned
/// payload, plain-data header) and totally ordered by
/// `(tx.at, src_shard, seq)` at injection.
#[derive(Debug, Clone)]
pub struct BoundaryMsg {
    /// Shard that produced the frame.
    pub src_shard: usize,
    /// Production order within the source shard (monotonic per source).
    pub seq: u64,
    /// The frame and its arrival coordinates.
    pub tx: BoundaryTx,
}

/// Shard-count-invariant identity of one channel's random streams, derived
/// from global topology coordinates so the same physical link draws the
/// same stream no matter which shard simulates it.
fn stream_key(node: u16, rail: u8, down: bool) -> u64 {
    ((node as u64) << 32) | ((rail as u64) << 8) | down as u64
}

/// One shard's world: a private [`Sim`], an eager-mode [`Network`] holding
/// the shard's nodes, its subset of switches, and stub channels for every
/// link that crosses the boundary.
pub struct ShardNet {
    shard: usize,
    plan: ShardPlan,
    spec: ClusterSpec,
    sim: Sim,
    net: Network,
    /// Global indices of the nodes this shard owns (contiguous, ascending).
    nodes: Vec<usize>,
    /// `nics[local node index][rail]`.
    nics: Vec<Vec<NicId>>,
    /// Per rail: the switch, if this shard owns it.
    switches: Vec<Option<SwitchId>>,
    /// Locally-owned switch→NIC channels whose NIC lives elsewhere.
    remote_down: FastMap<MacAddr, ChannelId>,
    /// Boundary frames produced since the last drain.
    outbox: Rc<RefCell<Vec<BoundaryTx>>>,
}

impl Drop for ShardNet {
    /// Break the `Network → handler → protocol state → Network` reference
    /// cycles. Sweep harnesses run many shard worlds in one process; every
    /// world would otherwise stay resident forever, and the growing heap
    /// measurably slows later runs (allocator pressure + page faults).
    fn drop(&mut self) {
        self.net.clear_handlers();
    }
}

impl ShardNet {
    /// Build shard `shard`'s slice of the cluster. `seed` is the *global*
    /// run seed: the shard's protocol RNG is seeded `mix(seed, shard)`
    /// (shard-local draws only), while jitter streams are keyed off the
    /// global seed so they are identical at every shard count.
    pub fn build(spec: &ClusterSpec, plan: &ShardPlan, shard: usize, seed: u64) -> Self {
        let sim = Sim::new(splitmix64(seed ^ (shard as u64).wrapping_mul(0xA24B_AED4_963E_E407)));
        let jitter_seed = splitmix64(seed ^ 0x9E6C_63D0_985B_4C9D);
        let net = Network::sharded(&sim, spec.fault, spec.fault_seed, jitter_seed);
        let switches: Vec<Option<SwitchId>> = (0..spec.rails)
            .map(|rail| {
                (plan.switch_shard(rail) == shard).then(|| net.add_switch(spec.switch_delay))
            })
            .collect();
        let nodes = plan.local_nodes(shard);
        let mut nics = Vec::with_capacity(nodes.len());
        for &node in &nodes {
            let mut row = Vec::with_capacity(spec.rails);
            for (rail, sw) in switches.iter().enumerate() {
                let nic = net.add_nic(MacAddr::new(node as u16, rail as u8));
                match sw {
                    Some(sw) => {
                        net.connect(nic, *sw, spec.link);
                        net.set_link_stream_keys(
                            nic,
                            stream_key(node as u16, rail as u8, false),
                            stream_key(node as u16, rail as u8, true),
                        );
                    }
                    None => {
                        net.add_remote_uplink(
                            nic,
                            rail as u8,
                            spec.link,
                            stream_key(node as u16, rail as u8, false),
                        );
                    }
                }
                row.push(nic);
            }
            nics.push(row);
        }
        // For every local switch, stub downlinks to the nodes other shards
        // own (and register their MACs, so forwarding finds them).
        let mut remote_down = FastMap::default();
        for (rail, sw) in switches.iter().enumerate() {
            let Some(sw) = sw else { continue };
            for node in 0..spec.nodes {
                if plan.node_shard(node) == shard {
                    continue;
                }
                let mac = MacAddr::new(node as u16, rail as u8);
                let ch = net.add_remote_downlink(
                    *sw,
                    mac,
                    spec.link,
                    stream_key(node as u16, rail as u8, true),
                );
                remote_down.insert(mac, ch);
            }
        }
        let outbox: Rc<RefCell<Vec<BoundaryTx>>> = Rc::default();
        let ob = outbox.clone();
        net.set_boundary_tx(move |tx| ob.borrow_mut().push(tx));
        Self {
            shard,
            plan: *plan,
            spec: *spec,
            sim,
            net,
            nodes,
            nics,
            switches,
            remote_down,
            outbox,
        }
    }

    /// This shard's index.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The shard's private simulator.
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// The shard's network slice.
    pub fn net(&self) -> &Network {
        &self.net
    }

    /// The spec the shard was built from.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Global indices of the nodes this shard owns, ascending.
    pub fn local_nodes(&self) -> &[usize] {
        &self.nodes
    }

    /// Whether `node` is simulated here.
    pub fn is_local(&self, node: usize) -> bool {
        self.plan.node_shard(node) == self.shard
    }

    /// NICs of local node `node` (global index), one per rail.
    /// Panics if the node lives in another shard.
    pub fn nics(&self, node: usize) -> &[NicId] {
        assert!(
            self.is_local(node),
            "node {node} is not owned by shard {}",
            self.shard
        );
        &self.nics[node - self.nodes[0]]
    }

    /// Replay the shard-relevant slice of a fault plan: actions on local
    /// nodes hit the NIC (both owned channels + stalls, exactly like the
    /// unsharded [`crate::Cluster::apply_fault_plan`]); actions on remote
    /// nodes whose downlink this shard owns hit that channel half. Every
    /// shard replays the same plan, so a split link's two halves go down in
    /// the same window on both sides.
    pub fn apply_fault_plan(&self, plan: &FaultPlan) {
        for ev in plan.events() {
            let pairs: Vec<(usize, usize)> = match ev.target {
                FaultTarget::Link { node, rail } => vec![(node, rail)],
                FaultTarget::Rail { rail } => (0..self.spec.nodes).map(|n| (n, rail)).collect(),
            };
            for (node, rail) in pairs {
                let action = ev.action;
                if self.is_local(node) {
                    let nic = self.nics(node)[rail];
                    let net = self.net.clone();
                    self.sim
                        .schedule_at(ev.at, move |_| net.apply_fault(nic, action));
                } else if let Some(&ch) = self.remote_down.get(&MacAddr::new(node as u16, rail as u8))
                {
                    let net = self.net.clone();
                    self.sim
                        .schedule_at(ev.at, move |_| net.apply_channel_fault(ch, action));
                }
            }
        }
    }

    /// Schedule one boundary frame's terminal hand-off in this shard.
    fn schedule_boundary(&self, tx: BoundaryTx) {
        let net = self.net.clone();
        match tx.dest {
            RemoteDest::Switch { rail } => {
                let sw = self.switches[rail as usize]
                    .expect("boundary frame routed to a switch this shard does not own");
                self.sim.schedule_at(tx.at, move |_| {
                    net.inject_switch_ingress(sw, tx.to_frame(), tx.corrupted);
                });
            }
            RemoteDest::Nic { node, rail } => {
                let nic = self.nics(node as usize)[rail as usize];
                self.sim.schedule_at(tx.at, move |_| {
                    net.inject_nic_rx(nic, tx.to_frame(), tx.corrupted);
                });
            }
        }
    }

    /// Destination shard of a boundary frame.
    fn dest_shard(&self, tx: &BoundaryTx) -> usize {
        match tx.dest {
            RemoteDest::Switch { rail } => self.plan.switch_shard(rail as usize),
            RemoteDest::Nic { node, .. } => self.plan.node_shard(node as usize),
        }
    }
}

/// How to execute the shard set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardMode {
    /// One OS thread per shard, barrier-synchronized windows.
    Threaded,
    /// All shards round-robin on the calling thread — same window and
    /// exchange schedule as threaded, bit-identical results, useful on
    /// single-core machines and for debugging.
    Cooperative,
    /// Threaded when the machine has more than one core, else cooperative.
    Auto,
}

/// Knobs for [`run_sharded`].
#[derive(Debug, Clone, Copy)]
pub struct ShardRunConfig {
    /// Execution mode.
    pub mode: ShardMode,
    /// Abort (with [`ShardError::VirtualLimitExceeded`]) if the simulation
    /// is still active past this virtual time.
    pub virtual_limit: Option<Dur>,
    /// Abort (with [`ShardError::WallClockExceeded`]) past this wall time.
    pub wall_limit: Option<std::time::Duration>,
    /// When set, each shard samples its cumulative event count onto a
    /// virtual-time grid of this spacing, published as one
    /// [`me_trace::Timeline`] per shard in [`ShardRunReport::samples`].
    /// Rows land at window boundaries, which every shard crosses at the
    /// same virtual instants regardless of [`ShardMode`] — so the sample
    /// grids are identical across shards and modes, and per-interval
    /// deltas can be compared shard-against-shard (the imbalance index).
    pub sample_interval: Option<Dur>,
    /// Most retained rows per shard timeline when sampling is on; the
    /// oldest rows are evicted (their deltas fold into the base) beyond
    /// this.
    pub sample_capacity: usize,
    /// When set (and [`ShardRunConfig::sample_interval`] is on), run the
    /// streaming health detectors over the per-shard event timelines after
    /// the run: each shard's per-interval event deltas become one member
    /// series, and a persistently hot shard opens an `IncastImbalance`
    /// incident in [`ShardRunReport::health`]. The diagnosis is a pure
    /// function of the sample grids, which are bit-identical across
    /// [`ShardMode`]s — so the verdict is too.
    pub health: Option<HealthConfig>,
}

impl Default for ShardRunConfig {
    fn default() -> Self {
        Self {
            mode: ShardMode::Auto,
            virtual_limit: None,
            wall_limit: None,
            sample_interval: None,
            sample_capacity: 4096,
            health: None,
        }
    }
}

/// Why a sharded run stopped without quiescing.
#[derive(Debug)]
pub enum ShardError {
    /// The partition itself was invalid.
    Partition(PartitionError),
    /// Wall-clock budget exhausted.
    WallClockExceeded {
        /// Windows completed before the deadline fired.
        windows: u64,
    },
    /// Virtual-time budget exhausted.
    VirtualLimitExceeded {
        /// The configured limit.
        limit: Dur,
    },
    /// Every queue drained but tasks remain: a deadlock, same as
    /// `RunReport::stuck_tasks` in the single-`Sim` world.
    StuckTasks {
        /// Shard with incomplete tasks.
        shard: usize,
        /// Their names.
        tasks: Vec<String>,
    },
    /// A shard's worker thread panicked (the panic is contained; all other
    /// shards shut down cleanly).
    WorkerPanicked {
        /// The panicking shard.
        shard: usize,
    },
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Partition(e) => write!(f, "partition error: {e}"),
            Self::WallClockExceeded { windows } => {
                write!(f, "wall-clock limit exceeded after {windows} windows")
            }
            Self::VirtualLimitExceeded { limit } => {
                write!(f, "virtual-time limit {limit:?} exceeded")
            }
            Self::StuckTasks { shard, tasks } => {
                write!(f, "shard {shard} deadlocked with stuck tasks {tasks:?}")
            }
            Self::WorkerPanicked { shard } => write!(f, "shard {shard} worker panicked"),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<PartitionError> for ShardError {
    fn from(e: PartitionError) -> Self {
        Self::Partition(e)
    }
}

/// Per-shard accounting for one run.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardStats {
    /// Events executed by the shard's `Sim`.
    pub events: u64,
    /// Windows in which the shard executed zero events — lookahead stalls:
    /// it only waited for its neighbors.
    pub idle_windows: u64,
    /// Boundary frames received.
    pub boundary_in: u64,
    /// Boundary frames sent.
    pub boundary_out: u64,
    /// Deepest single-round boundary-inbox backlog observed.
    pub max_inbox_depth: usize,
    /// Wall nanoseconds spent inside the shard's `advance_until` (event
    /// execution). The window-machinery overhead is the run's wall time
    /// minus this.
    pub advance_ns: u64,
    /// Wall nanoseconds spent on window bookkeeping: injecting due
    /// boundary frames, draining the outbox, computing the round report.
    pub exchange_ns: u64,
}

/// Outcome of a successful [`run_sharded`].
#[derive(Debug, Clone)]
pub struct ShardRunReport {
    /// Shard count.
    pub shards: usize,
    /// Synchronization windows executed.
    pub windows: u64,
    /// Virtual time at quiescence.
    pub end_time: SimTime,
    /// Whether worker threads were used.
    pub threaded: bool,
    /// The lookahead window length.
    pub lookahead: Dur,
    /// Per-shard accounting.
    pub per_shard: Vec<ShardStats>,
    /// Per-shard event timelines, one per shard in shard order, when
    /// [`ShardRunConfig::sample_interval`] was set; empty otherwise. Each
    /// carries a single `events` counter whose per-interval deltas are the
    /// events that shard executed in that slice of virtual time.
    pub samples: Vec<Timeline>,
    /// Cross-shard health diagnosis over [`ShardRunReport::samples`], when
    /// [`ShardRunConfig::health`] was set: the per-shard event-delta series
    /// run through the imbalance detector, flagging a persistently hot
    /// shard as an `IncastImbalance` incident. Identical across modes.
    pub health: Option<HealthReport>,
}

/// Everything one shard publishes after executing a window; the inputs to
/// the (symmetric, deterministic) end-of-round decision.
#[derive(Clone, Copy)]
struct RoundReport {
    /// Earliest future work: next local event or earliest held boundary
    /// frame (ns), `u64::MAX` when none.
    next_ns: u64,
    /// Boundary frames sent this round.
    sent: u64,
    /// Live (incomplete) tasks.
    live: u64,
}

/// The end-of-round decision, computed identically by every participant
/// from the full set of [`RoundReport`]s.
enum Decision {
    /// Run window `w` next.
    Continue(u64),
    /// All queues drained, no frames in flight, no tasks pending.
    Done,
    /// Queues drained but some shard still has tasks: deadlock.
    Stuck(usize),
}

fn decide(window: u64, lookahead_ns: u64, reports: &[RoundReport]) -> Decision {
    let any_sent = reports.iter().any(|r| r.sent > 0);
    let global_min = reports.iter().map(|r| r.next_ns).min().unwrap_or(u64::MAX);
    if !any_sent && global_min == u64::MAX {
        return match reports.iter().position(|r| r.live > 0) {
            Some(shard) => Decision::Stuck(shard),
            None => Decision::Done,
        };
    }
    if any_sent {
        // Frames exchanged this round land no earlier than next window;
        // their exact times are unknown here, so no skipping.
        Decision::Continue(window + 1)
    } else {
        // Idle fast-forward: jump to the window containing the earliest
        // future work.
        Decision::Continue((window + 1).max(global_min / lookahead_ns))
    }
}

/// One shard's event-count sampler: a single-counter [`Timeline`] fed the
/// shard's cumulative event count at every window boundary where a grid
/// row is due. Window boundaries are the same virtual instants on every
/// shard and in every [`ShardMode`], so the committed rows line up exactly
/// across shards — the property the imbalance index depends on.
struct ShardSampler {
    tl: Timeline,
    events: SourceId,
}

impl ShardSampler {
    fn new(interval: Dur, capacity: usize) -> Self {
        let mut b = TimelineBuilder::new();
        let events = b.counter("events");
        ShardSampler {
            tl: b.build(interval.as_nanos(), capacity, 0),
            events,
        }
    }

    /// Commit a row stamped `window_end_ns` if one is due there.
    fn observe(&mut self, window_end_ns: u64, events: u64) {
        if self.tl.due(window_end_ns) {
            self.tl.set(self.events, events);
            self.tl.sample(window_end_ns);
        }
    }

    /// Final reconciliation row stamped at the last round's window end (an
    /// instant every shard crossed, in every mode): afterwards the
    /// timeline's base plus the sum of retained deltas equals `events`
    /// exactly.
    fn finish(mut self, end_ns: u64, events: u64) -> Timeline {
        let stale = self
            .tl
            .len()
            .checked_sub(1)
            .is_none_or(|last| self.tl.row(last).0 < end_ns);
        if stale {
            self.tl.set(self.events, events);
            self.tl.sample(end_ns);
        }
        self.tl
    }
}

/// A boundary message parked until its delivery window, ordered as a
/// min-heap entry by the total delivery order `(time, src shard, seq)`.
/// Popping due entries in heap order *is* the deterministic injection
/// order, and the not-yet-due majority is never touched — under
/// congestion, arrivals spread hundreds of windows ahead, and re-scanning
/// the whole backlog every window dominated the runtime's cost.
struct HeldMsg(BoundaryMsg);

impl HeldMsg {
    fn key(&self) -> Reverse<(SimTime, usize, u64)> {
        Reverse((self.0.tx.at, self.0.src_shard, self.0.seq))
    }
}
impl PartialEq for HeldMsg {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for HeldMsg {}
impl PartialOrd for HeldMsg {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeldMsg {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// One shard's window execution: inject due boundary frames in total order,
/// advance to the window end (exclusive), then drain the outbox. Returns
/// the messages to exchange and the shard's [`RoundReport`].
fn run_window(
    sn: &ShardNet,
    held: &mut BinaryHeap<HeldMsg>,
    seq: &mut u64,
    window_end_ns: u64,
    stats: &mut ShardStats,
) -> (Vec<(usize, BoundaryMsg)>, RoundReport) {
    let t0 = std::time::Instant::now();
    // Pop the deliveries due inside this window — heap order is the
    // deterministic `(time, src shard, seq)` injection order. Lookahead
    // guarantees they were all received in earlier rounds.
    while held
        .peek()
        .is_some_and(|m| m.0.tx.at.as_nanos() < window_end_ns)
    {
        let m = held.pop().expect("peeked").0;
        sn.schedule_boundary(m.tx);
    }
    let before = sn.sim.events_executed();
    let t1 = std::time::Instant::now();
    // Execute strictly inside [window start, window end): `advance_until`
    // is inclusive, so the limit is the last nanosecond *before* the end.
    sn.sim
        .advance_until(SimTime(window_end_ns - 1), || false);
    let t2 = std::time::Instant::now();
    let executed = sn.sim.events_executed() - before;
    stats.events = sn.sim.events_executed();
    if executed == 0 {
        stats.idle_windows += 1;
    }
    stats.advance_ns += (t2 - t1).as_nanos() as u64;
    let mut out = Vec::new();
    for tx in sn.outbox.borrow_mut().drain(..) {
        let dst = sn.dest_shard(&tx);
        let msg = BoundaryMsg {
            src_shard: sn.shard,
            seq: *seq,
            tx,
        };
        *seq += 1;
        stats.boundary_out += 1;
        out.push((dst, msg));
    }
    let held_min = held.peek().map(|m| m.0.tx.at.as_nanos()).unwrap_or(u64::MAX);
    let next_ns = sn
        .sim
        .next_event_time()
        .map(|t| t.as_nanos())
        .unwrap_or(u64::MAX)
        .min(held_min);
    let report = RoundReport {
        next_ns,
        sent: out.len() as u64,
        live: sn.sim.live_tasks() as u64,
    };
    stats.exchange_ns += (t1 - t0 + t2.elapsed()).as_nanos() as u64;
    (out, report)
}

/// Partition `spec` into `shards` shards and run them to quiescence.
///
/// `setup` runs once per shard on the shard's own thread (shard state is
/// `Rc`-backed and never migrates) — build endpoints, spawn driver tasks,
/// schedule traffic. `collect` runs after global quiescence and extracts a
/// `Send` result per shard. `fault_plan`, when given, is replayed on every
/// shard (each applies the slice it owns).
///
/// Returns the per-shard `collect` results in shard order plus a
/// [`ShardRunReport`]; any failure tears all shards down and reports a
/// typed [`ShardError`] — never a hang (configure `wall_limit` /
/// `virtual_limit` to bound runaway workloads).
pub fn run_sharded<S, Out: Send>(
    spec: &ClusterSpec,
    shards: usize,
    seed: u64,
    fault_plan: Option<&FaultPlan>,
    cfg: &ShardRunConfig,
    setup: impl Fn(&ShardNet) -> S + Send + Sync,
    collect: impl Fn(&ShardNet, S) -> Out + Send + Sync,
) -> Result<(ShardRunReport, Vec<Out>), ShardError> {
    let plan = ShardPlan::partition(spec, shards)?;
    let threaded = match cfg.mode {
        ShardMode::Threaded => true,
        ShardMode::Cooperative => false,
        ShardMode::Auto => {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                > 1
        }
    };
    if threaded && shards > 1 {
        run_threaded(spec, &plan, seed, fault_plan, cfg, &setup, &collect)
    } else {
        run_cooperative(spec, &plan, seed, fault_plan, cfg, &setup, &collect)
    }
}

#[allow(clippy::too_many_arguments)]
fn run_cooperative<S, Out: Send>(
    spec: &ClusterSpec,
    plan: &ShardPlan,
    seed: u64,
    fault_plan: Option<&FaultPlan>,
    cfg: &ShardRunConfig,
    setup: &(impl Fn(&ShardNet) -> S + Send + Sync),
    collect: &(impl Fn(&ShardNet, S) -> Out + Send + Sync),
) -> Result<(ShardRunReport, Vec<Out>), ShardError> {
    let shards = plan.shards();
    let lookahead_ns = plan.lookahead().as_nanos();
    let nets: Vec<ShardNet> = (0..shards)
        .map(|s| ShardNet::build(spec, plan, s, seed))
        .collect();
    if let Some(p) = fault_plan {
        for sn in &nets {
            sn.apply_fault_plan(p);
        }
    }
    let mut states: Vec<Option<S>> = nets.iter().map(|sn| Some(setup(sn))).collect();
    let mut held: Vec<BinaryHeap<HeldMsg>> = (0..shards).map(|_| BinaryHeap::new()).collect();
    let mut seqs = vec![0u64; shards];
    let mut stats = vec![ShardStats::default(); shards];
    let mut samplers: Vec<Option<ShardSampler>> = (0..shards)
        .map(|_| {
            cfg.sample_interval
                .map(|iv| ShardSampler::new(iv, cfg.sample_capacity))
        })
        .collect();
    let mut window = 0u64;
    let mut windows_run = 0u64;
    let mut last_window_end_ns;
    let started = Instant::now();
    let decision = loop {
        if let Some(wall) = cfg.wall_limit {
            if started.elapsed() > wall {
                return Err(ShardError::WallClockExceeded {
                    windows: windows_run,
                });
            }
        }
        let window_end_ns = (window + 1) * lookahead_ns;
        last_window_end_ns = window_end_ns;
        let mut staged: Vec<(usize, BoundaryMsg)> = Vec::new();
        let mut reports = Vec::with_capacity(shards);
        for s in 0..shards {
            let (out, report) = run_window(
                &nets[s],
                &mut held[s],
                &mut seqs[s],
                window_end_ns,
                &mut stats[s],
            );
            if let Some(smp) = &mut samplers[s] {
                smp.observe(window_end_ns, stats[s].events);
            }
            staged.extend(out);
            reports.push(report);
        }
        windows_run += 1;
        // Exchange after the whole round, exactly like the threaded
        // barrier: frames produced in round r become visible in round r+1.
        let mut depth = vec![0usize; shards];
        for (dst, msg) in staged {
            stats[dst].boundary_in += 1;
            depth[dst] += 1;
            held[dst].push(HeldMsg(msg));
        }
        for s in 0..shards {
            stats[s].max_inbox_depth = stats[s].max_inbox_depth.max(depth[s]);
        }
        match decide(window, lookahead_ns, &reports) {
            Decision::Continue(w) => {
                if let Some(limit) = cfg.virtual_limit {
                    if w * lookahead_ns >= limit.as_nanos() {
                        return Err(ShardError::VirtualLimitExceeded { limit });
                    }
                }
                window = w;
            }
            d => break d,
        }
    };
    match decision {
        Decision::Stuck(shard) => Err(ShardError::StuckTasks {
            shard,
            tasks: nets[shard].sim.stuck_task_names(),
        }),
        _ => {
            let outs = nets
                .iter()
                .zip(states.iter_mut())
                .map(|(sn, st)| collect(sn, st.take().expect("state consumed once")))
                .collect();
            let end_time = nets.iter().map(|sn| sn.sim.now()).max().unwrap_or(SimTime::ZERO);
            let samples: Vec<Timeline> = samplers
                .into_iter()
                .zip(&stats)
                .flat_map(|(smp, st)| smp.map(|s| s.finish(last_window_end_ns, st.events)))
                .collect();
            let health = shard_health(cfg, &samples);
            Ok((
                ShardRunReport {
                    shards,
                    windows: windows_run,
                    end_time,
                    threaded: false,
                    lookahead: plan.lookahead(),
                    per_shard: stats,
                    samples,
                    health,
                },
                outs,
            ))
        }
    }
}

/// Shared state for the threaded runtime. Mailboxes are double-buffered by
/// round parity: during round `r` producers push into parity `(r+1) % 2`
/// and consumers drain parity `r % 2`, and the two barriers per round
/// separate every write from every read of the same buffer.
struct ThreadShared {
    barrier: Barrier,
    /// `mailboxes[parity][dst]`.
    mailboxes: [Vec<Mutex<Vec<BoundaryMsg>>>; 2],
    /// `reports[shard]` = (next_ns, sent, live), published between barriers.
    reports: Vec<[AtomicU64; 3]>,
    /// Set (before the second barrier) by shard 0 when the wall limit hit.
    deadline: AtomicBool,
    /// Set by a shard whose window execution panicked.
    panicked: Vec<AtomicBool>,
}

#[allow(clippy::too_many_arguments)]
fn run_threaded<S, Out: Send>(
    spec: &ClusterSpec,
    plan: &ShardPlan,
    seed: u64,
    fault_plan: Option<&FaultPlan>,
    cfg: &ShardRunConfig,
    setup: &(impl Fn(&ShardNet) -> S + Send + Sync),
    collect: &(impl Fn(&ShardNet, S) -> Out + Send + Sync),
) -> Result<(ShardRunReport, Vec<Out>), ShardError> {
    let shards = plan.shards();
    let lookahead_ns = plan.lookahead().as_nanos();
    let mk_boxes = || (0..shards).map(|_| Mutex::new(Vec::new())).collect();
    let shared = ThreadShared {
        barrier: Barrier::new(shards),
        mailboxes: [mk_boxes(), mk_boxes()],
        reports: (0..shards)
            .map(|_| [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)])
            .collect(),
        deadline: AtomicBool::new(false),
        panicked: (0..shards).map(|_| AtomicBool::new(false)).collect(),
    };
    let error: Mutex<Option<ShardError>> = Mutex::new(None);
    #[allow(clippy::type_complexity)]
    let outcomes: Mutex<Vec<Option<(ShardStats, Out, SimTime, Option<Timeline>)>>> =
        Mutex::new((0..shards).map(|_| None).collect());
    let windows_run = AtomicU64::new(0);
    let started = Instant::now();

    std::thread::scope(|scope| {
        for shard in 0..shards {
            let shared = &shared;
            let error = &error;
            let outcomes = &outcomes;
            let windows_run = &windows_run;
            scope.spawn(move || {
                // Shard state is built on this thread and never leaves it;
                // only `BoundaryMsg`s and the final `Out` cross.
                let sn = ShardNet::build(spec, plan, shard, seed);
                if let Some(p) = fault_plan {
                    sn.apply_fault_plan(p);
                }
                let mut state = Some(setup(&sn));
                let mut held: BinaryHeap<HeldMsg> = BinaryHeap::new();
                let mut seq = 0u64;
                let mut stats = ShardStats::default();
                let mut sampler = cfg
                    .sample_interval
                    .map(|iv| ShardSampler::new(iv, cfg.sample_capacity));
                let mut window = 0u64;
                let mut round = 0u64;
                let mut last_window_end_ns;
                let mut dead = false;
                let verdict: Result<(), ShardError> = loop {
                    shared.barrier.wait();
                    let incoming = std::mem::take(
                        &mut *shared.mailboxes[(round % 2) as usize][shard]
                            .lock()
                            .unwrap_or_else(|e| e.into_inner()),
                    );
                    stats.boundary_in += incoming.len() as u64;
                    stats.max_inbox_depth = stats.max_inbox_depth.max(incoming.len());
                    held.extend(incoming.into_iter().map(HeldMsg));
                    let window_end_ns = (window + 1) * lookahead_ns;
                    last_window_end_ns = window_end_ns;
                    let report = if dead {
                        RoundReport {
                            next_ns: u64::MAX,
                            sent: 0,
                            live: 0,
                        }
                    } else {
                        match catch_unwind(AssertUnwindSafe(|| {
                            let (out, report) =
                                run_window(&sn, &mut held, &mut seq, window_end_ns, &mut stats);
                            for (dst, msg) in out {
                                shared.mailboxes[((round + 1) % 2) as usize][dst]
                                    .lock()
                                    .unwrap_or_else(|e| e.into_inner())
                                    .push(msg);
                            }
                            report
                        })) {
                            Ok(r) => {
                                if let Some(smp) = &mut sampler {
                                    smp.observe(window_end_ns, stats.events);
                                }
                                r
                            }
                            Err(_) => {
                                // Keep participating in barriers so the
                                // other shards can shut down cleanly.
                                shared.panicked[shard].store(true, Ordering::SeqCst);
                                dead = true;
                                RoundReport {
                                    next_ns: u64::MAX,
                                    sent: 0,
                                    live: 0,
                                }
                            }
                        }
                    };
                    let slot = &shared.reports[shard];
                    slot[0].store(report.next_ns, Ordering::SeqCst);
                    slot[1].store(report.sent, Ordering::SeqCst);
                    slot[2].store(report.live, Ordering::SeqCst);
                    if shard == 0 {
                        windows_run.fetch_add(1, Ordering::SeqCst);
                        if let Some(wall) = cfg.wall_limit {
                            // Only shard 0 consults the wall clock: a
                            // divergent local reading would make shards
                            // disagree on termination and deadlock the
                            // barrier.
                            if started.elapsed() > wall {
                                shared.deadline.store(true, Ordering::SeqCst);
                            }
                        }
                    }
                    shared.barrier.wait();
                    // Symmetric decision: every shard reads the same
                    // published state and reaches the same verdict.
                    if let Some(p) = shared
                        .panicked
                        .iter()
                        .position(|p| p.load(Ordering::SeqCst))
                    {
                        break Err(ShardError::WorkerPanicked { shard: p });
                    }
                    if shared.deadline.load(Ordering::SeqCst) {
                        break Err(ShardError::WallClockExceeded {
                            windows: windows_run.load(Ordering::SeqCst),
                        });
                    }
                    let reports: Vec<RoundReport> = shared
                        .reports
                        .iter()
                        .map(|slot| RoundReport {
                            next_ns: slot[0].load(Ordering::SeqCst),
                            sent: slot[1].load(Ordering::SeqCst),
                            live: slot[2].load(Ordering::SeqCst),
                        })
                        .collect();
                    match decide(window, lookahead_ns, &reports) {
                        Decision::Done => break Ok(()),
                        Decision::Stuck(s) => {
                            break Err(ShardError::StuckTasks {
                                shard: s,
                                tasks: if s == shard {
                                    sn.sim.stuck_task_names()
                                } else {
                                    Vec::new()
                                },
                            });
                        }
                        Decision::Continue(w) => {
                            if let Some(limit) = cfg.virtual_limit {
                                if w * lookahead_ns >= limit.as_nanos() {
                                    break Err(ShardError::VirtualLimitExceeded { limit });
                                }
                            }
                            window = w;
                            round += 1;
                        }
                    }
                };
                match verdict {
                    Ok(()) => {
                        let out = collect(&sn, state.take().expect("state consumed once"));
                        let tl =
                            sampler.map(|s| s.finish(last_window_end_ns, stats.events));
                        outcomes.lock().unwrap_or_else(|e| e.into_inner())[shard] =
                            Some((stats, out, sn.sim.now(), tl));
                    }
                    Err(e) => {
                        let mut slot = error.lock().unwrap_or_else(|e| e.into_inner());
                        // Prefer the error carrying detail (stuck names come
                        // only from the stuck shard itself).
                        let replace = match (&*slot, &e) {
                            (None, _) => true,
                            (
                                Some(ShardError::StuckTasks { tasks, .. }),
                                ShardError::StuckTasks { tasks: new, .. },
                            ) => tasks.is_empty() && !new.is_empty(),
                            _ => false,
                        };
                        if replace {
                            *slot = Some(e);
                        }
                    }
                }
            });
        }
    });

    if let Some(e) = error.into_inner().unwrap_or_else(|e| e.into_inner()) {
        return Err(e);
    }
    let mut per_shard = Vec::with_capacity(shards);
    let mut outs = Vec::with_capacity(shards);
    let mut samples = Vec::new();
    let mut end_time = SimTime::ZERO;
    for slot in outcomes
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
        .into_iter()
    {
        let (stats, out, now, tl) = slot.expect("every shard reports an outcome on success");
        per_shard.push(stats);
        outs.push(out);
        samples.extend(tl);
        end_time = end_time.max(now);
    }
    let health = shard_health(cfg, &samples);
    Ok((
        ShardRunReport {
            shards,
            windows: windows_run.load(Ordering::SeqCst),
            end_time,
            threaded: true,
            lookahead: plan.lookahead(),
            per_shard,
            samples,
            health,
        },
        outs,
    ))
}

/// Post-run cross-shard diagnosis: feed each shard's per-interval event
/// deltas to the imbalance detector as one member series. Runs only when
/// both sampling and [`ShardRunConfig::health`] are on; a pure function of
/// the (mode-invariant) sample grids, so cooperative and threaded runs
/// produce byte-identical reports.
fn shard_health(cfg: &ShardRunConfig, samples: &[Timeline]) -> Option<HealthReport> {
    let hc = cfg.health?;
    if samples.is_empty() {
        return None;
    }
    Some(me_trace::diagnose_member_timelines(samples, "events", hc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::RxFrame;
    use bytes::Bytes;
    use frame::{Frame, FrameHeader};
    use std::cell::Cell;

    fn spec(nodes: usize, rails: usize) -> ClusterSpec {
        ClusterSpec::gbe_1(nodes, rails)
    }

    #[test]
    fn partition_is_balanced_and_total() {
        for nodes in [1, 2, 3, 7, 16, 64, 257] {
            for shards in [1, 2, 3, 4, 8] {
                if shards > nodes {
                    continue;
                }
                let plan = ShardPlan::partition(&spec(nodes, 2), shards).unwrap();
                let mut counts = vec![0usize; shards];
                for n in 0..nodes {
                    counts[plan.node_shard(n)] += 1;
                }
                let (min, max) = (
                    *counts.iter().min().unwrap(),
                    *counts.iter().max().unwrap(),
                );
                assert!(max - min <= 1, "{nodes} nodes / {shards} shards: {counts:?}");
                assert_eq!(counts.iter().sum::<usize>(), nodes);
            }
        }
    }

    #[test]
    fn partition_rejects_degenerate_requests() {
        assert_eq!(
            ShardPlan::partition(&spec(4, 1), 0),
            Err(PartitionError::ZeroShards)
        );
        assert_eq!(
            ShardPlan::partition(&spec(2, 1), 5),
            Err(PartitionError::TooManyShards { shards: 5, nodes: 2 })
        );
        let mut zero_lat = spec(4, 1);
        zero_lat.link.latency = Dur::ZERO;
        assert_eq!(
            ShardPlan::partition(&zero_lat, 2),
            Err(PartitionError::ZeroLookahead)
        );
    }

    /// Raw-frame all-to-all across a sharded 4-node cluster: every frame is
    /// delivered exactly once regardless of shard count or execution mode.
    fn all_to_all_received(shards: usize, mode: ShardMode) -> Vec<u64> {
        let spec = spec(4, 1);
        let cfg = ShardRunConfig {
            mode,
            wall_limit: Some(std::time::Duration::from_secs(30)),
            ..Default::default()
        };
        let (_, outs) = run_sharded(
            &spec,
            shards,
            7,
            None,
            &cfg,
            |sn: &ShardNet| {
                let counts: Rc<Vec<Cell<u64>>> =
                    Rc::new(sn.local_nodes().iter().map(|_| Cell::new(0)).collect());
                for (i, &node) in sn.local_nodes().iter().enumerate() {
                    let c = counts.clone();
                    sn.net().set_rx_handler(sn.nics(node)[0], move |_, _: RxFrame| {
                        c[i].set(c[i].get() + 1);
                    });
                    // Each node sends one frame to every other node.
                    for peer in 0..4u16 {
                        if peer as usize == node {
                            continue;
                        }
                        let f = Frame {
                            src: MacAddr::new(node as u16, 0),
                            dst: MacAddr::new(peer, 0),
                            header: FrameHeader::default(),
                            payload: Bytes::from(vec![0u8; 256]),
                        };
                        let net = sn.net().clone();
                        let nic = sn.nics(node)[0];
                        sn.sim().schedule_at(SimTime::ZERO, move |_| {
                            net.nic_send(nic, f);
                        });
                    }
                }
                counts
            },
            |_, counts| counts.iter().map(Cell::get).collect::<Vec<u64>>(),
        )
        .unwrap();
        outs.into_iter().flatten().collect()
    }

    #[test]
    fn sharded_all_to_all_delivers_everything() {
        for shards in [1, 2, 4] {
            let got = all_to_all_received(shards, ShardMode::Cooperative);
            assert_eq!(got, vec![3u64; 4], "shards={shards}");
        }
    }

    #[test]
    fn threaded_matches_cooperative() {
        let coop = all_to_all_received(2, ShardMode::Cooperative);
        let thr = all_to_all_received(2, ShardMode::Threaded);
        assert_eq!(coop, thr);
    }

    /// The all-to-all workload with event sampling on: returns the report
    /// so tests can compare sample grids across modes.
    fn sampled_all_to_all(shards: usize, mode: ShardMode) -> ShardRunReport {
        let spec = spec(4, 1);
        let cfg = ShardRunConfig {
            mode,
            wall_limit: Some(std::time::Duration::from_secs(30)),
            sample_interval: Some(Dur(2_000)),
            ..Default::default()
        };
        let (report, _) = run_sharded(
            &spec,
            shards,
            7,
            None,
            &cfg,
            |sn: &ShardNet| {
                for &node in sn.local_nodes() {
                    for peer in 0..4u16 {
                        if peer as usize == node {
                            continue;
                        }
                        let f = Frame {
                            src: MacAddr::new(node as u16, 0),
                            dst: MacAddr::new(peer, 0),
                            header: FrameHeader::default(),
                            payload: Bytes::from(vec![0u8; 256]),
                        };
                        let net = sn.net().clone();
                        let nic = sn.nics(node)[0];
                        sn.sim().schedule_at(SimTime::ZERO, move |_| {
                            net.nic_send(nic, f);
                        });
                    }
                }
            },
            |_, _| (),
        )
        .unwrap();
        report
    }

    fn rows(tl: &Timeline) -> Vec<(u64, Vec<u64>)> {
        (0..tl.len())
            .map(|i| {
                let (t, v) = tl.row(i);
                (t, v.to_vec())
            })
            .collect()
    }

    #[test]
    fn event_samples_reconcile_and_match_across_modes() {
        let coop = sampled_all_to_all(2, ShardMode::Cooperative);
        assert_eq!(coop.samples.len(), 2, "one timeline per shard");
        for (tl, st) in coop.samples.iter().zip(&coop.per_shard) {
            let events = tl.source_id("events").expect("shard timelines carry events");
            // Telescoping: base + retained deltas == the shard's final
            // cumulative event count.
            assert_eq!(
                tl.base_raw(events) + tl.column_sum(events),
                st.events,
                "sampled deltas must reconcile with ShardStats.events"
            );
        }
        let thr = sampled_all_to_all(2, ShardMode::Threaded);
        for (c, t) in coop.samples.iter().zip(&thr.samples) {
            assert_eq!(
                rows(c),
                rows(t),
                "sample grids must be bit-identical across execution modes"
            );
        }
    }

    /// 8 nodes, 4 rails, 4 shards, health diagnosis enabled. Rail `r`'s
    /// switch lands on shard `r`, so in the balanced case each adjacent
    /// node pair bursts over its own shard's rail (every shard runs the
    /// same pair plus one switch); `hot` routes only the shard-0 pair,
    /// over rail 0, leaving the other shards idle.
    fn health_run(mode: ShardMode, hot: bool) -> ShardRunReport {
        let spec = spec(8, 4);
        // The lopsided case relies on both chatty nodes landing on the
        // same shard, so the hot load stays intra-shard.
        let plan = ShardPlan::partition(&spec, 4).unwrap();
        assert_eq!(plan.node_shard(0), plan.node_shard(1));
        assert_eq!(plan.switch_shard(0), 0);
        let hc = HealthConfig {
            imbalance_min_total: 8,
            ..Default::default()
        };
        let cfg = ShardRunConfig {
            mode,
            wall_limit: Some(std::time::Duration::from_secs(30)),
            sample_interval: Some(Dur(20_000)),
            health: Some(hc),
            ..Default::default()
        };
        let (report, _) = run_sharded(
            &spec,
            4,
            7,
            None,
            &cfg,
            |sn: &ShardNet| {
                for &node in sn.local_nodes() {
                    if hot && node > 1 {
                        continue;
                    }
                    let peer = (node ^ 1) as u16;
                    let rail = if hot { 0 } else { node / 2 };
                    for _ in 0..128 {
                        let f = Frame {
                            src: MacAddr::new(node as u16, rail as u8),
                            dst: MacAddr::new(peer, rail as u8),
                            header: FrameHeader::default(),
                            payload: Bytes::from(vec![0u8; 64]),
                        };
                        let net = sn.net().clone();
                        let nic = sn.nics(node)[rail];
                        sn.sim().schedule_at(SimTime::ZERO, move |_| {
                            net.nic_send(nic, f);
                        });
                    }
                }
            },
            |_, _| (),
        )
        .unwrap();
        report
    }

    #[test]
    fn shard_health_flags_hot_shard_and_stays_quiet_when_balanced() {
        let hot = health_run(ShardMode::Cooperative, true);
        let report = hot.health.expect("health was configured");
        let inc = report
            .first(me_trace::IncidentCause::IncastImbalance)
            .expect("a persistently hot shard must open an IncastImbalance incident");
        assert!(inc.alarms > 0);
        let clean = health_run(ShardMode::Cooperative, false);
        let report = clean.health.expect("health was configured");
        assert!(
            report.incidents.is_empty(),
            "balanced load must stay clean:\n{}",
            report.render_human()
        );
    }

    #[test]
    fn shard_health_verdict_is_mode_invariant() {
        let coop = health_run(ShardMode::Cooperative, true);
        let thr = health_run(ShardMode::Threaded, true);
        assert_eq!(
            coop.health.expect("configured").to_json().render(),
            thr.health.expect("configured").to_json().render(),
            "diagnosis must be byte-identical across execution modes"
        );
    }

    #[test]
    fn sampling_off_publishes_no_timelines() {
        let spec = spec(4, 1);
        let cfg = ShardRunConfig {
            mode: ShardMode::Cooperative,
            wall_limit: Some(std::time::Duration::from_secs(30)),
            ..Default::default()
        };
        let (report, _) = run_sharded(&spec, 2, 7, None, &cfg, |_| (), |_, _| ()).unwrap();
        assert!(report.samples.is_empty());
    }

    #[test]
    fn wall_limit_fails_cleanly_not_hangs() {
        // A self-rescheduling event chain never quiesces; the wall limit
        // must produce a typed error.
        let cfg = ShardRunConfig {
            mode: ShardMode::Cooperative,
            wall_limit: Some(std::time::Duration::from_millis(50)),
            ..Default::default()
        };
        let err = run_sharded(
            &spec(4, 1),
            2,
            0,
            None,
            &cfg,
            |sn: &ShardNet| {
                fn tick(sim: &Sim) {
                    let s = sim.clone();
                    sim.schedule_in(Dur(1_000), move |_| tick(&s));
                }
                tick(sn.sim());
            },
            |_, _| (),
        )
        .unwrap_err();
        assert!(matches!(err, ShardError::WallClockExceeded { .. }), "{err}");
    }

    #[test]
    fn virtual_limit_fails_cleanly() {
        let cfg = ShardRunConfig {
            mode: ShardMode::Cooperative,
            virtual_limit: Some(Dur(50_000)),
            wall_limit: Some(std::time::Duration::from_secs(10)),
            ..Default::default()
        };
        let err = run_sharded(
            &spec(4, 1),
            2,
            0,
            None,
            &cfg,
            |sn: &ShardNet| {
                fn tick(sim: &Sim) {
                    let s = sim.clone();
                    sim.schedule_in(Dur(1_000), move |_| tick(&s));
                }
                tick(sn.sim());
            },
            |_, _| (),
        )
        .unwrap_err();
        assert!(matches!(err, ShardError::VirtualLimitExceeded { .. }), "{err}");
    }

    #[test]
    fn stuck_tasks_reported_not_hung() {
        let cfg = ShardRunConfig {
            mode: ShardMode::Cooperative,
            wall_limit: Some(std::time::Duration::from_secs(10)),
            ..Default::default()
        };
        let err = run_sharded(
            &spec(4, 1),
            2,
            0,
            None,
            &cfg,
            |sn: &ShardNet| {
                if sn.shard() == 1 {
                    sn.sim().spawn("never-completes", std::future::pending::<()>());
                }
            },
            |_, _| (),
        )
        .unwrap_err();
        match err {
            ShardError::StuckTasks { shard, tasks } => {
                assert_eq!(shard, 1);
                assert_eq!(tasks, vec!["never-completes".to_string()]);
            }
            other => panic!("expected StuckTasks, got {other}"),
        }
    }
}
