//! Futures and synchronization primitives for simulation tasks.
//!
//! All primitives are single-threaded (the executor never runs two tasks
//! concurrently) and integrate with the [`Sim`] event queue: blocking a task
//! costs no host resources, and waking is an ordinary simulator event.

use crate::engine::{Sim, TaskId};
use crate::time::{Dur, SimTime};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll};

fn register(waiters: &mut Vec<TaskId>, task: TaskId) {
    if !waiters.contains(&task) {
        waiters.push(task);
    }
}

// ---------------------------------------------------------------------------
// Delay
// ---------------------------------------------------------------------------

/// Future that completes at an absolute virtual time. Created via
/// [`sleep`] / [`sleep_until`].
pub struct Delay {
    sim: Sim,
    deadline: SimTime,
    armed: bool,
}

/// Suspend the current task for `d` of virtual time.
pub fn sleep(sim: &Sim, d: Dur) -> Delay {
    sleep_until(sim, sim.now() + d)
}

/// Suspend the current task until the absolute instant `at`.
pub fn sleep_until(sim: &Sim, at: SimTime) -> Delay {
    Delay {
        sim: sim.clone(),
        deadline: at,
        armed: false,
    }
}

impl Future for Delay {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        if self.sim.now() >= self.deadline {
            return Poll::Ready(());
        }
        if !self.armed {
            self.armed = true;
            let task = self.sim.current_task();
            self.sim.wake_task_at(task, self.deadline);
        }
        Poll::Pending
    }
}

// ---------------------------------------------------------------------------
// Flag (one-shot event)
// ---------------------------------------------------------------------------

#[derive(Default)]
struct FlagState {
    fired: bool,
    waiters: Vec<TaskId>,
}

/// One-shot event: any number of tasks can [`Flag::wait`]; a single
/// [`Flag::fire`] releases them all. Waiting on an already-fired flag
/// completes immediately.
#[derive(Clone)]
pub struct Flag {
    sim: Sim,
    st: Rc<RefCell<FlagState>>,
}

impl Flag {
    /// New unfired flag.
    pub fn new(sim: &Sim) -> Self {
        Self {
            sim: sim.clone(),
            st: Rc::default(),
        }
    }

    /// Fire the flag, waking all waiters. Idempotent.
    pub fn fire(&self) {
        let waiters = {
            let mut st = self.st.borrow_mut();
            if st.fired {
                return;
            }
            st.fired = true;
            std::mem::take(&mut st.waiters)
        };
        for t in waiters {
            self.sim.wake_task(t);
        }
    }

    /// Has the flag fired?
    pub fn is_fired(&self) -> bool {
        self.st.borrow().fired
    }

    /// Future resolving when the flag fires.
    pub fn wait(&self) -> FlagWait {
        FlagWait { flag: self.clone() }
    }
}

/// Future returned by [`Flag::wait`].
pub struct FlagWait {
    flag: Flag,
}

impl Future for FlagWait {
    type Output = ();

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        let mut st = self.flag.st.borrow_mut();
        if st.fired {
            Poll::Ready(())
        } else {
            let task = self.flag.sim.current_task();
            register(&mut st.waiters, task);
            Poll::Pending
        }
    }
}

// ---------------------------------------------------------------------------
// JoinHandle
// ---------------------------------------------------------------------------

/// Handle to a spawned task; awaiting it yields the task's output.
pub struct JoinHandle<T> {
    cell: Rc<RefCell<Option<T>>>,
    flag: Flag,
}

impl<T> JoinHandle<T> {
    pub(crate) fn new(cell: Rc<RefCell<Option<T>>>, flag: Flag) -> Self {
        Self { cell, flag }
    }

    /// Has the task completed?
    pub fn is_done(&self) -> bool {
        self.flag.is_fired()
    }

    /// Take the output if the task has completed (once).
    pub fn try_take(&self) -> Option<T> {
        self.cell.borrow_mut().take()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<T> {
        if self.flag.is_fired() {
            Poll::Ready(
                self.cell
                    .borrow_mut()
                    .take()
                    .expect("JoinHandle polled after completion was consumed"),
            )
        } else {
            let mut st = self.flag.st.borrow_mut();
            let task = self.flag.sim.current_task();
            register(&mut st.waiters, task);
            Poll::Pending
        }
    }
}

// ---------------------------------------------------------------------------
// join_all
// ---------------------------------------------------------------------------

/// Future combinator awaiting a set of futures, yielding their outputs in
/// input order. Safe with this executor because every leaf future registers
/// the *enclosing* task, so any child's progress re-polls the whole set.
pub struct JoinAll<F: Future> {
    futs: Vec<Option<Pin<Box<F>>>>,
    outs: Vec<Option<F::Output>>,
    remaining: usize,
}

/// Await all futures; resolve with all outputs (input order).
pub fn join_all<F: Future>(futs: impl IntoIterator<Item = F>) -> JoinAll<F> {
    let futs: Vec<_> = futs.into_iter().map(|f| Some(Box::pin(f))).collect();
    let n = futs.len();
    JoinAll {
        outs: (0..n).map(|_| None).collect(),
        remaining: n,
        futs,
    }
}

// The child futures are heap-pinned (`Pin<Box<F>>`), so moving the `JoinAll`
// itself never moves pinned data.
impl<F: Future> Unpin for JoinAll<F> {}

impl<F: Future> Future for JoinAll<F> {
    type Output = Vec<F::Output>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Vec<F::Output>> {
        // All fields are `Unpin` (`Vec`s), so `JoinAll` is `Unpin`.
        let this = self.get_mut();
        for i in 0..this.futs.len() {
            if let Some(f) = this.futs[i].as_mut() {
                if let Poll::Ready(v) = f.as_mut().poll(cx) {
                    this.outs[i] = Some(v);
                    this.futs[i] = None;
                    this.remaining -= 1;
                }
            }
        }
        if this.remaining == 0 {
            Poll::Ready(this.outs.iter_mut().map(|o| o.take().unwrap()).collect())
        } else {
            Poll::Pending
        }
    }
}

// ---------------------------------------------------------------------------
// Channel (unbounded async queue)
// ---------------------------------------------------------------------------

#[derive(Default)]
struct ChannelState<T> {
    queue: VecDeque<T>,
    waiters: Vec<TaskId>,
    closed: bool,
}

/// Unbounded single-threaded async queue. Multiple producers and consumers
/// are allowed; items are delivered in FIFO order to whichever consumer
/// polls first after a push.
pub struct Channel<T> {
    sim: Sim,
    st: Rc<RefCell<ChannelState<T>>>,
}

impl<T> Clone for Channel<T> {
    fn clone(&self) -> Self {
        Self {
            sim: self.sim.clone(),
            st: self.st.clone(),
        }
    }
}

impl<T> Channel<T> {
    /// New empty channel.
    pub fn new(sim: &Sim) -> Self {
        Self {
            sim: sim.clone(),
            st: Rc::new(RefCell::new(ChannelState {
                queue: VecDeque::new(),
                waiters: Vec::new(),
                closed: false,
            })),
        }
    }

    /// Push an item, waking all waiting consumers. Items pushed after
    /// [`Channel::close`] are silently dropped.
    pub fn push(&self, item: T) {
        let waiters = {
            let mut st = self.st.borrow_mut();
            if st.closed {
                return;
            }
            st.queue.push_back(item);
            std::mem::take(&mut st.waiters)
        };
        for t in waiters {
            self.sim.wake_task(t);
        }
    }

    /// Close the channel: queued items still drain, then [`Channel::pop`]
    /// resolves `None`. Idempotent.
    pub fn close(&self) {
        let waiters = {
            let mut st = self.st.borrow_mut();
            st.closed = true;
            std::mem::take(&mut st.waiters)
        };
        for t in waiters {
            self.sim.wake_task(t);
        }
    }

    /// Has the channel been closed?
    pub fn is_closed(&self) -> bool {
        self.st.borrow().closed
    }

    /// Pop without waiting.
    pub fn try_pop(&self) -> Option<T> {
        self.st.borrow_mut().queue.pop_front()
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.st.borrow().queue.len()
    }

    /// True if no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Future resolving with the next item, or `None` once the channel is
    /// closed and drained.
    pub fn pop(&self) -> ChannelPop<T> {
        ChannelPop { ch: self.clone() }
    }
}

/// Future returned by [`Channel::pop`].
pub struct ChannelPop<T> {
    ch: Channel<T>,
}

impl<T> Future for ChannelPop<T> {
    type Output = Option<T>;

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Option<T>> {
        let mut st = self.ch.st.borrow_mut();
        if let Some(v) = st.queue.pop_front() {
            Poll::Ready(Some(v))
        } else if st.closed {
            Poll::Ready(None)
        } else {
            let task = self.ch.sim.current_task();
            register(&mut st.waiters, task);
            Poll::Pending
        }
    }
}

// ---------------------------------------------------------------------------
// Semaphore
// ---------------------------------------------------------------------------

#[derive(Default)]
struct SemState {
    permits: usize,
    waiters: Vec<TaskId>,
}

/// Counting semaphore (used e.g. to bound outstanding operations).
#[derive(Clone)]
pub struct Semaphore {
    sim: Sim,
    st: Rc<RefCell<SemState>>,
}

impl Semaphore {
    /// Semaphore with `permits` initial permits.
    pub fn new(sim: &Sim, permits: usize) -> Self {
        Self {
            sim: sim.clone(),
            st: Rc::new(RefCell::new(SemState {
                permits,
                waiters: Vec::new(),
            })),
        }
    }

    /// Return one permit, waking waiters.
    pub fn release(&self) {
        let waiters = {
            let mut st = self.st.borrow_mut();
            st.permits += 1;
            std::mem::take(&mut st.waiters)
        };
        for t in waiters {
            self.sim.wake_task(t);
        }
    }

    /// Future resolving once a permit is taken.
    pub fn acquire(&self) -> SemAcquire {
        SemAcquire { sem: self.clone() }
    }

    /// Currently available permits.
    pub fn permits(&self) -> usize {
        self.st.borrow().permits
    }
}

/// Future returned by [`Semaphore::acquire`].
pub struct SemAcquire {
    sem: Semaphore,
}

impl Future for SemAcquire {
    type Output = ();

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        let mut st = self.sem.st.borrow_mut();
        if st.permits > 0 {
            st.permits -= 1;
            Poll::Ready(())
        } else {
            let task = self.sem.sim.current_task();
            register(&mut st.waiters, task);
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::us;

    #[test]
    fn sleep_advances_virtual_time() {
        let sim = Sim::new(0);
        let s = sim.clone();
        let h = sim.spawn("sleeper", async move {
            let t0 = s.now();
            sleep(&s, us(42)).await;
            (s.now() - t0).as_nanos()
        });
        sim.run().expect_quiescent();
        assert_eq!(h.try_take(), Some(42_000));
    }

    #[test]
    fn flag_releases_multiple_waiters() {
        let sim = Sim::new(0);
        let flag = Flag::new(&sim);
        let hits: Rc<RefCell<u32>> = Rc::default();
        for i in 0..3 {
            let (f, h) = (flag.clone(), hits.clone());
            sim.spawn(format!("w{i}"), async move {
                f.wait().await;
                *h.borrow_mut() += 1;
            });
        }
        let (f, s) = (flag.clone(), sim.clone());
        sim.spawn("firer", async move {
            sleep(&s, us(5)).await;
            f.fire();
        });
        sim.run().expect_quiescent();
        assert_eq!(*hits.borrow(), 3);
    }

    #[test]
    fn wait_on_fired_flag_is_immediate() {
        let sim = Sim::new(0);
        let flag = Flag::new(&sim);
        flag.fire();
        let f = flag.clone();
        let h = sim.spawn("w", async move {
            f.wait().await;
            1u32
        });
        let report = sim.run();
        report.expect_quiescent();
        assert_eq!(report.end_time, SimTime::ZERO);
        assert_eq!(h.try_take(), Some(1));
    }

    #[test]
    fn join_handle_returns_output() {
        let sim = Sim::new(0);
        let s = sim.clone();
        let inner = sim.spawn("inner", async move {
            sleep(&s, us(10)).await;
            7u32
        });
        let outer = sim.spawn("outer", async move { inner.await + 1 });
        sim.run().expect_quiescent();
        assert_eq!(outer.try_take(), Some(8));
    }

    #[test]
    fn join_all_collects_in_order() {
        let sim = Sim::new(0);
        let mut handles = Vec::new();
        for i in 0..4u64 {
            let s = sim.clone();
            handles.push(sim.spawn(format!("t{i}"), async move {
                // Later-indexed tasks finish earlier.
                sleep(&s, us(40 - i * 10)).await;
                i
            }));
        }
        let joined = sim.spawn("join", async move { join_all(handles).await });
        sim.run().expect_quiescent();
        assert_eq!(joined.try_take(), Some(vec![0, 1, 2, 3]));
    }

    #[test]
    fn channel_fifo_and_blocking() {
        let sim = Sim::new(0);
        let ch: Channel<u32> = Channel::new(&sim);
        let c = ch.clone();
        let consumer = sim.spawn("consumer", async move {
            let a = c.pop().await.unwrap();
            let b = c.pop().await.unwrap();
            (a, b)
        });
        let (c2, s) = (ch.clone(), sim.clone());
        sim.spawn("producer", async move {
            sleep(&s, us(1)).await;
            c2.push(10);
            sleep(&s, us(1)).await;
            c2.push(20);
        });
        sim.run().expect_quiescent();
        assert_eq!(consumer.try_take(), Some((10, 20)));
    }

    #[test]
    fn channel_close_drains_then_none() {
        let sim = Sim::new(0);
        let ch: Channel<u32> = Channel::new(&sim);
        ch.push(1);
        ch.close();
        ch.push(2); // dropped
        let c = ch.clone();
        let got = sim.spawn("c", async move {
            let a = c.pop().await;
            let b = c.pop().await;
            (a, b)
        });
        sim.run().expect_quiescent();
        assert_eq!(got.try_take(), Some((Some(1), None)));
    }

    #[test]
    fn channel_close_wakes_blocked_consumer() {
        let sim = Sim::new(0);
        let ch: Channel<u32> = Channel::new(&sim);
        let c = ch.clone();
        let got = sim.spawn("c", async move { c.pop().await });
        let c2 = ch.clone();
        let s = sim.clone();
        sim.spawn("closer", async move {
            sleep(&s, us(5)).await;
            c2.close();
        });
        sim.run().expect_quiescent();
        assert_eq!(got.try_take(), Some(None));
    }

    #[test]
    fn semaphore_bounds_concurrency() {
        let sim = Sim::new(0);
        let sem = Semaphore::new(&sim, 2);
        let active: Rc<RefCell<(u32, u32)>> = Rc::default(); // (current, max)
        for i in 0..5 {
            let (sm, a, s) = (sem.clone(), active.clone(), sim.clone());
            sim.spawn(format!("t{i}"), async move {
                sm.acquire().await;
                {
                    let mut g = a.borrow_mut();
                    g.0 += 1;
                    g.1 = g.1.max(g.0);
                }
                sleep(&s, us(10)).await;
                a.borrow_mut().0 -= 1;
                sm.release();
            });
        }
        sim.run().expect_quiescent();
        assert_eq!(active.borrow().1, 2);
    }

    #[test]
    fn deadlock_is_reported() {
        let sim = Sim::new(0);
        let flag = Flag::new(&sim);
        let f = flag.clone();
        sim.spawn("stuck-task", async move {
            f.wait().await; // nobody fires it
        });
        let report = sim.run();
        assert_eq!(report.stuck_tasks, vec!["stuck-task".to_string()]);
    }
}
