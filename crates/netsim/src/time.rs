//! Simulated time.
//!
//! Virtual time is a `u64` count of nanoseconds since simulation start.
//! Durations are a separate newtype so that absolute instants and spans
//! cannot be mixed up silently.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An absolute instant in virtual time (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(pub u64);

/// `n` nanoseconds.
pub const fn ns(n: u64) -> Dur {
    Dur(n)
}

/// `n` microseconds.
pub const fn us(n: u64) -> Dur {
    Dur(n * 1_000)
}

/// `n` milliseconds.
pub const fn ms(n: u64) -> Dur {
    Dur(n * 1_000_000)
}

/// `n` seconds.
pub const fn secs(n: u64) -> Dur {
    Dur(n * 1_000_000_000)
}

/// A fractional number of microseconds (useful for calibrated cost models).
pub fn us_f64(x: f64) -> Dur {
    debug_assert!(x >= 0.0);
    Dur((x * 1_000.0).round() as u64)
}

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Microseconds since simulation start, as a float.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Span from `earlier` to `self`; saturates at zero if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl Dur {
    /// Zero-length span.
    pub const ZERO: Dur = Dur(0);

    /// Nanoseconds in this span.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Microseconds, as a float.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Span for transmitting `bytes` at `bytes_per_sec`.
    pub fn for_bytes(bytes: usize, bytes_per_sec: f64) -> Dur {
        debug_assert!(bytes_per_sec > 0.0);
        Dur((bytes as f64 / bytes_per_sec * 1e9).round() as u64)
    }
}

impl Add<Dur> for SimTime {
    type Output = SimTime;
    fn add(self, d: Dur) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<Dur> for SimTime {
    fn add_assign(&mut self, d: Dur) {
        self.0 += d.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Dur;
    fn sub(self, rhs: SimTime) -> Dur {
        Dur(self.0 - rhs.0)
    }
}

impl Add for Dur {
    type Output = Dur;
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0 + rhs.0)
    }
}

impl AddAssign for Dur {
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub for Dur {
    type Output = Dur;
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    fn mul(self, k: u64) -> Dur {
        Dur(self.0 * k)
    }
}

impl Mul<f64> for Dur {
    type Output = Dur;
    fn mul(self, k: f64) -> Dur {
        Dur((self.0 as f64 * k).round() as u64)
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    fn div(self, k: u64) -> Dur {
        Dur(self.0 / k)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + us(3) + ns(500);
        assert_eq!(t.as_nanos(), 3_500);
        assert_eq!((t - SimTime(500)).as_nanos(), 3_000);
        assert_eq!(t.since(SimTime(10_000)), Dur::ZERO);
        assert_eq!(ms(1), us(1000));
        assert_eq!(secs(2), ms(2000));
        assert_eq!(us(10) * 3, us(30));
        assert_eq!(us(9) / 3, us(3));
    }

    #[test]
    fn bytes_at_rate() {
        // 1250 bytes at 1.25 GB/s (10-GbE) = 1 microsecond.
        assert_eq!(Dur::for_bytes(1250, 1.25e9), us(1));
        // 125 bytes at 125 MB/s (1-GbE) = 1 microsecond.
        assert_eq!(Dur::for_bytes(125, 1.25e8), us(1));
    }

    #[test]
    fn fractional_micros() {
        assert_eq!(us_f64(2.5).as_nanos(), 2_500);
        assert_eq!(us_f64(0.0).as_nanos(), 0);
    }
}
