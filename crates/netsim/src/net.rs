//! Network component models: channels (unidirectional links), switches, NICs.
//!
//! The model is frame-granular and store-and-forward, matching the paper's
//! D-Link / HP ProCurve Ethernet switches:
//!
//! * A **channel** is one direction of a full-duplex link. It serializes
//!   frames at the link rate (wire time includes preamble, MACs, FCS and
//!   inter-frame gap via [`frame::Frame::wire_len`]), adds a fixed
//!   propagation/PHY latency, and bounds the number of frames queued waiting
//!   for the wire; overflow drops the frame (congestion loss).
//! * A **switch** receives a full frame, looks up the destination MAC in a
//!   static table, waits a fixed forwarding delay and retransmits on the
//!   output port's channel.
//! * A **NIC** hands received frames to a protocol-layer callback and
//!   reports transmit completions (the hook the paper's send-path interrupt
//!   discussion needs).
//!
//! Transient faults (§2.4's "contention, bit errors, or transient link
//! failures") are modeled by a per-hop random loss rate and a corruption
//! rate; corrupted frames are delivered but flagged, and the receive path
//! treats them as damaged (checksum failure → NACK).

use crate::engine::Sim;
use crate::faults::{FaultAction, GilbertElliott};
use crate::time::{Dur, SimTime};
use frame::{FastMap, Frame, MacAddr};
use me_trace::{EventKind, FaultKind, FlightCode, FlightRecorder, Tracer};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::cell::RefCell;
use std::rc::Rc;

/// One direction of a link: bandwidth, fixed latency, bounded queue.
#[derive(Debug, Clone, Copy)]
pub struct ChannelParams {
    /// Link rate in bytes per second (1-GbE = 125e6, 10-GbE = 1.25e9).
    pub bytes_per_sec: f64,
    /// Propagation plus PHY/DMA latency added after serialization.
    pub latency: Dur,
    /// Uniform random extra latency in `[0, jitter)` per frame, modeling
    /// variable NIC DMA and switch processing time. Delivery stays FIFO
    /// within one channel, so a single link never reorders; across rails
    /// the jitter produces the closely-spaced out-of-order arrivals the
    /// paper measures on multi-link setups.
    pub jitter: Dur,
    /// Maximum frames queued awaiting the wire; overflow is dropped.
    pub queue_cap: usize,
}

impl ChannelParams {
    /// 1-Gbit/s Ethernet with defaults used throughout the evaluation.
    pub fn gbe_1() -> Self {
        Self {
            bytes_per_sec: 125e6,
            latency: crate::time::us_f64(2.0),
            jitter: crate::time::us_f64(1.0),
            // Shared-memory commodity switches can dedicate on the order
            // of a megabyte to a single congested port.
            queue_cap: 1024,
        }
    }

    /// 10-Gbit/s Ethernet.
    pub fn gbe_10() -> Self {
        Self {
            bytes_per_sec: 1.25e9,
            latency: crate::time::us_f64(2.0),
            jitter: crate::time::us_f64(1.0),
            queue_cap: 768,
        }
    }
}

/// Random transient-fault model, applied per channel traversal.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultModel {
    /// Probability a frame is silently lost on a hop.
    pub loss_rate: f64,
    /// Probability a frame is delivered with a checksum-violating error.
    pub corrupt_rate: f64,
}

/// Identifier of a channel within a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChannelId(usize);

/// Identifier of a switch within a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SwitchId(usize);

/// Identifier of a NIC within a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NicId(pub usize);

/// Where a boundary-crossing frame is headed, in *global* topology terms
/// (the sharded runtime maps this onto the owning shard's local objects).
/// Rail topologies have one switch per rail, so a rail index names the
/// switch unambiguously.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RemoteDest {
    /// Ingress of the rail's switch (the far end of an uplink channel).
    Switch {
        /// Rail (= switch) index.
        rail: u8,
    },
    /// Receive path of a node's NIC (the far end of a downlink channel).
    Nic {
        /// Global node index.
        node: u16,
        /// Rail (NIC index within the node).
        rail: u8,
    },
}

/// A frame leaving this [`Network`] for a component simulated elsewhere.
/// Produced by the eager delivery path when a channel's far end is
/// `Endpoint::Remote`; the payload is deep-copied out of the `Rc`-backed
/// [`bytes::Bytes`] shim so the whole struct is `Send`-safe (asserted at
/// compile time in `crate::shard`).
#[derive(Debug, Clone)]
pub struct BoundaryTx {
    /// Virtual time the frame reaches `dest` (arrival at the switch ingress
    /// or the NIC's receive path). Always at least one link propagation
    /// delay after the submitting event — the conservative lookahead bound.
    pub at: SimTime,
    /// Which remote component receives the frame.
    pub dest: RemoteDest,
    /// Ethernet source of the carried frame.
    pub src: MacAddr,
    /// Ethernet destination of the carried frame.
    pub dst: MacAddr,
    /// Protocol header (plain data, `Copy`).
    pub header: frame::FrameHeader,
    /// Deep-copied payload bytes.
    pub payload: Vec<u8>,
    /// Whether a transient error already damaged the frame in flight.
    pub corrupted: bool,
}

impl BoundaryTx {
    /// Reassemble the carried frame (fresh [`bytes::Bytes`] allocation).
    pub fn to_frame(&self) -> Frame {
        Frame {
            src: self.src,
            dst: self.dst,
            header: self.header,
            payload: bytes::Bytes::from(self.payload.clone()),
        }
    }
}

/// One recorded eager-mode fault decision: `(channel stream key, per-channel
/// attempt index, lost, corrupted)`. The stream key and attempt index are
/// shard-count-invariant, so two runs of the same seeded cell at different
/// shard counts must produce identical logs (the determinism gate).
pub type FaultDecision = (u64, u64, bool, bool);

#[derive(Debug, Clone, Copy)]
enum Endpoint {
    Switch(SwitchId),
    Nic(NicId),
    /// The far end lives in another shard's network; crossing is handed to
    /// the boundary hook instead of a local event.
    Remote(RemoteDest),
}

/// A frame as delivered to a NIC's receive handler.
#[derive(Debug, Clone)]
pub struct RxFrame {
    /// The frame (payload intact even when corrupted — the corruption flag
    /// models what the checksum would have caught).
    pub frame: Frame,
    /// True if a transient error damaged the frame in flight; the protocol
    /// layer must discard it and NACK.
    pub corrupted: bool,
}

type RxHandler = Rc<dyn Fn(&Sim, RxFrame)>;
type TxCompleteHandler = Rc<dyn Fn(&Sim, usize)>;

struct ChannelState {
    params: ChannelParams,
    to: Endpoint,
    busy_until: SimTime,
    /// Serialization start times of frames still queued ahead of the wire,
    /// oldest first. A frame stops occupying the queue once its
    /// serialization has started, so the live queue depth is the number of
    /// entries with `start > now` — entries at the front expire lazily on
    /// the next submission instead of costing a simulation event each.
    queued_starts: std::collections::VecDeque<SimTime>,
    tx_frames: u64,
    tx_bytes: u64,
    drop_overflow: u64,
    drop_loss: u64,
    drop_link_down: u64,
    corrupted: u64,
    /// Latest scheduled arrival: enforces FIFO delivery despite jitter.
    last_arrival: SimTime,
    /// Administrative link state; frames are dropped while `false`.
    link_up: bool,
    /// Optional scripted burst-error process layered on the stationary model.
    burst: Option<GilbertElliott>,
    /// Current Gilbert–Elliott state (`true` = bad).
    ge_bad: bool,
    /// Shard-count-invariant identity of this channel's jitter/fault
    /// streams (eager mode only; `0` = unset, legacy mode).
    stream_key: u64,
    /// Submissions so far (eager mode): the per-channel index every
    /// stateless jitter/fault draw is keyed by. Counts every submission
    /// attempt, including ones dropped at the queue or a downed link, so
    /// the stream never shifts with a frame's fate.
    attempts: u64,
}

impl ChannelState {
    fn new(params: ChannelParams, to: Endpoint, stream_key: u64) -> Self {
        Self {
            params,
            to,
            busy_until: SimTime::ZERO,
            queued_starts: std::collections::VecDeque::new(),
            tx_frames: 0,
            tx_bytes: 0,
            drop_overflow: 0,
            drop_loss: 0,
            drop_link_down: 0,
            corrupted: 0,
            last_arrival: SimTime::ZERO,
            link_up: true,
            burst: None,
            ge_bad: false,
            stream_key,
            attempts: 0,
        }
    }
}

struct SwitchState {
    forward_delay: Dur,
    table: FastMap<MacAddr, ChannelId>,
    drop_unknown: u64,
}

struct NicState {
    mac: MacAddr,
    tx_channel: Option<ChannelId>,
    /// The switch→NIC leg of this NIC's link (set by [`Network::connect`]).
    rx_channel: Option<ChannelId>,
    rx_handler: Option<RxHandler>,
    tx_complete: Option<TxCompleteHandler>,
    rx_frames: u64,
    tx_submitted: u64,
    /// Receive path frozen until this time (scripted NIC stall).
    stall_until: SimTime,
}

/// Aggregate counters for a whole network.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Frames dropped because an output queue overflowed (congestion).
    pub drops_overflow: u64,
    /// Frames dropped by the random transient-loss process (stationary
    /// model or a scripted burst process).
    pub drops_loss: u64,
    /// Frames dropped because a link was administratively down.
    pub drops_link_down: u64,
    /// Frames delivered with injected corruption.
    pub corrupted: u64,
    /// Frames dropped at a switch due to an unknown destination.
    pub drops_unknown_mac: u64,
    /// Total frames serialized onto any channel.
    pub channel_frames: u64,
    /// Total wire bytes serialized onto any channel.
    pub channel_bytes: u64,
}

struct NetInner {
    channels: Vec<ChannelState>,
    switches: Vec<SwitchState>,
    nics: Vec<NicState>,
    fault: FaultModel,
    /// Dedicated RNG for every loss/corruption/burst-transition draw, kept
    /// separate from the jitter RNG so a fault seed pins the loss pattern
    /// regardless of unrelated timing randomness. Legacy mode only; eager
    /// mode replaces it with stateless per-channel streams.
    fault_rng: SmallRng,
    /// Eager delivery mode (sharded runtime): jitter and per-hop fault fate
    /// are decided at *submit* time from stateless per-channel streams, so
    /// a frame's whole trajectory is known one propagation delay before it
    /// lands — the conservative-lookahead requirement. Legacy mode (decide
    /// at arrival, shared sequential RNGs) is bit-identical to the code
    /// before sharding existed.
    eager: bool,
    /// Seed for the stateless fault streams (eager mode).
    fault_seed: u64,
    /// Seed for the stateless jitter streams (eager mode), kept separate so
    /// a fault seed pins losses independent of timing randomness — the same
    /// contract the two legacy RNGs provide.
    jitter_seed: u64,
    /// Hook invoked when a frame's channel terminates at a remote endpoint.
    boundary_tx: Option<Rc<dyn Fn(BoundaryTx)>>,
    /// When `Some`, every eager fault decision is appended here (the
    /// determinism gate compares these logs across shard counts).
    decisions: Option<Vec<FaultDecision>>,
    tracer: Tracer,
    flight: FlightRecorder,
}

/// The simulated network: a set of NICs and switches connected by channels.
#[derive(Clone)]
pub struct Network {
    sim: Sim,
    inner: Rc<RefCell<NetInner>>,
}

/// Note a frame drop into the flight recorder, attributed to the sending
/// node/conn/rail with the channel id as payload.
fn flight_drop(flight: &FlightRecorder, f: &Frame, ch: ChannelId, t_ns: u64) {
    flight.note(
        FlightCode::FrameDrop,
        f.src.node as usize,
        Some(f.header.conn as usize),
        Some(f.src.rail as u32),
        ch.0 as u64,
        u64::from(f.header.seq),
        t_ns,
    );
}

/// Draw a frame's latency jitter in `[0, j)` from the simulator's RNG.
/// Consumes exactly one draw whenever `j > 0`, regardless of the frame's
/// fate, so the jitter stream stays aligned across configurations.
fn draw_jitter(sim: &Sim, j: Dur) -> Dur {
    if j == Dur::ZERO {
        Dur::ZERO
    } else {
        Dur(sim.with_rng(|r| r.gen_range(0..j.as_nanos())))
    }
}

/// Draw lanes of the stateless per-channel streams (eager mode). One lane
/// per random decision a traversal can need, so lanes never alias.
const LANE_GE: u64 = 0;
const LANE_LOSS: u64 = 1;
const LANE_CORRUPT: u64 = 2;
const LANE_JITTER: u64 = 3;

/// splitmix64 finalizer: a cheap, well-mixed u64 → u64 permutation.
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stateless draw: a pure function of `(seed, stream key, attempt, lane)`.
/// Eager mode uses this instead of sequential RNGs so a channel's random
/// stream cannot shift when unrelated events reorder (e.g. under a
/// different shard count).
fn stateless_u64(seed: u64, key: u64, attempt: u64, lane: u64) -> u64 {
    let mut z = seed;
    for v in [key, attempt, lane] {
        z = splitmix64(z ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    }
    z
}

/// Map a draw onto `[0, 1)` with 53 bits of precision.
fn unit_f64(u: u64) -> f64 {
    (u >> 11) as f64 / (1u64 << 53) as f64
}

/// Eager-mode fault decision for attempt `attempt` on channel `c`: same
/// stationary ⊕ burst composition as [`decide_channel_fault`], but every
/// draw comes from the channel's stateless stream. The Gilbert–Elliott
/// state still evolves sequentially *per channel*, indexed by the attempt
/// counter, which is deterministic because a channel is only ever driven by
/// its single owning shard.
fn decide_channel_fault_eager(
    c: &mut ChannelState,
    stationary: FaultModel,
    fault_seed: u64,
    attempt: u64,
) -> (bool, bool) {
    let mut loss_p = stationary.loss_rate;
    let mut corrupt_p = stationary.corrupt_rate;
    if let Some(ge) = c.burst {
        let flip_p = if c.ge_bad {
            ge.p_bad_to_good
        } else {
            ge.p_good_to_bad
        };
        if flip_p > 0.0 && unit_f64(stateless_u64(fault_seed, c.stream_key, attempt, LANE_GE)) < flip_p {
            c.ge_bad = !c.ge_bad;
        }
        let (gl, gc) = if c.ge_bad {
            (ge.loss_bad, ge.corrupt_bad)
        } else {
            (ge.loss_good, ge.corrupt_good)
        };
        loss_p = 1.0 - (1.0 - loss_p) * (1.0 - gl);
        corrupt_p = 1.0 - (1.0 - corrupt_p) * (1.0 - gc);
    }
    let lost =
        loss_p > 0.0 && unit_f64(stateless_u64(fault_seed, c.stream_key, attempt, LANE_LOSS)) < loss_p;
    let corrupted = !lost
        && corrupt_p > 0.0
        && unit_f64(stateless_u64(fault_seed, c.stream_key, attempt, LANE_CORRUPT)) < corrupt_p;
    (lost, corrupted)
}

/// Decide loss/corruption for one channel traversal: stationary model
/// composed with the channel's burst process (if any), all drawn from the
/// dedicated fault RNG.
fn decide_channel_fault(
    c: &mut ChannelState,
    stationary: FaultModel,
    rng: &mut SmallRng,
) -> (bool, bool) {
    let mut loss_p = stationary.loss_rate;
    let mut corrupt_p = stationary.corrupt_rate;
    if let Some(ge) = c.burst {
        let flip_p = if c.ge_bad {
            ge.p_bad_to_good
        } else {
            ge.p_good_to_bad
        };
        if flip_p > 0.0 && rng.gen::<f64>() < flip_p {
            c.ge_bad = !c.ge_bad;
        }
        let (gl, gc) = if c.ge_bad {
            (ge.loss_bad, ge.corrupt_bad)
        } else {
            (ge.loss_good, ge.corrupt_good)
        };
        // Independent composition: survive both processes or be hit.
        loss_p = 1.0 - (1.0 - loss_p) * (1.0 - gl);
        corrupt_p = 1.0 - (1.0 - corrupt_p) * (1.0 - gc);
    }
    let lost = loss_p > 0.0 && rng.gen::<f64>() < loss_p;
    let corrupted = !lost && corrupt_p > 0.0 && rng.gen::<f64>() < corrupt_p;
    (lost, corrupted)
}

impl Network {
    /// Empty network attached to `sim`, with the default fault seed.
    pub fn new(sim: &Sim, fault: FaultModel) -> Self {
        Self::with_fault_seed(sim, fault, crate::topology::DEFAULT_FAULT_SEED)
    }

    /// Empty network whose loss/corruption/burst draws come from a dedicated
    /// RNG seeded with `fault_seed`, independent of the simulator's jitter
    /// RNG — so the loss pattern is reproducible for a given fault seed even
    /// when unrelated timing randomness changes. Plumbed through
    /// [`ClusterSpec::fault_seed`](crate::topology::ClusterSpec::fault_seed).
    pub fn with_fault_seed(sim: &Sim, fault: FaultModel, fault_seed: u64) -> Self {
        Self {
            sim: sim.clone(),
            inner: Rc::new(RefCell::new(NetInner {
                channels: Vec::new(),
                switches: Vec::new(),
                nics: Vec::new(),
                fault,
                fault_rng: SmallRng::seed_from_u64(fault_seed),
                tracer: Tracer::disabled(),
                flight: FlightRecorder::disabled(),
                eager: false,
                fault_seed,
                jitter_seed: 0,
                boundary_tx: None,
                decisions: None,
            })),
        }
    }

    /// Empty network in **eager delivery mode**, the variant the sharded
    /// runtime ([`crate::shard`]) builds in every shard. Jitter and per-hop
    /// loss/corruption are decided at submit time from stateless streams
    /// keyed `(seed, channel stream key, attempt index)`, so each channel's
    /// randomness is a pure function independent of shard count and event
    /// interleaving — the foundation of the cross-shard determinism gate.
    /// Channels whose far end is `Endpoint::Remote` hand finished frames
    /// to the [`Self::set_boundary_tx`] hook instead of a local event.
    pub fn sharded(sim: &Sim, fault: FaultModel, fault_seed: u64, jitter_seed: u64) -> Self {
        let net = Self::with_fault_seed(sim, fault, fault_seed);
        {
            let mut inner = net.inner.borrow_mut();
            inner.eager = true;
            inner.jitter_seed = jitter_seed;
        }
        net
    }

    /// Attach a [`Tracer`]: the network then records each channel
    /// traversal's wire time (submit → arrival, keyed by the sending rail)
    /// and emits `frame_drop` / `frame_corrupt` events at the exact
    /// overflow, loss and corruption sites. A switched path contributes
    /// two wire-time samples per frame (uplink and downlink legs).
    pub fn set_tracer(&self, t: Tracer) {
        self.inner.borrow_mut().tracer = t;
    }

    /// Attach a [`FlightRecorder`]: the network then notes frame drops,
    /// corruptions, and scripted fault injections into the always-on ring
    /// (attributed to the sending node/conn/rail) so post-mortem dumps show
    /// the network's side of an incident.
    pub fn set_flight_recorder(&self, fr: FlightRecorder) {
        self.inner.borrow_mut().flight = fr;
    }

    /// Add a switch with the given per-frame forwarding delay.
    pub fn add_switch(&self, forward_delay: Dur) -> SwitchId {
        let mut inner = self.inner.borrow_mut();
        inner.switches.push(SwitchState {
            forward_delay,
            table: FastMap::default(),
            drop_unknown: 0,
        });
        SwitchId(inner.switches.len() - 1)
    }

    /// Add a NIC with Ethernet address `mac`.
    pub fn add_nic(&self, mac: MacAddr) -> NicId {
        let mut inner = self.inner.borrow_mut();
        inner.nics.push(NicState {
            mac,
            tx_channel: None,
            rx_channel: None,
            rx_handler: None,
            tx_complete: None,
            rx_frames: 0,
            tx_submitted: 0,
            stall_until: SimTime::ZERO,
        });
        NicId(inner.nics.len() - 1)
    }

    /// Connect `nic` to `switch` with a full-duplex link (`params` each
    /// direction) and register the NIC's MAC in the switch table.
    ///
    /// The uplink (NIC→switch) queue is effectively unbounded: it models the
    /// NIC's DMA ring, where the kernel driver backpressures instead of
    /// dropping. The downlink (switch→NIC) queue is the switch's output
    /// port buffer, where congestion drops happen.
    pub fn connect(&self, nic: NicId, switch: SwitchId, params: ChannelParams) {
        let mut inner = self.inner.borrow_mut();
        let up_params = ChannelParams {
            queue_cap: usize::MAX / 2,
            ..params
        };
        let up = ChannelId(inner.channels.len());
        inner
            .channels
            .push(ChannelState::new(up_params, Endpoint::Switch(switch), 0));
        let down = ChannelId(inner.channels.len());
        inner
            .channels
            .push(ChannelState::new(params, Endpoint::Nic(nic), 0));
        inner.nics[nic.0].tx_channel = Some(up);
        inner.nics[nic.0].rx_channel = Some(down);
        let mac = inner.nics[nic.0].mac;
        inner.switches[switch.0].table.insert(mac, down);
    }

    /// Install the receive callback for `nic` (protocol layer entry point).
    pub fn set_rx_handler(&self, nic: NicId, h: impl Fn(&Sim, RxFrame) + 'static) {
        self.inner.borrow_mut().nics[nic.0].rx_handler = Some(Rc::new(h));
    }

    /// Install the transmit-completion callback for `nic`; invoked with the
    /// frame's wire length once its serialization onto the link finishes
    /// (i.e. when the send DMA buffer becomes free).
    pub fn set_tx_complete_handler(&self, nic: NicId, h: impl Fn(&Sim, usize) + 'static) {
        self.inner.borrow_mut().nics[nic.0].tx_complete = Some(Rc::new(h));
    }

    /// MAC address of `nic`.
    pub fn nic_mac(&self, nic: NicId) -> MacAddr {
        self.inner.borrow().nics[nic.0].mac
    }

    /// Submit `f` for transmission on `nic` at the current virtual time.
    /// Returns `false` if the frame was dropped at the NIC's output queue.
    pub fn nic_send(&self, nic: NicId, f: Frame) -> bool {
        let ch = {
            let mut inner = self.inner.borrow_mut();
            inner.nics[nic.0].tx_submitted += 1;
            inner.nics[nic.0]
                .tx_channel
                .expect("nic_send on unconnected NIC")
        };
        self.channel_transmit(ch, f, Some(nic))
    }

    /// Serialize `f` onto channel `ch`; `completion_nic` receives the
    /// tx-complete callback. Returns false on queue-overflow drop.
    fn channel_transmit(&self, ch: ChannelId, f: Frame, completion_nic: Option<NicId>) -> bool {
        if self.inner.borrow().eager {
            return self.channel_transmit_eager(ch, f, completion_nic, false);
        }
        let now = self.sim.now();
        let wire_len = f.wire_len();
        let (end, arrival, to) = {
            let mut inner = self.inner.borrow_mut();
            let NetInner {
                channels,
                tracer,
                flight,
                ..
            } = &mut *inner;
            let c = &mut channels[ch.0];
            // The jitter draw is unconditional and happens first, so the
            // jitter-RNG stream consumes one value per submission no matter
            // the outcome — dropping a frame must not shift later draws.
            let jitter = draw_jitter(&self.sim, c.params.jitter);
            if !c.link_up {
                c.drop_link_down += 1;
                tracer.emit(
                    now.as_nanos(),
                    Some(f.header.conn),
                    Some(f.src.rail as u32),
                    EventKind::FrameDrop,
                );
                flight_drop(flight, &f, ch, now.as_nanos());
                return false;
            }
            // Lazily expire queue entries whose serialization has started.
            while c.queued_starts.front().is_some_and(|&s| s <= now) {
                c.queued_starts.pop_front();
            }
            if c.queued_starts.len() >= c.params.queue_cap {
                c.drop_overflow += 1;
                tracer.emit(
                    now.as_nanos(),
                    Some(f.header.conn),
                    Some(f.src.rail as u32),
                    EventKind::FrameDrop,
                );
                flight_drop(flight, &f, ch, now.as_nanos());
                return false;
            }
            let start = now.max(c.busy_until);
            let end = start + Dur::for_bytes(wire_len, c.params.bytes_per_sec);
            c.busy_until = end;
            if start > now {
                c.queued_starts.push_back(start);
            }
            c.tx_frames += 1;
            c.tx_bytes += wire_len as u64;
            let mut arrival = end + c.params.latency + jitter;
            // FIFO within a channel: never overtake the previous frame.
            arrival = arrival.max(c.last_arrival);
            c.last_arrival = arrival;
            tracer.wire_time(f.src.rail as u32, arrival.since(now).as_nanos());
            (end, arrival, c.to)
        };
        // Transmit completion back to the sending NIC (DMA buffer free).
        if let Some(nic) = completion_nic {
            let this = self.clone();
            self.sim.schedule_at(end, move |sim| {
                let cb = this.inner.borrow().nics[nic.0].tx_complete.clone();
                if let Some(cb) = cb {
                    cb(sim, wire_len);
                }
            });
        }
        // Arrival at the far end (loss/corruption decided on arrival).
        let this = self.clone();
        self.sim.schedule_at(arrival, move |sim| {
            this.arrive(sim, ch, to, f);
        });
        true
    }

    fn arrive(&self, sim: &Sim, ch: ChannelId, to: Endpoint, f: Frame) {
        // One borrow covers the in-flight link check, the fault decision and
        // the switch lookup; only the scheduling happens outside it.
        enum Action {
            Done,
            Forward(ChannelId, Dur, bool),
            Deliver(NicId, bool),
        }
        let action = {
            let mut inner = self.inner.borrow_mut();
            let NetInner {
                channels,
                switches,
                fault,
                fault_rng,
                tracer,
                flight,
                ..
            } = &mut *inner;
            let c = &mut channels[ch.0];
            // A frame still in flight when its link went down is lost with it.
            if !c.link_up {
                c.drop_link_down += 1;
                tracer.emit(
                    sim.now().as_nanos(),
                    Some(f.header.conn),
                    Some(f.src.rail as u32),
                    EventKind::FrameDrop,
                );
                flight_drop(flight, &f, ch, sim.now().as_nanos());
                Action::Done
            } else {
                let (lost, corrupted) = decide_channel_fault(c, *fault, fault_rng);
                if lost {
                    c.drop_loss += 1;
                    tracer.emit(
                        sim.now().as_nanos(),
                        Some(f.header.conn),
                        Some(f.src.rail as u32),
                        EventKind::FrameDrop,
                    );
                    flight_drop(flight, &f, ch, sim.now().as_nanos());
                    Action::Done
                } else {
                    if corrupted {
                        c.corrupted += 1;
                        tracer.emit(
                            sim.now().as_nanos(),
                            Some(f.header.conn),
                            Some(f.src.rail as u32),
                            EventKind::FrameCorrupt,
                        );
                        flight.note(
                            FlightCode::FrameCorrupt,
                            f.src.node as usize,
                            Some(f.header.conn as usize),
                            Some(f.src.rail as u32),
                            ch.0 as u64,
                            u64::from(f.header.seq),
                            sim.now().as_nanos(),
                        );
                    }
                    match to {
                        Endpoint::Switch(sw) => {
                            // A corrupted frame is forwarded anyway (our
                            // switches do not verify FCS, like cheap
                            // store-and-forward hardware); the end host's
                            // checksum catches it.
                            let s = &mut switches[sw.0];
                            match s.table.get(&f.dst) {
                                Some(&out) => Action::Forward(out, s.forward_delay, corrupted),
                                None => {
                                    s.drop_unknown += 1;
                                    Action::Done
                                }
                            }
                        }
                        Endpoint::Nic(nic) => Action::Deliver(nic, corrupted),
                        Endpoint::Remote(_) => {
                            unreachable!("remote endpoints exist only in eager (sharded) mode")
                        }
                    }
                }
            }
        };
        match action {
            Action::Done => {}
            Action::Forward(out, delay, carry_corrupt) => {
                let this = self.clone();
                sim.schedule_in(delay, move |_| {
                    // Corruption already counted; re-transmit the (possibly
                    // damaged) frame unchanged. The corruption marker is
                    // re-evaluated per hop only for fresh damage; to carry
                    // the existing damage we piggyback via a tagged send.
                    if carry_corrupt {
                        this.channel_transmit_corrupt(out, f);
                    } else {
                        this.channel_transmit(out, f, None);
                    }
                });
            }
            Action::Deliver(nic, corrupted) => self.deliver_to_nic(sim, nic, f, corrupted),
        }
    }

    /// Hand a frame to `nic`'s receive handler, honoring any active receive
    /// stall: frames arriving while stalled are re-scheduled to the stall's
    /// end, preserving arrival order (the event heap is FIFO per timestamp).
    fn deliver_to_nic(&self, sim: &Sim, nic: NicId, f: Frame, corrupted: bool) {
        let handler = {
            let mut inner = self.inner.borrow_mut();
            let n = &mut inner.nics[nic.0];
            if sim.now() < n.stall_until {
                let stall_until = n.stall_until;
                drop(inner);
                let this = self.clone();
                sim.schedule_at(stall_until, move |sim| {
                    this.deliver_to_nic(sim, nic, f, corrupted);
                });
                return;
            }
            n.rx_frames += 1;
            n.rx_handler.clone()
        };
        if let Some(h) = handler {
            h(sim, RxFrame { frame: f, corrupted });
        }
    }

    /// Apply one scripted fault action to `nic`'s link (both directions for
    /// link state and burst models; the NIC itself for stalls), emitting a
    /// [`EventKind::FaultInjected`] trace event attributed to the NIC's rail.
    pub fn apply_fault(&self, nic: NicId, action: FaultAction) {
        let now = self.sim.now();
        let mut inner = self.inner.borrow_mut();
        let (up_ch, down_ch, rail, node) = {
            let n = &inner.nics[nic.0];
            (n.tx_channel, n.rx_channel, n.mac.rail as u32, n.mac.node)
        };
        let kind = match action {
            FaultAction::LinkDown | FaultAction::LinkUp => {
                let up = matches!(action, FaultAction::LinkUp);
                for ch in [up_ch, down_ch].into_iter().flatten() {
                    inner.channels[ch.0].link_up = up;
                }
                if up {
                    FaultKind::LinkUp
                } else {
                    FaultKind::LinkDown
                }
            }
            FaultAction::NicStall { dur } => {
                let n = &mut inner.nics[nic.0];
                n.stall_until = n.stall_until.max(now + dur);
                FaultKind::NicStall
            }
            FaultAction::SetBurst { model } => {
                for ch in [up_ch, down_ch].into_iter().flatten() {
                    let c = &mut inner.channels[ch.0];
                    c.burst = Some(model);
                    c.ge_bad = false;
                }
                FaultKind::BurstModel
            }
            FaultAction::ClearBurst => {
                for ch in [up_ch, down_ch].into_iter().flatten() {
                    let c = &mut inner.channels[ch.0];
                    c.burst = None;
                    c.ge_bad = false;
                }
                FaultKind::BurstModel
            }
        };
        inner
            .tracer
            .emit(now.as_nanos(), None, Some(rail), EventKind::FaultInjected { kind });
        inner.flight.note(
            FlightCode::FaultInjected,
            node as usize,
            None,
            Some(rail),
            kind as u64,
            0,
            now.as_nanos(),
        );
    }

    /// Whether `nic`'s link is administratively up (its transmit leg).
    pub fn link_is_up(&self, nic: NicId) -> bool {
        let inner = self.inner.borrow();
        match inner.nics[nic.0].tx_channel {
            Some(ch) => inner.channels[ch.0].link_up,
            None => false,
        }
    }

    /// Like [`Self::channel_transmit`] but the frame is already damaged; it
    /// stays damaged through delivery.
    fn channel_transmit_corrupt(&self, ch: ChannelId, f: Frame) {
        if self.inner.borrow().eager {
            self.channel_transmit_eager(ch, f, None, true);
            return;
        }
        let now = self.sim.now();
        let wire_len = f.wire_len();
        let (arrival, to) = {
            let mut inner = self.inner.borrow_mut();
            let NetInner {
                channels,
                tracer,
                flight,
                ..
            } = &mut *inner;
            let c = &mut channels[ch.0];
            let jitter = draw_jitter(&self.sim, c.params.jitter);
            if !c.link_up {
                c.drop_link_down += 1;
                tracer.emit(
                    now.as_nanos(),
                    Some(f.header.conn),
                    Some(f.src.rail as u32),
                    EventKind::FrameDrop,
                );
                flight_drop(flight, &f, ch, now.as_nanos());
                return;
            }
            while c.queued_starts.front().is_some_and(|&s| s <= now) {
                c.queued_starts.pop_front();
            }
            if c.queued_starts.len() >= c.params.queue_cap {
                c.drop_overflow += 1;
                tracer.emit(
                    now.as_nanos(),
                    Some(f.header.conn),
                    Some(f.src.rail as u32),
                    EventKind::FrameDrop,
                );
                flight_drop(flight, &f, ch, now.as_nanos());
                return;
            }
            let start = now.max(c.busy_until);
            let end = start + Dur::for_bytes(wire_len, c.params.bytes_per_sec);
            c.busy_until = end;
            if start > now {
                c.queued_starts.push_back(start);
            }
            c.tx_frames += 1;
            c.tx_bytes += wire_len as u64;
            let mut arrival = end + c.params.latency + jitter;
            arrival = arrival.max(c.last_arrival);
            c.last_arrival = arrival;
            tracer.wire_time(f.src.rail as u32, arrival.since(now).as_nanos());
            (arrival, c.to)
        };
        let this = self.clone();
        self.sim.schedule_at(arrival, move |sim| {
            {
                let mut inner = this.inner.borrow_mut();
                if !inner.channels[ch.0].link_up {
                    inner.channels[ch.0].drop_link_down += 1;
                    inner.tracer.emit(
                        sim.now().as_nanos(),
                        Some(f.header.conn),
                        Some(f.src.rail as u32),
                        EventKind::FrameDrop,
                    );
                    flight_drop(&inner.flight, &f, ch, sim.now().as_nanos());
                    return;
                }
            }
            match to {
                Endpoint::Nic(nic) => this.deliver_to_nic(sim, nic, f, true),
                Endpoint::Switch(_) => {
                    // Multi-switch paths re-enter the normal path; keep damaged.
                    this.arrive_corrupt(sim, to, f);
                }
                Endpoint::Remote(_) => {
                    unreachable!("remote endpoints exist only in eager (sharded) mode")
                }
            }
        });
    }

    fn arrive_corrupt(&self, sim: &Sim, to: Endpoint, f: Frame) {
        if let Endpoint::Switch(sw) = to {
            let (out, delay) = {
                let mut inner = self.inner.borrow_mut();
                let s = &mut inner.switches[sw.0];
                match s.table.get(&f.dst) {
                    Some(&out) => (out, s.forward_delay),
                    None => {
                        s.drop_unknown += 1;
                        return;
                    }
                }
            };
            let this = self.clone();
            sim.schedule_in(delay, move |_| this.channel_transmit_corrupt(out, f));
        }
    }

    /// Eager-mode transmit: one borrow decides the frame's entire fate —
    /// jitter, loss, corruption — at submit time from the channel's
    /// stateless streams, then schedules the local arrival or hands the
    /// frame to the boundary hook when the far end is remote. Because
    /// `arrival ≥ now + latency`, a cross-shard frame always lands at least
    /// one propagation delay in the future: the lookahead window.
    fn channel_transmit_eager(
        &self,
        ch: ChannelId,
        f: Frame,
        completion_nic: Option<NicId>,
        pre_corrupt: bool,
    ) -> bool {
        enum Next {
            Gone,
            Local(SimTime, Endpoint, bool),
        }
        let now = self.sim.now();
        let wire_len = f.wire_len();
        let (end, next) = {
            let mut inner = self.inner.borrow_mut();
            let NetInner {
                channels,
                fault,
                fault_seed,
                jitter_seed,
                tracer,
                flight,
                decisions,
                ..
            } = &mut *inner;
            let c = &mut channels[ch.0];
            // The attempt index advances once per submission no matter the
            // frame's fate, so the channel's stream indices stay aligned
            // whether or not earlier frames were dropped.
            let attempt = c.attempts;
            c.attempts += 1;
            let jitter = if c.params.jitter == Dur::ZERO {
                Dur::ZERO
            } else {
                Dur(stateless_u64(*jitter_seed, c.stream_key, attempt, LANE_JITTER)
                    % c.params.jitter.as_nanos())
            };
            if !c.link_up {
                c.drop_link_down += 1;
                tracer.emit(
                    now.as_nanos(),
                    Some(f.header.conn),
                    Some(f.src.rail as u32),
                    EventKind::FrameDrop,
                );
                flight_drop(flight, &f, ch, now.as_nanos());
                return false;
            }
            while c.queued_starts.front().is_some_and(|&s| s <= now) {
                c.queued_starts.pop_front();
            }
            if c.queued_starts.len() >= c.params.queue_cap {
                c.drop_overflow += 1;
                tracer.emit(
                    now.as_nanos(),
                    Some(f.header.conn),
                    Some(f.src.rail as u32),
                    EventKind::FrameDrop,
                );
                flight_drop(flight, &f, ch, now.as_nanos());
                return false;
            }
            let (lost, fresh_corrupt) = decide_channel_fault_eager(c, *fault, *fault_seed, attempt);
            if let Some(log) = decisions.as_mut() {
                log.push((c.stream_key, attempt, lost, fresh_corrupt));
            }
            let start = now.max(c.busy_until);
            let end = start + Dur::for_bytes(wire_len, c.params.bytes_per_sec);
            c.busy_until = end;
            if start > now {
                c.queued_starts.push_back(start);
            }
            c.tx_frames += 1;
            c.tx_bytes += wire_len as u64;
            let mut arrival = end + c.params.latency + jitter;
            arrival = arrival.max(c.last_arrival);
            c.last_arrival = arrival;
            tracer.wire_time(f.src.rail as u32, arrival.since(now).as_nanos());
            if lost {
                // A lost frame still occupied the wire (counted above); it
                // just never lands. Eager mode has no separate in-flight
                // link-down loss — link state is checked at submit only.
                c.drop_loss += 1;
                tracer.emit(
                    now.as_nanos(),
                    Some(f.header.conn),
                    Some(f.src.rail as u32),
                    EventKind::FrameDrop,
                );
                flight_drop(flight, &f, ch, now.as_nanos());
                (end, Next::Gone)
            } else {
                let corrupted = pre_corrupt || fresh_corrupt;
                if fresh_corrupt {
                    c.corrupted += 1;
                    tracer.emit(
                        now.as_nanos(),
                        Some(f.header.conn),
                        Some(f.src.rail as u32),
                        EventKind::FrameCorrupt,
                    );
                    flight.note(
                        FlightCode::FrameCorrupt,
                        f.src.node as usize,
                        Some(f.header.conn as usize),
                        Some(f.src.rail as u32),
                        ch.0 as u64,
                        u64::from(f.header.seq),
                        now.as_nanos(),
                    );
                }
                (end, Next::Local(arrival, c.to, corrupted))
            }
        };
        if let Some(nic) = completion_nic {
            let this = self.clone();
            self.sim.schedule_at(end, move |sim| {
                let cb = this.inner.borrow().nics[nic.0].tx_complete.clone();
                if let Some(cb) = cb {
                    cb(sim, wire_len);
                }
            });
        }
        match next {
            Next::Gone => {}
            Next::Local(arrival, to, corrupted) => match to {
                Endpoint::Switch(sw) => {
                    let this = self.clone();
                    self.sim.schedule_at(arrival, move |_| {
                        this.inject_switch_ingress(sw, f, corrupted);
                    });
                }
                Endpoint::Nic(nic) => {
                    let this = self.clone();
                    self.sim.schedule_at(arrival, move |sim| {
                        this.deliver_to_nic(sim, nic, f, corrupted);
                    });
                }
                Endpoint::Remote(dest) => {
                    let hook = self.inner.borrow().boundary_tx.clone();
                    if let Some(hook) = hook {
                        hook(BoundaryTx {
                            at: arrival,
                            dest,
                            src: f.src,
                            dst: f.dst,
                            header: f.header,
                            payload: f.payload.to_vec(),
                            corrupted,
                        });
                    }
                }
            },
        }
        true
    }

    /// Install the hook that receives frames terminating on a
    /// `Endpoint::Remote` channel end (eager mode). The sharded runtime
    /// points this at its boundary mailboxes. Without a hook, remote-bound
    /// frames vanish silently.
    pub fn set_boundary_tx(&self, h: impl Fn(BoundaryTx) + 'static) {
        self.inner.borrow_mut().boundary_tx = Some(Rc::new(h));
    }

    /// Drop every installed callback: per-NIC receive and tx-complete
    /// handlers and the boundary hook. Protocol layers capture their own
    /// state (which in turn holds this `Network`) in those closures, so a
    /// finished cluster is a reference cycle the allocator can never
    /// reclaim — a long-lived process that builds clusters repeatedly (the
    /// sharded runtime, sweep harnesses) leaks one full cluster per run
    /// without this. Call only when the simulation is done: afterwards,
    /// delivered frames fall on the floor.
    pub fn clear_handlers(&self) {
        let mut inner = self.inner.borrow_mut();
        for nic in &mut inner.nics {
            nic.rx_handler = None;
            nic.tx_complete = None;
        }
        inner.boundary_tx = None;
    }

    /// Assign the stream keys of `nic`'s locally-connected link (eager
    /// mode): `up_key` for the NIC→switch leg, `down_key` for switch→NIC.
    /// Keys must be derived from global topology coordinates so the same
    /// physical link gets the same streams at every shard count.
    pub fn set_link_stream_keys(&self, nic: NicId, up_key: u64, down_key: u64) {
        let mut inner = self.inner.borrow_mut();
        let (up, down) = {
            let n = &inner.nics[nic.0];
            (n.tx_channel, n.rx_channel)
        };
        if let Some(ch) = up {
            inner.channels[ch.0].stream_key = up_key;
        }
        if let Some(ch) = down {
            inner.channels[ch.0].stream_key = down_key;
        }
    }

    /// Add the NIC→switch leg of a link whose switch lives in another shard
    /// (rail `rail`'s switch). Same unbounded-DMA-ring queue semantics as
    /// the uplink half of [`Self::connect`]. The NIC's receive leg stays
    /// unset — the remote shard owns the downlink and delivers received
    /// frames via [`Self::inject_nic_rx`].
    pub fn add_remote_uplink(
        &self,
        nic: NicId,
        rail: u8,
        params: ChannelParams,
        stream_key: u64,
    ) -> ChannelId {
        let mut inner = self.inner.borrow_mut();
        let up_params = ChannelParams {
            queue_cap: usize::MAX / 2,
            ..params
        };
        let ch = ChannelId(inner.channels.len());
        inner.channels.push(ChannelState::new(
            up_params,
            Endpoint::Remote(RemoteDest::Switch { rail }),
            stream_key,
        ));
        inner.nics[nic.0].tx_channel = Some(ch);
        ch
    }

    /// Add the switch→NIC leg of a link whose NIC lives in another shard,
    /// and register `dst` in the switch table so forwarding finds it. The
    /// bounded queue models the switch output port, exactly like the
    /// downlink half of [`Self::connect`].
    pub fn add_remote_downlink(
        &self,
        switch: SwitchId,
        dst: MacAddr,
        params: ChannelParams,
        stream_key: u64,
    ) -> ChannelId {
        let mut inner = self.inner.borrow_mut();
        let ch = ChannelId(inner.channels.len());
        inner.channels.push(ChannelState::new(
            params,
            Endpoint::Remote(RemoteDest::Nic {
                node: dst.node,
                rail: dst.rail,
            }),
            stream_key,
        ));
        inner.switches[switch.0].table.insert(dst, ch);
        ch
    }

    /// Deliver a boundary frame at a local switch's ingress (eager mode):
    /// table lookup now, forwarding delay, then transmit on the output
    /// port's channel. Must be called at the frame's arrival time.
    pub fn inject_switch_ingress(&self, switch: SwitchId, f: Frame, corrupted: bool) {
        let (out, delay) = {
            let mut inner = self.inner.borrow_mut();
            let s = &mut inner.switches[switch.0];
            match s.table.get(&f.dst) {
                Some(&out) => (out, s.forward_delay),
                None => {
                    s.drop_unknown += 1;
                    return;
                }
            }
        };
        let this = self.clone();
        self.sim.schedule_in(delay, move |_| {
            this.channel_transmit_eager(out, f, None, corrupted);
        });
    }

    /// Deliver a boundary frame to a local NIC's receive path (eager mode).
    /// Must be called at the frame's arrival time; NIC stalls are honored.
    pub fn inject_nic_rx(&self, nic: NicId, f: Frame, corrupted: bool) {
        let sim = self.sim.clone();
        self.deliver_to_nic(&sim, nic, f, corrupted);
    }

    /// Apply a scripted fault to one specific channel — the half of a split
    /// (cross-shard) link this shard owns. `NicStall` is ignored here: it
    /// targets the NIC, which its own shard handles via
    /// [`Self::apply_fault`].
    pub fn apply_channel_fault(&self, ch: ChannelId, action: FaultAction) {
        let mut inner = self.inner.borrow_mut();
        match action {
            FaultAction::LinkDown | FaultAction::LinkUp => {
                inner.channels[ch.0].link_up = matches!(action, FaultAction::LinkUp);
            }
            FaultAction::NicStall { .. } => {}
            FaultAction::SetBurst { model } => {
                let c = &mut inner.channels[ch.0];
                c.burst = Some(model);
                c.ge_bad = false;
            }
            FaultAction::ClearBurst => {
                let c = &mut inner.channels[ch.0];
                c.burst = None;
                c.ge_bad = false;
            }
        }
    }

    /// Start (or stop) logging eager-mode fault decisions.
    pub fn record_fault_decisions(&self, on: bool) {
        self.inner.borrow_mut().decisions = if on { Some(Vec::new()) } else { None };
    }

    /// Take the fault-decision log accumulated since
    /// [`Self::record_fault_decisions`] (empty if recording is off).
    pub fn take_fault_decisions(&self) -> Vec<FaultDecision> {
        match self.inner.borrow_mut().decisions.as_mut() {
            Some(log) => std::mem::take(log),
            None => Vec::new(),
        }
    }

    /// Aggregate network statistics.
    pub fn stats(&self) -> NetStats {
        let inner = self.inner.borrow();
        let mut s = NetStats::default();
        for c in &inner.channels {
            s.drops_overflow += c.drop_overflow;
            s.drops_loss += c.drop_loss;
            s.drops_link_down += c.drop_link_down;
            s.corrupted += c.corrupted;
            s.channel_frames += c.tx_frames;
            s.channel_bytes += c.tx_bytes;
        }
        for sw in &inner.switches {
            s.drops_unknown_mac += sw.drop_unknown;
        }
        s
    }

    /// Frames received by `nic` so far.
    pub fn nic_rx_frames(&self, nic: NicId) -> u64 {
        self.inner.borrow().nics[nic.0].rx_frames
    }

    /// How much serialization work is queued ahead of a new frame on `nic`'s
    /// transmit channel (zero when the wire is idle). Used by queue-aware
    /// link-scheduling policies.
    pub fn nic_tx_backlog(&self, nic: NicId) -> Dur {
        let inner = self.inner.borrow();
        let ch = inner.nics[nic.0]
            .tx_channel
            .expect("backlog query on unconnected NIC");
        inner.channels[ch.0].busy_until.since(self.sim.now())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::us;
    use bytes::Bytes;
    use frame::{FrameHeader, HEADER_LEN};

    fn data_frame(src: MacAddr, dst: MacAddr, len: usize) -> Frame {
        Frame {
            src,
            dst,
            header: FrameHeader::default(),
            payload: Bytes::from(vec![0u8; len]),
        }
    }

    /// 1-GbE parameters with deterministic (jitter-free) latency, so the
    /// timing assertions below are exact.
    fn quiet_gbe_1() -> ChannelParams {
        ChannelParams {
            jitter: Dur::ZERO,
            ..ChannelParams::gbe_1()
        }
    }

    /// Two NICs through one switch; checks delivery and timing.
    fn two_node_net(fault: FaultModel) -> (Sim, Network, NicId, NicId) {
        let sim = Sim::new(42);
        let net = Network::new(&sim, fault);
        let sw = net.add_switch(us(1));
        let a = net.add_nic(MacAddr::new(0, 0));
        let b = net.add_nic(MacAddr::new(1, 0));
        net.connect(a, sw, quiet_gbe_1());
        net.connect(b, sw, quiet_gbe_1());
        (sim, net, a, b)
    }

    #[test]
    fn frame_traverses_switch_with_expected_latency() {
        let (sim, net, a, b) = two_node_net(FaultModel::default());
        let got: Rc<RefCell<Vec<(u64, usize)>>> = Rc::default();
        let g = got.clone();
        net.set_rx_handler(b, move |sim, rx| {
            assert!(!rx.corrupted);
            g.borrow_mut()
                .push((sim.now().as_nanos(), rx.frame.payload.len()));
        });
        let f = data_frame(MacAddr::new(0, 0), MacAddr::new(1, 0), 1000);
        let wire = f.wire_len();
        assert!(net.nic_send(a, f));
        sim.run();
        let (t, len) = got.borrow()[0];
        assert_eq!(len, 1000);
        // Two serializations at 125 MB/s + 2 × 2us latency + 1us switch.
        let ser = Dur::for_bytes(wire, 125e6).as_nanos();
        assert_eq!(t, 2 * ser + 2_000 + 2_000 + 1_000);
    }

    #[test]
    fn back_to_back_frames_serialize_on_the_link() {
        let (sim, net, a, b) = two_node_net(FaultModel::default());
        let times: Rc<RefCell<Vec<u64>>> = Rc::default();
        let t = times.clone();
        net.set_rx_handler(b, move |sim, _| t.borrow_mut().push(sim.now().as_nanos()));
        for _ in 0..3 {
            let f = data_frame(MacAddr::new(0, 0), MacAddr::new(1, 0), 1454);
            assert!(net.nic_send(a, f));
        }
        sim.run();
        let times = times.borrow();
        assert_eq!(times.len(), 3);
        let wire = HEADER_LEN + 1454 + frame::ETHERNET_WIRE_OVERHEAD;
        let ser = Dur::for_bytes(wire, 125e6).as_nanos();
        // Arrival spacing equals one serialization time (pipeline full).
        assert_eq!(times[1] - times[0], ser);
        assert_eq!(times[2] - times[1], ser);
    }

    #[test]
    fn switch_output_queue_overflow_drops() {
        // Two senders blast one receiver: the receiver's switch output port
        // (cap 2) is the congestion point; the NIC uplinks never drop.
        let sim = Sim::new(0);
        let net = Network::new(&sim, FaultModel::default());
        let sw = net.add_switch(us(1));
        let a = net.add_nic(MacAddr::new(0, 0));
        let b = net.add_nic(MacAddr::new(1, 0));
        let c = net.add_nic(MacAddr::new(2, 0));
        let tiny = ChannelParams {
            queue_cap: 2,
            ..quiet_gbe_1()
        };
        net.connect(a, sw, tiny);
        net.connect(b, sw, tiny);
        net.connect(c, sw, tiny);
        let n = 20;
        for _ in 0..n {
            assert!(
                net.nic_send(a, data_frame(MacAddr::new(0, 0), MacAddr::new(2, 0), 1400)),
                "uplink must backpressure, not drop"
            );
            assert!(net.nic_send(
                b,
                data_frame(MacAddr::new(1, 0), MacAddr::new(2, 0), 1400)
            ));
        }
        sim.run();
        let stats = net.stats();
        assert!(stats.drops_overflow > 0, "2:1 incast must overflow cap 2");
        assert_eq!(
            net.nic_rx_frames(c) + stats.drops_overflow,
            2 * n,
            "every frame is either delivered or dropped at the output port"
        );
    }

    #[test]
    fn random_loss_drops_approximately_at_rate() {
        let (sim, net, a, b) = two_node_net(FaultModel {
            loss_rate: 0.3,
            corrupt_rate: 0.0,
        });
        let got: Rc<RefCell<u32>> = Rc::default();
        let g = got.clone();
        net.set_rx_handler(b, move |_, _| *g.borrow_mut() += 1);
        let n = 2000;
        let net2 = net.clone();
        sim.spawn("sender", {
            let sim = sim.clone();
            async move {
                for _ in 0..n {
                    net2.nic_send(a, data_frame(MacAddr::new(0, 0), MacAddr::new(1, 0), 100));
                    crate::sync::sleep(&sim, us(20)).await;
                }
            }
        });
        sim.run().expect_quiescent();
        let received = *got.borrow();
        // Two hops, p=0.3 each: survival (0.7)^2 = 0.49.
        let expect = (n as f64) * 0.49;
        assert!(
            (received as f64 - expect).abs() < expect * 0.15,
            "received {received}, expected ≈ {expect}"
        );
    }

    #[test]
    fn corruption_is_flagged_not_dropped() {
        let (sim, net, a, b) = two_node_net(FaultModel {
            loss_rate: 0.0,
            corrupt_rate: 1.0,
        });
        let got: Rc<RefCell<Vec<bool>>> = Rc::default();
        let g = got.clone();
        net.set_rx_handler(b, move |_, rx| g.borrow_mut().push(rx.corrupted));
        net.nic_send(a, data_frame(MacAddr::new(0, 0), MacAddr::new(1, 0), 64));
        sim.run();
        assert_eq!(*got.borrow(), vec![true]);
    }

    #[test]
    fn tx_complete_fires_at_serialization_end() {
        let (sim, net, a, b) = two_node_net(FaultModel::default());
        net.set_rx_handler(b, |_, _| {});
        let done: Rc<RefCell<Vec<u64>>> = Rc::default();
        let d = done.clone();
        net.set_tx_complete_handler(a, move |sim, wire_len| {
            d.borrow_mut().push(sim.now().as_nanos());
            assert!(wire_len > 0);
        });
        let f = data_frame(MacAddr::new(0, 0), MacAddr::new(1, 0), 1000);
        let wire = f.wire_len();
        net.nic_send(a, f);
        sim.run();
        let ser = Dur::for_bytes(wire, 125e6).as_nanos();
        assert_eq!(*done.borrow(), vec![ser]);
    }

    #[test]
    fn unknown_mac_dropped_at_switch() {
        let (sim, net, a, _b) = two_node_net(FaultModel::default());
        net.nic_send(a, data_frame(MacAddr::new(0, 0), MacAddr::new(9, 0), 64));
        sim.run();
        assert_eq!(net.stats().drops_unknown_mac, 1);
    }
}
