//! Network component models: channels (unidirectional links), switches, NICs.
//!
//! The model is frame-granular and store-and-forward, matching the paper's
//! D-Link / HP ProCurve Ethernet switches:
//!
//! * A **channel** is one direction of a full-duplex link. It serializes
//!   frames at the link rate (wire time includes preamble, MACs, FCS and
//!   inter-frame gap via [`frame::Frame::wire_len`]), adds a fixed
//!   propagation/PHY latency, and bounds the number of frames queued waiting
//!   for the wire; overflow drops the frame (congestion loss).
//! * A **switch** receives a full frame, looks up the destination MAC in a
//!   static table, waits a fixed forwarding delay and retransmits on the
//!   output port's channel.
//! * A **NIC** hands received frames to a protocol-layer callback and
//!   reports transmit completions (the hook the paper's send-path interrupt
//!   discussion needs).
//!
//! Transient faults (§2.4's "contention, bit errors, or transient link
//! failures") are modeled by a per-hop random loss rate and a corruption
//! rate; corrupted frames are delivered but flagged, and the receive path
//! treats them as damaged (checksum failure → NACK).

use crate::engine::Sim;
use crate::faults::{FaultAction, GilbertElliott};
use crate::time::{Dur, SimTime};
use frame::{FastMap, Frame, MacAddr};
use me_trace::{EventKind, FaultKind, FlightCode, FlightRecorder, Tracer};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::cell::RefCell;
use std::rc::Rc;

/// One direction of a link: bandwidth, fixed latency, bounded queue.
#[derive(Debug, Clone, Copy)]
pub struct ChannelParams {
    /// Link rate in bytes per second (1-GbE = 125e6, 10-GbE = 1.25e9).
    pub bytes_per_sec: f64,
    /// Propagation plus PHY/DMA latency added after serialization.
    pub latency: Dur,
    /// Uniform random extra latency in `[0, jitter)` per frame, modeling
    /// variable NIC DMA and switch processing time. Delivery stays FIFO
    /// within one channel, so a single link never reorders; across rails
    /// the jitter produces the closely-spaced out-of-order arrivals the
    /// paper measures on multi-link setups.
    pub jitter: Dur,
    /// Maximum frames queued awaiting the wire; overflow is dropped.
    pub queue_cap: usize,
}

impl ChannelParams {
    /// 1-Gbit/s Ethernet with defaults used throughout the evaluation.
    pub fn gbe_1() -> Self {
        Self {
            bytes_per_sec: 125e6,
            latency: crate::time::us_f64(2.0),
            jitter: crate::time::us_f64(1.0),
            // Shared-memory commodity switches can dedicate on the order
            // of a megabyte to a single congested port.
            queue_cap: 1024,
        }
    }

    /// 10-Gbit/s Ethernet.
    pub fn gbe_10() -> Self {
        Self {
            bytes_per_sec: 1.25e9,
            latency: crate::time::us_f64(2.0),
            jitter: crate::time::us_f64(1.0),
            queue_cap: 768,
        }
    }
}

/// Random transient-fault model, applied per channel traversal.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultModel {
    /// Probability a frame is silently lost on a hop.
    pub loss_rate: f64,
    /// Probability a frame is delivered with a checksum-violating error.
    pub corrupt_rate: f64,
}

/// Identifier of a channel within a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChannelId(usize);

/// Identifier of a switch within a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SwitchId(usize);

/// Identifier of a NIC within a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NicId(pub usize);

#[derive(Debug, Clone, Copy)]
enum Endpoint {
    Switch(SwitchId),
    Nic(NicId),
}

/// A frame as delivered to a NIC's receive handler.
#[derive(Debug, Clone)]
pub struct RxFrame {
    /// The frame (payload intact even when corrupted — the corruption flag
    /// models what the checksum would have caught).
    pub frame: Frame,
    /// True if a transient error damaged the frame in flight; the protocol
    /// layer must discard it and NACK.
    pub corrupted: bool,
}

type RxHandler = Rc<dyn Fn(&Sim, RxFrame)>;
type TxCompleteHandler = Rc<dyn Fn(&Sim, usize)>;

struct ChannelState {
    params: ChannelParams,
    to: Endpoint,
    busy_until: SimTime,
    /// Serialization start times of frames still queued ahead of the wire,
    /// oldest first. A frame stops occupying the queue once its
    /// serialization has started, so the live queue depth is the number of
    /// entries with `start > now` — entries at the front expire lazily on
    /// the next submission instead of costing a simulation event each.
    queued_starts: std::collections::VecDeque<SimTime>,
    tx_frames: u64,
    tx_bytes: u64,
    drop_overflow: u64,
    drop_loss: u64,
    drop_link_down: u64,
    corrupted: u64,
    /// Latest scheduled arrival: enforces FIFO delivery despite jitter.
    last_arrival: SimTime,
    /// Administrative link state; frames are dropped while `false`.
    link_up: bool,
    /// Optional scripted burst-error process layered on the stationary model.
    burst: Option<GilbertElliott>,
    /// Current Gilbert–Elliott state (`true` = bad).
    ge_bad: bool,
}

struct SwitchState {
    forward_delay: Dur,
    table: FastMap<MacAddr, ChannelId>,
    drop_unknown: u64,
}

struct NicState {
    mac: MacAddr,
    tx_channel: Option<ChannelId>,
    /// The switch→NIC leg of this NIC's link (set by [`Network::connect`]).
    rx_channel: Option<ChannelId>,
    rx_handler: Option<RxHandler>,
    tx_complete: Option<TxCompleteHandler>,
    rx_frames: u64,
    tx_submitted: u64,
    /// Receive path frozen until this time (scripted NIC stall).
    stall_until: SimTime,
}

/// Aggregate counters for a whole network.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Frames dropped because an output queue overflowed (congestion).
    pub drops_overflow: u64,
    /// Frames dropped by the random transient-loss process (stationary
    /// model or a scripted burst process).
    pub drops_loss: u64,
    /// Frames dropped because a link was administratively down.
    pub drops_link_down: u64,
    /// Frames delivered with injected corruption.
    pub corrupted: u64,
    /// Frames dropped at a switch due to an unknown destination.
    pub drops_unknown_mac: u64,
    /// Total frames serialized onto any channel.
    pub channel_frames: u64,
    /// Total wire bytes serialized onto any channel.
    pub channel_bytes: u64,
}

struct NetInner {
    channels: Vec<ChannelState>,
    switches: Vec<SwitchState>,
    nics: Vec<NicState>,
    fault: FaultModel,
    /// Dedicated RNG for every loss/corruption/burst-transition draw, kept
    /// separate from the jitter RNG so a fault seed pins the loss pattern
    /// regardless of unrelated timing randomness.
    fault_rng: SmallRng,
    tracer: Tracer,
    flight: FlightRecorder,
}

/// The simulated network: a set of NICs and switches connected by channels.
#[derive(Clone)]
pub struct Network {
    sim: Sim,
    inner: Rc<RefCell<NetInner>>,
}

/// Note a frame drop into the flight recorder, attributed to the sending
/// node/conn/rail with the channel id as payload.
fn flight_drop(flight: &FlightRecorder, f: &Frame, ch: ChannelId, t_ns: u64) {
    flight.note(
        FlightCode::FrameDrop,
        f.src.node as usize,
        Some(f.header.conn as usize),
        Some(f.src.rail as u32),
        ch.0 as u64,
        u64::from(f.header.seq),
        t_ns,
    );
}

/// Draw a frame's latency jitter in `[0, j)` from the simulator's RNG.
/// Consumes exactly one draw whenever `j > 0`, regardless of the frame's
/// fate, so the jitter stream stays aligned across configurations.
fn draw_jitter(sim: &Sim, j: Dur) -> Dur {
    if j == Dur::ZERO {
        Dur::ZERO
    } else {
        Dur(sim.with_rng(|r| r.gen_range(0..j.as_nanos())))
    }
}

/// Decide loss/corruption for one channel traversal: stationary model
/// composed with the channel's burst process (if any), all drawn from the
/// dedicated fault RNG.
fn decide_channel_fault(
    c: &mut ChannelState,
    stationary: FaultModel,
    rng: &mut SmallRng,
) -> (bool, bool) {
    let mut loss_p = stationary.loss_rate;
    let mut corrupt_p = stationary.corrupt_rate;
    if let Some(ge) = c.burst {
        let flip_p = if c.ge_bad {
            ge.p_bad_to_good
        } else {
            ge.p_good_to_bad
        };
        if flip_p > 0.0 && rng.gen::<f64>() < flip_p {
            c.ge_bad = !c.ge_bad;
        }
        let (gl, gc) = if c.ge_bad {
            (ge.loss_bad, ge.corrupt_bad)
        } else {
            (ge.loss_good, ge.corrupt_good)
        };
        // Independent composition: survive both processes or be hit.
        loss_p = 1.0 - (1.0 - loss_p) * (1.0 - gl);
        corrupt_p = 1.0 - (1.0 - corrupt_p) * (1.0 - gc);
    }
    let lost = loss_p > 0.0 && rng.gen::<f64>() < loss_p;
    let corrupted = !lost && corrupt_p > 0.0 && rng.gen::<f64>() < corrupt_p;
    (lost, corrupted)
}

impl Network {
    /// Empty network attached to `sim`, with the default fault seed.
    pub fn new(sim: &Sim, fault: FaultModel) -> Self {
        Self::with_fault_seed(sim, fault, crate::topology::DEFAULT_FAULT_SEED)
    }

    /// Empty network whose loss/corruption/burst draws come from a dedicated
    /// RNG seeded with `fault_seed`, independent of the simulator's jitter
    /// RNG — so the loss pattern is reproducible for a given fault seed even
    /// when unrelated timing randomness changes. Plumbed through
    /// [`ClusterSpec::fault_seed`](crate::topology::ClusterSpec::fault_seed).
    pub fn with_fault_seed(sim: &Sim, fault: FaultModel, fault_seed: u64) -> Self {
        Self {
            sim: sim.clone(),
            inner: Rc::new(RefCell::new(NetInner {
                channels: Vec::new(),
                switches: Vec::new(),
                nics: Vec::new(),
                fault,
                fault_rng: SmallRng::seed_from_u64(fault_seed),
                tracer: Tracer::disabled(),
                flight: FlightRecorder::disabled(),
            })),
        }
    }

    /// Attach a [`Tracer`]: the network then records each channel
    /// traversal's wire time (submit → arrival, keyed by the sending rail)
    /// and emits `frame_drop` / `frame_corrupt` events at the exact
    /// overflow, loss and corruption sites. A switched path contributes
    /// two wire-time samples per frame (uplink and downlink legs).
    pub fn set_tracer(&self, t: Tracer) {
        self.inner.borrow_mut().tracer = t;
    }

    /// Attach a [`FlightRecorder`]: the network then notes frame drops,
    /// corruptions, and scripted fault injections into the always-on ring
    /// (attributed to the sending node/conn/rail) so post-mortem dumps show
    /// the network's side of an incident.
    pub fn set_flight_recorder(&self, fr: FlightRecorder) {
        self.inner.borrow_mut().flight = fr;
    }

    /// Add a switch with the given per-frame forwarding delay.
    pub fn add_switch(&self, forward_delay: Dur) -> SwitchId {
        let mut inner = self.inner.borrow_mut();
        inner.switches.push(SwitchState {
            forward_delay,
            table: FastMap::default(),
            drop_unknown: 0,
        });
        SwitchId(inner.switches.len() - 1)
    }

    /// Add a NIC with Ethernet address `mac`.
    pub fn add_nic(&self, mac: MacAddr) -> NicId {
        let mut inner = self.inner.borrow_mut();
        inner.nics.push(NicState {
            mac,
            tx_channel: None,
            rx_channel: None,
            rx_handler: None,
            tx_complete: None,
            rx_frames: 0,
            tx_submitted: 0,
            stall_until: SimTime::ZERO,
        });
        NicId(inner.nics.len() - 1)
    }

    /// Connect `nic` to `switch` with a full-duplex link (`params` each
    /// direction) and register the NIC's MAC in the switch table.
    ///
    /// The uplink (NIC→switch) queue is effectively unbounded: it models the
    /// NIC's DMA ring, where the kernel driver backpressures instead of
    /// dropping. The downlink (switch→NIC) queue is the switch's output
    /// port buffer, where congestion drops happen.
    pub fn connect(&self, nic: NicId, switch: SwitchId, params: ChannelParams) {
        let mut inner = self.inner.borrow_mut();
        let up_params = ChannelParams {
            queue_cap: usize::MAX / 2,
            ..params
        };
        let up = ChannelId(inner.channels.len());
        inner.channels.push(ChannelState {
            params: up_params,
            to: Endpoint::Switch(switch),
            busy_until: SimTime::ZERO,
            queued_starts: std::collections::VecDeque::new(),
            tx_frames: 0,
            tx_bytes: 0,
            drop_overflow: 0,
            drop_loss: 0,
            drop_link_down: 0,
            corrupted: 0,
            last_arrival: SimTime::ZERO,
            link_up: true,
            burst: None,
            ge_bad: false,
        });
        let down = ChannelId(inner.channels.len());
        inner.channels.push(ChannelState {
            params,
            to: Endpoint::Nic(nic),
            busy_until: SimTime::ZERO,
            queued_starts: std::collections::VecDeque::new(),
            tx_frames: 0,
            tx_bytes: 0,
            drop_overflow: 0,
            drop_loss: 0,
            drop_link_down: 0,
            corrupted: 0,
            last_arrival: SimTime::ZERO,
            link_up: true,
            burst: None,
            ge_bad: false,
        });
        inner.nics[nic.0].tx_channel = Some(up);
        inner.nics[nic.0].rx_channel = Some(down);
        let mac = inner.nics[nic.0].mac;
        inner.switches[switch.0].table.insert(mac, down);
    }

    /// Install the receive callback for `nic` (protocol layer entry point).
    pub fn set_rx_handler(&self, nic: NicId, h: impl Fn(&Sim, RxFrame) + 'static) {
        self.inner.borrow_mut().nics[nic.0].rx_handler = Some(Rc::new(h));
    }

    /// Install the transmit-completion callback for `nic`; invoked with the
    /// frame's wire length once its serialization onto the link finishes
    /// (i.e. when the send DMA buffer becomes free).
    pub fn set_tx_complete_handler(&self, nic: NicId, h: impl Fn(&Sim, usize) + 'static) {
        self.inner.borrow_mut().nics[nic.0].tx_complete = Some(Rc::new(h));
    }

    /// MAC address of `nic`.
    pub fn nic_mac(&self, nic: NicId) -> MacAddr {
        self.inner.borrow().nics[nic.0].mac
    }

    /// Submit `f` for transmission on `nic` at the current virtual time.
    /// Returns `false` if the frame was dropped at the NIC's output queue.
    pub fn nic_send(&self, nic: NicId, f: Frame) -> bool {
        let ch = {
            let mut inner = self.inner.borrow_mut();
            inner.nics[nic.0].tx_submitted += 1;
            inner.nics[nic.0]
                .tx_channel
                .expect("nic_send on unconnected NIC")
        };
        self.channel_transmit(ch, f, Some(nic))
    }

    /// Serialize `f` onto channel `ch`; `completion_nic` receives the
    /// tx-complete callback. Returns false on queue-overflow drop.
    fn channel_transmit(&self, ch: ChannelId, f: Frame, completion_nic: Option<NicId>) -> bool {
        let now = self.sim.now();
        let wire_len = f.wire_len();
        let (end, arrival, to) = {
            let mut inner = self.inner.borrow_mut();
            let NetInner {
                channels,
                tracer,
                flight,
                ..
            } = &mut *inner;
            let c = &mut channels[ch.0];
            // The jitter draw is unconditional and happens first, so the
            // jitter-RNG stream consumes one value per submission no matter
            // the outcome — dropping a frame must not shift later draws.
            let jitter = draw_jitter(&self.sim, c.params.jitter);
            if !c.link_up {
                c.drop_link_down += 1;
                tracer.emit(
                    now.as_nanos(),
                    Some(f.header.conn),
                    Some(f.src.rail as u32),
                    EventKind::FrameDrop,
                );
                flight_drop(flight, &f, ch, now.as_nanos());
                return false;
            }
            // Lazily expire queue entries whose serialization has started.
            while c.queued_starts.front().is_some_and(|&s| s <= now) {
                c.queued_starts.pop_front();
            }
            if c.queued_starts.len() >= c.params.queue_cap {
                c.drop_overflow += 1;
                tracer.emit(
                    now.as_nanos(),
                    Some(f.header.conn),
                    Some(f.src.rail as u32),
                    EventKind::FrameDrop,
                );
                flight_drop(flight, &f, ch, now.as_nanos());
                return false;
            }
            let start = now.max(c.busy_until);
            let end = start + Dur::for_bytes(wire_len, c.params.bytes_per_sec);
            c.busy_until = end;
            if start > now {
                c.queued_starts.push_back(start);
            }
            c.tx_frames += 1;
            c.tx_bytes += wire_len as u64;
            let mut arrival = end + c.params.latency + jitter;
            // FIFO within a channel: never overtake the previous frame.
            arrival = arrival.max(c.last_arrival);
            c.last_arrival = arrival;
            tracer.wire_time(f.src.rail as u32, arrival.since(now).as_nanos());
            (end, arrival, c.to)
        };
        // Transmit completion back to the sending NIC (DMA buffer free).
        if let Some(nic) = completion_nic {
            let this = self.clone();
            self.sim.schedule_at(end, move |sim| {
                let cb = this.inner.borrow().nics[nic.0].tx_complete.clone();
                if let Some(cb) = cb {
                    cb(sim, wire_len);
                }
            });
        }
        // Arrival at the far end (loss/corruption decided on arrival).
        let this = self.clone();
        self.sim.schedule_at(arrival, move |sim| {
            this.arrive(sim, ch, to, f);
        });
        true
    }

    fn arrive(&self, sim: &Sim, ch: ChannelId, to: Endpoint, f: Frame) {
        // One borrow covers the in-flight link check, the fault decision and
        // the switch lookup; only the scheduling happens outside it.
        enum Action {
            Done,
            Forward(ChannelId, Dur, bool),
            Deliver(NicId, bool),
        }
        let action = {
            let mut inner = self.inner.borrow_mut();
            let NetInner {
                channels,
                switches,
                fault,
                fault_rng,
                tracer,
                flight,
                ..
            } = &mut *inner;
            let c = &mut channels[ch.0];
            // A frame still in flight when its link went down is lost with it.
            if !c.link_up {
                c.drop_link_down += 1;
                tracer.emit(
                    sim.now().as_nanos(),
                    Some(f.header.conn),
                    Some(f.src.rail as u32),
                    EventKind::FrameDrop,
                );
                flight_drop(flight, &f, ch, sim.now().as_nanos());
                Action::Done
            } else {
                let (lost, corrupted) = decide_channel_fault(c, *fault, fault_rng);
                if lost {
                    c.drop_loss += 1;
                    tracer.emit(
                        sim.now().as_nanos(),
                        Some(f.header.conn),
                        Some(f.src.rail as u32),
                        EventKind::FrameDrop,
                    );
                    flight_drop(flight, &f, ch, sim.now().as_nanos());
                    Action::Done
                } else {
                    if corrupted {
                        c.corrupted += 1;
                        tracer.emit(
                            sim.now().as_nanos(),
                            Some(f.header.conn),
                            Some(f.src.rail as u32),
                            EventKind::FrameCorrupt,
                        );
                        flight.note(
                            FlightCode::FrameCorrupt,
                            f.src.node as usize,
                            Some(f.header.conn as usize),
                            Some(f.src.rail as u32),
                            ch.0 as u64,
                            u64::from(f.header.seq),
                            sim.now().as_nanos(),
                        );
                    }
                    match to {
                        Endpoint::Switch(sw) => {
                            // A corrupted frame is forwarded anyway (our
                            // switches do not verify FCS, like cheap
                            // store-and-forward hardware); the end host's
                            // checksum catches it.
                            let s = &mut switches[sw.0];
                            match s.table.get(&f.dst) {
                                Some(&out) => Action::Forward(out, s.forward_delay, corrupted),
                                None => {
                                    s.drop_unknown += 1;
                                    Action::Done
                                }
                            }
                        }
                        Endpoint::Nic(nic) => Action::Deliver(nic, corrupted),
                    }
                }
            }
        };
        match action {
            Action::Done => {}
            Action::Forward(out, delay, carry_corrupt) => {
                let this = self.clone();
                sim.schedule_in(delay, move |_| {
                    // Corruption already counted; re-transmit the (possibly
                    // damaged) frame unchanged. The corruption marker is
                    // re-evaluated per hop only for fresh damage; to carry
                    // the existing damage we piggyback via a tagged send.
                    if carry_corrupt {
                        this.channel_transmit_corrupt(out, f);
                    } else {
                        this.channel_transmit(out, f, None);
                    }
                });
            }
            Action::Deliver(nic, corrupted) => self.deliver_to_nic(sim, nic, f, corrupted),
        }
    }

    /// Hand a frame to `nic`'s receive handler, honoring any active receive
    /// stall: frames arriving while stalled are re-scheduled to the stall's
    /// end, preserving arrival order (the event heap is FIFO per timestamp).
    fn deliver_to_nic(&self, sim: &Sim, nic: NicId, f: Frame, corrupted: bool) {
        let handler = {
            let mut inner = self.inner.borrow_mut();
            let n = &mut inner.nics[nic.0];
            if sim.now() < n.stall_until {
                let stall_until = n.stall_until;
                drop(inner);
                let this = self.clone();
                sim.schedule_at(stall_until, move |sim| {
                    this.deliver_to_nic(sim, nic, f, corrupted);
                });
                return;
            }
            n.rx_frames += 1;
            n.rx_handler.clone()
        };
        if let Some(h) = handler {
            h(sim, RxFrame { frame: f, corrupted });
        }
    }

    /// Apply one scripted fault action to `nic`'s link (both directions for
    /// link state and burst models; the NIC itself for stalls), emitting a
    /// [`EventKind::FaultInjected`] trace event attributed to the NIC's rail.
    pub fn apply_fault(&self, nic: NicId, action: FaultAction) {
        let now = self.sim.now();
        let mut inner = self.inner.borrow_mut();
        let (up_ch, down_ch, rail, node) = {
            let n = &inner.nics[nic.0];
            (n.tx_channel, n.rx_channel, n.mac.rail as u32, n.mac.node)
        };
        let kind = match action {
            FaultAction::LinkDown | FaultAction::LinkUp => {
                let up = matches!(action, FaultAction::LinkUp);
                for ch in [up_ch, down_ch].into_iter().flatten() {
                    inner.channels[ch.0].link_up = up;
                }
                if up {
                    FaultKind::LinkUp
                } else {
                    FaultKind::LinkDown
                }
            }
            FaultAction::NicStall { dur } => {
                let n = &mut inner.nics[nic.0];
                n.stall_until = n.stall_until.max(now + dur);
                FaultKind::NicStall
            }
            FaultAction::SetBurst { model } => {
                for ch in [up_ch, down_ch].into_iter().flatten() {
                    let c = &mut inner.channels[ch.0];
                    c.burst = Some(model);
                    c.ge_bad = false;
                }
                FaultKind::BurstModel
            }
            FaultAction::ClearBurst => {
                for ch in [up_ch, down_ch].into_iter().flatten() {
                    let c = &mut inner.channels[ch.0];
                    c.burst = None;
                    c.ge_bad = false;
                }
                FaultKind::BurstModel
            }
        };
        inner
            .tracer
            .emit(now.as_nanos(), None, Some(rail), EventKind::FaultInjected { kind });
        inner.flight.note(
            FlightCode::FaultInjected,
            node as usize,
            None,
            Some(rail),
            kind as u64,
            0,
            now.as_nanos(),
        );
    }

    /// Whether `nic`'s link is administratively up (its transmit leg).
    pub fn link_is_up(&self, nic: NicId) -> bool {
        let inner = self.inner.borrow();
        match inner.nics[nic.0].tx_channel {
            Some(ch) => inner.channels[ch.0].link_up,
            None => false,
        }
    }

    /// Like [`Self::channel_transmit`] but the frame is already damaged; it
    /// stays damaged through delivery.
    fn channel_transmit_corrupt(&self, ch: ChannelId, f: Frame) {
        let now = self.sim.now();
        let wire_len = f.wire_len();
        let (arrival, to) = {
            let mut inner = self.inner.borrow_mut();
            let NetInner {
                channels,
                tracer,
                flight,
                ..
            } = &mut *inner;
            let c = &mut channels[ch.0];
            let jitter = draw_jitter(&self.sim, c.params.jitter);
            if !c.link_up {
                c.drop_link_down += 1;
                tracer.emit(
                    now.as_nanos(),
                    Some(f.header.conn),
                    Some(f.src.rail as u32),
                    EventKind::FrameDrop,
                );
                flight_drop(flight, &f, ch, now.as_nanos());
                return;
            }
            while c.queued_starts.front().is_some_and(|&s| s <= now) {
                c.queued_starts.pop_front();
            }
            if c.queued_starts.len() >= c.params.queue_cap {
                c.drop_overflow += 1;
                tracer.emit(
                    now.as_nanos(),
                    Some(f.header.conn),
                    Some(f.src.rail as u32),
                    EventKind::FrameDrop,
                );
                flight_drop(flight, &f, ch, now.as_nanos());
                return;
            }
            let start = now.max(c.busy_until);
            let end = start + Dur::for_bytes(wire_len, c.params.bytes_per_sec);
            c.busy_until = end;
            if start > now {
                c.queued_starts.push_back(start);
            }
            c.tx_frames += 1;
            c.tx_bytes += wire_len as u64;
            let mut arrival = end + c.params.latency + jitter;
            arrival = arrival.max(c.last_arrival);
            c.last_arrival = arrival;
            tracer.wire_time(f.src.rail as u32, arrival.since(now).as_nanos());
            (arrival, c.to)
        };
        let this = self.clone();
        self.sim.schedule_at(arrival, move |sim| {
            {
                let mut inner = this.inner.borrow_mut();
                if !inner.channels[ch.0].link_up {
                    inner.channels[ch.0].drop_link_down += 1;
                    inner.tracer.emit(
                        sim.now().as_nanos(),
                        Some(f.header.conn),
                        Some(f.src.rail as u32),
                        EventKind::FrameDrop,
                    );
                    flight_drop(&inner.flight, &f, ch, sim.now().as_nanos());
                    return;
                }
            }
            match to {
                Endpoint::Nic(nic) => this.deliver_to_nic(sim, nic, f, true),
                Endpoint::Switch(_) => {
                    // Multi-switch paths re-enter the normal path; keep damaged.
                    this.arrive_corrupt(sim, to, f);
                }
            }
        });
    }

    fn arrive_corrupt(&self, sim: &Sim, to: Endpoint, f: Frame) {
        if let Endpoint::Switch(sw) = to {
            let (out, delay) = {
                let mut inner = self.inner.borrow_mut();
                let s = &mut inner.switches[sw.0];
                match s.table.get(&f.dst) {
                    Some(&out) => (out, s.forward_delay),
                    None => {
                        s.drop_unknown += 1;
                        return;
                    }
                }
            };
            let this = self.clone();
            sim.schedule_in(delay, move |_| this.channel_transmit_corrupt(out, f));
        }
    }

    /// Aggregate network statistics.
    pub fn stats(&self) -> NetStats {
        let inner = self.inner.borrow();
        let mut s = NetStats::default();
        for c in &inner.channels {
            s.drops_overflow += c.drop_overflow;
            s.drops_loss += c.drop_loss;
            s.drops_link_down += c.drop_link_down;
            s.corrupted += c.corrupted;
            s.channel_frames += c.tx_frames;
            s.channel_bytes += c.tx_bytes;
        }
        for sw in &inner.switches {
            s.drops_unknown_mac += sw.drop_unknown;
        }
        s
    }

    /// Frames received by `nic` so far.
    pub fn nic_rx_frames(&self, nic: NicId) -> u64 {
        self.inner.borrow().nics[nic.0].rx_frames
    }

    /// How much serialization work is queued ahead of a new frame on `nic`'s
    /// transmit channel (zero when the wire is idle). Used by queue-aware
    /// link-scheduling policies.
    pub fn nic_tx_backlog(&self, nic: NicId) -> Dur {
        let inner = self.inner.borrow();
        let ch = inner.nics[nic.0]
            .tx_channel
            .expect("backlog query on unconnected NIC");
        inner.channels[ch.0].busy_until.since(self.sim.now())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::us;
    use bytes::Bytes;
    use frame::{FrameHeader, HEADER_LEN};

    fn data_frame(src: MacAddr, dst: MacAddr, len: usize) -> Frame {
        Frame {
            src,
            dst,
            header: FrameHeader::default(),
            payload: Bytes::from(vec![0u8; len]),
        }
    }

    /// 1-GbE parameters with deterministic (jitter-free) latency, so the
    /// timing assertions below are exact.
    fn quiet_gbe_1() -> ChannelParams {
        ChannelParams {
            jitter: Dur::ZERO,
            ..ChannelParams::gbe_1()
        }
    }

    /// Two NICs through one switch; checks delivery and timing.
    fn two_node_net(fault: FaultModel) -> (Sim, Network, NicId, NicId) {
        let sim = Sim::new(42);
        let net = Network::new(&sim, fault);
        let sw = net.add_switch(us(1));
        let a = net.add_nic(MacAddr::new(0, 0));
        let b = net.add_nic(MacAddr::new(1, 0));
        net.connect(a, sw, quiet_gbe_1());
        net.connect(b, sw, quiet_gbe_1());
        (sim, net, a, b)
    }

    #[test]
    fn frame_traverses_switch_with_expected_latency() {
        let (sim, net, a, b) = two_node_net(FaultModel::default());
        let got: Rc<RefCell<Vec<(u64, usize)>>> = Rc::default();
        let g = got.clone();
        net.set_rx_handler(b, move |sim, rx| {
            assert!(!rx.corrupted);
            g.borrow_mut()
                .push((sim.now().as_nanos(), rx.frame.payload.len()));
        });
        let f = data_frame(MacAddr::new(0, 0), MacAddr::new(1, 0), 1000);
        let wire = f.wire_len();
        assert!(net.nic_send(a, f));
        sim.run();
        let (t, len) = got.borrow()[0];
        assert_eq!(len, 1000);
        // Two serializations at 125 MB/s + 2 × 2us latency + 1us switch.
        let ser = Dur::for_bytes(wire, 125e6).as_nanos();
        assert_eq!(t, 2 * ser + 2_000 + 2_000 + 1_000);
    }

    #[test]
    fn back_to_back_frames_serialize_on_the_link() {
        let (sim, net, a, b) = two_node_net(FaultModel::default());
        let times: Rc<RefCell<Vec<u64>>> = Rc::default();
        let t = times.clone();
        net.set_rx_handler(b, move |sim, _| t.borrow_mut().push(sim.now().as_nanos()));
        for _ in 0..3 {
            let f = data_frame(MacAddr::new(0, 0), MacAddr::new(1, 0), 1454);
            assert!(net.nic_send(a, f));
        }
        sim.run();
        let times = times.borrow();
        assert_eq!(times.len(), 3);
        let wire = HEADER_LEN + 1454 + frame::ETHERNET_WIRE_OVERHEAD;
        let ser = Dur::for_bytes(wire, 125e6).as_nanos();
        // Arrival spacing equals one serialization time (pipeline full).
        assert_eq!(times[1] - times[0], ser);
        assert_eq!(times[2] - times[1], ser);
    }

    #[test]
    fn switch_output_queue_overflow_drops() {
        // Two senders blast one receiver: the receiver's switch output port
        // (cap 2) is the congestion point; the NIC uplinks never drop.
        let sim = Sim::new(0);
        let net = Network::new(&sim, FaultModel::default());
        let sw = net.add_switch(us(1));
        let a = net.add_nic(MacAddr::new(0, 0));
        let b = net.add_nic(MacAddr::new(1, 0));
        let c = net.add_nic(MacAddr::new(2, 0));
        let tiny = ChannelParams {
            queue_cap: 2,
            ..quiet_gbe_1()
        };
        net.connect(a, sw, tiny);
        net.connect(b, sw, tiny);
        net.connect(c, sw, tiny);
        let n = 20;
        for _ in 0..n {
            assert!(
                net.nic_send(a, data_frame(MacAddr::new(0, 0), MacAddr::new(2, 0), 1400)),
                "uplink must backpressure, not drop"
            );
            assert!(net.nic_send(
                b,
                data_frame(MacAddr::new(1, 0), MacAddr::new(2, 0), 1400)
            ));
        }
        sim.run();
        let stats = net.stats();
        assert!(stats.drops_overflow > 0, "2:1 incast must overflow cap 2");
        assert_eq!(
            net.nic_rx_frames(c) + stats.drops_overflow,
            2 * n,
            "every frame is either delivered or dropped at the output port"
        );
    }

    #[test]
    fn random_loss_drops_approximately_at_rate() {
        let (sim, net, a, b) = two_node_net(FaultModel {
            loss_rate: 0.3,
            corrupt_rate: 0.0,
        });
        let got: Rc<RefCell<u32>> = Rc::default();
        let g = got.clone();
        net.set_rx_handler(b, move |_, _| *g.borrow_mut() += 1);
        let n = 2000;
        let net2 = net.clone();
        sim.spawn("sender", {
            let sim = sim.clone();
            async move {
                for _ in 0..n {
                    net2.nic_send(a, data_frame(MacAddr::new(0, 0), MacAddr::new(1, 0), 100));
                    crate::sync::sleep(&sim, us(20)).await;
                }
            }
        });
        sim.run().expect_quiescent();
        let received = *got.borrow();
        // Two hops, p=0.3 each: survival (0.7)^2 = 0.49.
        let expect = (n as f64) * 0.49;
        assert!(
            (received as f64 - expect).abs() < expect * 0.15,
            "received {received}, expected ≈ {expect}"
        );
    }

    #[test]
    fn corruption_is_flagged_not_dropped() {
        let (sim, net, a, b) = two_node_net(FaultModel {
            loss_rate: 0.0,
            corrupt_rate: 1.0,
        });
        let got: Rc<RefCell<Vec<bool>>> = Rc::default();
        let g = got.clone();
        net.set_rx_handler(b, move |_, rx| g.borrow_mut().push(rx.corrupted));
        net.nic_send(a, data_frame(MacAddr::new(0, 0), MacAddr::new(1, 0), 64));
        sim.run();
        assert_eq!(*got.borrow(), vec![true]);
    }

    #[test]
    fn tx_complete_fires_at_serialization_end() {
        let (sim, net, a, b) = two_node_net(FaultModel::default());
        net.set_rx_handler(b, |_, _| {});
        let done: Rc<RefCell<Vec<u64>>> = Rc::default();
        let d = done.clone();
        net.set_tx_complete_handler(a, move |sim, wire_len| {
            d.borrow_mut().push(sim.now().as_nanos());
            assert!(wire_len > 0);
        });
        let f = data_frame(MacAddr::new(0, 0), MacAddr::new(1, 0), 1000);
        let wire = f.wire_len();
        net.nic_send(a, f);
        sim.run();
        let ser = Dur::for_bytes(wire, 125e6).as_nanos();
        assert_eq!(*done.borrow(), vec![ser]);
    }

    #[test]
    fn unknown_mac_dropped_at_switch() {
        let (sim, net, a, _b) = two_node_net(FaultModel::default());
        net.nic_send(a, data_frame(MacAddr::new(0, 0), MacAddr::new(9, 0), 64));
        sim.run();
        assert_eq!(net.stats().drops_unknown_mac, 1);
    }
}
