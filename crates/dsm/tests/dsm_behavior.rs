//! Behavioral tests of the DSM protocol: coherence, locks, barriers,
//! false sharing, invalidation, and the ordered vs relaxed transport modes.

use dsm::DsmCluster;
use multiedge::SystemConfig;
use netsim::Sim;
use std::cell::RefCell;
use std::rc::Rc;

fn cluster(nodes: usize) -> (Sim, DsmCluster) {
    let sim = Sim::new(7);
    let dsm = DsmCluster::build(&sim, SystemConfig::one_link_1g(nodes));
    (sim, dsm)
}

#[test]
fn producer_consumer_through_barrier() {
    let (_sim, dsm) = cluster(4);
    let arr = dsm.alloc_array::<u64>(4096);
    let n = arr.len();
    dsm.run_spmd(move |node| async move {
        let nodes = node.nodes();
        let chunk = n / nodes;
        let me = node.id();
        // Everyone writes its chunk, then reads the next node's chunk.
        let data: Vec<u64> = (0..chunk).map(|i| (me * 1000 + i) as u64).collect();
        arr.write(&node, me * chunk, &data).await;
        node.barrier(0).await;
        let peer = (me + 1) % nodes;
        let got = arr.read(&node, peer * chunk..(peer + 1) * chunk).await;
        for (i, v) in got.iter().enumerate() {
            assert_eq!(*v, (peer * 1000 + i) as u64, "node {me} reading {peer}");
        }
        node.barrier(0).await;
    });
    let stats = dsm.dsm_stats();
    assert!(stats.page_fetches > 0, "remote chunks require fetches");
    assert_eq!(stats.barriers, 8);
}

#[test]
fn repeated_epochs_propagate_fresh_values() {
    // Invalidation really happens: each epoch the consumer must see the
    // producer's new value, not its stale cached page.
    let (_sim, dsm) = cluster(2);
    let arr = dsm.alloc_array::<u64>(16);
    dsm.run_spmd(move |node| async move {
        for epoch in 0..5u64 {
            if node.id() == 0 {
                arr.set(&node, 3, 100 + epoch).await;
            }
            node.barrier(0).await;
            let v = arr.get(&node, 3).await;
            assert_eq!(v, 100 + epoch, "node {} epoch {epoch}", node.id());
            node.barrier(0).await;
        }
    });
    let stats = dsm.dsm_stats();
    assert!(
        stats.invalidations >= 4,
        "consumer must invalidate its cached copy each epoch: {stats:?}"
    );
}

#[test]
fn false_sharing_on_one_page_preserves_all_writers() {
    // All nodes write disjoint 8-byte slots of the SAME page between the
    // same barriers; exact diffs must preserve every writer's data.
    let (_sim, dsm) = cluster(4);
    let arr = dsm.alloc_array::<u64>(512); // exactly one page
    dsm.run_spmd(move |node| async move {
        let me = node.id();
        let nodes = node.nodes();
        // Interleaved slots: node i writes slots i, i+nodes, i+2*nodes, ...
        let mut i = me;
        while i < 512 {
            arr.set(&node, i, (me as u64 + 1) * 1_000_000 + i as u64).await;
            i += nodes;
        }
        node.barrier(0).await;
        // Every node verifies the whole page.
        let all = arr.read(&node, 0..512).await;
        for (i, v) in all.iter().enumerate() {
            let owner = i % nodes;
            assert_eq!(*v, (owner as u64 + 1) * 1_000_000 + i as u64, "slot {i}");
        }
        node.barrier(0).await;
    });
}

#[test]
fn lock_provides_mutual_exclusion_and_coherent_increments() {
    let (_sim, dsm) = cluster(4);
    let counter = dsm.alloc_array::<u64>(1);
    let in_cs: Rc<RefCell<u32>> = Rc::default();
    let max_in_cs: Rc<RefCell<u32>> = Rc::default();
    let (a, b) = (in_cs.clone(), max_in_cs.clone());
    let iters = 6usize;
    dsm.run_spmd(move |node| {
        let in_cs = a.clone();
        let max_in_cs = b.clone();
        async move {
            for _ in 0..iters {
                node.lock(1).await;
                {
                    let mut g = in_cs.borrow_mut();
                    *g += 1;
                    let mut m = max_in_cs.borrow_mut();
                    *m = (*m).max(*g);
                }
                let v = counter.get(&node, 0).await;
                counter.set(&node, 0, v + 1).await;
                *in_cs.borrow_mut() -= 1;
                node.unlock(1).await;
            }
            node.barrier(0).await;
            let total = counter.get(&node, 0).await;
            assert_eq!(total, (node.nodes() * iters) as u64);
        }
    });
    assert_eq!(*max_in_cs.borrow(), 1, "critical sections must not overlap");
    assert_eq!(dsm.dsm_stats().lock_acquires, 24);
}

#[test]
fn barrier_joins_all_nodes_in_time() {
    // A node arriving late must hold everyone; release times must be
    // (virtually) after the last arrival.
    let (_sim, dsm) = cluster(4);
    let arrivals: Rc<RefCell<Vec<u64>>> = Rc::default();
    let releases: Rc<RefCell<Vec<u64>>> = Rc::default();
    let (arr2, rel2) = (arrivals.clone(), releases.clone());
    dsm.run_spmd(move |node| {
        let arrivals = arr2.clone();
        let releases = rel2.clone();
        async move {
            // Stagger arrivals by computing different amounts.
            node.compute(netsim::time::us(50 * (node.id() as u64 + 1)))
                .await;
            arrivals.borrow_mut().push(node.sim().now().as_nanos());
            node.barrier(0).await;
            releases.borrow_mut().push(node.sim().now().as_nanos());
        }
    });
    let last_arrival = *arrivals.borrow().iter().max().unwrap();
    for &r in releases.borrow().iter() {
        assert!(r >= last_arrival, "release {r} before last arrival {last_arrival}");
    }
}

#[test]
fn ordered_and_relaxed_modes_agree_on_results() {
    for sys in [
        SystemConfig::two_link_1g(4),           // strictly ordered (2L)
        SystemConfig::two_link_1g_unordered(4), // relaxed (2Lu)
    ] {
        let sim = Sim::new(11);
        let dsm = DsmCluster::build(&sim, sys);
        let arr = dsm.alloc_array::<u64>(2048);
        let n = arr.len();
        dsm.run_spmd(move |node| async move {
            let nodes = node.nodes();
            let chunk = n / nodes;
            let me = node.id();
            let data: Vec<u64> = (0..chunk).map(|i| (me * 7 + i) as u64).collect();
            arr.write(&node, me * chunk, &data).await;
            node.barrier(0).await;
            // Read everything and checksum.
            let all = arr.read(&node, 0..n).await;
            let mut sum = 0u64;
            for (i, v) in all.iter().enumerate() {
                let owner = i / chunk;
                assert_eq!(*v, (owner * 7 + (i % chunk)) as u64);
                sum = sum.wrapping_add(*v);
            }
            assert!(sum > 0);
            node.barrier(0).await;
        });
    }
}

#[test]
fn lossy_network_does_not_break_coherence() {
    let mut sys = SystemConfig::one_link_1g(3);
    sys.fault = netsim::FaultModel {
        loss_rate: 0.01,
        corrupt_rate: 0.002,
    };
    let sim = Sim::new(5);
    let dsm = DsmCluster::build(&sim, sys);
    let arr = dsm.alloc_array::<u64>(1024);
    let n = arr.len();
    dsm.run_spmd(move |node| async move {
        let nodes = node.nodes();
        let chunk = n / nodes;
        let me = node.id();
        let data: Vec<u64> = (0..chunk).map(|i| (me * 31 + i) as u64).collect();
        arr.write(&node, me * chunk, &data).await;
        node.barrier(0).await;
        let all = arr.read(&node, 0..chunk * nodes).await;
        for (i, v) in all.iter().enumerate() {
            let owner = i / chunk;
            assert_eq!(*v, (owner * 31 + (i % chunk)) as u64);
        }
        node.barrier(0).await;
    });
    let proto = dsm.proto_stats();
    assert!(
        proto.retransmits() > 0 || proto.corrupt_frames > 0,
        "faults should have been injected: {proto:?}"
    );
}

#[test]
fn sixteen_node_cluster_scales_barriers() {
    let (_sim, dsm) = cluster(16);
    let arr = dsm.alloc_array::<u64>(16);
    dsm.run_spmd(move |node| async move {
        arr.set(&node, node.id(), node.id() as u64).await;
        node.barrier(0).await;
        for i in 0..node.nodes() {
            assert_eq!(arr.get(&node, i).await, i as u64);
        }
        node.barrier(0).await;
    });
    assert_eq!(dsm.dsm_stats().barriers, 32);
}

#[test]
fn single_node_cluster_degenerates_gracefully() {
    // Everything is home, no traffic, all sync local.
    let (_sim, dsm) = cluster(1);
    let arr = dsm.alloc_array::<u64>(256);
    dsm.run_spmd(move |node| async move {
        for i in 0..256 {
            arr.set(&node, i, (i * 3) as u64).await;
        }
        node.lock(0).await;
        node.unlock(0).await;
        node.barrier(0).await;
        for i in 0..256 {
            assert_eq!(arr.get(&node, i).await, (i * 3) as u64);
        }
    });
    let stats = dsm.dsm_stats();
    assert_eq!(stats.page_fetches, 0, "single node never fetches");
    let proto = dsm.proto_stats();
    assert_eq!(proto.data_frames_sent, 0, "single node sends nothing");
}

#[test]
fn stats_track_diffs_and_ctl_traffic() {
    let (_sim, dsm) = cluster(2);
    let arr = dsm.alloc_array::<u64>(512);
    dsm.run_spmd(move |node| async move {
        if node.id() == 1 {
            // Node 1 writes into node-0-homed pages → twins + diffs.
            arr.set(&node, 0, 42).await;
        }
        node.barrier(0).await;
        assert_eq!(arr.get(&node, 0).await, 42);
        node.barrier(0).await;
    });
    let stats = dsm.dsm_stats();
    assert!(stats.diff_ops >= 1, "node 1 must flush a diff: {stats:?}");
    // Byte-exact diffing: writing 42u64 over zeros modifies a single byte.
    assert!(stats.diff_bytes >= 1);
    assert!(stats.ctl_msgs >= 4, "barrier traffic: {stats:?}");
}
