//! Shared address-space layout.
//!
//! GeNIMA is an SPMD system: every node maps the shared heap at the same
//! virtual address, so a page's address is also its address at the home node
//! (diffs are RDMA-written to the *same* address at the home). Control
//! messages travel through per-sender mailbox rings in a reserved high
//! region; a remote write + notification into a mailbox is the only control
//! channel, mirroring GeNIMA's "no asynchronous protocol processing" design.

use multiedge::PAGE_SIZE;

/// Base virtual address of the shared heap.
pub const HEAP_BASE: u64 = 0x0000_1000_0000;

/// Base of the mailbox region (far above any heap allocation).
pub const MAILBOX_BASE: u64 = 0x7000_0000_0000;

/// Bytes per mailbox slot (one control message).
pub const SLOT_SIZE: u64 = 64 * 1024;

/// Slots per sender ring.
pub const RING_SLOTS: u64 = 16;

/// Bytes of mailbox address space reserved per sender.
pub const MAILBOX_STRIDE: u64 = SLOT_SIZE * RING_SLOTS;

/// Page number containing `addr`.
pub fn page_of(addr: u64) -> u64 {
    addr / PAGE_SIZE as u64
}

/// First address of `page`.
pub fn page_addr(page: u64) -> u64 {
    page * PAGE_SIZE as u64
}

/// Inclusive page range covering `[addr, addr + len)`.
pub fn pages_covering(addr: u64, len: usize) -> std::ops::RangeInclusive<u64> {
    if len == 0 {
        return page_of(addr)..=page_of(addr);
    }
    page_of(addr)..=page_of(addr + len as u64 - 1)
}

/// Home node of `page` (block-cyclic page placement, the GeNIMA default).
pub fn home_of(page: u64, nodes: usize) -> usize {
    (page % nodes as u64) as usize
}

/// Mailbox slot address at the *receiver* for messages from `sender`,
/// ring-indexed by the sender's message counter.
pub fn mailbox_slot(sender: usize, counter: u64) -> u64 {
    MAILBOX_BASE + sender as u64 * MAILBOX_STRIDE + (counter % RING_SLOTS) * SLOT_SIZE
}

/// Is `addr` inside the mailbox region?
pub fn is_mailbox(addr: u64) -> bool {
    addr >= MAILBOX_BASE
}

/// Deterministic SPMD bump allocator: every node makes the same sequence of
/// allocations, so all nodes agree on every address without communication.
#[derive(Debug, Clone)]
pub struct HeapAllocator {
    next: u64,
}

impl Default for HeapAllocator {
    fn default() -> Self {
        Self { next: HEAP_BASE }
    }
}

impl HeapAllocator {
    /// Fresh allocator at the heap base.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate `bytes`, page-aligned (avoids false sharing between
    /// allocations; sharing *within* one array is the interesting part).
    pub fn alloc(&mut self, bytes: u64) -> u64 {
        let addr = self.next;
        let sz = bytes.div_ceil(PAGE_SIZE as u64).max(1) * PAGE_SIZE as u64;
        self.next += sz;
        assert!(
            self.next < MAILBOX_BASE,
            "shared heap exhausted ({} bytes allocated)",
            self.next - HEAP_BASE
        );
        addr
    }

    /// Bytes allocated so far (footprint accounting, Table 1).
    pub fn allocated(&self) -> u64 {
        self.next - HEAP_BASE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_math() {
        assert_eq!(page_of(0), 0);
        assert_eq!(page_of(4095), 0);
        assert_eq!(page_of(4096), 1);
        assert_eq!(page_addr(3), 12288);
        assert_eq!(pages_covering(4090, 10), 0..=1);
        assert_eq!(pages_covering(4096, 4096), 1..=1);
        assert_eq!(pages_covering(100, 0), 0..=0);
    }

    #[test]
    fn homes_cycle() {
        assert_eq!(home_of(0, 4), 0);
        assert_eq!(home_of(5, 4), 1);
        assert_eq!(home_of(7, 4), 3);
    }

    #[test]
    fn allocator_is_page_aligned_and_deterministic() {
        let mut a = HeapAllocator::new();
        let mut b = HeapAllocator::new();
        for bytes in [1u64, 4096, 10_000, 0] {
            let x = a.alloc(bytes.max(1));
            let y = b.alloc(bytes.max(1));
            assert_eq!(x, y);
            assert_eq!(x % PAGE_SIZE as u64, 0);
        }
        assert!(a.allocated() >= 4096 * 4);
    }

    #[test]
    fn mailbox_slots_ring() {
        let s0 = mailbox_slot(3, 0);
        let s1 = mailbox_slot(3, 1);
        assert_eq!(s1 - s0, SLOT_SIZE);
        assert_eq!(mailbox_slot(3, RING_SLOTS), s0, "ring wraps");
        assert!(is_mailbox(s0));
        assert!(!is_mailbox(HEAP_BASE));
    }
}
