//! Control-message wire format (lock and barrier traffic).
//!
//! Control messages are serialized into mailbox slots and carried by
//! ordered+notifying remote writes. Write notices are transmitted as merged
//! page ranges, which keeps even pathological dirty sets (every page of a
//! large array) down to a handful of ranges.

/// A run of consecutive dirty pages `[start, start + count)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageRange {
    /// First page number.
    pub start: u64,
    /// Number of pages.
    pub count: u32,
}

/// Merge a sorted, de-duplicated page list into maximal ranges.
pub fn merge_pages(pages: impl IntoIterator<Item = u64>) -> Vec<PageRange> {
    let mut out: Vec<PageRange> = Vec::new();
    for p in pages {
        match out.last_mut() {
            Some(r) if p == r.start + r.count as u64 => r.count += 1,
            Some(r) if p < r.start + r.count as u64 => {
                debug_assert!(false, "merge_pages input must be sorted unique");
            }
            _ => out.push(PageRange { start: p, count: 1 }),
        }
    }
    out
}

/// Expand ranges back to individual pages.
pub fn expand_ranges(ranges: &[PageRange]) -> impl Iterator<Item = u64> + '_ {
    ranges
        .iter()
        .flat_map(|r| r.start..r.start + r.count as u64)
}

/// Union several range lists (as a merged range list).
pub fn union_ranges(lists: &[&[PageRange]]) -> Vec<PageRange> {
    let mut pages: Vec<u64> = lists
        .iter()
        .flat_map(|l| expand_ranges(l))
        .collect();
    pages.sort_unstable();
    pages.dedup();
    merge_pages(pages)
}

/// DSM control messages.
#[derive(Debug, Clone, PartialEq)]
pub enum CtlMsg {
    /// Ask the lock's manager for the lock.
    LockRequest {
        /// Lock id.
        lock: u32,
    },
    /// Manager grants the lock; `notices` are pages the new holder must
    /// invalidate (written under this lock since the holder last saw it).
    LockGrant {
        /// Lock id.
        lock: u32,
        /// Pages to invalidate.
        notices: Vec<PageRange>,
    },
    /// Holder releases the lock; diffs were flushed to homes beforehand.
    LockRelease {
        /// Lock id.
        lock: u32,
        /// Pages the holder dirtied while holding the lock.
        notices: Vec<PageRange>,
    },
    /// Node arrives at a barrier with its accumulated write notices.
    BarrierArrive {
        /// Barrier id.
        barrier: u32,
        /// Barrier epoch (generation).
        epoch: u64,
        /// Pages this node dirtied since the previous barrier.
        notices: Vec<PageRange>,
    },
    /// Manager releases the barrier; `notices` are the other nodes' dirty
    /// pages (the receiver's own are excluded).
    BarrierRelease {
        /// Barrier id.
        barrier: u32,
        /// Barrier epoch (generation).
        epoch: u64,
        /// Pages to invalidate.
        notices: Vec<PageRange>,
    },
}

fn put_ranges(buf: &mut Vec<u8>, ranges: &[PageRange]) {
    buf.extend_from_slice(&(ranges.len() as u32).to_le_bytes());
    for r in ranges {
        buf.extend_from_slice(&r.start.to_le_bytes());
        buf.extend_from_slice(&r.count.to_le_bytes());
    }
}

fn get_u32(b: &[u8], o: &mut usize) -> u32 {
    let v = u32::from_le_bytes(b[*o..*o + 4].try_into().unwrap());
    *o += 4;
    v
}

fn get_u64(b: &[u8], o: &mut usize) -> u64 {
    let v = u64::from_le_bytes(b[*o..*o + 8].try_into().unwrap());
    *o += 8;
    v
}

fn get_ranges(b: &[u8], o: &mut usize) -> Vec<PageRange> {
    let n = get_u32(b, o) as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let start = get_u64(b, o);
        let count = get_u32(b, o);
        out.push(PageRange { start, count });
    }
    out
}

impl CtlMsg {
    /// Serialize for a mailbox slot.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(64);
        match self {
            CtlMsg::LockRequest { lock } => {
                b.push(1);
                b.extend_from_slice(&lock.to_le_bytes());
            }
            CtlMsg::LockGrant { lock, notices } => {
                b.push(2);
                b.extend_from_slice(&lock.to_le_bytes());
                put_ranges(&mut b, notices);
            }
            CtlMsg::LockRelease { lock, notices } => {
                b.push(3);
                b.extend_from_slice(&lock.to_le_bytes());
                put_ranges(&mut b, notices);
            }
            CtlMsg::BarrierArrive {
                barrier,
                epoch,
                notices,
            } => {
                b.push(4);
                b.extend_from_slice(&barrier.to_le_bytes());
                b.extend_from_slice(&epoch.to_le_bytes());
                put_ranges(&mut b, notices);
            }
            CtlMsg::BarrierRelease {
                barrier,
                epoch,
                notices,
            } => {
                b.push(5);
                b.extend_from_slice(&barrier.to_le_bytes());
                b.extend_from_slice(&epoch.to_le_bytes());
                put_ranges(&mut b, notices);
            }
        }
        assert!(
            b.len() as u64 <= crate::layout::SLOT_SIZE,
            "control message exceeds mailbox slot: {} bytes",
            b.len()
        );
        b
    }

    /// Parse from mailbox bytes.
    pub fn decode(b: &[u8]) -> Option<CtlMsg> {
        let mut o = 1usize;
        Some(match *b.first()? {
            1 => CtlMsg::LockRequest {
                lock: get_u32(b, &mut o),
            },
            2 => {
                let lock = get_u32(b, &mut o);
                CtlMsg::LockGrant {
                    lock,
                    notices: get_ranges(b, &mut o),
                }
            }
            3 => {
                let lock = get_u32(b, &mut o);
                CtlMsg::LockRelease {
                    lock,
                    notices: get_ranges(b, &mut o),
                }
            }
            4 => {
                let barrier = get_u32(b, &mut o);
                let epoch = get_u64(b, &mut o);
                CtlMsg::BarrierArrive {
                    barrier,
                    epoch,
                    notices: get_ranges(b, &mut o),
                }
            }
            5 => {
                let barrier = get_u32(b, &mut o);
                let epoch = get_u64(b, &mut o);
                CtlMsg::BarrierRelease {
                    barrier,
                    epoch,
                    notices: get_ranges(b, &mut o),
                }
            }
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_and_expand() {
        let ranges = merge_pages([1u64, 2, 3, 7, 9, 10]);
        assert_eq!(
            ranges,
            vec![
                PageRange { start: 1, count: 3 },
                PageRange { start: 7, count: 1 },
                PageRange { start: 9, count: 2 },
            ]
        );
        let back: Vec<u64> = expand_ranges(&ranges).collect();
        assert_eq!(back, vec![1, 2, 3, 7, 9, 10]);
    }

    #[test]
    fn union_overlapping() {
        let a = vec![PageRange { start: 0, count: 4 }];
        let b = vec![PageRange { start: 2, count: 4 }, PageRange { start: 9, count: 1 }];
        let u = union_ranges(&[&a, &b]);
        assert_eq!(
            u,
            vec![PageRange { start: 0, count: 6 }, PageRange { start: 9, count: 1 }]
        );
    }

    #[test]
    fn codec_round_trips() {
        let msgs = vec![
            CtlMsg::LockRequest { lock: 7 },
            CtlMsg::LockGrant {
                lock: 7,
                notices: vec![PageRange { start: 100, count: 3 }],
            },
            CtlMsg::LockRelease {
                lock: 7,
                notices: vec![],
            },
            CtlMsg::BarrierArrive {
                barrier: 0,
                epoch: 12,
                notices: merge_pages(0..500u64),
            },
            CtlMsg::BarrierRelease {
                barrier: 0,
                epoch: 12,
                notices: vec![PageRange { start: 5, count: 1 }],
            },
        ];
        for m in msgs {
            assert_eq!(CtlMsg::decode(&m.encode()), Some(m));
        }
    }

    #[test]
    fn garbage_decodes_to_none() {
        assert_eq!(CtlMsg::decode(&[]), None);
        assert_eq!(CtlMsg::decode(&[99, 0, 0]), None);
    }

    #[test]
    fn dense_dirty_set_stays_compact() {
        // 10 000 consecutive dirty pages: one range, tiny message.
        let m = CtlMsg::BarrierArrive {
            barrier: 0,
            epoch: 0,
            notices: merge_pages(0..10_000u64),
        };
        assert!(m.encode().len() < 64);
    }
}
