//! Twin/diff machinery (the core of page-based lazy release consistency).
//!
//! On the first write to a cached page the DSM snapshots a **twin**. At
//! release time the twin is compared against the current contents and only
//! the modified byte runs — the **diff** — are written to the home. Diffs
//! must be *exact*: two nodes may legitimately write disjoint bytes of the
//! same page between the same synchronization points (false sharing, which
//! the paper calls out for Radix), and transmitting unmodified bytes would
//! clobber the other writer's data at the home.

/// One modified byte run within a page: `[offset, offset + len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiffRun {
    /// Byte offset within the page.
    pub offset: usize,
    /// Run length in bytes.
    pub len: usize,
}

/// Compute the exact modified runs between `twin` and `current`.
///
/// Adjacent modified bytes coalesce into one run; runs are never merged
/// across unmodified bytes (exactness requirement above).
pub fn diff_runs(twin: &[u8], current: &[u8]) -> Vec<DiffRun> {
    debug_assert_eq!(twin.len(), current.len());
    let mut runs = Vec::new();
    let mut i = 0;
    let n = twin.len();
    while i < n {
        if twin[i] == current[i] {
            i += 1;
            continue;
        }
        let start = i;
        while i < n && twin[i] != current[i] {
            i += 1;
        }
        runs.push(DiffRun {
            offset: start,
            len: i - start,
        });
    }
    runs
}

/// Total modified bytes across runs.
pub fn diff_bytes(runs: &[DiffRun]) -> usize {
    runs.iter().map(|r| r.len).sum()
}

/// Apply a diff (run list + corresponding byte slices) onto `target`.
/// Used by tests to verify the round trip; in the live system the runs are
/// RDMA-written to the home individually.
pub fn apply_runs(target: &mut [u8], source: &[u8], runs: &[DiffRun]) {
    for r in runs {
        target[r.offset..r.offset + r.len].copy_from_slice(&source[r.offset..r.offset + r.len]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_pages_have_no_diff() {
        let a = vec![7u8; 4096];
        assert!(diff_runs(&a, &a).is_empty());
    }

    #[test]
    fn single_byte_change() {
        let twin = vec![0u8; 64];
        let mut cur = twin.clone();
        cur[10] = 5;
        let runs = diff_runs(&twin, &cur);
        assert_eq!(runs, vec![DiffRun { offset: 10, len: 1 }]);
        assert_eq!(diff_bytes(&runs), 1);
    }

    #[test]
    fn adjacent_changes_coalesce_gaps_do_not() {
        let twin = vec![0u8; 32];
        let mut cur = twin.clone();
        cur[4] = 1;
        cur[5] = 1;
        cur[6] = 1;
        cur[10] = 2;
        let runs = diff_runs(&twin, &cur);
        assert_eq!(
            runs,
            vec![DiffRun { offset: 4, len: 3 }, DiffRun { offset: 10, len: 1 }]
        );
    }

    #[test]
    fn change_to_same_value_is_invisible() {
        // Writing the value that was already there produces no diff —
        // exactly like a real byte-compare diff.
        let twin = vec![9u8; 16];
        let cur = twin.clone();
        assert!(diff_runs(&twin, &cur).is_empty());
    }

    #[test]
    fn false_sharing_round_trip_preserves_both_writers() {
        // Node A writes even slots, node B writes odd slots of one page.
        // Applying both exact diffs at the home must preserve both.
        let home_orig = vec![0u8; 256];
        let twin = home_orig.clone();
        let mut a = twin.clone();
        let mut b = twin.clone();
        for i in (0..256).step_by(2) {
            a[i] = 0xAA;
        }
        for i in (1..256).step_by(2) {
            b[i] = 0xBB;
        }
        let mut home = home_orig.clone();
        apply_runs(&mut home, &a, &diff_runs(&twin, &a));
        apply_runs(&mut home, &b, &diff_runs(&twin, &b));
        for (i, &got) in home.iter().enumerate() {
            let want = if i % 2 == 0 { 0xAA } else { 0xBB };
            assert_eq!(got, want, "byte {i}");
        }
    }

    #[test]
    fn full_page_change_is_one_run() {
        let twin = vec![0u8; 4096];
        let cur = vec![1u8; 4096];
        let runs = diff_runs(&twin, &cur);
        assert_eq!(runs, vec![DiffRun { offset: 0, len: 4096 }]);
    }
}
