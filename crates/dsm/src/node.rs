//! The per-node DSM engine.
//!
//! Home-based lazy release consistency in the GeNIMA style:
//!
//! * Pages have static homes (block-cyclic). The home's copy is the master;
//!   it lives in the home's application memory at the page's own address.
//! * A read miss RDMA-**reads** the page from the home (no home-side
//!   software involvement — exactly the property GeNIMA buys from NIC
//!   remote operations).
//! * A write miss additionally snapshots a **twin**. At a release the twin
//!   vs. current **diff runs** are RDMA-**written** to the home; the release
//!   only proceeds once all diffs are acknowledged (applied).
//! * **Write notices** (dirty page ranges) ride on lock transfers and
//!   barrier traffic; acquirers invalidate noticed pages.
//! * Locks and barriers are built purely from ordered remote writes with
//!   notifications into per-sender mailbox rings; a per-node *service task*
//!   dispatches them. There is no asynchronous protocol processing beyond
//!   that task, mirroring GeNIMA's design goal.

use crate::diff::{diff_bytes, diff_runs};
use crate::layout::{
    self, home_of, is_mailbox, mailbox_slot, page_addr, pages_covering,
};
use crate::msg::{merge_pages, union_ranges, CtlMsg, PageRange};
use crate::stats::DsmStats;
use multiedge::{Endpoint, OpFlags, PAGE_SIZE};
use netsim::sync::Flag;
use netsim::time::Dur;
use netsim::Sim;
use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::rc::Rc;

/// State of one cached (non-home) page.
#[derive(Debug, Default)]
struct PageMeta {
    valid: bool,
    dirty: bool,
    twin: Option<Vec<u8>>,
}

/// Lock-manager state (lives on the lock's home node).
#[derive(Debug, Default)]
struct LockMgr {
    held_by: Option<usize>,
    queue: VecDeque<usize>,
    /// Per page: serial of the latest release that dirtied it.
    page_serials: HashMap<u64, u64>,
    serial: u64,
    /// Per node: serial as of its latest grant.
    last_seen: HashMap<usize, u64>,
}

impl LockMgr {
    /// Notices a grantee must invalidate: pages dirtied by releases it has
    /// not observed.
    fn grant_notices(&mut self, to: usize) -> Vec<PageRange> {
        let seen = self.last_seen.get(&to).copied().unwrap_or(0);
        let mut pages: Vec<u64> = self
            .page_serials
            .iter()
            .filter(|&(_, &s)| s > seen)
            .map(|(&p, _)| p)
            .collect();
        pages.sort_unstable();
        self.last_seen.insert(to, self.serial);
        merge_pages(pages)
    }
}

/// Barrier-manager state (lives on the barrier's home node).
#[derive(Debug, Default)]
struct BarrierMgr {
    epoch: u64,
    arrived: Vec<(usize, Vec<PageRange>)>,
}

/// A local wait for a grant or barrier release, carrying the notices the
/// waiting task must apply once woken.
struct Wait {
    flag: Flag,
    notices: Vec<PageRange>,
}

struct NodeInner {
    id: usize,
    nnodes: usize,
    /// Per-page home overrides (set at allocation time by the cluster);
    /// pages not present fall back to block-cyclic placement.
    homes: Rc<RefCell<HashMap<u64, u16>>>,
    /// `conns[peer]` is the connection id toward `peer`.
    conns: Vec<Option<usize>>,
    pages: HashMap<u64, PageMeta>,
    /// Home-owned pages dirtied locally (master updated in place; only the
    /// notices matter).
    home_dirty: BTreeSet<u64>,
    /// All pages dirtied since the last barrier (feeds barrier notices).
    notices_acc: BTreeSet<u64>,
    lock_waits: HashMap<u32, Wait>,
    lock_mgrs: HashMap<u32, LockMgr>,
    barrier_mgrs: HashMap<u32, BarrierMgr>,
    barrier_waits: HashMap<(u32, u64), Wait>,
    /// Local view of each barrier's next epoch.
    barrier_epochs: HashMap<u32, u64>,
    /// Outgoing mailbox ring cursors, per destination.
    ring: Vec<u64>,
    stats: DsmStats,
}

/// Handle to one node's DSM engine. Cheap to clone.
#[derive(Clone)]
pub struct DsmNode {
    sim: Sim,
    ep: Endpoint,
    inner: Rc<RefCell<NodeInner>>,
}

impl DsmNode {
    /// Wrap `ep` (node `id` of `nnodes`) as a DSM node. `conns[peer]` must
    /// hold the MultiEdge connection toward each peer.
    pub fn new(
        sim: &Sim,
        ep: Endpoint,
        id: usize,
        nnodes: usize,
        conns: Vec<Option<usize>>,
        homes: Rc<RefCell<HashMap<u64, u16>>>,
    ) -> Self {
        Self {
            sim: sim.clone(),
            ep,
            inner: Rc::new(RefCell::new(NodeInner {
                id,
                nnodes,
                homes,
                conns,
                pages: HashMap::new(),
                home_dirty: BTreeSet::new(),
                notices_acc: BTreeSet::new(),
                lock_waits: HashMap::new(),
                lock_mgrs: HashMap::new(),
                barrier_mgrs: HashMap::new(),
                barrier_waits: HashMap::new(),
                barrier_epochs: HashMap::new(),
                ring: vec![0; nnodes],
                stats: DsmStats::default(),
            })),
        }
    }

    /// This node's rank.
    pub fn id(&self) -> usize {
        self.inner.borrow().id
    }

    /// Cluster size.
    pub fn nodes(&self) -> usize {
        self.inner.borrow().nnodes
    }

    /// The simulator handle.
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// The underlying MultiEdge endpoint.
    pub fn endpoint(&self) -> &Endpoint {
        &self.ep
    }

    /// DSM statistics snapshot.
    pub fn stats(&self) -> DsmStats {
        self.inner.borrow().stats
    }

    /// Model `d` of application computation: virtual time advances and the
    /// application CPU is accounted busy.
    pub async fn compute(&self, d: Dur) {
        self.ep.charge_app(d);
        self.inner.borrow_mut().stats.compute_ns += d.as_nanos();
        netsim::sync::sleep(&self.sim, d).await;
    }

    /// Home node of `page`: allocation-time placement if set, else
    /// block-cyclic fallback.
    pub fn home(&self, page: u64) -> usize {
        let inner = self.inner.borrow();
        if let Some(&h) = inner.homes.borrow().get(&page) {
            return h as usize;
        }
        home_of(page, inner.nnodes)
    }

    // ------------------------------------------------------------------
    // Shared-memory access
    // ------------------------------------------------------------------

    /// Batched prefetch: fault in every page covering any of `ranges`,
    /// issuing all fetches before waiting (one pipelined burst instead of
    /// one round trip per range).
    pub async fn fetch_ranges(&self, ranges: &[(u64, usize)]) {
        let t0 = self.sim.now();
        let mut handles = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        for &(addr, len) in ranges {
            for page in pages_covering(addr, len) {
                if !seen.insert(page) {
                    continue;
                }
                let is_home = self.home(page) == self.id();
                let valid = is_home
                    || self
                        .inner
                        .borrow()
                        .pages
                        .get(&page)
                        .map(|m| m.valid)
                        .unwrap_or(false);
                if is_home || valid {
                    continue;
                }
                let home = self.home(page);
                let conn = self.conn_to(home);
                let a = page_addr(page);
                let h = self.ep.read(conn, a, a, PAGE_SIZE, OpFlags::RELAXED).await;
                self.inner.borrow_mut().stats.page_fetches += 1;
                handles.push((page, h));
            }
        }
        if handles.is_empty() {
            return;
        }
        for (page, h) in handles {
            h.wait().await;
            let mut inner = self.inner.borrow_mut();
            inner.pages.entry(page).or_default().valid = true;
        }
        let dt = self.sim.now().since(t0);
        self.inner.borrow_mut().stats.data_wait_ns += dt.as_nanos();
    }

    /// Ensure every page covering `[addr, addr+len)` is locally valid,
    /// fetching missing pages from their homes in parallel.
    pub async fn fetch_range(&self, addr: u64, len: usize) {
        let t0 = self.sim.now();
        let mut handles = Vec::new();
        {
            let pages = pages_covering(addr, len);
            for page in pages {
                let is_home = self.home(page) == self.id();
                let valid = is_home
                    || self
                        .inner
                        .borrow()
                        .pages
                        .get(&page)
                        .map(|m| m.valid)
                        .unwrap_or(false);
                if is_home || valid {
                    continue;
                }
                let home = self.home(page);
                let conn = self.conn_to(home);
                let a = page_addr(page);
                let h = self
                    .ep
                    .read(conn, a, a, PAGE_SIZE, OpFlags::RELAXED)
                    .await;
                self.inner.borrow_mut().stats.page_fetches += 1;
                handles.push((page, h));
            }
        }
        if handles.is_empty() {
            return;
        }
        for (page, h) in handles {
            h.wait().await;
            let mut inner = self.inner.borrow_mut();
            let meta = inner.pages.entry(page).or_default();
            meta.valid = true;
        }
        let dt = self.sim.now().since(t0);
        self.inner.borrow_mut().stats.data_wait_ns += dt.as_nanos();
    }

    /// Read shared memory (fetching pages as needed).
    pub async fn read_bytes(&self, addr: u64, len: usize) -> Vec<u8> {
        self.fetch_range(addr, len).await;
        self.ep.mem_read(addr, len)
    }

    /// Write shared memory: write-faults fetch the page and snapshot a twin
    /// so an exact diff can be flushed at the next release.
    pub async fn write_bytes(&self, addr: u64, data: &[u8]) {
        if data.is_empty() {
            return;
        }
        self.fetch_range(addr, data.len()).await;
        {
            for page in pages_covering(addr, data.len()) {
                let is_home = self.home(page) == self.id();
                let mut inner = self.inner.borrow_mut();
                inner.notices_acc.insert(page);
                if is_home {
                    inner.home_dirty.insert(page);
                } else {
                    let meta = inner.pages.entry(page).or_default();
                    debug_assert!(meta.valid, "write fault must have fetched");
                    meta.dirty = true;
                    if meta.twin.is_none() {
                        // Endpoint memory lives behind its own RefCell, so
                        // snapshotting here is safe.
                        meta.twin = Some(self.ep.mem_read(page_addr(page), PAGE_SIZE));
                    }
                }
            }
        }
        self.ep.mem_write(addr, data);
    }

    // ------------------------------------------------------------------
    // Release / acquire machinery
    // ------------------------------------------------------------------

    /// Flush all dirty pages' diffs to their homes; returns the released
    /// page set (merged ranges) for use as write notices.
    pub async fn flush_dirty(&self) -> Vec<PageRange> {
        let dirty_pages: Vec<u64> = {
            let inner = self.inner.borrow();
            inner
                .pages
                .iter()
                .filter(|(_, m)| m.dirty)
                .map(|(&p, _)| p)
                .collect()
        };
        let mut released: Vec<u64> = dirty_pages.clone();
        let mut handles = Vec::new();
        for page in dirty_pages {
            let twin = {
                let mut inner = self.inner.borrow_mut();
                let meta = inner.pages.get_mut(&page).expect("dirty page");
                meta.dirty = false;
                meta.twin.take().expect("dirty page has twin")
            };
            let current = self.ep.mem_read(page_addr(page), PAGE_SIZE);
            let runs = diff_runs(&twin, &current);
            let home = self.home(page);
            let conn = self.conn_to(home);
            {
                let mut inner = self.inner.borrow_mut();
                inner.stats.diff_ops += runs.len() as u64;
                inner.stats.diff_bytes += diff_bytes(&runs) as u64;
            }
            for run in runs {
                let a = page_addr(page) + run.offset as u64;
                let h = self
                    .ep
                    .write(conn, a, a, run.len, OpFlags::RELAXED)
                    .await;
                handles.push(h);
            }
        }
        // Home-owned dirty pages: master already updated in place; only the
        // notices matter.
        {
            let mut inner = self.inner.borrow_mut();
            let home_dirty = std::mem::take(&mut inner.home_dirty);
            released.extend(home_dirty);
        }
        for h in handles {
            h.wait().await;
        }
        released.sort_unstable();
        released.dedup();
        merge_pages(released)
    }

    /// Flush one page's diff if dirty (used when an invalidation hits a
    /// locally dirty page — only possible under application races or
    /// cross-lock false sharing).
    async fn flush_one(&self, page: u64) {
        let twin = {
            let mut inner = self.inner.borrow_mut();
            match inner.pages.get_mut(&page) {
                Some(m) if m.dirty => {
                    m.dirty = false;
                    m.twin.take()
                }
                _ => None,
            }
        };
        let Some(twin) = twin else { return };
        let current = self.ep.mem_read(page_addr(page), PAGE_SIZE);
        let runs = diff_runs(&twin, &current);
        let conn = self.conn_to(self.home(page));
        let mut handles = Vec::new();
        for run in runs {
            let a = page_addr(page) + run.offset as u64;
            handles.push(self.ep.write(conn, a, a, run.len, OpFlags::RELAXED).await);
        }
        for h in handles {
            h.wait().await;
        }
    }

    /// Invalidate noticed pages (the acquire side of LRC).
    async fn invalidate(&self, notices: &[PageRange]) {
        for r in notices {
            for page in r.start..r.start + r.count as u64 {
                let is_home = self.home(page) == self.id();
                let (present, dirty) = {
                    let inner = self.inner.borrow();
                    match inner.pages.get(&page) {
                        Some(m) => (true, m.dirty),
                        None => (false, false),
                    }
                };
                if is_home || !present {
                    continue;
                }
                if dirty {
                    self.flush_one(page).await;
                }
                let mut inner = self.inner.borrow_mut();
                let mut was_valid = false;
                if let Some(m) = inner.pages.get_mut(&page) {
                    was_valid = m.valid;
                    m.valid = false;
                    m.twin = None;
                    m.dirty = false;
                }
                if was_valid {
                    inner.stats.invalidations += 1;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Locks
    // ------------------------------------------------------------------

    fn lock_manager(&self, lock: u32) -> usize {
        (lock as usize) % self.inner.borrow().nnodes
    }

    /// Acquire lock `lock` (GeNIMA-style: request to the manager, grant
    /// carries write notices to invalidate).
    pub async fn lock(&self, lock: u32) {
        let t0 = self.sim.now();
        let flag = Flag::new(&self.sim);
        {
            let mut inner = self.inner.borrow_mut();
            let prev = inner.lock_waits.insert(
                lock,
                Wait {
                    flag: flag.clone(),
                    notices: Vec::new(),
                },
            );
            assert!(prev.is_none(), "double acquire of lock {lock} on one node");
        }
        let mgr = self.lock_manager(lock);
        self.deliver(mgr, CtlMsg::LockRequest { lock }).await;
        flag.wait().await;
        let notices = {
            let mut inner = self.inner.borrow_mut();
            inner.lock_waits.remove(&lock).expect("wait present").notices
        };
        self.invalidate(&notices).await;
        let mut inner = self.inner.borrow_mut();
        inner.stats.lock_acquires += 1;
        inner.stats.sync_ns += self.sim.now().since(t0).as_nanos();
    }

    /// Release lock `lock`: flush diffs, then hand the notices to the
    /// manager.
    pub async fn unlock(&self, lock: u32) {
        let t0 = self.sim.now();
        let notices = self.flush_dirty().await;
        let mgr = self.lock_manager(lock);
        self.deliver(mgr, CtlMsg::LockRelease { lock, notices }).await;
        let mut inner = self.inner.borrow_mut();
        inner.stats.sync_ns += self.sim.now().since(t0).as_nanos();
    }

    // ------------------------------------------------------------------
    // Barriers
    // ------------------------------------------------------------------

    fn barrier_manager(&self, barrier: u32) -> usize {
        (barrier as usize) % self.inner.borrow().nnodes
    }

    /// Global barrier `barrier`: flush diffs, exchange write notices through
    /// the manager, invalidate what others dirtied.
    pub async fn barrier(&self, barrier: u32) {
        let t0 = self.sim.now();
        let flushed = self.flush_dirty().await;
        let _ = flushed; // accumulated in notices_acc already
        let (epoch, notices, flag) = {
            let mut inner = self.inner.borrow_mut();
            let epoch = *inner.barrier_epochs.entry(barrier).or_insert(0);
            inner.barrier_epochs.insert(barrier, epoch + 1);
            let pages: Vec<u64> = std::mem::take(&mut inner.notices_acc).into_iter().collect();
            let notices = merge_pages(pages);
            let flag = Flag::new(&self.sim);
            inner.barrier_waits.insert(
                (barrier, epoch),
                Wait {
                    flag: flag.clone(),
                    notices: Vec::new(),
                },
            );
            (epoch, notices, flag)
        };
        let mgr = self.barrier_manager(barrier);
        self.deliver(
            mgr,
            CtlMsg::BarrierArrive {
                barrier,
                epoch,
                notices,
            },
        )
        .await;
        flag.wait().await;
        let notices = {
            let mut inner = self.inner.borrow_mut();
            inner
                .barrier_waits
                .remove(&(barrier, epoch))
                .expect("barrier wait")
                .notices
        };
        self.invalidate(&notices).await;
        let mut inner = self.inner.borrow_mut();
        inner.stats.barriers += 1;
        inner.stats.sync_ns += self.sim.now().since(t0).as_nanos();
    }

    // ------------------------------------------------------------------
    // Control plane
    // ------------------------------------------------------------------

    fn conn_to(&self, peer: usize) -> usize {
        self.inner.borrow().conns[peer].expect("connection to peer")
    }

    /// Run a message addressed to this node through the state machine,
    /// following any self-addressed outputs locally and sending the rest
    /// over the wire.
    pub async fn process_local(&self, from: usize, msg: CtlMsg) {
        let me = self.id();
        let mut inbox: VecDeque<(usize, CtlMsg)> = VecDeque::new();
        inbox.push_back((from, msg));
        while let Some((f, m)) = inbox.pop_front() {
            for (to, out) in self.handle_ctl(f, m) {
                if to == me {
                    inbox.push_back((me, out));
                } else {
                    self.send_ctl(to, out).await;
                }
            }
        }
    }

    /// Application-side send: short-circuits self-addressed messages.
    async fn deliver(&self, to: usize, msg: CtlMsg) {
        if to == self.id() {
            self.process_local(self.id(), msg).await;
        } else {
            self.send_ctl(to, msg).await;
        }
    }

    /// Pure control-message state machine; returns messages to send.
    fn handle_ctl(&self, from: usize, msg: CtlMsg) -> Vec<(usize, CtlMsg)> {
        let mut out = Vec::new();
        let mut inner = self.inner.borrow_mut();
        match msg {
            CtlMsg::LockRequest { lock } => {
                let mgr = inner.lock_mgrs.entry(lock).or_default();
                if mgr.held_by.is_none() {
                    mgr.held_by = Some(from);
                    let notices = mgr.grant_notices(from);
                    out.push((from, CtlMsg::LockGrant { lock, notices }));
                } else {
                    mgr.queue.push_back(from);
                }
            }
            CtlMsg::LockGrant { lock, notices } => {
                let w = inner
                    .lock_waits
                    .get_mut(&lock)
                    .expect("grant without a pending acquire");
                w.notices = notices;
                w.flag.fire();
            }
            CtlMsg::LockRelease { lock, notices } => {
                let mgr = inner.lock_mgrs.entry(lock).or_default();
                debug_assert_eq!(mgr.held_by, Some(from), "release by non-holder");
                mgr.serial += 1;
                let s = mgr.serial;
                for page in crate::msg::expand_ranges(&notices) {
                    mgr.page_serials.insert(page, s);
                }
                mgr.held_by = None;
                if let Some(next) = mgr.queue.pop_front() {
                    mgr.held_by = Some(next);
                    let notices = mgr.grant_notices(next);
                    out.push((next, CtlMsg::LockGrant { lock, notices }));
                }
            }
            CtlMsg::BarrierArrive {
                barrier,
                epoch,
                notices,
            } => {
                let nnodes = inner.nnodes;
                let mgr = inner.barrier_mgrs.entry(barrier).or_default();
                debug_assert_eq!(epoch, mgr.epoch, "barrier epoch skew");
                mgr.arrived.push((from, notices));
                if mgr.arrived.len() == nnodes {
                    let arrived = std::mem::take(&mut mgr.arrived);
                    mgr.epoch += 1;
                    for &(node, _) in &arrived {
                        let others: Vec<&[PageRange]> = arrived
                            .iter()
                            .filter(|(n, _)| *n != node)
                            .map(|(_, r)| r.as_slice())
                            .collect();
                        let union = union_ranges(&others);
                        out.push((
                            node,
                            CtlMsg::BarrierRelease {
                                barrier,
                                epoch,
                                notices: union,
                            },
                        ));
                    }
                }
            }
            CtlMsg::BarrierRelease {
                barrier,
                epoch,
                notices,
            } => {
                let w = inner
                    .barrier_waits
                    .get_mut(&(barrier, epoch))
                    .expect("release without a pending barrier wait");
                w.notices = notices;
                w.flag.fire();
            }
        }
        out
    }

    /// Send a control message over the wire: ordered remote write with
    /// notification into the peer's mailbox ring.
    async fn send_ctl(&self, to: usize, msg: CtlMsg) {
        let (conn, slot) = {
            let mut inner = self.inner.borrow_mut();
            let me = inner.id;
            let counter = inner.ring[to];
            inner.ring[to] += 1;
            inner.stats.ctl_msgs += 1;
            (
                inner.conns[to].expect("connection to peer"),
                mailbox_slot(me, counter),
            )
        };
        let bytes = msg.encode();
        let h = self
            .ep
            .write_bytes(conn, slot, bytes, OpFlags::ORDERED_NOTIFY)
            .await;
        // Fire-and-forget: delivery order is guaranteed by the fences and
        // reliability by the transport. (The handle is dropped; completion
        // is not interesting to the sender.)
        let _ = h;
    }

    /// The per-node service loop: dispatch mailbox notifications until the
    /// endpoint's notification channel is closed.
    pub async fn service_loop(&self) {
        while let Some(n) = self.ep.next_notification().await {
            if !is_mailbox(n.addr) {
                continue; // application-level notification, not ours
            }
            let bytes = self.ep.mem_read(n.addr, n.len);
            match CtlMsg::decode(&bytes) {
                Some(msg) => self.process_local(n.from_node, msg).await,
                None => debug_assert!(false, "undecodable control message"),
            }
        }
    }

    /// Page number containing `addr` (helper re-export).
    pub fn page_of(addr: u64) -> u64 {
        layout::page_of(addr)
    }
}
