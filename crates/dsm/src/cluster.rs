//! Building a DSM cluster over MultiEdge endpoints.

use crate::array::{Pod, SharedArray};
use crate::layout::HeapAllocator;
use crate::node::DsmNode;
use crate::stats::DsmStats;
use me_stats::Breakdown;
use multiedge::{Endpoint, SystemConfig};
use netsim::{build_cluster, Sim};
use multiedge::PAGE_SIZE;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// How a shared allocation's pages are distributed over home nodes.
#[derive(Debug, Clone)]
pub enum Dist {
    /// Contiguous chunks: node `i` homes the `i`-th `1/n` of the pages —
    /// aligns homes with the typical SPLASH-2 "node owns a contiguous
    /// block" decomposition (first-touch placement on real systems).
    Block,
    /// Round-robin pages over nodes.
    Cyclic,
    /// Explicit home per page (length must equal the page count).
    Custom(Vec<usize>),
}

/// A complete simulated DSM cluster: network, endpoints, DSM nodes, and
/// the SPMD heap allocator.
pub struct DsmCluster {
    /// The simulator driving everything.
    pub sim: Sim,
    /// One DSM node per cluster node.
    pub nodes: Vec<DsmNode>,
    /// The underlying protocol endpoints (for protocol-level statistics).
    pub endpoints: Vec<Endpoint>,
    /// The system configuration the cluster was built with.
    pub system: Rc<SystemConfig>,
    /// The netsim cluster (for network-level statistics).
    pub cluster: netsim::Cluster,
    alloc: Rc<RefCell<HeapAllocator>>,
    homes: Rc<RefCell<HashMap<u64, u16>>>,
}

impl DsmCluster {
    /// Build the full stack for `system`: rail topology, endpoints,
    /// all-to-all connections, DSM nodes, and one service task per node.
    pub fn build(sim: &Sim, system: SystemConfig) -> DsmCluster {
        let n = system.nodes;
        let cluster = build_cluster(sim, system.cluster_spec());
        let system = Rc::new(system);
        let endpoints = Endpoint::for_cluster(sim, &cluster, system.clone());
        // All-to-all connections: conns[i][j] = connection id at i toward j.
        let mut conns: Vec<Vec<Option<usize>>> = vec![vec![None; n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let (cij, cji) = Endpoint::connect(&endpoints[i], &endpoints[j]);
                conns[i][j] = Some(cij);
                conns[j][i] = Some(cji);
            }
        }
        let homes: Rc<RefCell<HashMap<u64, u16>>> = Rc::new(RefCell::new(HashMap::new()));
        let nodes: Vec<DsmNode> = (0..n)
            .map(|i| {
                DsmNode::new(
                    sim,
                    endpoints[i].clone(),
                    i,
                    n,
                    conns[i].clone(),
                    homes.clone(),
                )
            })
            .collect();
        for node in &nodes {
            let nd = node.clone();
            sim.spawn(format!("dsm-service-{}", node.id()), async move {
                nd.service_loop().await;
            });
        }
        DsmCluster {
            sim: sim.clone(),
            nodes,
            endpoints,
            system,
            cluster,
            alloc: Rc::new(RefCell::new(HeapAllocator::new())),
            homes,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for a 1-node cluster.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// SPMD allocation of a shared array of `len` elements with
    /// [`Dist::Block`] placement.
    pub fn alloc_array<T: Pod>(&self, len: usize) -> SharedArray<T> {
        self.alloc_array_dist(len, Dist::Block)
    }

    /// SPMD allocation with explicit home placement.
    pub fn alloc_array_dist<T: Pod>(&self, len: usize, dist: Dist) -> SharedArray<T> {
        let bytes = (len * T::SIZE) as u64;
        let addr = self.alloc.borrow_mut().alloc(bytes);
        let first_page = addr / PAGE_SIZE as u64;
        let npages = bytes.div_ceil(PAGE_SIZE as u64).max(1);
        let n = self.nodes.len() as u64;
        let mut homes = self.homes.borrow_mut();
        match dist {
            Dist::Block => {
                for p in 0..npages {
                    // Node i homes pages [i*npages/n, (i+1)*npages/n).
                    let home = (p * n / npages).min(n - 1);
                    homes.insert(first_page + p, home as u16);
                }
            }
            Dist::Cyclic => {
                for p in 0..npages {
                    homes.insert(first_page + p, (p % n) as u16);
                }
            }
            Dist::Custom(v) => {
                assert_eq!(v.len() as u64, npages, "custom home map length");
                for (p, &h) in v.iter().enumerate() {
                    assert!(h < n as usize, "home out of range");
                    homes.insert(first_page + p as u64, h as u16);
                }
            }
        }
        SharedArray::new(addr, len)
    }

    /// Bytes of shared heap allocated so far (Table 1's footprint column).
    pub fn footprint_bytes(&self) -> u64 {
        self.alloc.borrow().allocated()
    }

    /// Stop the service tasks: call after all application tasks have
    /// finished so `sim.run()` can reach quiescence.
    pub fn shutdown(&self) {
        for ep in &self.endpoints {
            ep.close_notifications();
        }
    }

    /// Run one application task per node (SPMD), wait for all of them,
    /// shut down the service tasks and drive the simulation to quiescence.
    /// Returns the virtual time (ns) at which the last application task
    /// finished — the parallel execution time.
    pub fn run_spmd<F, Fut>(&self, f: F) -> u64
    where
        F: Fn(DsmNode) -> Fut,
        Fut: std::future::Future<Output = ()> + 'static,
    {
        let mut joins = Vec::new();
        for node in &self.nodes {
            let fut = f(node.clone());
            joins.push(self.sim.spawn(format!("app-{}", node.id()), fut));
        }
        let endpoints = self.endpoints.clone();
        let done_at: Rc<RefCell<u64>> = Rc::new(RefCell::new(0));
        let d = done_at.clone();
        let s = self.sim.clone();
        self.sim.spawn("spmd-closer", async move {
            for j in joins {
                j.await;
            }
            *d.borrow_mut() = s.now().as_nanos();
            for ep in &endpoints {
                ep.close_notifications();
            }
        });
        self.sim.run().expect_quiescent();
        let t = *done_at.borrow();
        t
    }

    /// Cluster-wide DSM statistics (summed).
    pub fn dsm_stats(&self) -> DsmStats {
        let mut s = DsmStats::default();
        for n in &self.nodes {
            s.merge(&n.stats());
        }
        s
    }

    /// Cluster-wide protocol statistics (summed).
    pub fn proto_stats(&self) -> multiedge::ProtoStats {
        let mut s = multiedge::ProtoStats::default();
        for ep in &self.endpoints {
            s.merge(&ep.stats());
        }
        s
    }

    /// Per-node execution-time breakdown for a parallel section that ran
    /// from time zero to `elapsed_ns` of virtual time.
    pub fn breakdowns(&self, elapsed_ns: u64) -> Vec<Breakdown> {
        self.nodes
            .iter()
            .zip(&self.endpoints)
            .map(|(n, ep)| {
                let s = n.stats();
                Breakdown {
                    compute_ns: s.compute_ns,
                    data_wait_ns: s.data_wait_ns,
                    sync_ns: s.sync_ns,
                    protocol_ns: ep.cpu().proto_busy.as_nanos(),
                    elapsed_ns,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiedge::SystemConfig;

    /// Smoke: build, run one barrier on every node, shut down cleanly.
    #[test]
    fn build_and_barrier() {
        let sim = Sim::new(3);
        let dsm = DsmCluster::build(&sim, SystemConfig::one_link_1g(4));
        let elapsed = dsm.run_spmd(|node| async move {
            node.barrier(0).await;
        });
        assert!(elapsed > 0);
        assert_eq!(dsm.dsm_stats().barriers, 4);
    }
}
