//! `dsm` — a GeNIMA-style page-based software distributed shared memory
//! system over MultiEdge.
//!
//! The paper evaluates MultiEdge with real applications running on GeNIMA
//! (Bilas, Liao, Singh — ISCA 1999), a page-based shared-virtual-memory
//! system optimized for networks with remote DMA. This crate implements the
//! same protocol family on top of [`multiedge`]:
//!
//! * home-based lazy release consistency with twins, exact byte diffs, and
//!   write notices ([`node::DsmNode`], [`diff`]),
//! * page fetches as plain RDMA reads from the home — no home-side software,
//! * locks and barriers built from ordered remote writes + notifications
//!   into mailbox rings ([`msg`], [`layout`]) — GeNIMA's "no asynchronous
//!   protocol processing" discipline,
//! * the SPMD shared heap and typed arrays ([`array::SharedArray`]).
//!
//! The 2L (strictly ordered) vs 2Lu (out-of-order permitted) experiments of
//! the paper fall out of the transport configuration: in relaxed mode the
//! DSM issues its bulk data (page fetches, diffs) with no fences and fences
//! only the control messages, exactly the protocol change §4.1 describes
//! for Figure 6.
//!
//! ```
//! use dsm::DsmCluster;
//! use multiedge::SystemConfig;
//! use netsim::Sim;
//!
//! let sim = Sim::new(1);
//! let dsm = DsmCluster::build(&sim, SystemConfig::one_link_1g(4));
//! let arr = dsm.alloc_array::<u64>(1024);
//! dsm.run_spmd(|node| async move {
//!     let me = node.id() as u64;
//!     arr.set(&node, node.id(), me * 10).await;
//!     node.barrier(0).await;
//!     let v = arr.get(&node, (node.id() + 1) % 4).await;
//!     assert_eq!(v, (((node.id() + 1) % 4) as u64) * 10);
//! });
//! ```

pub mod array;
pub mod cluster;
pub mod diff;
pub mod layout;
pub mod msg;
pub mod node;
pub mod stats;

pub use array::{Pod, SharedArray};
pub use cluster::{Dist, DsmCluster};
pub use msg::{CtlMsg, PageRange};
pub use node::DsmNode;
pub use stats::DsmStats;
