//! Per-node DSM statistics feeding the application figures.

/// Counters and time buckets maintained by each [`crate::DsmNode`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DsmStats {
    /// Modeled application compute time (charged via `compute`).
    pub compute_ns: u64,
    /// Time blocked fetching remote pages.
    pub data_wait_ns: u64,
    /// Time blocked in lock acquisition, release flushing and barriers.
    pub sync_ns: u64,
    /// Remote page fetches issued.
    pub page_fetches: u64,
    /// Diff-run RDMA writes issued at releases.
    pub diff_ops: u64,
    /// Bytes of diff data shipped to homes.
    pub diff_bytes: u64,
    /// Lock acquisitions completed.
    pub lock_acquires: u64,
    /// Barrier episodes completed.
    pub barriers: u64,
    /// Pages invalidated by write notices.
    pub invalidations: u64,
    /// Control messages sent over the wire (mailbox writes).
    pub ctl_msgs: u64,
}

impl DsmStats {
    /// Sum counters (time buckets are summed too; average per node if you
    /// need per-node views).
    pub fn merge(&mut self, o: &DsmStats) {
        self.compute_ns += o.compute_ns;
        self.data_wait_ns += o.data_wait_ns;
        self.sync_ns += o.sync_ns;
        self.page_fetches += o.page_fetches;
        self.diff_ops += o.diff_ops;
        self.diff_bytes += o.diff_bytes;
        self.lock_acquires += o.lock_acquires;
        self.barriers += o.barriers;
        self.invalidations += o.invalidations;
        self.ctl_msgs += o.ctl_msgs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums() {
        let mut a = DsmStats {
            compute_ns: 10,
            page_fetches: 3,
            ..Default::default()
        };
        a.merge(&DsmStats {
            compute_ns: 5,
            page_fetches: 1,
            ..Default::default()
        });
        assert_eq!(a.compute_ns, 15);
        assert_eq!(a.page_fetches, 4);
    }
}
