//! Typed views over the shared address space.
//!
//! [`SharedArray<T>`] is the application-facing abstraction: a fixed-length
//! array living in the DSM heap at an address all nodes agree on. Reads and
//! writes go through the owning [`DsmNode`]'s page cache (faulting pages in
//! and creating twins as needed).

use crate::node::DsmNode;
use std::marker::PhantomData;
use std::ops::Range;

/// Plain-old-data element: fixed size, byte-serializable.
pub trait Pod: Copy + 'static {
    /// Serialized size in bytes.
    const SIZE: usize;
    /// Write the value into `buf[..SIZE]`.
    fn write_to(&self, buf: &mut [u8]);
    /// Read a value from `buf[..SIZE]`.
    fn read_from(buf: &[u8]) -> Self;
}

macro_rules! pod_prim {
    ($($t:ty),*) => {$(
        impl Pod for $t {
            const SIZE: usize = std::mem::size_of::<$t>();
            fn write_to(&self, buf: &mut [u8]) {
                buf[..Self::SIZE].copy_from_slice(&self.to_le_bytes());
            }
            fn read_from(buf: &[u8]) -> Self {
                <$t>::from_le_bytes(buf[..Self::SIZE].try_into().unwrap())
            }
        }
    )*};
}

pod_prim!(u8, u16, u32, u64, i8, i16, i32, i64, f32, f64);

impl<T: Pod, const N: usize> Pod for [T; N] {
    const SIZE: usize = T::SIZE * N;
    fn write_to(&self, buf: &mut [u8]) {
        for (i, v) in self.iter().enumerate() {
            v.write_to(&mut buf[i * T::SIZE..]);
        }
    }
    fn read_from(buf: &[u8]) -> Self {
        std::array::from_fn(|i| T::read_from(&buf[i * T::SIZE..]))
    }
}

/// A shared, fixed-length, typed array in DSM space.
#[derive(Debug)]
pub struct SharedArray<T: Pod> {
    base: u64,
    len: usize,
    _pd: PhantomData<T>,
}

// Manual impls: `T` need not be Clone/Copy-bounded at the struct level.
impl<T: Pod> Clone for SharedArray<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: Pod> Copy for SharedArray<T> {}

impl<T: Pod> SharedArray<T> {
    /// Wrap an allocated region (used by `DsmCluster::alloc_array`).
    pub(crate) fn new(base: u64, len: usize) -> Self {
        Self {
            base,
            len,
            _pd: PhantomData,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Virtual address of element `i`.
    pub fn addr(&self, i: usize) -> u64 {
        debug_assert!(i <= self.len);
        self.base + (i * T::SIZE) as u64
    }

    /// Read `range` of elements via `node`'s cache.
    pub async fn read(&self, node: &DsmNode, range: Range<usize>) -> Vec<T> {
        assert!(range.end <= self.len, "read past end of SharedArray");
        let bytes = node
            .read_bytes(self.addr(range.start), (range.end - range.start) * T::SIZE)
            .await;
        bytes
            .chunks_exact(T::SIZE)
            .map(T::read_from)
            .collect()
    }

    /// Write `data` starting at element `start` via `node`'s cache.
    pub async fn write(&self, node: &DsmNode, start: usize, data: &[T]) {
        assert!(start + data.len() <= self.len, "write past end");
        let mut bytes = vec![0u8; data.len() * T::SIZE];
        for (i, v) in data.iter().enumerate() {
            v.write_to(&mut bytes[i * T::SIZE..]);
        }
        node.write_bytes(self.addr(start), &bytes).await;
    }

    /// Read one element.
    pub async fn get(&self, node: &DsmNode, i: usize) -> T {
        assert!(i < self.len, "index out of bounds");
        let bytes = node.read_bytes(self.addr(i), T::SIZE).await;
        T::read_from(&bytes)
    }

    /// Write one element.
    pub async fn set(&self, node: &DsmNode, i: usize, v: T) {
        assert!(i < self.len, "index out of bounds");
        let mut buf = vec![0u8; T::SIZE];
        v.write_to(&mut buf);
        node.write_bytes(self.addr(i), &buf).await;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pod_round_trips() {
        let mut buf = [0u8; 16];
        42u32.write_to(&mut buf);
        assert_eq!(u32::read_from(&buf), 42);
        (-7i64).write_to(&mut buf);
        assert_eq!(i64::read_from(&buf), -7);
        3.25f64.write_to(&mut buf);
        assert_eq!(f64::read_from(&buf), 3.25);
        [1.5f64, -2.5].write_to(&mut buf);
        assert_eq!(<[f64; 2]>::read_from(&buf), [1.5, -2.5]);
        assert_eq!(<[f64; 2]>::SIZE, 16);
    }

    #[test]
    fn addresses_scale_by_element_size() {
        let a: SharedArray<u64> = SharedArray::new(0x1000, 100);
        assert_eq!(a.addr(0), 0x1000);
        assert_eq!(a.addr(3), 0x1018);
        assert_eq!(a.len(), 100);
        assert!(!a.is_empty());
    }
}
