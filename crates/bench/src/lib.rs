//! `multiedge-bench` — workload drivers and harness plumbing for
//! reproducing every table and figure of the MultiEdge paper.
//!
//! The actual figure/table harnesses live in `benches/` (custom `cargo
//! bench` targets); this library hosts the reusable drivers:
//!
//! * [`micro`] — the paper's ping-pong / one-way / two-way micro-benchmarks
//!   (Figure 2 and the §4 network statistics).

pub mod appfig;
pub mod backplane;
pub mod chaos;
pub mod micro;
pub mod scale;
pub mod doctor;
pub mod telemetry;
pub mod triage;

pub use appfig::{app_figure, workloads_for_env};
pub use micro::{
    default_iters, fig2_sizes, run_micro, run_micro_sampled, run_micro_with_plan, MicroKind,
    MicroResult,
};
