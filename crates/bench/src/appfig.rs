//! Shared driver for the application figures (3, 4, 5, 6).
//!
//! Each figure harness picks a system configuration and a set of cluster
//! sizes; this module runs every Table 1 workload, prints the speedup
//! table, the execution-time breakdowns and the network-level statistics
//! the corresponding paper figure plots.

use apps::table::{scaled_workloads, tiny_workloads};
use apps::workload::{run_app, AppRun, Workload};
use me_stats::table::{fmt_f, fmt_pct};
use me_stats::Table;
use multiedge::SystemConfig;

/// Problem-size scale selected by `MULTIEDGE_SCALE` (tiny | scaled).
pub fn workloads_for_env() -> Vec<Box<dyn Workload>> {
    match std::env::var("MULTIEDGE_SCALE").as_deref() {
        Ok("tiny") => tiny_workloads(),
        _ => scaled_workloads(),
    }
}

/// Run every workload on every node count; print speedups, breakdowns and
/// network statistics. Returns all runs for further inspection.
pub fn app_figure(
    figure: &str,
    mk_system: impl Fn(usize) -> SystemConfig,
    node_counts: &[usize],
) -> Vec<AppRun> {
    let workloads = workloads_for_env();
    let mut all: Vec<AppRun> = Vec::new();
    // Speedup table (one row per app, one column per node count).
    let mut headers: Vec<String> = vec!["app".into()];
    headers.extend(node_counts.iter().map(|n| format!("S({n})")));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut speedups = Table::new(format!("{figure}: speedups"), &headers_ref);
    for w in &workloads {
        let mut row = vec![w.name().to_string()];
        for &n in node_counts {
            let run = run_app(mk_system(n), w.as_ref());
            row.push(fmt_f(run.speedup()));
            all.push(run);
        }
        speedups.row(row);
    }
    speedups.print();

    // Breakdown + network statistics at the largest node count.
    let &max_n = node_counts.iter().max().expect("non-empty node counts");
    let mut bd = Table::new(
        format!("{figure}: execution-time breakdown at {max_n} nodes"),
        &[
            "app", "compute", "data-wait", "sync", "other", "protoCPU",
        ],
    );
    let mut net = Table::new(
        format!("{figure}: network statistics at {max_n} nodes"),
        &[
            "app",
            "ooo-frames",
            "extra-traffic",
            "rx-irq-frac",
            "retransmits",
            "drops",
            "reorder-peak",
        ],
    );
    for run in all.iter().filter(|r| r.nodes == max_n) {
        let b = &run.breakdown;
        bd.row(vec![
            run.name.to_string(),
            fmt_pct(b.frac(b.compute_ns)),
            fmt_pct(b.frac(b.data_wait_ns)),
            fmt_pct(b.frac(b.sync_ns)),
            fmt_pct(b.frac(b.other_ns())),
            fmt_pct(run.protocol_cpu_fraction()),
        ]);
        net.row(vec![
            run.name.to_string(),
            fmt_pct(run.proto.ooo_fraction()),
            fmt_pct(run.extra_traffic_fraction()),
            fmt_pct(run.proto.rx_interrupt_fraction()),
            format!("{}", run.proto.retransmits()),
            format!("{}", run.net.drops_overflow + run.net.drops_loss),
            format!("{}", run.proto.reorder_peak),
        ]);
    }
    bd.print();
    net.print();
    all
}
