//! Time-resolved telemetry cells: drivers behind `cargo bench --bench
//! telemetry`.
//!
//! The aggregate benches answer "how much, in total"; these cells answer
//! "when". Each one runs a workload with the interval sampler armed
//! ([`me_trace::Timeline`]) and returns the per-interval rows next to the
//! end-of-run aggregates so the harness can enforce the telemetry plane's
//! two core promises:
//!
//! 1. **Exact reconciliation** — for every monotone [`ProtoStats`]
//!    counter, `base + Σ per-interval deltas == end-of-run value`, no
//!    sampling loss, no off-by-one at the edges ([`reconcile_proto`]).
//! 2. **Observational cost only** — the sampler adds no allocations to
//!    the datapath and ≤5% frames/wall-s (gated in the bench binary,
//!    which owns the counting allocator and the wall clock).
//!
//! Three deterministic cells cover the three runtimes the timeline plane
//! is wired through: the simulator endpoint under a rail outage
//! ([`failover_telemetry`]), the sharded engine under incast fan-in
//! ([`incast_telemetry`] — the per-interval shard imbalance index names
//! the hot shard), and the wire-protocol endpoint over a chaos-wrapped
//! backplane ([`wire_telemetry`]).

use crate::micro::{run_micro_sampled, MicroKind, MicroResult};
use crate::scale::{incast_cell, run_scale_cell_sampled, ScaleCellResult};
use bytes::Bytes;
use me_trace::{imbalance, SpanRecorder, Timeline};
use multiedge::backplane::{
    drive, Backplane, ChaosConfig, ChaosStats, FaultBackplane, SimBackplane, WireEndpoint,
};
use multiedge::{OpFlags, ProtoStats, SystemConfig};
use netsim::shard::ShardMode;
use netsim::time::{ms, us};
use netsim::{build_cluster, FaultPlan, Sim};

/// Exact reconciliation gate: every monotone [`ProtoStats`] counter in
/// `end` must equal the timeline's `base + Σ retained deltas` for the
/// column of the same name.
///
/// # Errors
///
/// Returns the first counter whose telescoped sum disagrees with the
/// end-of-run aggregate (or that the timeline does not carry at all).
pub fn reconcile_proto(tl: &Timeline, end: &ProtoStats) -> Result<(), String> {
    for (name, value) in end.monotone_counters() {
        let id = tl
            .source_id(name)
            .ok_or_else(|| format!("timeline has no column {name}"))?;
        let sum = tl.base_raw(id) + tl.column_sum(id);
        if sum != value {
            return Err(format!(
                "{name}: base + Σ deltas = {sum}, end-of-run = {value}"
            ));
        }
    }
    Ok(())
}

/// Sum of the per-row deltas of two counter columns at row `i`.
fn row_delta2(tl: &Timeline, i: usize, a: &str, b: &str) -> u64 {
    let (ia, ib) = (tl.source_id(a).expect(a), tl.source_id(b).expect(b));
    let (_, vals) = tl.row(i);
    vals[ia.index()] + vals[ib.index()]
}

// ---------------------------------------------------------------------------
// Failover cell (simulator endpoint)
// ---------------------------------------------------------------------------

/// Result of [`failover_telemetry`]: the sampled micro run plus the
/// derived interval facts the gates consume.
pub struct FailoverTelemetry {
    /// The underlying one-way run (timeline + node-0 end stats inside).
    pub result: MicroResult,
    /// The timeline rendered as a schema-versioned JSONL artifact.
    pub jsonl: String,
    /// Retained rows.
    pub rows: usize,
    /// Intervals whose retransmit delta (NACK + RTO) was non-zero.
    pub retransmit_intervals: usize,
    /// Intervals during which rail 1's health gauge read `Dead`.
    pub rail_dead_intervals: usize,
}

/// A 2Lu-1G one-way stream through a scripted rail outage (rail 1 dies
/// early in the stream and is repaired mid-way), sampled every 1 ms of
/// virtual time. The timeline localises the retransmit burst and the
/// dead-rail window to their intervals — the aggregate stats can only say
/// they happened.
pub fn failover_telemetry(smoke: bool) -> FailoverTelemetry {
    let mut cfg = SystemConfig::two_link_1g_unordered(2);
    cfg.seed = 7;
    cfg.proto.rail_cooldown = ms(4);
    // The stream moves ~2 MB (smoke) / ~5 MB at an aggregate ~2 Gb/s:
    // ~8 ms / ~21 ms of virtual time. The outage must land inside that.
    let (down, up) = if smoke { (ms(2), ms(5)) } else { (ms(5), ms(12)) };
    let plan = FaultPlan::new().rail_down(down, 1).rail_up(up, 1);
    let iters = if smoke { 60 } else { 160 };
    let result = run_micro_sampled(&cfg, MicroKind::OneWay, 32 << 10, iters, &plan, Some(ms(1)));
    let tl = result.timeline.as_ref().expect("sampling was requested");
    let end = result.timeline_proto.as_ref().expect("sampling was requested");
    reconcile_proto(tl, end).expect("failover timeline must reconcile exactly");

    let rail1 = tl.source_id("rail1.state").expect("rail 1 gauge");
    let dead = multiedge::rail_state_code(multiedge::RailState::Dead);
    let mut retransmit_intervals = 0;
    let mut rail_dead_intervals = 0;
    for i in 0..tl.len() {
        if row_delta2(tl, i, "retransmits_nack", "retransmits_rto") > 0 {
            retransmit_intervals += 1;
        }
        if tl.row(i).1[rail1.index()] == dead {
            rail_dead_intervals += 1;
        }
    }
    let jsonl = tl.to_jsonl();
    let rows = tl.len();
    FailoverTelemetry {
        result,
        jsonl,
        rows,
        retransmit_intervals,
        rail_dead_intervals,
    }
}

// ---------------------------------------------------------------------------
// Incast cell (sharded engine)
// ---------------------------------------------------------------------------

/// Result of [`incast_telemetry`]: the scale-cell run plus the derived
/// per-interval imbalance series.
pub struct IncastTelemetry {
    /// The underlying sharded run (per-shard timelines inside).
    pub cell: ScaleCellResult,
    /// Shard with the most events overall (expected: the shard owning
    /// node 0, the incast receiver — shard 0 under contiguous partition).
    pub hot_shard: usize,
    /// Highest per-interval imbalance index (`max / mean` events).
    pub peak_imbalance: f64,
    /// Per interval: `(t_ns, imbalance index, hottest shard)`.
    pub intervals: Vec<(u64, f64, usize)>,
}

/// The 8-node incast fan-in on 4 shards, each shard's event counter
/// sampled every 200 µs of virtual time. Because rows are stamped at
/// global window boundaries, the per-shard grids align exactly and each
/// row yields one cross-shard imbalance reading.
pub fn incast_telemetry(smoke: bool, mode: ShardMode) -> IncastTelemetry {
    let bytes = if smoke { 32 << 10 } else { 128 << 10 };
    let cell = incast_cell(8, bytes);
    let r = run_scale_cell_sampled(&cell, 4, mode, Some(us(200)))
        .expect("incast telemetry cell must partition and complete");
    assert_eq!(r.shard_samples.len(), 4, "one timeline per shard");

    let events: Vec<_> = r
        .shard_samples
        .iter()
        .map(|tl| tl.source_id("events").expect("shard timelines carry events"))
        .collect();
    let totals: Vec<u64> = r
        .shard_samples
        .iter()
        .zip(&events)
        .map(|(tl, &id)| tl.base_raw(id) + tl.column_sum(id))
        .collect();
    let (_, hot_shard) = imbalance(&totals);

    let rows = r
        .shard_samples
        .iter()
        .map(Timeline::len)
        .min()
        .unwrap_or(0);
    let mut intervals = Vec::with_capacity(rows);
    let mut peak_imbalance = 0.0f64;
    for i in 0..rows {
        let t = r.shard_samples[0].row(i).0;
        let deltas: Vec<u64> = r
            .shard_samples
            .iter()
            .zip(&events)
            .map(|(tl, &id)| {
                debug_assert_eq!(tl.row(i).0, t, "shard grids must align");
                tl.row(i).1[id.index()]
            })
            .collect();
        let (idx, hot) = imbalance(&deltas);
        peak_imbalance = peak_imbalance.max(idx);
        intervals.push((t, idx, hot));
    }
    IncastTelemetry {
        cell: r,
        hot_shard,
        peak_imbalance,
        intervals,
    }
}

// ---------------------------------------------------------------------------
// Wire cell (backplane endpoint under chaos)
// ---------------------------------------------------------------------------

/// Result of [`wire_telemetry`].
pub struct WireTelemetry {
    /// The finished wire-endpoint timeline (node 0 side).
    pub timeline: Timeline,
    /// The timeline rendered as a schema-versioned JSONL artifact.
    pub jsonl: String,
    /// Node 0's end-of-run protocol stats.
    pub end: ProtoStats,
    /// Node 0 interposer's chaos decisions for the run.
    pub chaos: ChaosStats,
    /// Intervals whose retransmit delta (NACK + RTO) was non-zero.
    pub retransmit_intervals: usize,
}

/// A two-rail wire-endpoint stream over a chaos-wrapped simulator
/// backplane (2% drop): the per-interval rows localise the loss-recovery
/// retransmits; the token-age gauge rides along for watchdog forensics.
pub fn wire_telemetry(smoke: bool) -> WireTelemetry {
    const BUDGET_NS: u64 = 20_000_000_000;
    let cfg = SystemConfig::two_link_1g(2);
    let sim = Sim::new(23);
    let cluster = build_cluster(&sim, cfg.cluster_spec());
    let (bpa, bpb) = SimBackplane::pair(&sim, &cluster);
    let chaos = ChaosConfig::new(23).with_drop(0.02);
    let mut bpa = FaultBackplane::new(bpa, 0, &chaos);
    let mut bpb = FaultBackplane::new(bpb, 1, &chaos);
    let spans = SpanRecorder::disabled();
    let (mut a, mut b) = WireEndpoint::pair(&cfg.proto, bpa.rails(), &spans);
    a.enable_timeline(bpa.rails(), us(200).as_nanos(), 4096, bpa.now_ns());

    let iters = if smoke { 24 } else { 96 };
    let size = 16usize << 10;
    let ops: u64 = iters as u64;
    for i in 0..iters {
        let payload = Bytes::from(vec![(i as u8).wrapping_mul(31) ^ 0x5A; size]);
        a.write(
            0,
            &mut bpa,
            0x10_0000 + (i as u64) * 0x1_0000,
            payload,
            OpFlags::RELAXED,
        );
    }
    drive(
        &mut a,
        &mut bpa,
        &mut b,
        &mut bpb,
        |_, _, _, _| {},
        |a, b| {
            let (sa, sb) = (a.conn_state(0), b.conn_state(0));
            sa.acked == sa.next_seq && sb.applied_below == ops && !sb.has_gap
        },
        BUDGET_NS,
    )
    .expect("wire telemetry stream must complete under 2% loss");

    // One final row after the drive loop so the deltas telescope to the
    // end-of-run aggregates exactly.
    a.sample_timeline(&mut bpa);
    let end = a.stats();
    let timeline = a.take_timeline().expect("timeline was enabled");
    reconcile_proto(&timeline, &end).expect("wire timeline must reconcile exactly");

    let retransmit_intervals = (0..timeline.len())
        .filter(|&i| row_delta2(&timeline, i, "retransmits_nack", "retransmits_rto") > 0)
        .count();
    let jsonl = timeline.to_jsonl();
    WireTelemetry {
        timeline,
        jsonl,
        end,
        chaos: bpa.stats(),
        retransmit_intervals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use me_trace::TimelineDoc;

    #[test]
    fn failover_cell_reconciles_and_localises_the_outage() {
        let f = failover_telemetry(true);
        assert!(f.rows >= 5, "expected a multi-interval run, got {}", f.rows);
        assert!(
            f.retransmit_intervals >= 1,
            "the outage must surface as retransmit intervals"
        );
        assert!(
            f.rail_dead_intervals >= 1,
            "rail 1 must read Dead during the outage window"
        );
        // The JSONL artifact round-trips and carries the same invariant.
        let doc = TimelineDoc::parse_jsonl(&f.jsonl).expect("parse");
        doc.reconcile().expect("telescoping holds in the artifact");
        assert_eq!(doc.samples.len(), f.rows);
    }

    #[test]
    fn incast_cell_names_the_receiver_shard_as_hot() {
        let t = incast_telemetry(true, ShardMode::Cooperative);
        // Node 0 is the incast receiver; the contiguous partition puts it
        // in shard 0, which must dominate the event counts.
        assert_eq!(t.hot_shard, 0, "hot shard must be the receiver's");
        assert!(
            t.peak_imbalance > 1.0,
            "incast must be measurably imbalanced, got {}",
            t.peak_imbalance
        );
        assert!(!t.intervals.is_empty(), "expected per-interval rows");
    }

    #[test]
    fn wire_cell_reconciles_under_chaos() {
        let w = wire_telemetry(true);
        assert!(w.chaos.dropped > 0, "2% drop must fire at least once");
        assert!(
            w.retransmit_intervals >= 1,
            "loss recovery must surface as retransmit intervals"
        );
        assert!(w.end.retransmits() > 0);
        let doc = TimelineDoc::parse_jsonl(&w.jsonl).expect("parse");
        doc.reconcile().expect("telescoping holds in the artifact");
    }
}
