//! The paper's three micro-benchmarks (§3): ping-pong, one-way, two-way.
//!
//! Each runs two nodes of a given [`SystemConfig`] inside the simulator and
//! reports the metrics Figure 2 plots: per-operation latency (one-way
//! memory-to-memory time for ping-pong; host initiation overhead for
//! one-way/two-way), delivered throughput, and node-0 CPU utilization out
//! of 200% — plus the §4 network-level statistics (out-of-order fraction,
//! extra frames, drops).

use multiedge::{Endpoint, OpFlags, SystemConfig};
use netsim::sync::join_all;
use netsim::{build_cluster, Dur, FaultPlan, NetStats, Sim};
use std::rc::Rc;

/// Which micro-benchmark to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroKind {
    /// Request-reply remote writes; equal sizes both ways.
    PingPong,
    /// Back-to-back remote writes in one direction.
    OneWay,
    /// Simultaneous one-way transfers in both directions; throughput is the
    /// sum of both nodes' transfers (§3).
    TwoWay,
}

impl MicroKind {
    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Self::PingPong => "ping-pong",
            Self::OneWay => "one-way",
            Self::TwoWay => "two-way",
        }
    }
}

/// Result of one micro-benchmark cell (one configuration × size).
#[derive(Debug, Clone)]
pub struct MicroResult {
    /// Operation payload size in bytes.
    pub size: usize,
    /// Operations issued (per direction).
    pub iters: usize,
    /// Figure 2a's latency metric in µs: one-way memory-to-memory time for
    /// ping-pong; host overhead to initiate an operation for one/two-way.
    pub latency_us: f64,
    /// Delivered payload throughput in MB/s (two-way sums both directions).
    pub throughput_mb_s: f64,
    /// Node-0 CPU utilization of the two CPUs, in percent of 200%.
    pub cpu_util_pct: f64,
    /// Merged protocol statistics of both nodes.
    pub proto: multiedge::ProtoStats,
    /// Network-level counters (drops etc.).
    pub net: NetStats,
    /// Virtual elapsed time of the measured section, in seconds.
    pub elapsed_s: f64,
    /// Per-endpoint trace snapshots (one per node, node 0 first). Empty
    /// unless the config enables tracing (`SystemConfig::with_tracing`).
    pub traces: Vec<me_trace::TraceSnapshot>,
    /// Cluster-wide op-span snapshot (the recorder is shared by all nodes).
    /// `None` unless the config enables spans (`SystemConfig::with_spans`).
    pub spans: Option<me_trace::SpanSnapshot>,
    /// Per-endpoint, per-connection protocol statistics (outer index: node,
    /// inner index: connection id on that node).
    pub conn_proto: Vec<Vec<multiedge::ProtoStats>>,
    /// Node 0's interval-sampled timeline when the run was started via
    /// [`run_micro_sampled`]; `None` otherwise.
    pub timeline: Option<me_trace::Timeline>,
    /// Node 0's own end-of-run stats (not merged with node 1) — the
    /// aggregate the timeline's per-interval deltas must reconcile with.
    pub timeline_proto: Option<multiedge::ProtoStats>,
    /// Node 0's streaming health verdict when the run was started via
    /// [`run_micro_doctor`]; `None` otherwise.
    pub health: Option<me_trace::HealthReport>,
}

/// How many operations to run for a given size (bounded total volume).
pub fn default_iters(size: usize) -> usize {
    let budget_bytes = 6 << 20; // 6 MiB per direction per cell
    (budget_bytes / size.max(1)).clamp(24, 1500)
}

/// Run one micro-benchmark cell. `cfg.nodes` is forced to 2.
pub fn run_micro(cfg: &SystemConfig, kind: MicroKind, size: usize, iters: usize) -> MicroResult {
    run_micro_with_plan(cfg, kind, size, iters, &FaultPlan::new())
}

/// Like [`run_micro`], but arms a scripted [`FaultPlan`] on the cluster
/// before the drivers start, so the transfer runs through the scripted
/// outages/bursts. An empty plan is exactly `run_micro`.
pub fn run_micro_with_plan(
    cfg: &SystemConfig,
    kind: MicroKind,
    size: usize,
    iters: usize,
    plan: &FaultPlan,
) -> MicroResult {
    run_micro_sampled(cfg, kind, size, iters, plan, None)
}

/// Like [`run_micro_with_plan`], but additionally arms node 0's
/// [`Endpoint::start_timeline`] sampler on connection 0 every
/// `sample_interval` of virtual time (capacity 512 rows — micro runs span
/// milliseconds, and a bigger preallocation would dominate the short
/// runs' wall time), publishing the finished timeline and node 0's
/// end-of-run stats in the result.
pub fn run_micro_sampled(
    cfg: &SystemConfig,
    kind: MicroKind,
    size: usize,
    iters: usize,
    plan: &FaultPlan,
    sample_interval: Option<Dur>,
) -> MicroResult {
    run_micro_inner(cfg, kind, size, iters, plan, sample_interval, None)
}

/// Like [`run_micro_sampled`], but arms the sampler with a streaming
/// [`me_trace::HealthMonitor`] ([`Endpoint::start_timeline_with_health`]):
/// the anomaly detectors run at every sample tick and the verdict lands in
/// [`MicroResult::health`].
pub fn run_micro_doctor(
    cfg: &SystemConfig,
    kind: MicroKind,
    size: usize,
    iters: usize,
    plan: &FaultPlan,
    sample_interval: Dur,
    health: me_trace::HealthConfig,
) -> MicroResult {
    run_micro_inner(
        cfg,
        kind,
        size,
        iters,
        plan,
        Some(sample_interval),
        Some(health),
    )
}

fn run_micro_inner(
    cfg: &SystemConfig,
    kind: MicroKind,
    size: usize,
    iters: usize,
    plan: &FaultPlan,
    sample_interval: Option<Dur>,
    health: Option<me_trace::HealthConfig>,
) -> MicroResult {
    let mut cfg = cfg.clone();
    cfg.nodes = 2;
    let sim = Sim::new(cfg.seed);
    let cluster = build_cluster(&sim, cfg.cluster_spec());
    let cfg = Rc::new(cfg);
    let eps = Endpoint::for_cluster(&sim, &cluster, cfg.clone());
    if cfg.trace_ring > 0 {
        // Wire-time histograms and drop/corrupt events land in node 0's
        // tracer (all endpoint tracers are independent; the network gets one).
        cluster.net.set_tracer(eps[0].tracer());
    }
    cluster.apply_fault_plan(&sim, plan);
    let (c0, c1) = Endpoint::connect(&eps[0], &eps[1]);
    let sampler = sample_interval.map(|iv| match health {
        Some(hc) => eps[0].start_timeline_with_health(c0, iv, 512, hc),
        None => eps[0].start_timeline(c0, iv, 512),
    });

    // Average host-initiation overhead is measured inside the driver tasks.
    let (a, b) = (eps[0].clone(), eps[1].clone());
    let sim2 = sim.clone();
    let elapsed_task = match kind {
        MicroKind::PingPong => {
            let s = sim.clone();
            let t = sim.spawn("pingpong-a", async move {
                let t0 = s.now();
                for _ in 0..iters {
                    let _h = a
                        .write_bytes(c0, 0x1000, vec![1u8; size], OpFlags::RELAXED.with_notify())
                        .await;
                    a.next_notification().await.expect("pong");
                }
                (s.now().since(t0), 0u64)
            });
            let s = sim2;
            sim.spawn("pingpong-b", async move {
                for _ in 0..iters {
                    b.next_notification().await.expect("ping");
                    let _h = b
                        .write_bytes(c1, 0x1000, vec![2u8; size], OpFlags::RELAXED.with_notify())
                        .await;
                }
                let _ = s;
            });
            t
        }
        MicroKind::OneWay => {
            let s = sim.clone();
            sim.spawn("oneway-a", async move {
                let t0 = s.now();
                let mut init_ns = 0u64;
                let mut handles = Vec::with_capacity(iters);
                for _ in 0..iters {
                    let i0 = s.now();
                    let h = a
                        .write_bytes(c0, 0x1000, vec![1u8; size], OpFlags::RELAXED)
                        .await;
                    init_ns += s.now().since(i0).as_nanos();
                    handles.push(h);
                }
                let waits: Vec<_> = handles.iter().map(|h| h.wait()).collect();
                join_all(waits).await;
                (s.now().since(t0), init_ns / iters as u64)
            })
        }
        MicroKind::TwoWay => {
            let s = sim.clone();
            let b2 = b.clone();
            sim.spawn("twoway-b", async move {
                let mut handles = Vec::with_capacity(iters);
                for _ in 0..iters {
                    let h = b2
                        .write_bytes(c1, 0x2000, vec![2u8; size], OpFlags::RELAXED)
                        .await;
                    handles.push(h);
                }
                let waits: Vec<_> = handles.iter().map(|h| h.wait()).collect();
                join_all(waits).await;
            });
            sim.spawn("twoway-a", async move {
                let t0 = s.now();
                let mut init_ns = 0u64;
                let mut handles = Vec::with_capacity(iters);
                for _ in 0..iters {
                    let i0 = s.now();
                    let h = a
                        .write_bytes(c0, 0x1000, vec![1u8; size], OpFlags::RELAXED)
                        .await;
                    init_ns += s.now().since(i0).as_nanos();
                    handles.push(h);
                }
                let waits: Vec<_> = handles.iter().map(|h| h.wait()).collect();
                join_all(waits).await;
                (s.now().since(t0), init_ns / iters as u64)
            })
        }
    };

    let report = sim.run();
    report.expect_quiescent();
    // `finish` consumes the sampler but also feeds the monitor one final
    // row, so snapshot the health verdict through the shared handle after.
    let shared = sampler.as_ref().map(|s| s.shared());
    let timeline = sampler.map(|s| s.finish());
    let health = shared.and_then(|tl| tl.borrow().health_report());
    let timeline_proto = timeline.as_ref().map(|_| eps[0].stats());
    let (elapsed, avg_init_ns) = elapsed_task.try_take().expect("driver finished");
    let elapsed_s = elapsed.as_secs_f64();

    let latency_us = match kind {
        // One-way memory-to-memory time per operation: half the round trip.
        MicroKind::PingPong => elapsed.as_micros_f64() / (2.0 * iters as f64),
        // Host overhead to initiate an operation.
        MicroKind::OneWay | MicroKind::TwoWay => avg_init_ns as f64 / 1e3,
    };
    let dirs = match kind {
        MicroKind::OneWay => 1.0,
        // Ping-pong moves size bytes each way per iteration; two-way reports
        // the sum of both nodes' transfers (§3).
        MicroKind::PingPong | MicroKind::TwoWay => 2.0,
    };
    let throughput_mb_s = if elapsed_s > 0.0 {
        dirs * (size as f64) * (iters as f64) / elapsed_s / 1e6
    } else {
        0.0
    };
    let mut proto = eps[0].stats();
    proto.merge(&eps[1].stats());
    let cpu0 = eps[0].cpu();
    let cpu_util_pct = cpu0.utilization_of_two(elapsed) * 100.0;
    let traces = eps.iter().filter_map(|e| e.tracer().snapshot()).collect();
    let spans = eps[0].span_recorder().snapshot();
    let conn_proto = eps
        .iter()
        .map(|e| (0..e.conn_count()).map(|c| e.conn_stats(c)).collect())
        .collect();
    MicroResult {
        size,
        iters,
        latency_us,
        throughput_mb_s,
        cpu_util_pct,
        proto,
        net: cluster.net.stats(),
        elapsed_s,
        traces,
        spans,
        conn_proto,
        timeline,
        timeline_proto,
        health,
    }
}

/// The size sweep Figure 2 plots.
pub fn fig2_sizes() -> Vec<usize> {
    vec![
        16,
        64,
        256,
        1 << 10,
        4 << 10,
        16 << 10,
        64 << 10,
        256 << 10,
        1 << 20,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_way_1g_saturates_link() {
        // The paper: ≈120 MB/s on 1L-1G (≈95% of nominal 125 MB/s).
        let cfg = SystemConfig::one_link_1g(2);
        let r = run_micro(&cfg, MicroKind::OneWay, 1 << 20, 12);
        assert!(
            r.throughput_mb_s > 110.0 && r.throughput_mb_s <= 125.0,
            "1L-1G one-way got {:.1} MB/s",
            r.throughput_mb_s
        );
    }

    #[test]
    fn one_way_2l_1g_doubles() {
        // The paper: ≈240 MB/s with two links.
        let cfg = SystemConfig::two_link_1g_unordered(2);
        let r = run_micro(&cfg, MicroKind::OneWay, 1 << 20, 12);
        assert!(
            r.throughput_mb_s > 215.0 && r.throughput_mb_s <= 250.0,
            "2L-1G one-way got {:.1} MB/s",
            r.throughput_mb_s
        );
    }

    #[test]
    fn one_way_10g_lands_near_paper() {
        // The paper: ≈1100 MB/s (88% of nominal 1250).
        let cfg = SystemConfig::one_link_10g(2);
        let r = run_micro(&cfg, MicroKind::OneWay, 1 << 20, 24);
        assert!(
            r.throughput_mb_s > 950.0 && r.throughput_mb_s < 1250.0,
            "1L-10G one-way got {:.1} MB/s",
            r.throughput_mb_s
        );
    }

    #[test]
    fn ping_pong_small_latency_is_30us_scale() {
        let cfg = SystemConfig::one_link_10g(2);
        let r = run_micro(&cfg, MicroKind::PingPong, 16, 40);
        assert!(
            (20.0..45.0).contains(&r.latency_us),
            "min latency {:.1}us",
            r.latency_us
        );
    }

    #[test]
    fn host_overhead_is_2us_scale() {
        let cfg = SystemConfig::one_link_1g(2);
        let r = run_micro(&cfg, MicroKind::OneWay, 16, 100);
        assert!(
            (0.9..4.0).contains(&r.latency_us),
            "host overhead {:.2}us",
            r.latency_us
        );
    }

    #[test]
    fn two_way_exceeds_one_way() {
        let cfg = SystemConfig::one_link_1g(2);
        let one = run_micro(&cfg, MicroKind::OneWay, 64 << 10, 40);
        let two = run_micro(&cfg, MicroKind::TwoWay, 64 << 10, 40);
        assert!(
            two.throughput_mb_s > one.throughput_mb_s * 1.5,
            "two-way {:.0} vs one-way {:.0}",
            two.throughput_mb_s,
            one.throughput_mb_s
        );
    }
}
