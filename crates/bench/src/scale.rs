//! Scale harness: 64-node collective traffic on the sharded parallel
//! engine ([`netsim::shard`]).
//!
//! Two traffic cells exercise the patterns the ROADMAP's marquee
//! experiments need — an **all-to-all** transpose (every node writes to
//! every other node) and an **incast** fan-in (everyone writes to node 0) —
//! each runnable at any shard count with *identical workload structure*:
//! connections are created with [`Endpoint::connect_remote`] on both sides
//! in a deterministic mesh order, so connection ids, sequence spaces and
//! frame contents never depend on how the cluster is partitioned.
//!
//! Every run extracts a **timing-independent fingerprint** (per node:
//! operations issued, bytes written, unique data frames/bytes received, and
//! a checksum of the receiving memory regions) plus the eager-mode
//! fault-decision log. The determinism gate asserts these match across
//! shard counts {1, 2, 4}; the perf gate compares frames per wall-second.

use me_trace::Timeline;
use multiedge::{Endpoint, OpFlags, ProtoStats, SystemConfig};
use netsim::shard::{run_sharded, ShardError, ShardMode, ShardNet, ShardRunConfig, ShardStats};
use netsim::sync::join_all;
use netsim::{Dur, FaultDecision, FaultPlan, NetStats};
use std::rc::Rc;
use std::time::{Duration, Instant};

/// Traffic pattern of a scale cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// Every node writes `bytes` to every other node (transpose).
    AllToAll {
        /// Payload bytes per (writer, reader) pair.
        bytes: usize,
    },
    /// Every node except 0 writes `bytes` to node 0 (fan-in).
    Incast {
        /// Payload bytes per sender.
        bytes: usize,
    },
}

/// One scale-cell definition: cluster shape + traffic + optional faults.
#[derive(Debug, Clone)]
pub struct ScaleCell {
    /// Report name.
    pub name: String,
    /// Cluster + protocol configuration (`cfg.nodes`/`cfg.rails` define the
    /// topology; `cfg.seed` seeds the whole run).
    pub cfg: SystemConfig,
    /// Traffic pattern.
    pub pattern: Pattern,
    /// Scripted fault plan replayed on every shard (empty = fault-free).
    pub plan: FaultPlan,
    /// Wall-clock budget per run.
    pub wall_limit: Duration,
}

/// The memory region node `writer` writes into on every destination node.
/// Regions are disjoint per writer so receiver memory is a deterministic
/// function of the delivered data, independent of arrival interleaving.
fn region_addr(writer: usize) -> u64 {
    0x10_0000 + (writer as u64) * 0x8_0000
}

/// Deterministic payload fill byte for a (writer, reader) pair.
fn fill_byte(writer: usize, reader: usize) -> u8 {
    (writer.wrapping_mul(31) ^ reader.wrapping_mul(7)) as u8
}

/// Connection id of the conn from `node` to `peer` under the deterministic
/// mesh order (each node connects to all peers in ascending peer order):
/// peers below `node` keep their index, peers above shift down by one.
pub fn mesh_conn_id(node: usize, peer: usize) -> usize {
    debug_assert_ne!(node, peer);
    peer - usize::from(peer > node)
}

/// Per-node timing-independent fingerprint: `(node, [ops_write,
/// bytes_written, unique data frames recv, unique data bytes recv,
/// memory checksum])`.
pub type NodeFingerprint = (u64, [u64; 5]);

/// What each shard hands back after quiescence.
struct ShardOut {
    fingerprints: Vec<NodeFingerprint>,
    proto: ProtoStats,
    net: NetStats,
    decisions: Vec<FaultDecision>,
}

/// Result of one `(cell, shard count)` run.
#[derive(Debug, Clone)]
pub struct ScaleCellResult {
    /// Cell name.
    pub name: String,
    /// Shard count.
    pub shards: usize,
    /// Whether worker threads were used (else cooperative on one thread).
    pub threaded: bool,
    /// Wall-clock seconds for the whole run (build + simulate + collect).
    pub wall_s: f64,
    /// Virtual seconds simulated.
    pub virtual_s: f64,
    /// Synchronization windows executed.
    pub windows: u64,
    /// Total frames serialized onto any channel, across all shards.
    pub frames: u64,
    /// The headline metric: frames serialized per wall-second.
    pub frames_per_wall_s: f64,
    /// Total simulator events executed, across all shards.
    pub events: u64,
    /// Events per wall-second.
    pub events_per_wall_s: f64,
    /// Sum of per-shard lookahead stalls (windows spent only waiting).
    pub lookahead_stalls: u64,
    /// Per-shard accounting (events, stalls, boundary traffic).
    pub per_shard: Vec<ShardStats>,
    /// Flattened per-node fingerprints, ascending node order.
    pub fingerprint: Vec<NodeFingerprint>,
    /// Eager fault decisions, sorted by `(stream key, attempt)`.
    pub decisions: Vec<FaultDecision>,
    /// Cluster-wide protocol stats (timing-dependent fields included —
    /// reported, but not part of the determinism gate).
    pub proto: ProtoStats,
    /// Cluster-wide network stats (ditto).
    pub net: NetStats,
    /// Per-shard event timelines (one per shard, shard order) when the run
    /// was sampled via [`run_scale_cell_sampled`]; empty otherwise. Grids
    /// are identical across shards, so row `i` of every timeline covers the
    /// same slice of virtual time — feed the per-interval deltas to
    /// [`me_trace::imbalance`] to name the hot shard.
    pub shard_samples: Vec<Timeline>,
    /// Cross-shard health diagnosis over [`ScaleCellResult::shard_samples`]
    /// when the run was started via [`run_scale_cell_doctor`]; `None`
    /// otherwise. A persistently hot shard opens an `IncastImbalance`
    /// incident; identical across [`ShardMode`]s.
    pub shard_health: Option<me_trace::HealthReport>,
}

/// FNV-1a over the memory regions `node` received, per the cell's pattern.
fn memory_checksum(ep: &Endpoint, node: usize, nodes: usize, pattern: Pattern) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |addr: u64, len: usize| {
        // FNV-1a over 8-byte words (tail bytes zero-padded): still a pure
        // function of the region contents, ~8x faster than per-byte.
        let data = ep.mem_read(addr, len);
        let mut chunks = data.chunks_exact(8);
        for c in &mut chunks {
            h = (h ^ u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
                .wrapping_mul(0x100_0000_01b3);
        }
        let mut tail = [0u8; 8];
        let rest = chunks.remainder();
        tail[..rest.len()].copy_from_slice(rest);
        if !rest.is_empty() {
            h = (h ^ u64::from_le_bytes(tail)).wrapping_mul(0x100_0000_01b3);
        }
    };
    match pattern {
        Pattern::AllToAll { bytes } => {
            for writer in (0..nodes).filter(|&w| w != node) {
                eat(region_addr(writer), bytes);
            }
        }
        Pattern::Incast { bytes } => {
            if node == 0 {
                for writer in 1..nodes {
                    eat(region_addr(writer), bytes);
                }
            }
        }
    }
    h
}

/// Build this shard's endpoints, wire the deterministic connection mesh,
/// and spawn the writer tasks.
fn setup_shard(sn: &ShardNet, cfg: &SystemConfig, pattern: Pattern) -> Vec<Endpoint> {
    let nodes = cfg.nodes;
    let rc = Rc::new(cfg.clone());
    sn.net().record_fault_decisions(true);
    let mut eps = Vec::new();
    for &node in sn.local_nodes() {
        let ep = Endpoint::new(sn.sim(), sn.net(), node, sn.nics(node).to_vec(), rc.clone());
        // Mesh connections via connect_remote on *both* sides — also when
        // the peer happens to be local — so the connection tables are
        // bit-identical at every shard count.
        match pattern {
            Pattern::AllToAll { .. } => {
                for peer in (0..nodes).filter(|&p| p != node) {
                    let id = ep.connect_remote(peer, mesh_conn_id(peer, node));
                    debug_assert_eq!(id, mesh_conn_id(node, peer));
                }
            }
            Pattern::Incast { .. } => {
                if node == 0 {
                    for peer in 1..nodes {
                        let id = ep.connect_remote(peer, 0);
                        debug_assert_eq!(id, peer - 1);
                    }
                } else {
                    let id = ep.connect_remote(0, node - 1);
                    debug_assert_eq!(id, 0);
                }
            }
        }
        // Writer tasks: issue all writes, then wait for every completion.
        let writes: Vec<(usize, usize)> = match pattern {
            Pattern::AllToAll { bytes } => (0..nodes)
                .filter(|&p| p != node)
                .map(|p| (p, bytes))
                .collect(),
            Pattern::Incast { bytes } => {
                if node == 0 {
                    Vec::new()
                } else {
                    vec![(0, bytes)]
                }
            }
        };
        if !writes.is_empty() {
            let e = ep.clone();
            sn.sim().spawn(format!("scale-writer-{node}"), async move {
                let mut handles = Vec::with_capacity(writes.len());
                for (peer, bytes) in writes {
                    let conn = mesh_conn_id(node, peer);
                    let data = vec![fill_byte(node, peer); bytes];
                    let h = e
                        .write_bytes(conn, region_addr(node), data, OpFlags::RELAXED)
                        .await;
                    handles.push(h);
                }
                let waits: Vec<_> = handles.iter().map(|h| h.wait()).collect();
                join_all(waits).await;
            });
        }
        eps.push(ep);
    }
    eps
}

/// Extract the shard's fingerprints, stats, and fault-decision log.
fn collect_shard(sn: &ShardNet, eps: Vec<Endpoint>, cfg: &SystemConfig, pattern: Pattern) -> ShardOut {
    let mut fingerprints = Vec::with_capacity(eps.len());
    let mut proto = ProtoStats::default();
    for (ep, &node) in eps.iter().zip(sn.local_nodes()) {
        let st = ep.stats();
        fingerprints.push((
            node as u64,
            [
                st.ops_write,
                st.bytes_written,
                st.data_frames_recv,
                st.data_bytes_recv,
                memory_checksum(ep, node, cfg.nodes, pattern),
            ],
        ));
        proto.merge(&st);
    }
    ShardOut {
        fingerprints,
        proto,
        net: sn.net().stats(),
        decisions: sn.net().take_fault_decisions(),
    }
}

/// Run one cell at one shard count.
pub fn run_scale_cell(
    cell: &ScaleCell,
    shards: usize,
    mode: ShardMode,
) -> Result<ScaleCellResult, ShardError> {
    run_scale_cell_sampled(cell, shards, mode, None)
}

/// Run one cell at one shard count, optionally sampling each shard's event
/// count every `sample_interval` of virtual time (see
/// [`ScaleCellResult::shard_samples`]).
pub fn run_scale_cell_sampled(
    cell: &ScaleCell,
    shards: usize,
    mode: ShardMode,
    sample_interval: Option<Dur>,
) -> Result<ScaleCellResult, ShardError> {
    run_scale_cell_inner(cell, shards, mode, sample_interval, None)
}

/// Like [`run_scale_cell_sampled`], but also runs the cross-shard health
/// diagnosis over the per-shard event timelines after the run (see
/// [`ScaleCellResult::shard_health`]).
pub fn run_scale_cell_doctor(
    cell: &ScaleCell,
    shards: usize,
    mode: ShardMode,
    sample_interval: Dur,
    health: me_trace::HealthConfig,
) -> Result<ScaleCellResult, ShardError> {
    run_scale_cell_inner(cell, shards, mode, Some(sample_interval), Some(health))
}

fn run_scale_cell_inner(
    cell: &ScaleCell,
    shards: usize,
    mode: ShardMode,
    sample_interval: Option<Dur>,
    health: Option<me_trace::HealthConfig>,
) -> Result<ScaleCellResult, ShardError> {
    let spec = cell.cfg.cluster_spec();
    let shard_cfg = ShardRunConfig {
        mode,
        wall_limit: Some(cell.wall_limit),
        sample_interval,
        health,
        ..Default::default()
    };
    let pattern = cell.pattern;
    let plan = (!cell.plan.events().is_empty()).then_some(&cell.plan);
    let t0 = Instant::now();
    let (report, outs) = run_sharded(
        &spec,
        shards,
        cell.cfg.seed,
        plan,
        &shard_cfg,
        |sn| setup_shard(sn, &cell.cfg, pattern),
        |sn, eps| collect_shard(sn, eps, &cell.cfg, pattern),
    )?;
    let wall_s = t0.elapsed().as_secs_f64();

    let mut fingerprint = Vec::new();
    let mut decisions = Vec::new();
    let mut proto = ProtoStats::default();
    let mut net = NetStats::default();
    for out in outs {
        fingerprint.extend(out.fingerprints);
        decisions.extend(out.decisions);
        proto.merge(&out.proto);
        net.drops_overflow += out.net.drops_overflow;
        net.drops_loss += out.net.drops_loss;
        net.drops_link_down += out.net.drops_link_down;
        net.corrupted += out.net.corrupted;
        net.drops_unknown_mac += out.net.drops_unknown_mac;
        net.channel_frames += out.net.channel_frames;
        net.channel_bytes += out.net.channel_bytes;
    }
    fingerprint.sort_by_key(|&(node, _)| node);
    decisions.sort_by_key(|&(key, attempt, ..)| (key, attempt));
    let events: u64 = report.per_shard.iter().map(|s| s.events).sum();
    let lookahead_stalls: u64 = report.per_shard.iter().map(|s| s.idle_windows).sum();
    Ok(ScaleCellResult {
        name: cell.name.clone(),
        shards,
        threaded: report.threaded,
        wall_s,
        virtual_s: report.end_time.as_nanos() as f64 / 1e9,
        windows: report.windows,
        frames: net.channel_frames,
        frames_per_wall_s: if wall_s > 0.0 {
            net.channel_frames as f64 / wall_s
        } else {
            0.0
        },
        events,
        events_per_wall_s: if wall_s > 0.0 { events as f64 / wall_s } else { 0.0 },
        lookahead_stalls,
        per_shard: report.per_shard,
        fingerprint,
        decisions,
        proto,
        net,
        shard_samples: report.samples,
        shard_health: report.health,
    })
}

/// Check two runs' fault-decision logs describe the *same random streams*:
/// identical stream-key sets, and identical `(lost, corrupted)` outcomes
/// for every `(key, attempt)` both runs drew. (Attempt *counts* per channel
/// may legitimately differ across shard counts — retransmission schedules
/// are timing-dependent — but an outcome differing at the same index would
/// mean the streams themselves diverged.)
pub fn decisions_consistent(
    a: &[FaultDecision],
    b: &[FaultDecision],
) -> Result<(), String> {
    use std::collections::{BTreeMap, BTreeSet};
    let keys = |log: &[FaultDecision]| log.iter().map(|d| d.0).collect::<BTreeSet<u64>>();
    let (ka, kb) = (keys(a), keys(b));
    if ka != kb {
        return Err(format!(
            "stream-key sets differ: {} vs {} keys",
            ka.len(),
            kb.len()
        ));
    }
    let map = |log: &[FaultDecision]| {
        log.iter()
            .map(|&(k, at, l, c)| ((k, at), (l, c)))
            .collect::<BTreeMap<(u64, u64), (bool, bool)>>()
    };
    let (ma, mb) = (map(a), map(b));
    for (idx, va) in &ma {
        if let Some(vb) = mb.get(idx) {
            if va != vb {
                return Err(format!(
                    "decision at (key={:#x}, attempt={}) differs: {:?} vs {:?}",
                    idx.0, idx.1, va, vb
                ));
            }
        }
    }
    Ok(())
}

/// The 64-node all-to-all transpose (four 1-GbE rails so switches spread
/// evenly across up to four shards).
pub fn all_to_all_cell(nodes: usize, bytes: usize) -> ScaleCell {
    let mut cfg = SystemConfig::four_link_1g(nodes);
    cfg.name = format!("all-to-all-{nodes}");
    cfg.rails = 16;
    cfg.seed = 11;
    ScaleCell {
        name: format!("all_to_all_{nodes}"),
        cfg,
        pattern: Pattern::AllToAll { bytes },
        plan: FaultPlan::new(),
        wall_limit: Duration::from_secs(240),
    }
}

/// The incast fan-in: every node writes to node 0.
pub fn incast_cell(nodes: usize, bytes: usize) -> ScaleCell {
    let mut cfg = SystemConfig::two_link_1g_unordered(nodes);
    cfg.name = format!("incast-{nodes}");
    cfg.seed = 13;
    ScaleCell {
        name: format!("incast_{nodes}"),
        cfg,
        pattern: Pattern::Incast { bytes },
        plan: FaultPlan::new(),
        wall_limit: Duration::from_secs(240),
    }
}

/// A lossy chaos cell for the determinism gate: stationary loss +
/// corruption, a scripted link flap, a NIC stall, and a burst-error window,
/// all over an 8-node all-to-all.
pub fn lossy_determinism_cell() -> ScaleCell {
    use netsim::time::{ms, us};
    let mut cfg = SystemConfig::two_link_1g_unordered(8);
    cfg.name = "lossy-determinism".to_string();
    cfg.seed = 17;
    cfg.fault.loss_rate = 0.01;
    cfg.fault.corrupt_rate = 0.002;
    let bursty = netsim::FaultTarget::Link { node: 1, rail: 1 };
    let plan = FaultPlan::new()
        .flap_link(ms(2), 3, 0, ms(1), ms(1), 2)
        .nic_stall(ms(4), 5, 1, us(300))
        .burst(ms(1), bursty, netsim::GilbertElliott::bursty_loss(0.02, 0.3, 0.6))
        .clear_burst(ms(6), bursty);
    ScaleCell {
        name: "lossy_determinism_8".to_string(),
        cfg,
        pattern: Pattern::AllToAll { bytes: 6 << 10 },
        plan,
        wall_limit: Duration::from_secs(120),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_conn_ids_are_mutually_consistent() {
        let nodes = 8;
        for i in 0..nodes {
            let ids: Vec<usize> = (0..nodes)
                .filter(|&j| j != i)
                .map(|j| mesh_conn_id(i, j))
                .collect();
            // Ascending-peer order yields 0..nodes-2 exactly.
            assert_eq!(ids, (0..nodes - 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn tiny_all_to_all_fingerprints_match_across_shard_counts() {
        let cell = all_to_all_cell(8, 2 << 10);
        let base = run_scale_cell(&cell, 1, ShardMode::Cooperative).unwrap();
        for shards in [2, 4] {
            let r = run_scale_cell(&cell, shards, ShardMode::Cooperative).unwrap();
            assert_eq!(base.fingerprint, r.fingerprint, "shards={shards}");
        }
    }

    #[test]
    fn tiny_incast_completes_and_checksums() {
        let cell = incast_cell(8, 4 << 10);
        let r = run_scale_cell(&cell, 2, ShardMode::Cooperative).unwrap();
        // 7 senders × 4 KiB delivered to node 0.
        assert_eq!(r.proto.bytes_written, 7 * (4 << 10));
        assert_eq!(r.proto.data_bytes_recv, 7 * (4 << 10));
    }
}
