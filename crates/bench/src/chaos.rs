//! Chaos soak cells: seeded fault schedules driven through the
//! backend-agnostic [`FaultBackplane`] interposer over both transports.
//!
//! Each cell is one [`ChaosConfig`] schedule — random loss, duplication,
//! reordering, corruption, burst processes, scripted rail blackouts — run
//! with the identical [`WireEndpoint`] protocol driver over the netsim
//! fabric and over real UDP loopback sockets. A cell passes when both
//! backends finish with exactly-once delivery, intact fence ordering and
//! the **same timing-independent fingerprint**; rail-death schedules must
//! additionally leave flight-recorder post-mortem artifacts in the
//! configured dump directory. The `chaos` bench harness aggregates the
//! cells into `results/BENCH_chaos.json` (see `docs/FAULTS.md`).

use std::path::Path;

use bytes::Bytes;
use me_trace::{FlightConfig, FlightRecorder, SpanRecorder};
use multiedge::backplane::{
    drive_with, Backplane, ChaosConfig, ChaosStats, DriveLimits, FaultBackplane, SimBackplane,
    UdpFabric, WireEndpoint, WireError,
};
use multiedge::{OpFlags, ProtoConfig, SystemConfig};
use netsim::time::ms;
use netsim::{build_cluster, FaultPlan, FaultTarget, GilbertElliott, Sim};

use crate::backplane::WireBackend;

/// One seeded chaos schedule plus its workload size.
pub struct ChaosCellSpec {
    /// Cell name (also the dump-directory component).
    pub name: &'static str,
    /// The fault schedule, shared verbatim by both backends.
    pub chaos: ChaosConfig,
    /// Write operations issued by the workload.
    pub ops: usize,
    /// Whether the schedule is expected to kill a rail (and therefore to
    /// leave a `rail_death` flight dump).
    pub expects_rail_death: bool,
}

/// The soak sweep. Every schedule is recoverable by construction — the
/// harness treats a [`WireError`] from any cell as a failure (after which
/// the flight dumps on disk are the triage artifact).
pub fn chaos_cells(smoke: bool) -> Vec<ChaosCellSpec> {
    let ops = if smoke { 6 } else { 16 };
    vec![
        ChaosCellSpec {
            name: "lossy",
            chaos: ChaosConfig::new(0xC0FFEE)
                .with_drop(0.05)
                .with_dup(0.02)
                .with_reorder(0.05, 200_000)
                .with_corrupt(0.01),
            ops,
            expects_rail_death: false,
        },
        ChaosCellSpec {
            name: "bursty",
            chaos: ChaosConfig::new(0xB00B5).with_reorder(0.03, 100_000).with_plan(
                FaultPlan::new().burst(
                    ms(0),
                    FaultTarget::Rail { rail: 0 },
                    GilbertElliott::bursty_loss(0.02, 0.4, 0.6),
                ),
            ),
            ops,
            expects_rail_death: false,
        },
        ChaosCellSpec {
            name: "rail-blackout",
            chaos: ChaosConfig::new(0xDEAD)
                .with_drop(0.01)
                .with_plan(FaultPlan::new().rail_down(ms(0), 1)),
            ops,
            expects_rail_death: true,
        },
    ]
}

/// Protocol tuning for chaos runs — identical on both backends, with
/// faster tail recovery (capped RTO, quicker rail verdicts) so lossy UDP
/// rounds stay in wall-clock milliseconds.
pub fn chaos_proto() -> ProtoConfig {
    let mut p = SystemConfig::two_link_1g(2).proto;
    p.rto_max = ms(20);
    p.rail_dead_after = 4;
    p
}

/// Outcome of one cell on one backend.
pub struct ChaosCellRun {
    /// Timing-independent fingerprint: `[ops_write, bytes_written,
    /// unique_frames_recv, unique_bytes_recv, notifications,
    /// applied_below, cumulative, completions]`. Identical across backends
    /// for a completing run.
    pub fingerprint: [u64; 8],
    /// What the interposer did (node 0's wrapper + node 1's wrapper).
    pub chaos: ChaosStats,
    /// Total retransmissions the protocol needed (timing-dependent).
    pub retransmits: u64,
    /// NACK resends suppressed by the storm cap (both endpoints).
    pub storm_suppressed: u64,
    /// Backplane-clock nanoseconds the drive took.
    pub elapsed_ns: u64,
    /// Flight-dump artifacts written during the run.
    pub dump_paths: Vec<String>,
}

fn sum_stats(a: ChaosStats, b: ChaosStats) -> ChaosStats {
    ChaosStats {
        frames_seen: a.frames_seen + b.frames_seen,
        dropped: a.dropped + b.dropped,
        duplicated: a.duplicated + b.duplicated,
        reordered: a.reordered + b.reordered,
        corrupt_dropped: a.corrupt_dropped + b.corrupt_dropped,
        blackout_dropped: a.blackout_dropped + b.blackout_dropped,
        stall_held: a.stall_held + b.stall_held,
        delayed: a.delayed + b.delayed,
    }
}

fn patterned(len: usize, salt: u8) -> Vec<u8> {
    (0..len).map(|i| (i as u8).wrapping_mul(31) ^ salt).collect()
}

fn workload(ops: usize) -> Vec<(u64, Vec<u8>, OpFlags)> {
    (0..ops)
        .map(|i| {
            let len = 8_000 + (i % 4) * 6_000;
            let flags = if i == ops - 1 {
                OpFlags::ORDERED_NOTIFY
            } else if i % 2 == 0 {
                OpFlags::RELAXED
            } else {
                OpFlags::ORDERED
            };
            (0x10_0000 + (i as u64) * 0x1_0000, patterned(len, i as u8), flags)
        })
        .collect()
}

/// Run `spec` over `backend`, both endpoints wrapped in the interposer and
/// wired to a flight recorder dumping into `dump_dir`. Asserts the
/// exactly-once / fence-ordering contract on completion.
///
/// # Errors
///
/// Propagates the watchdog's typed [`WireError`] when the drive cannot
/// complete — the flight dumps written to `dump_dir` are the post-mortem.
pub fn run_chaos_cell(
    spec: &ChaosCellSpec,
    backend: WireBackend,
    dump_dir: &Path,
) -> Result<ChaosCellRun, WireError> {
    let fr = FlightRecorder::enabled(FlightConfig {
        rto_backoff_trigger: 0,
        fence_stall_trigger_ns: 0,
        dump_on_rail_death: true,
        dump_dir: Some(dump_dir.to_string_lossy().into_owned()),
        ..FlightConfig::default()
    });
    let proto = chaos_proto();
    match backend {
        WireBackend::Sim => {
            let cfg = SystemConfig::two_link_1g(2);
            let sim = Sim::new(cfg.seed);
            let cluster = build_cluster(&sim, cfg.cluster_spec());
            let (bpa, bpb) = SimBackplane::pair(&sim, &cluster);
            let mut ca = FaultBackplane::new(bpa, 0, &spec.chaos);
            let mut cb = FaultBackplane::new(bpb, 1, &spec.chaos);
            ca.set_flight(&fr);
            cb.set_flight(&fr);
            run_wrapped(spec, &proto, &mut ca, &mut cb, &fr)
        }
        WireBackend::Udp => {
            let fabric = UdpFabric::new(2).expect("bind loopback sockets");
            let (bpa, bpb) = fabric.pair();
            let mut ca = FaultBackplane::new(bpa, 0, &spec.chaos);
            let mut cb = FaultBackplane::new(bpb, 1, &spec.chaos);
            ca.set_flight(&fr);
            cb.set_flight(&fr);
            run_wrapped(spec, &proto, &mut ca, &mut cb, &fr)
        }
    }
}

fn run_wrapped<BA: Backplane, BB: Backplane>(
    spec: &ChaosCellSpec,
    proto: &ProtoConfig,
    bpa: &mut FaultBackplane<BA>,
    bpb: &mut FaultBackplane<BB>,
    fr: &FlightRecorder,
) -> Result<ChaosCellRun, WireError> {
    let limits = DriveLimits {
        progress_timeout_ns: 2_000_000_000,
        hard_budget_ns: 60_000_000_000,
        fence_stall_limit_ns: 0,
    };
    let spans = SpanRecorder::disabled();
    let (mut a, mut b) = WireEndpoint::pair(proto, bpa.rails(), &spans);
    a.set_flight(fr);
    b.set_flight(fr);
    let writes = workload(spec.ops);
    let total_ops = writes.len() as u64;
    let mut ops = Vec::new();
    for (addr, data, flags) in &writes {
        ops.push(a.write(0, bpa, *addr, Bytes::from(data.clone()), *flags));
    }
    let elapsed_ns = drive_with(
        &mut a,
        bpa,
        &mut b,
        bpb,
        |_, _, _, _| {},
        |a, b| {
            let sa = a.conn_state(0);
            let sb = b.conn_state(0);
            sa.acked == sa.next_seq && sb.applied_below == total_ops && !sb.has_gap
        },
        limits,
    )?;

    for (addr, data, _) in &writes {
        assert_eq!(
            &b.mem_read(*addr, data.len()),
            data,
            "[{}] payload at {addr:#x}",
            spec.name
        );
    }
    let completed: Vec<u64> = std::iter::from_fn(|| a.take_completion().map(|c| c.op)).collect();
    assert_eq!(
        completed, ops,
        "[{}] every op completes exactly once, in order",
        spec.name
    );
    let sb = b.conn_state(0);
    assert_eq!(sb.fence_buffered, 0, "[{}] fences drained", spec.name);

    let sa_stats = a.stats();
    let sb_stats = b.stats();
    Ok(ChaosCellRun {
        fingerprint: [
            sa_stats.ops_write,
            sa_stats.bytes_written,
            sb_stats.data_frames_recv,
            sb_stats.data_bytes_recv,
            sb_stats.notifications,
            sb.applied_below,
            sb.cumulative,
            completed.len() as u64,
        ],
        chaos: sum_stats(bpa.stats(), bpb.stats()),
        retransmits: sa_stats.retransmits() + sb_stats.retransmits(),
        storm_suppressed: a.storm_suppressed() + b.storm_suppressed(),
        elapsed_ns,
        dump_paths: fr
            .dumps()
            .into_iter()
            .filter_map(|d| d.path)
            .collect(),
    })
}
