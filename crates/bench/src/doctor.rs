//! Health-plane (doctor) cells: drivers behind `cargo bench --bench
//! doctor`.
//!
//! The telemetry cells prove the timeline plane records faithfully; these
//! cells prove the detection layer on top of it ([`me_trace::detect`])
//! *diagnoses* faithfully. Each one runs a seeded workload with the
//! streaming [`me_trace::HealthMonitor`] armed and returns the incident
//! verdict next to the ground truth of the injected fault, so the harness
//! can enforce the health plane's promises:
//!
//! 1. **Detection latency** — a scripted rail outage opens a `RailOutage`
//!    incident within a bounded number of sample intervals of injection
//!    ([`rail_outage_doctor`]).
//! 2. **No false alarms** — clean runs across a seed sweep open zero
//!    incidents ([`clean_seeds_doctor`]).
//! 3. **Named causes** — a chaos loss burst diagnoses as
//!    `RetransmitStorm` ([`chaos_burst_doctor`]), incast fan-in as
//!    `IncastImbalance` with the receiver's shard named hot, and a
//!    balanced all-to-all stays clean ([`incast_doctor`],
//!    [`balanced_doctor`]).
//! 4. **Offline ≡ online** — replaying the run's JSONL artifact through
//!    [`me_trace::HealthMonitor::replay_doc`] reproduces the online
//!    monitor's report byte-for-byte (every cell that exports JSONL).
//!
//! The overhead gate (detectors add no allocations per sample and ≤5%
//! frames/wall-s) lives in the bench binary, which owns the counting
//! allocator and the wall clock.

use crate::micro::{run_micro_doctor, MicroKind, MicroResult};
use crate::scale::{all_to_all_cell, incast_cell, run_scale_cell_doctor, ScaleCellResult};
use bytes::Bytes;
use me_trace::{
    HealthConfig, HealthMonitor, HealthReport, IncidentCause, SpanRecorder, Timeline, TimelineDoc,
};
use multiedge::backplane::{
    drive, Backplane, ChaosConfig, ChaosStats, FaultBackplane, SimBackplane, WireEndpoint,
};
use multiedge::{OpFlags, SystemConfig};
use netsim::shard::ShardMode;
use netsim::time::{ms, us};
use netsim::{build_cluster, FaultPlan, GilbertElliott, Sim};

/// Offline ≡ online gate: replay a finished timeline's JSONL export
/// through a fresh monitor with the same config and require the rendered
/// report to match the online one byte-for-byte.
///
/// # Errors
///
/// Returns the two rendered reports when they differ (or a parse error for
/// a malformed artifact — impossible for `Timeline::to_jsonl` output).
pub fn offline_matches_online(
    tl: &Timeline,
    online: &HealthReport,
    cfg: HealthConfig,
) -> Result<(), String> {
    let doc = TimelineDoc::parse_jsonl(&tl.to_jsonl()).map_err(|e| format!("parse: {e}"))?;
    let mut mon = HealthMonitor::for_doc(&doc, cfg);
    mon.replay_doc(&doc);
    let (off, on) = (mon.report().to_json().render(), online.to_json().render());
    if off == on {
        Ok(())
    } else {
        Err(format!("offline replay diverged:\n offline: {off}\n online:  {on}"))
    }
}

// ---------------------------------------------------------------------------
// Rail-outage cell (simulator endpoint)
// ---------------------------------------------------------------------------

/// Result of [`rail_outage_doctor`].
pub struct RailOutageDoctor {
    /// The underlying run (timeline + health report inside).
    pub result: MicroResult,
    /// Virtual time the fault plan killed rail 1.
    pub injected_ns: u64,
    /// Virtual time the `RailOutage` incident opened.
    pub opened_ns: u64,
    /// Detection latency in sample intervals:
    /// `ceil((opened - injected) / interval)`.
    pub detect_intervals: u64,
}

/// A 2Lu-1G one-way stream through a scripted rail-1 outage with the
/// health monitor armed, sampled every 2 ms of virtual time. The rail-dead
/// rule detector must open a `RailOutage` incident within 3 sample
/// intervals of injection (the protocol's own dead-rail detection latency
/// is ~3–5 ms, under two intervals at this cadence; the third absorbs grid
/// alignment), and the offline replay of the run's JSONL artifact must
/// reproduce the online report byte-for-byte.
pub fn rail_outage_doctor(smoke: bool) -> RailOutageDoctor {
    let mut cfg = SystemConfig::two_link_1g_unordered(2);
    cfg.seed = 7;
    cfg.proto.rail_cooldown = ms(4);
    let (down, up) = if smoke { (ms(2), ms(5)) } else { (ms(5), ms(12)) };
    let plan = FaultPlan::new().rail_down(down, 1).rail_up(up, 1);
    let iters = if smoke { 60 } else { 160 };
    let hc = HealthConfig::default();
    let result = run_micro_doctor(&cfg, MicroKind::OneWay, 32 << 10, iters, &plan, ms(2), hc);
    let health = result.health.as_ref().expect("health was armed");
    let tl = result.timeline.as_ref().expect("sampling was requested");
    offline_matches_online(tl, health, hc).expect("doctor replay must be bit-identical");
    let inc = health
        .first(IncidentCause::RailOutage)
        .expect("a dead rail must open a RailOutage incident");
    let injected_ns = down.as_nanos();
    let opened_ns = inc.opened_t_ns;
    let detect_intervals = opened_ns
        .saturating_sub(injected_ns)
        .div_ceil(tl.interval_ns());
    RailOutageDoctor {
        result,
        injected_ns,
        opened_ns,
        detect_intervals,
    }
}

// ---------------------------------------------------------------------------
// Clean-seed sweep (false-alarm gate)
// ---------------------------------------------------------------------------

/// Fault-free two-way runs across `seeds` with the monitor armed; the
/// false-alarm gate requires every returned report to carry zero
/// incidents. Each run's JSONL replay is also checked against the online
/// report.
pub fn clean_seeds_doctor(smoke: bool, seeds: &[u64]) -> Vec<(u64, HealthReport)> {
    let iters = if smoke { 24 } else { 80 };
    let hc = HealthConfig::default();
    seeds
        .iter()
        .map(|&seed| {
            let mut cfg = SystemConfig::two_link_1g_unordered(2);
            cfg.seed = seed;
            let r = run_micro_doctor(
                &cfg,
                MicroKind::TwoWay,
                32 << 10,
                iters,
                &FaultPlan::new(),
                ms(1),
                hc,
            );
            let health = r.health.expect("health was armed");
            let tl = r.timeline.as_ref().expect("sampling was requested");
            offline_matches_online(tl, &health, hc).expect("doctor replay must be bit-identical");
            (seed, health)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Chaos-burst cell (wire endpoint over a chaos backplane)
// ---------------------------------------------------------------------------

/// Result of [`chaos_burst_doctor`].
pub struct ChaosBurstDoctor {
    /// The finished wire-endpoint timeline (node 0 side).
    pub timeline: Timeline,
    /// Node 0's health verdict.
    pub health: HealthReport,
    /// Node 0 interposer's chaos decisions for the run.
    pub chaos: ChaosStats,
    /// Virtual time the burst-loss process was armed.
    pub burst_at_ns: u64,
}

/// A two-rail wire-endpoint stream over a chaos backplane whose loss is a
/// mid-stream Gilbert–Elliott burst (clean good state, loss-1.0 bad
/// state): the NACK/RTO retransmit storm the burst provokes must diagnose
/// as `RetransmitStorm`, and the offline replay must match.
pub fn chaos_burst_doctor(smoke: bool) -> ChaosBurstDoctor {
    const BUDGET_NS: u64 = 20_000_000_000;
    let mut cfg = SystemConfig::two_link_1g(2);
    // This cell is about diagnosing the *storm*, not a rail death: give
    // the rails a strike budget the burst cannot exhaust, so the NACK
    // losses never escalate to a RailDead verdict (which would out-rank
    // the storm as a RailOutage in same-tick correlation).
    cfg.proto.rail_dead_after = 10_000;
    let sim = Sim::new(29);
    let cluster = build_cluster(&sim, cfg.cluster_spec());
    let (bpa, bpb) = SimBackplane::pair(&sim, &cluster);
    // The smoke stream only spans ~2 ms of virtual time, so the burst
    // window scales with the run. Bad states are short (mean ~3 frames)
    // and lossy rather than absolute: enough to provoke a NACK retransmit
    // storm without stalling the stream.
    let (burst_at, burst_off) = if smoke { (us(500), ms(2)) } else { (ms(2), ms(4)) };
    let ge = GilbertElliott::bursty_loss(0.15, 0.3, 0.6);
    let plan = FaultPlan::new()
        .burst(burst_at, netsim::FaultTarget::Rail { rail: 0 }, ge)
        .burst(burst_at, netsim::FaultTarget::Rail { rail: 1 }, ge)
        .clear_burst(burst_off, netsim::FaultTarget::Rail { rail: 0 })
        .clear_burst(burst_off, netsim::FaultTarget::Rail { rail: 1 });
    let chaos = ChaosConfig::new(29).with_plan(plan);
    let mut bpa = FaultBackplane::new(bpa, 0, &chaos);
    let mut bpb = FaultBackplane::new(bpb, 1, &chaos);
    let spans = SpanRecorder::disabled();
    let (mut a, mut b) = WireEndpoint::pair(&cfg.proto, bpa.rails(), &spans);
    a.enable_timeline(bpa.rails(), us(200).as_nanos(), 4096, bpa.now_ns());
    let hc = HealthConfig::default();
    a.enable_health(hc);

    let iters = if smoke { 24 } else { 96 };
    let size = 16usize << 10;
    let ops: u64 = iters as u64;
    for i in 0..iters {
        let payload = Bytes::from(vec![(i as u8).wrapping_mul(17) ^ 0xA5; size]);
        a.write(
            0,
            &mut bpa,
            0x20_0000 + (i as u64) * 0x1_0000,
            payload,
            OpFlags::RELAXED,
        );
    }
    drive(
        &mut a,
        &mut bpa,
        &mut b,
        &mut bpb,
        |_, _, _, _| {},
        |a, b| {
            let (sa, sb) = (a.conn_state(0), b.conn_state(0));
            sa.acked == sa.next_seq && sb.applied_below == ops && !sb.has_gap
        },
        BUDGET_NS,
    )
    .expect("chaos-burst stream must complete after the burst clears");

    a.sample_timeline(&mut bpa);
    let health = a.health_report().expect("health was armed");
    let timeline = a.take_timeline().expect("timeline was enabled");
    offline_matches_online(&timeline, &health, hc).expect("doctor replay must be bit-identical");
    ChaosBurstDoctor {
        timeline,
        health,
        chaos: bpa.stats(),
        burst_at_ns: burst_at.as_nanos(),
    }
}

// ---------------------------------------------------------------------------
// Incast / balanced cells (sharded engine)
// ---------------------------------------------------------------------------

/// The 8-node incast fan-in on 4 shards with the cross-shard diagnosis
/// enabled: the receiver's shard (shard 0 under contiguous partition) must
/// be named hot by an `IncastImbalance` incident.
pub fn incast_doctor(smoke: bool, mode: ShardMode) -> ScaleCellResult {
    let bytes = if smoke { 32 << 10 } else { 128 << 10 };
    run_scale_cell_doctor(
        &incast_cell(8, bytes),
        4,
        mode,
        us(200),
        HealthConfig::default(),
    )
    .expect("incast doctor cell must partition and complete")
}

/// The balanced 8-node all-to-all on 4 shards (four rails, so the switches
/// spread one per shard) with the same diagnosis enabled: the report must
/// stay clean.
pub fn balanced_doctor(smoke: bool, mode: ShardMode) -> ScaleCellResult {
    let bytes = if smoke { 8 << 10 } else { 32 << 10 };
    run_scale_cell_doctor(
        &all_to_all_cell(8, bytes),
        4,
        mode,
        us(200),
        HealthConfig::default(),
    )
    .expect("balanced doctor cell must partition and complete")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rail_outage_opens_within_three_intervals() {
        let r = rail_outage_doctor(true);
        assert!(
            r.detect_intervals <= 3,
            "RailOutage opened {} intervals after injection (injected {} ns, opened {} ns)",
            r.detect_intervals,
            r.injected_ns,
            r.opened_ns
        );
    }

    #[test]
    fn clean_seeds_raise_no_incidents() {
        for (seed, report) in clean_seeds_doctor(true, &[3, 11, 19]) {
            assert!(
                report.incidents.is_empty(),
                "seed {seed} raised incidents on a clean run:\n{}",
                report.render_human()
            );
        }
    }

    #[test]
    fn chaos_burst_diagnoses_as_retransmit_storm() {
        let r = chaos_burst_doctor(true);
        assert!(r.chaos.dropped > 0, "the burst must drop frames");
        let inc = r
            .health
            .first(IncidentCause::RetransmitStorm)
            .expect("a loss burst must diagnose as RetransmitStorm");
        assert!(
            inc.opened_t_ns >= r.burst_at_ns,
            "storm cannot open before the burst was armed"
        );
    }

    #[test]
    fn incast_flags_receiver_shard_and_balanced_stays_clean() {
        let inc = incast_doctor(true, ShardMode::Cooperative);
        let report = inc.shard_health.expect("diagnosis was enabled");
        let i = report
            .first(IncidentCause::IncastImbalance)
            .expect("incast must diagnose as IncastImbalance");
        let hot = i.evidence()[0].column as usize;
        assert_eq!(hot, 0, "the receiver's shard must be named hot");
        let bal = balanced_doctor(true, ShardMode::Cooperative);
        let report = bal.shard_health.expect("diagnosis was enabled");
        assert!(
            report.incidents.is_empty(),
            "balanced all-to-all must stay clean:\n{}",
            report.render_human()
        );
    }
}
