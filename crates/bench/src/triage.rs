//! Regression-triage cells: re-runnable attribution workloads with
//! committed baselines.
//!
//! A triage *cell* is a named micro-benchmark configuration (topology ×
//! workload × size × iteration count) run over several deterministic
//! seeds. Each round's span snapshot is analyzed into an
//! [`Attribution`] and the rounds are merged bucket-wise; the per-round
//! latency quantiles are kept so the emitted document carries an honest
//! **cross-seed noise bound**. The simulator is virtual-time
//! deterministic — re-running a cell on the same build reproduces the
//! merged document bit for bit, so any diff against a committed baseline
//! is real protocol movement (or a seed-set change), never wall-clock
//! jitter.
//!
//! The `triage` bench binary drives these helpers in three modes
//! (baseline refresh, full gate, CI smoke); integration tests reuse them
//! with [`run_cell_with`] to inject deliberate slowdowns and assert the
//! diff engine names the regressed phase.

use me_trace::json::SCHEMA_VERSION;
use me_trace::{analyze, Attribution, Json};
use multiedge::SystemConfig;
use std::path::PathBuf;

use crate::micro::{run_micro, MicroKind};

/// Span-ring capacity for triage runs (comfortably above any cell's op
/// count, so `overwritten == 0` always holds).
const SPAN_CAP: usize = 1 << 16;

/// One triage cell: a deterministic workload re-run across seeds.
#[derive(Debug, Clone, Copy)]
pub struct CellSpec {
    /// Topology name, resolved by [`base_config`].
    pub config: &'static str,
    /// Micro-benchmark workload.
    pub kind: MicroKind,
    /// Op payload size in bytes.
    pub size: usize,
    /// Ops per round (per direction for two-way).
    pub iters: usize,
    /// Deterministic rounds merged into the document (seeds
    /// `base_seed..base_seed + rounds`).
    pub rounds: u64,
    /// First seed of the round sweep.
    pub base_seed: u64,
}

impl CellSpec {
    /// Display name, matching the diff engine's cell pairing key
    /// (`"<config> <workload>"`).
    pub fn name(&self) -> String {
        format!("{} {}", self.config, self.kind.name())
    }
}

/// Resolve a cell's topology name to its [`SystemConfig`] builder.
pub fn base_config(name: &str) -> SystemConfig {
    match name {
        "1L-1G" => SystemConfig::one_link_1g(2),
        "2Lu-1G" => SystemConfig::two_link_1g_unordered(2),
        "4L-1G" => SystemConfig::four_link_1g(2),
        "1L-10G" => SystemConfig::one_link_10g(2),
        other => panic!("unknown triage config '{other}'"),
    }
}

/// Profile label baked into baseline filenames, so the reduced CI sweep
/// never diffs against full-profile numbers.
pub fn profile_name(smoke: bool) -> &'static str {
    if smoke {
        "smoke"
    } else {
        "full"
    }
}

/// The cell sweep for a profile. The smoke profile is a strict subset in
/// wall-clock (fewer cells, rounds, and iters) but exercises both a
/// single-rail and a striped topology plus the latency-dominated
/// ping-pong shape.
pub fn cells(smoke: bool) -> Vec<CellSpec> {
    let (iters, rounds) = if smoke { (24, 2) } else { (60, 3) };
    let mut specs = vec![
        CellSpec {
            config: "1L-1G",
            kind: MicroKind::OneWay,
            size: 32 << 10,
            iters,
            rounds,
            base_seed: 7_700,
        },
        CellSpec {
            config: "2Lu-1G",
            kind: MicroKind::TwoWay,
            size: 32 << 10,
            iters,
            rounds,
            base_seed: 7_800,
        },
        CellSpec {
            config: "1L-10G",
            kind: MicroKind::PingPong,
            size: 4 << 10,
            iters,
            rounds,
            base_seed: 7_900,
        },
    ];
    if !smoke {
        specs.push(CellSpec {
            config: "2Lu-1G",
            kind: MicroKind::OneWay,
            size: 32 << 10,
            iters,
            rounds,
            base_seed: 8_000,
        });
        specs.push(CellSpec {
            config: "4L-1G",
            kind: MicroKind::TwoWay,
            size: 32 << 10,
            iters,
            rounds,
            base_seed: 8_100,
        });
    }
    specs
}

/// One round's end-to-end latency quantiles (the noise-bound inputs).
#[derive(Debug, Clone, Copy)]
pub struct RoundStat {
    /// The seed this round ran with.
    pub seed: u64,
    /// Overall latency p50 of the single round (ns).
    pub latency_p50_ns: u64,
    /// Overall latency p99 of the single round (ns).
    pub latency_p99_ns: u64,
}

/// A completed cell run: merged attribution plus per-round stats.
#[derive(Debug, Clone)]
pub struct CellRun {
    /// All rounds merged bucket-wise.
    pub attr: Attribution,
    /// Per-round quantiles, in seed order.
    pub rounds: Vec<RoundStat>,
}

/// Run a cell with a config mutation applied to every round — the hook the
/// injection tests use to slow down one protocol layer on the "new" side.
pub fn run_cell_with(spec: &CellSpec, tweak: &dyn Fn(&mut SystemConfig)) -> CellRun {
    let mut attr = Attribution::default();
    let mut rounds = Vec::new();
    for r in 0..spec.rounds {
        let mut cfg = base_config(spec.config).with_spans(SPAN_CAP);
        cfg.seed = spec.base_seed + r;
        tweak(&mut cfg);
        let res = run_micro(&cfg, spec.kind, spec.size, spec.iters);
        let snap = res.spans.expect("spans enabled");
        assert_eq!(snap.overwritten, 0, "span ring must retain the whole round");
        let a = analyze(&snap);
        rounds.push(RoundStat {
            seed: cfg.seed,
            latency_p50_ns: a.overall.latency_hist.percentile(50.0),
            latency_p99_ns: a.overall.latency_hist.percentile(99.0),
        });
        attr.merge(&a);
    }
    CellRun { attr, rounds }
}

/// Run a cell as configured (the baseline/gate path).
pub fn run_cell(spec: &CellSpec) -> CellRun {
    run_cell_with(spec, &|_| {})
}

/// Relative cross-seed spread of a quantile: `(max − min) / merged`.
fn spread(merged: u64, per_round: impl Iterator<Item = u64>) -> f64 {
    let (mut lo, mut hi) = (u64::MAX, 0u64);
    for v in per_round {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if merged == 0 || lo == u64::MAX {
        0.0
    } else {
        (hi - lo) as f64 / merged as f64
    }
}

/// Render a cell run as the baseline/candidate document the diff engine
/// consumes: schema-stamped, self-describing (config/workload/seeds), with
/// the merged attribution (including exact histograms) and the cross-seed
/// noise bound.
pub fn cell_doc(spec: &CellSpec, profile: &str, run: &CellRun) -> Json {
    let merged_p50 = run.attr.overall.latency_hist.percentile(50.0);
    let merged_p99 = run.attr.overall.latency_hist.percentile(99.0);
    let noise_p50 = spread(merged_p50, run.rounds.iter().map(|r| r.latency_p50_ns));
    let noise_p99 = spread(merged_p99, run.rounds.iter().map(|r| r.latency_p99_ns));
    let rounds_detail = run
        .rounds
        .iter()
        .map(|r| {
            Json::obj()
                .set("seed", r.seed)
                .set("latency_p50_ns", r.latency_p50_ns)
                .set("latency_p99_ns", r.latency_p99_ns)
        })
        .collect::<Vec<_>>();
    Json::obj()
        .set("schema_version", SCHEMA_VERSION)
        .set("kind", "multiedge_attribution_cell")
        .set("profile", profile)
        .set("config", spec.config)
        .set("workload", spec.kind.name())
        .set("size", spec.size)
        .set("iters", spec.iters)
        .set("rounds", spec.rounds)
        .set("base_seed", spec.base_seed)
        .set(
            "noise",
            Json::obj()
                .set("latency_p50_rel", noise_p50)
                .set("latency_p99_rel", noise_p99),
        )
        .set("rounds_detail", rounds_detail)
        .set("attribution", run.attr.to_json())
}

/// The workspace-root `results/` directory (manifest-relative, so it does
/// not depend on the bench process CWD).
pub fn results_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

/// Where committed baselines live.
pub fn baselines_dir() -> PathBuf {
    results_dir().join("baselines")
}

/// Committed baseline path for a cell
/// (`results/baselines/<profile>_<config>_<workload>.json`).
pub fn baseline_path(profile: &str, spec: &CellSpec) -> PathBuf {
    baselines_dir().join(format!("{profile}_{}_{}.json", spec.config, spec.kind.name()))
}
