//! Sim-vs-real cross-validation cells for the transport backplane.
//!
//! Runs the same [`WireEndpoint`] protocol driver — the identical state
//! machines, byte for byte — over both [`Backplane`] implementations:
//! the deterministic network simulator and real UDP sockets on loopback.
//! Each backend produces the same span-attribution cell document the
//! triage gate uses, with **matching `config`/`workload` strings** so the
//! diff engine pairs the cells; the backend identity goes in the
//! `profile` field. `me-inspect diff results/backplane/sim.json
//! results/backplane/udp.json` then telescopes exactly where the
//! simulator's cost model and a real kernel/network path disagree,
//! phase by phase.
//!
//! The UDP rounds run on the wall clock, so unlike triage cells they are
//! **not** bit-reproducible; the committed `results/BENCH_backplane.json`
//! is a representative sample, not a gate (see `docs/BACKPLANE.md`).

use bytes::Bytes;
use me_trace::{analyze, Attribution, SpanRecorder, SpanSnapshot};
use multiedge::backplane::{drive, Backplane, SimBackplane, UdpFabric, WireEndpoint};
use multiedge::{OpFlags, ProtoConfig, SystemConfig};
use netsim::{build_cluster, Sim};
use std::cell::Cell;

use crate::micro::MicroKind;
use crate::triage::{CellSpec, CellRun, RoundStat};

/// Span-ring capacity for cross-validation rounds.
const SPAN_CAP: usize = 1 << 16;

/// Maximum write ops in flight for the one-way streaming workload: deep
/// enough to keep the window busy, shallow enough that per-op latency
/// measures the protocol rather than the issue queue.
const ONEWAY_INFLIGHT: usize = 4;

/// Which transport carries a cross-validation round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireBackend {
    /// The netsim discrete-event fabric (virtual time).
    Sim,
    /// Real UDP sockets on loopback (wall-clock time).
    Udp,
}

impl WireBackend {
    /// Label used in document `profile` fields and artifact filenames.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Sim => "sim",
            Self::Udp => "udp",
        }
    }
}

/// The cross-validation sweep: the latency-dominated ping-pong shape and
/// bandwidth-dominated one-way streaming, both striped across two rails.
///
/// The `config` string names the backplane topology (two rails), not a
/// triage topology — these specs are paired sim-vs-udp, never against
/// triage baselines.
pub fn wire_cells(smoke: bool) -> Vec<CellSpec> {
    let (pp_iters, ow_iters, rounds) = if smoke { (48, 24, 2) } else { (160, 60, 3) };
    vec![
        CellSpec {
            config: "BP-2L",
            kind: MicroKind::PingPong,
            size: 4 << 10,
            iters: pp_iters,
            rounds,
            base_seed: 9_100,
        },
        CellSpec {
            config: "BP-2L",
            kind: MicroKind::OneWay,
            size: 32 << 10,
            iters: ow_iters,
            rounds,
            base_seed: 9_200,
        },
    ]
}

/// Protocol parameters for a cross-validation round: the standard
/// two-rail profile (the sim backend also builds its fabric from this).
fn wire_config(seed: u64) -> SystemConfig {
    let mut cfg = SystemConfig::two_link_1g(2);
    cfg.seed = seed;
    cfg
}

/// Run one cell on one backend: every round on a fresh fabric, rounds
/// merged bucket-wise exactly like a triage cell.
pub fn run_wire_cell(spec: &CellSpec, backend: WireBackend) -> CellRun {
    let mut attr = Attribution::default();
    let mut rounds = Vec::new();
    for r in 0..spec.rounds {
        let seed = spec.base_seed + r;
        let cfg = wire_config(seed);
        let rails = 2;
        let snap = match backend {
            WireBackend::Sim => {
                let sim = Sim::new(seed);
                let cluster = build_cluster(&sim, cfg.cluster_spec());
                let (mut bpa, mut bpb) = SimBackplane::pair(&sim, &cluster);
                run_round(&cfg.proto, rails, spec, &mut bpa, &mut bpb)
            }
            WireBackend::Udp => {
                let fabric = UdpFabric::new(rails).expect("bind loopback UDP sockets");
                let (mut bpa, mut bpb) = fabric.pair();
                run_round(&cfg.proto, rails, spec, &mut bpa, &mut bpb)
            }
        };
        assert_eq!(snap.overwritten, 0, "span ring must retain the whole round");
        let a = analyze(&snap);
        rounds.push(RoundStat {
            seed,
            latency_p50_ns: a.overall.latency_hist.percentile(50.0),
            latency_p99_ns: a.overall.latency_hist.percentile(99.0),
        });
        attr.merge(&a);
    }
    CellRun { attr, rounds }
}

/// Drive one round of `spec`'s workload over an already-built fabric and
/// return the span snapshot covering both endpoints.
fn run_round<BA: Backplane, BB: Backplane>(
    proto: &ProtoConfig,
    rails: usize,
    spec: &CellSpec,
    bpa: &mut BA,
    bpb: &mut BB,
) -> SpanSnapshot {
    // Generous stall budget (per round, backplane clock): virtual time on
    // sim, wall time on UDP. Hitting it means the protocol wedged.
    const BUDGET_NS: u64 = 20_000_000_000;
    let spans = SpanRecorder::enabled(SPAN_CAP);
    let (mut a, mut b) = WireEndpoint::pair(proto, rails, &spans);
    let payload = Bytes::from(vec![0xA5u8; spec.size]);
    let addr = 0x10_0000u64;
    match spec.kind {
        MicroKind::PingPong => {
            // Request-reply remote writes with notifications, mirroring the
            // simulator micro-benchmark: A initiates, B's notification
            // handler replies, A's reply handler starts the next iteration.
            let iters = spec.iters;
            let replies = Cell::new(0usize);
            let initiated = Cell::new(1usize);
            a.write(0, bpa, addr, payload.clone(), OpFlags::RELAXED.with_notify());
            drive(
                &mut a,
                bpa,
                &mut b,
                bpb,
                |a, bpa, b, bpb| {
                    while b.take_notification().is_some() {
                        b.write(0, bpb, addr, payload.clone(), OpFlags::RELAXED.with_notify());
                    }
                    while a.take_notification().is_some() {
                        replies.set(replies.get() + 1);
                        if initiated.get() < iters {
                            initiated.set(initiated.get() + 1);
                            a.write(0, bpa, addr, payload.clone(), OpFlags::RELAXED.with_notify());
                        }
                    }
                },
                |a, b| {
                    // All replies in, and both send directions fully acked
                    // so every op span has reached its completion milestone.
                    replies.get() == iters
                        && a.conn_state(0).acked == a.conn_state(0).next_seq
                        && b.conn_state(0).acked == b.conn_state(0).next_seq
                },
                BUDGET_NS,
            )
            .unwrap_or_else(|e| panic!("{} ping-pong round stalled: {e}", spec.config));
        }
        MicroKind::OneWay => {
            // Streaming writes A→B with a bounded issue queue.
            let iters = spec.iters;
            let issued = Cell::new(0usize);
            let completed = Cell::new(0usize);
            drive(
                &mut a,
                bpa,
                &mut b,
                bpb,
                |a, bpa, _b, _bpb| {
                    while a.take_completion().is_some() {
                        completed.set(completed.get() + 1);
                    }
                    while issued.get() < iters
                        && issued.get() - completed.get() < ONEWAY_INFLIGHT
                    {
                        issued.set(issued.get() + 1);
                        a.write(0, bpa, addr, payload.clone(), OpFlags::RELAXED);
                    }
                },
                |_a, _b| completed.get() == iters,
                BUDGET_NS,
            )
            .unwrap_or_else(|e| panic!("{} one-way round stalled: {e}", spec.config));
        }
        MicroKind::TwoWay => panic!("two-way is not a cross-validation workload"),
    }
    spans.snapshot().expect("recorder is enabled")
}
