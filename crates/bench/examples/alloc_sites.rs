//! Diagnostic for the zero-allocation datapath: run the steady-state
//! workload with an allocator that backtraces every allocation, and print
//! the call sites ranked by hit count.
//!
//! ```text
//! CARGO_PROFILE_RELEASE_DEBUG=true cargo run --offline --release -p multiedge-bench --example alloc_sites
//! ```
//!
//! The probe arms only for the second of two identical runs, so warmup and
//! capacity-growth allocations (which the datapath bench's double-difference
//! cancels anyway) do not drown out the per-frame offenders.

use multiedge::SystemConfig;
use multiedge_bench::micro::{run_micro, MicroKind};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};

static PROBE: AtomicBool = AtomicBool::new(false);

thread_local! {
    static IN_HOOK: Cell<bool> = const { Cell::new(false) };
    static SITES: RefCell<Vec<(usize, String)>> = const { RefCell::new(Vec::new()) };
}

struct TraceAlloc;

fn record(size: usize) {
    if !PROBE.load(Relaxed) {
        return;
    }
    IN_HOOK.with(|flag| {
        if flag.get() {
            return; // backtrace capture allocates; don't recurse
        }
        flag.set(true);
        let bt = std::backtrace::Backtrace::force_capture().to_string();
        // Keep only the frames from this workspace — the interesting part.
        let ours: Vec<&str> = bt
            .lines()
            .filter(|l| l.contains("crates/"))
            .map(str::trim)
            .collect();
        SITES.with(|s| s.borrow_mut().push((size, ours.join(" <- "))));
        flag.set(false);
    });
}

unsafe impl GlobalAlloc for TraceAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        record(layout.size());
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if new_size > layout.size() {
            record(new_size - layout.size());
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: TraceAlloc = TraceAlloc;

fn main() {
    let mut cfg = SystemConfig::one_link_1g(2);
    cfg.seed = 7;
    // Warm every lazy path and grow every scratch buffer.
    let _ = run_micro(&cfg, MicroKind::TwoWay, 32 << 10, 40);
    PROBE.store(true, Relaxed);
    let r = run_micro(&cfg, MicroKind::TwoWay, 32 << 10, 40);
    PROBE.store(false, Relaxed);

    let mut by_site: Vec<(String, u64, usize)> = Vec::new();
    SITES.with(|s| {
        for (size, site) in s.borrow().iter() {
            match by_site.iter_mut().find(|(k, _, _)| k == site) {
                Some((_, n, bytes)) => {
                    *n += 1;
                    *bytes += size;
                }
                None => by_site.push((site.clone(), 1, *size)),
            }
        }
    });
    by_site.sort_by_key(|(_, n, _)| std::cmp::Reverse(*n));
    println!(
        "{} data frames, {} distinct alloc sites:\n",
        r.proto.data_frames_sent,
        by_site.len()
    );
    for (site, n, bytes) in by_site.iter().take(20) {
        println!("{n:>7} allocs {bytes:>9} B  {site}\n");
    }
}
