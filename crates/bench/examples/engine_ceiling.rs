//! Diagnostic: how fast can the simulation engine execute events? The
//! datapath executes several events per data frame, so the engine's raw
//! event rate bounds the frame rate any protocol optimization can reach.
//!
//! ```text
//! cargo run --offline --release -p multiedge-bench --example engine_ceiling
//! ```

use netsim::time::ns;
use netsim::{Sim, SimTime};
use std::cell::Cell;
use std::rc::Rc;
use std::time::Instant;

const N: u64 = 2_000_000;

fn step(sim: &Sim, count: Rc<Cell<u64>>) {
    let n = count.get() + 1;
    count.set(n);
    if n < N {
        let sim2 = sim.clone();
        sim.schedule_at(sim.now() + ns(3_000), move |_| step(&sim2, count));
    }
}

fn main() {
    // (a) One chain of events, each scheduling the next 3µs out — the same
    // temporal pattern as protocol timers and NIC completions.
    let sim = Sim::new(1);
    let count = Rc::new(Cell::new(0u64));
    let c = count.clone();
    let s2 = sim.clone();
    sim.schedule_at(SimTime::ZERO, move |_| step(&s2, c));
    let t = Instant::now();
    sim.run();
    let dt = t.elapsed();
    println!(
        "chain:    {N} events in {dt:.2?}  -> {:.2}M events/s",
        N as f64 / dt.as_secs_f64() / 1e6
    );

    // (b) 16 interleaved chains so each wheel quantum holds several events
    // (matches the datapath's slot population).
    let sim = Sim::new(1);
    let count = Rc::new(Cell::new(0u64));
    for lane in 0..16u64 {
        let c = count.clone();
        let s2 = sim.clone();
        sim.schedule_at(SimTime::ZERO + ns(lane * 200), move |_| step(&s2, c));
    }
    let t = Instant::now();
    sim.run();
    let dt = t.elapsed();
    println!(
        "16 lanes: {} events in {dt:.2?}  -> {:.2}M events/s",
        count.get(),
        count.get() as f64 / dt.as_secs_f64() / 1e6
    );
}
