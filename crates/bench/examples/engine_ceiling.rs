//! Diagnostic: how fast can the simulation engine execute events? The
//! datapath executes several events per data frame, so the engine's raw
//! event rate bounds the frame rate any protocol optimization can reach.
//!
//! ```text
//! cargo run --offline --release -p multiedge-bench --example engine_ceiling
//! ```

use frame::{Frame, FrameHeader, MacAddr};
use netsim::shard::{run_sharded, ShardMode, ShardNet, ShardRunConfig};
use netsim::time::ns;
use netsim::{ClusterSpec, RxFrame, Sim, SimTime};
use std::cell::Cell;
use std::rc::Rc;
use std::time::Instant;

const N: u64 = 2_000_000;

fn step(sim: &Sim, count: Rc<Cell<u64>>) {
    let n = count.get() + 1;
    count.set(n);
    if n < N {
        let sim2 = sim.clone();
        sim.schedule_at(sim.now() + ns(3_000), move |_| step(&sim2, count));
    }
}

fn main() {
    // (a) One chain of events, each scheduling the next 3µs out — the same
    // temporal pattern as protocol timers and NIC completions.
    let sim = Sim::new(1);
    let count = Rc::new(Cell::new(0u64));
    let c = count.clone();
    let s2 = sim.clone();
    sim.schedule_at(SimTime::ZERO, move |_| step(&s2, c));
    let t = Instant::now();
    sim.run();
    let dt = t.elapsed();
    println!(
        "chain:    {N} events in {dt:.2?}  -> {:.2}M events/s",
        N as f64 / dt.as_secs_f64() / 1e6
    );

    // (b) 16 interleaved chains so each wheel quantum holds several events
    // (matches the datapath's slot population).
    let sim = Sim::new(1);
    let count = Rc::new(Cell::new(0u64));
    for lane in 0..16u64 {
        let c = count.clone();
        let s2 = sim.clone();
        sim.schedule_at(SimTime::ZERO + ns(lane * 200), move |_| step(&s2, c));
    }
    let t = Instant::now();
    sim.run();
    let dt = t.elapsed();
    println!(
        "16 lanes: {} events in {dt:.2?}  -> {:.2}M events/s",
        count.get(),
        count.get() as f64 / dt.as_secs_f64() / 1e6
    );

    // (c) Lane-density sweep: the per-event cost of the timer wheel grows
    // with the number of events sharing a quantum (mid-drain inserts walk
    // the slot chain). This curve is why sharding pays even on one core:
    // splitting a dense simulation into k shards cuts every chain by ~k.
    println!("\nlane-density sweep (1M events each):");
    for lanes in [16u64, 64, 256, 1024, 4096] {
        let sim = Sim::new(1);
        let count = Rc::new(Cell::new(0u64));
        let per = 1_000_000 / lanes;
        for lane in 0..lanes {
            let c = count.clone();
            sim.schedule_at(SimTime::ZERO + ns(lane % 3_000), move |sim| {
                fn tick(sim: &Sim, c: Rc<Cell<u64>>, left: u64) {
                    c.set(c.get() + 1);
                    if left > 1 {
                        let s = sim.clone();
                        sim.schedule_at(sim.now() + ns(3_000), move |_| {
                            tick(&s, c, left - 1)
                        });
                    }
                }
                tick(sim, c, per);
            });
        }
        let t = Instant::now();
        sim.run();
        let dt = t.elapsed();
        println!(
            "  {lanes:>5} lanes: {:.2}M events/s",
            count.get() as f64 / dt.as_secs_f64() / 1e6
        );
    }

    // (d) The sharded runtime on a raw-frame all-to-all burst: per-shard
    // event throughput, boundary-channel occupancy and lookahead stalls.
    // Same workload at every shard count; the speedup is the chain-length
    // reduction from (c) minus the window-synchronization overhead.
    println!("\nsharded raw-frame all-to-all (32 nodes, 4 rails, 40 frames/pair):");
    let spec = ClusterSpec::gbe_1(32, 4);
    for shards in [1usize, 2, 4] {
        let cfg = ShardRunConfig {
            mode: ShardMode::Cooperative,
            wall_limit: Some(std::time::Duration::from_secs(120)),
            ..Default::default()
        };
        let t = Instant::now();
        let (report, outs) = run_sharded(
            &spec,
            shards,
            7,
            None,
            &cfg,
            |sn: &ShardNet| {
                let got: Rc<Cell<u64>> = Rc::default();
                for &node in sn.local_nodes().iter() {
                    for rail in 0..4 {
                        let g = got.clone();
                        sn.net()
                            .set_rx_handler(sn.nics(node)[rail], move |_, _: RxFrame| {
                                g.set(g.get() + 1);
                            });
                    }
                    for peer in 0..32u16 {
                        if peer as usize == node {
                            continue;
                        }
                        for k in 0..40u64 {
                            let rail = (k % 4) as u8;
                            let f = Frame {
                                src: MacAddr::new(node as u16, rail),
                                dst: MacAddr::new(peer, rail),
                                header: FrameHeader::default(),
                                payload: bytes::Bytes::from(vec![0u8; 256]),
                            };
                            let net = sn.net().clone();
                            let nic = sn.nics(node)[rail as usize];
                            sn.sim().schedule_at(SimTime(k), move |_| {
                                net.nic_send(nic, f);
                            });
                        }
                    }
                }
                got
            },
            |_, got: Rc<Cell<u64>>| got.get(),
        )
        .expect("sharded raw-frame cell");
        let dt = t.elapsed();
        let delivered: u64 = outs.iter().sum();
        let events: u64 = report.per_shard.iter().map(|s| s.events).sum();
        println!(
            "  shards {shards}: {delivered} delivered, {:.2}M events/s total, {} windows",
            events as f64 / dt.as_secs_f64() / 1e6,
            report.windows,
        );
        for (i, s) in report.per_shard.iter().enumerate() {
            println!(
                "    shard {i}: {:>7} events ({:.2}M/s)  stalls {:>4}  \
                 boundary in/out {:>6}/{:<6}  max inbox {:>4}",
                s.events,
                s.events as f64 / dt.as_secs_f64() / 1e6,
                s.idle_windows,
                s.boundary_in,
                s.boundary_out,
                s.max_inbox_depth,
            );
        }
    }
}
