//! Golden protocol/network statistics for fixed seeds.
//!
//! The allocation-free datapath work (window rings, timer wheel, scratch
//! buffers) is pure mechanical sympathy: it must not change a single
//! protocol decision. These tests pin the complete `ProtoStats` and
//! `NetStats` Debug output of `run_micro` for fixed seeds on the paper's
//! 1L/2L/4L two-way configurations. Any divergence — one extra
//! retransmission, one reordered RNG draw — fails the test.
//!
//! To regenerate after an *intentional* behaviour change:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --offline -p multiedge-bench --test stats_equivalence -- --nocapture
//! ```
//!
//! and paste the printed constants back into this file.

use multiedge::SystemConfig;
use multiedge_bench::micro::{run_micro, MicroKind};

/// One golden cell: a config constructor, a seed, and the expected
/// `format!("{:?}|{:?}", proto, net)` fingerprint.
struct Golden {
    label: &'static str,
    cfg: fn() -> SystemConfig,
    seed: u64,
    expect: &'static str,
}

const SIZE: usize = 64 << 10;
const ITERS: usize = 24;

fn fingerprint(mut cfg: SystemConfig, seed: u64) -> String {
    cfg.seed = seed;
    let r = run_micro(&cfg, MicroKind::TwoWay, SIZE, ITERS);
    format!("{:?}|{:?}", r.proto, r.net)
}

fn goldens() -> Vec<Golden> {
    vec![
        Golden {
            label: "1L-1G/seed1",
            cfg: || SystemConfig::one_link_1g(2),
            seed: 1,
            expect: GOLDEN_1L_SEED1,
        },
        Golden {
            label: "1L-1G/seed42",
            cfg: || SystemConfig::one_link_1g(2),
            seed: 42,
            expect: GOLDEN_1L_SEED42,
        },
        Golden {
            label: "2Lu-1G/seed1",
            cfg: || SystemConfig::two_link_1g_unordered(2),
            seed: 1,
            expect: GOLDEN_2LU_SEED1,
        },
        Golden {
            label: "2Lu-1G/seed42",
            cfg: || SystemConfig::two_link_1g_unordered(2),
            seed: 42,
            expect: GOLDEN_2LU_SEED42,
        },
        Golden {
            label: "4L-1G/seed1",
            cfg: || SystemConfig::four_link_1g(2),
            seed: 1,
            expect: GOLDEN_4L_SEED1,
        },
        Golden {
            label: "4L-1G/seed42",
            cfg: || SystemConfig::four_link_1g(2),
            seed: 42,
            expect: GOLDEN_4L_SEED42,
        },
    ]
}

#[test]
fn stats_identical_for_fixed_seeds() {
    let regen = std::env::var("GOLDEN_REGEN").is_ok();
    let mut failures = Vec::new();
    for g in goldens() {
        let got = fingerprint((g.cfg)(), g.seed);
        if regen {
            println!("GOLDEN {} = r#\"{}\"#", g.label, got);
        } else if got != g.expect {
            failures.push(format!(
                "{}:\n  expected: {}\n  got:      {}",
                g.label, g.expect, got
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "protocol/network stats drifted from golden values:\n{}",
        failures.join("\n")
    );
}

// ---------------------------------------------------------------------------
// Golden fingerprints, captured on the pre-ring/pre-wheel datapath. The ring
// and timer-wheel refactors must reproduce these byte-for-byte.
// ---------------------------------------------------------------------------

const GOLDEN_1L_SEED1: &str = r#"ProtoStats { ops_write: 48, ops_read: 0, bytes_written: 3145728, bytes_read: 0, data_frames_sent: 2208, data_bytes_sent: 3145728, read_req_frames_sent: 0, explicit_acks_sent: 110, nacks_sent: 0, retransmits_nack: 0, retransmits_rto: 0, rto_backoff_max: 0, rail_down_events: 0, rail_up_events: 0, data_frames_recv: 2208, data_bytes_recv: 3145728, ctrl_frames_recv: 110, dup_frames_recv: 0, ooo_arrivals: 0, corrupt_frames: 0, rx_interrupts: 1092, rx_coalesced: 1226, tx_interrupts: 17, tx_coalesced: 2301, notifications: 0, reorder_peak: 0 }|NetStats { drops_overflow: 0, drops_loss: 0, drops_link_down: 0, corrupted: 0, drops_unknown_mac: 0, channel_frames: 4636, channel_bytes: 6699424 }"#;
const GOLDEN_1L_SEED42: &str = r#"ProtoStats { ops_write: 48, ops_read: 0, bytes_written: 3145728, bytes_read: 0, data_frames_sent: 2208, data_bytes_sent: 3145728, read_req_frames_sent: 0, explicit_acks_sent: 110, nacks_sent: 0, retransmits_nack: 0, retransmits_rto: 0, rto_backoff_max: 0, rail_down_events: 0, rail_up_events: 0, data_frames_recv: 2208, data_bytes_recv: 3145728, ctrl_frames_recv: 110, dup_frames_recv: 0, ooo_arrivals: 0, corrupt_frames: 0, rx_interrupts: 1091, rx_coalesced: 1227, tx_interrupts: 16, tx_coalesced: 2302, notifications: 0, reorder_peak: 0 }|NetStats { drops_overflow: 0, drops_loss: 0, drops_link_down: 0, corrupted: 0, drops_unknown_mac: 0, channel_frames: 4636, channel_bytes: 6699424 }"#;
const GOLDEN_2LU_SEED1: &str = r#"ProtoStats { ops_write: 48, ops_read: 0, bytes_written: 3145728, bytes_read: 0, data_frames_sent: 2208, data_bytes_sent: 3145728, read_req_frames_sent: 0, explicit_acks_sent: 67, nacks_sent: 0, retransmits_nack: 0, retransmits_rto: 0, rto_backoff_max: 0, rail_down_events: 0, rail_up_events: 0, data_frames_recv: 2208, data_bytes_recv: 3145728, ctrl_frames_recv: 67, dup_frames_recv: 0, ooo_arrivals: 1070, corrupt_frames: 0, rx_interrupts: 498, rx_coalesced: 1777, tx_interrupts: 2, tx_coalesced: 2273, notifications: 0, reorder_peak: 0 }|NetStats { drops_overflow: 0, drops_loss: 0, drops_link_down: 0, corrupted: 0, drops_unknown_mac: 0, channel_frames: 4550, channel_bytes: 6691856 }"#;
const GOLDEN_2LU_SEED42: &str = r#"ProtoStats { ops_write: 48, ops_read: 0, bytes_written: 3145728, bytes_read: 0, data_frames_sent: 2208, data_bytes_sent: 3145728, read_req_frames_sent: 0, explicit_acks_sent: 57, nacks_sent: 0, retransmits_nack: 0, retransmits_rto: 0, rto_backoff_max: 0, rail_down_events: 0, rail_up_events: 0, data_frames_recv: 2208, data_bytes_recv: 3145728, ctrl_frames_recv: 57, dup_frames_recv: 0, ooo_arrivals: 1070, corrupt_frames: 0, rx_interrupts: 492, rx_coalesced: 1773, tx_interrupts: 5, tx_coalesced: 2260, notifications: 0, reorder_peak: 0 }|NetStats { drops_overflow: 0, drops_loss: 0, drops_link_down: 0, corrupted: 0, drops_unknown_mac: 0, channel_frames: 4530, channel_bytes: 6690096 }"#;
const GOLDEN_4L_SEED1: &str = r#"ProtoStats { ops_write: 48, ops_read: 0, bytes_written: 3145728, bytes_read: 0, data_frames_sent: 2208, data_bytes_sent: 3145728, read_req_frames_sent: 0, explicit_acks_sent: 34, nacks_sent: 0, retransmits_nack: 0, retransmits_rto: 0, rto_backoff_max: 0, rail_down_events: 0, rail_up_events: 0, data_frames_recv: 2208, data_bytes_recv: 3145728, ctrl_frames_recv: 34, dup_frames_recv: 0, ooo_arrivals: 1536, corrupt_frames: 0, rx_interrupts: 277, rx_coalesced: 1965, tx_interrupts: 2, tx_coalesced: 2240, notifications: 0, reorder_peak: 0 }|NetStats { drops_overflow: 0, drops_loss: 0, drops_link_down: 0, corrupted: 0, drops_unknown_mac: 0, channel_frames: 4484, channel_bytes: 6686048 }"#;
const GOLDEN_4L_SEED42: &str = r#"ProtoStats { ops_write: 48, ops_read: 0, bytes_written: 3145728, bytes_read: 0, data_frames_sent: 2208, data_bytes_sent: 3145728, read_req_frames_sent: 0, explicit_acks_sent: 38, nacks_sent: 0, retransmits_nack: 0, retransmits_rto: 0, rto_backoff_max: 0, rail_down_events: 0, rail_up_events: 0, data_frames_recv: 2208, data_bytes_recv: 3145728, ctrl_frames_recv: 38, dup_frames_recv: 0, ooo_arrivals: 1119, corrupt_frames: 0, rx_interrupts: 277, rx_coalesced: 1969, tx_interrupts: 3, tx_coalesced: 2243, notifications: 0, reorder_peak: 0 }|NetStats { drops_overflow: 0, drops_loss: 0, drops_link_down: 0, corrupted: 0, drops_unknown_mac: 0, channel_frames: 4492, channel_bytes: 6686752 }"#;
