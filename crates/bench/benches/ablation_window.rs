//! Ablation: sliding-window size sweep.
//!
//! The paper states "We have verified that the flow-control scheme we use
//! does not limit the maximum throughput" on 10 GbE. This sweep regenerates
//! that check: throughput should saturate well below the default window of
//! 256 frames, and tiny windows should throttle hard.

use me_stats::table::fmt_f;
use me_stats::Table;
use multiedge::SystemConfig;
use multiedge_bench::{run_micro, MicroKind};

fn main() {
    let mut t = Table::new(
        "Ablation: window size vs one-way throughput (MB/s)",
        &["window", "1L-1G", "1L-10G"],
    );
    for window in [2u64, 4, 8, 16, 32, 64, 128, 256, 512] {
        let mut row = vec![format!("{window}")];
        for mut cfg in [SystemConfig::one_link_1g(2), SystemConfig::one_link_10g(2)] {
            cfg.proto.window = window;
            let r = run_micro(&cfg, MicroKind::OneWay, 1 << 20, 12);
            row.push(fmt_f(r.throughput_mb_s));
        }
        t.row(row);
    }
    t.print();
    println!("paper claim: the default window does not limit 10G throughput");
}
