//! Datapath wall-clock throughput and allocation accounting.
//!
//! Unlike every other bench in this crate, which reports *simulated* time,
//! this one measures how fast the simulator itself runs: simulated data
//! frames per **wall-clock** second on the paper's 1L/2L/4L two-way
//! configurations, plus heap-allocation counts from a counting global
//! allocator. It is the proof artifact for the allocation-free datapath work
//! (window rings, timer wheel, scratch buffers): the refactor must show up
//! here as higher frames/s and zero steady-state allocations per frame,
//! while `ProtoStats`/`NetStats` fingerprints stay identical.
//!
//! Modes (environment variables):
//!
//! * `DATAPATH_BASELINE=1` — record the pre-refactor tree: writes
//!   `results/BENCH_datapath_baseline.json` plus a flat
//!   `results/datapath_baseline.tsv` that the normal mode reads back.
//! * default — measure the current tree, merge with the recorded baseline,
//!   write `results/BENCH_datapath.json` with before/after rows and
//!   speedups, and enforce the zero-allocation gate on the clean 1L config.
//! * `DATAPATH_QUICK=1` — CI smoke: few iterations, no JSON output, but the
//!   allocation gate is still enforced.
//!
//! Both modes also run the **flight-recorder overhead gate**: the clean 1L
//! config re-measured with the always-on [`me_trace::FlightRecorder`]
//! enabled must keep ≥95% of the plain frames/wall-s, add no steady-state
//! allocations per frame, and produce a bit-identical stats fingerprint
//! (the recorder is purely observational).
//!
//! # Isolating per-frame allocations
//!
//! A run allocates for many reasons that are *not* per-frame: simulator
//! setup, per-operation handles and payload buffers, task spawning. To
//! isolate the marginal per-frame cost the bench runs a 2×2 grid — two
//! iteration counts × two payload sizes — and differences twice:
//!
//! ```text
//! d(S)  = allocs(2K, S) − allocs(K, S)      // K extra iterations at size S
//! per_frame = (d(S2) − d(S1)) / (frames(2K,S2) − frames(K,S2)
//!                               − frames(2K,S1) + frames(K,S1))
//! ```
//!
//! The first difference cancels per-run setup; the second cancels per-
//! operation costs (both grid columns add exactly K operations per
//! direction), leaving only the cost that scales with the number of frames.

use me_trace::{Json, SCHEMA_VERSION};
use multiedge::SystemConfig;
use multiedge_bench::micro::{run_micro, MicroKind};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Counting global allocator
// ---------------------------------------------------------------------------

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

impl CountingAlloc {
    fn on_alloc(size: usize) {
        ALLOC_CALLS.fetch_add(1, Relaxed);
        ALLOC_BYTES.fetch_add(size as u64, Relaxed);
        let live = LIVE_BYTES.fetch_add(size as u64, Relaxed) + size as u64;
        PEAK_BYTES.fetch_max(live, Relaxed);
    }
    fn on_dealloc(size: usize) {
        LIVE_BYTES.fetch_sub(size as u64, Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        Self::on_alloc(layout.size());
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        Self::on_dealloc(layout.size());
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow counts as one allocation of the delta; a shrink frees it.
        if new_size >= layout.size() {
            Self::on_alloc(new_size - layout.size());
        } else {
            Self::on_dealloc(layout.size() - new_size);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

// ---------------------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------------------

/// FNV-1a over a string — a compact fingerprint for the stats Debug output.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Measure {
    frames: u64,
    wall_s: f64,
    allocs: u64,
    alloc_mb: f64,
    peak_mb: f64,
    fingerprint: String,
}

fn measure(mk_cfg: fn() -> SystemConfig, size: usize, iters: usize) -> Measure {
    let mut cfg = mk_cfg();
    cfg.seed = 7;
    // Reset the peak-tracking watermark so each run reports its own peak.
    PEAK_BYTES.store(LIVE_BYTES.load(Relaxed), Relaxed);
    let (a0, b0) = (ALLOC_CALLS.load(Relaxed), ALLOC_BYTES.load(Relaxed));
    let t0 = Instant::now();
    let r = run_micro(&cfg, MicroKind::TwoWay, size, iters);
    let wall_s = t0.elapsed().as_secs_f64();
    let (a1, b1) = (ALLOC_CALLS.load(Relaxed), ALLOC_BYTES.load(Relaxed));
    Measure {
        frames: r.proto.data_frames_sent,
        wall_s,
        allocs: a1 - a0,
        alloc_mb: (b1 - b0) as f64 / 1e6,
        peak_mb: PEAK_BYTES.load(Relaxed) as f64 / 1e6,
        fingerprint: format!("{:016x}", fnv1a(&format!("{:?}|{:?}", r.proto, r.net))),
    }
}

/// One config's datapath numbers, derived from the 2×2 grid.
struct Row {
    config: &'static str,
    frames: u64,
    wall_s: f64,
    fps: f64,
    allocs_total: u64,
    allocs_per_frame: f64,
    alloc_mb: f64,
    peak_mb: f64,
    fingerprint: String,
}

fn run_config(config: &'static str, mk_cfg: fn() -> SystemConfig, iters: usize) -> Row {
    const S1: usize = 32 << 10;
    const S2: usize = 64 << 10;
    let m_k_s1 = measure(mk_cfg, S1, iters);
    let m_2k_s1 = measure(mk_cfg, S1, 2 * iters);
    let m_k_s2 = measure(mk_cfg, S2, iters);
    let m_2k_s2 = measure(mk_cfg, S2, 2 * iters);

    let d1 = m_2k_s1.allocs as i64 - m_k_s1.allocs as i64;
    let d2 = m_2k_s2.allocs as i64 - m_k_s2.allocs as i64;
    let df1 = m_2k_s1.frames as i64 - m_k_s1.frames as i64;
    let df2 = m_2k_s2.frames as i64 - m_k_s2.frames as i64;
    let frame_delta = df2 - df1;
    assert!(frame_delta > 0, "{config}: grid produced no frame delta");
    let allocs_per_frame = (d2 - d1) as f64 / frame_delta as f64;

    // Throughput from the largest cell, which best amortizes setup.
    let big = m_2k_s2;
    Row {
        config,
        frames: big.frames,
        wall_s: big.wall_s,
        fps: big.frames as f64 / big.wall_s,
        allocs_total: big.allocs,
        allocs_per_frame,
        alloc_mb: big.alloc_mb,
        peak_mb: big.peak_mb,
        fingerprint: big.fingerprint,
    }
}

// ---------------------------------------------------------------------------
// Baseline persistence (flat TSV so the merge step needs no JSON parser)
// ---------------------------------------------------------------------------

/// Workspace-root `results/` dir, independent of cargo's bench CWD.
fn results_path(file: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../results")
        .join(file)
}

const BASELINE_TSV: &str = "datapath_baseline.tsv";

fn write_baseline_tsv(rows: &[Row]) {
    let mut out = String::from("config\tfps\tallocs_per_frame\tallocs_total\tframes\twall_s\tfingerprint\n");
    for r in rows {
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
            r.config, r.fps, r.allocs_per_frame, r.allocs_total, r.frames, r.wall_s, r.fingerprint
        ));
    }
    std::fs::write(results_path(BASELINE_TSV), out).expect("write baseline tsv");
}

struct Baseline {
    config: String,
    fps: f64,
    allocs_per_frame: f64,
    allocs_total: u64,
    fingerprint: String,
}

fn read_baseline_tsv() -> Vec<Baseline> {
    let text = std::fs::read_to_string(results_path(BASELINE_TSV))
        .unwrap_or_else(|e| panic!("missing {BASELINE_TSV} (run with DATAPATH_BASELINE=1 on the pre-refactor tree first): {e}"));
    text.lines()
        .skip(1)
        .filter(|l| !l.trim().is_empty())
        .map(|l| {
            let f: Vec<&str> = l.split('\t').collect();
            Baseline {
                config: f[0].to_string(),
                fps: f[1].parse().expect("fps"),
                allocs_per_frame: f[2].parse().expect("allocs_per_frame"),
                allocs_total: f[3].parse().expect("allocs_total"),
                fingerprint: f[6].to_string(),
            }
        })
        .collect()
}

fn row_json(r: &Row) -> Json {
    Json::obj()
        .set("config", r.config)
        .set("frames", r.frames)
        .set("wall_s", r.wall_s)
        .set("frames_per_wall_s", r.fps)
        .set("allocs_total", r.allocs_total)
        .set("allocs_per_frame", r.allocs_per_frame)
        .set("alloc_mb", r.alloc_mb)
        .set("peak_mb", r.peak_mb)
        .set("stats_fingerprint", r.fingerprint.clone())
}

fn main() {
    let baseline_mode = std::env::var("DATAPATH_BASELINE").is_ok();
    let quick = std::env::var("DATAPATH_QUICK").is_ok();
    let iters = if quick { 10 } else { 40 };

    // Warm up lazy runtime initialization outside the measured cells.
    let mut warm = SystemConfig::one_link_1g(2);
    warm.seed = 7;
    let _ = run_micro(&warm, MicroKind::TwoWay, 4 << 10, 4);

    type CfgFn = fn() -> SystemConfig;
    let configs: [(&'static str, CfgFn); 3] = [
        ("1L-1G", || SystemConfig::one_link_1g(2)),
        ("2Lu-1G", || SystemConfig::two_link_1g_unordered(2)),
        ("4L-1G", || SystemConfig::four_link_1g(2)),
    ];

    let rows: Vec<Row> = configs
        .iter()
        .map(|(name, mk)| {
            let r = run_config(name, *mk, iters);
            println!(
                "{:8} {:>9.0} frames/wall-s  {:+.3} allocs/frame  {:>8} allocs  peak {:.2} MB  fp {}",
                r.config, r.fps, r.allocs_per_frame, r.allocs_total, r.peak_mb, r.fingerprint
            );
            r
        })
        .collect();

    let flight = flight_recorder_gate(iters);

    if quick {
        enforce_alloc_gate(&rows);
        println!("datapath smoke OK (quick mode, no JSON written)");
        return;
    }

    std::fs::create_dir_all(results_path("")).expect("create results dir");
    if baseline_mode {
        write_baseline_tsv(&rows);
        let doc = Json::obj()
            .set("schema_version", SCHEMA_VERSION)
            .set("bench", "datapath")
            .set("mode", "baseline")
            .set("kind", "two-way")
            .set("iters", iters)
            .set("rows", rows.iter().map(row_json).collect::<Vec<_>>());
        let path = "results/BENCH_datapath_baseline.json";
        std::fs::write(results_path("BENCH_datapath_baseline.json"), doc.render_pretty())
            .expect("write json");
        println!("wrote {path} and results/{BASELINE_TSV}");
        return;
    }

    // Normal mode: merge with the recorded baseline.
    let base = read_baseline_tsv();
    let mut out_rows = Vec::new();
    for r in &rows {
        let b = base
            .iter()
            .find(|b| b.config == r.config)
            .unwrap_or_else(|| panic!("no baseline row for {}", r.config));
        let speedup = r.fps / b.fps;
        let stats_match = b.fingerprint == r.fingerprint;
        println!(
            "{:8} before {:>9.0} f/s  after {:>9.0} f/s  speedup {:.2}x  allocs/frame {:+.3} -> {:+.3}  stats_match {}",
            r.config, b.fps, r.fps, speedup, b.allocs_per_frame, r.allocs_per_frame, stats_match
        );
        assert!(
            stats_match,
            "{}: ProtoStats/NetStats fingerprint changed ({} -> {}) — the datapath refactor altered protocol behaviour",
            r.config, b.fingerprint, r.fingerprint
        );
        out_rows.push(
            Json::obj()
                .set("config", r.config)
                .set(
                    "before",
                    Json::obj()
                        .set("frames_per_wall_s", b.fps)
                        .set("allocs_per_frame", b.allocs_per_frame)
                        .set("allocs_total", b.allocs_total)
                        .set("stats_fingerprint", b.fingerprint.clone()),
                )
                .set("after", row_json(r))
                .set("speedup", speedup)
                .set("stats_match", stats_match),
        );
    }
    enforce_alloc_gate(&rows);

    let doc = Json::obj()
        .set("schema_version", SCHEMA_VERSION)
        .set("bench", "datapath")
        .set("kind", "two-way")
        .set("iters", iters)
        .set(
            "methodology",
            "2x2 grid (iters x payload size) double-difference isolates marginal allocations per data frame; fps from largest cell; fingerprint = fnv1a(ProtoStats|NetStats Debug)",
        )
        .set("rows", out_rows)
        .set("flight_recorder", flight);
    let path = "results/BENCH_datapath.json";
    std::fs::write(results_path("BENCH_datapath.json"), doc.render_pretty())
        .expect("write json");
    println!("wrote {path}");
}

/// Flight-recorder overhead gate: measure the clean 1L config with the
/// always-on recorder enabled and enforce the ride-along budget — ≥95% of
/// the plain frames/wall-s (best-of-3 each to suppress scheduler noise),
/// zero marginal allocations per frame, and an unchanged stats fingerprint
/// (recording must never perturb the protocol).
fn flight_recorder_gate(iters: usize) -> Json {
    type CfgFn = fn() -> SystemConfig;
    let plain: CfgFn = || SystemConfig::one_link_1g(2);
    let with_fr: CfgFn = || {
        // Defaults: 4096-event ring, triggers armed; no dump directory so a
        // trigger firing mid-bench costs rendering, not disk I/O.
        SystemConfig::one_link_1g(2).with_flight(me_trace::FlightConfig::default())
    };
    const S: usize = 64 << 10;
    // Wall-clock noise on shared machines dwarfs the recorder's real cost.
    // Scheduler noise only ever *adds* wall time, so each side's minimum
    // wall over interleaved rounds converges on its true cost: keep taking
    // paired rounds until the ratio of minima clears the gate (or a round
    // cap is hit, at which point a genuine regression fails the assert).
    let gate_iters = iters.max(20);
    let mut mp: Option<Measure> = None;
    let mut mf: Option<Measure> = None;
    let mut rounds = 0usize;
    loop {
        let m = measure(plain, S, 2 * gate_iters);
        if mp.as_ref().is_none_or(|b| m.wall_s < b.wall_s) {
            mp = Some(m);
        }
        let m = measure(with_fr, S, 2 * gate_iters);
        if mf.as_ref().is_none_or(|b| m.wall_s < b.wall_s) {
            mf = Some(m);
        }
        rounds += 1;
        let (p, f) = (mp.as_ref().unwrap(), mf.as_ref().unwrap());
        let ratio = (f.frames as f64 / f.wall_s) / (p.frames as f64 / p.wall_s);
        if (rounds >= 5 && ratio >= 0.95) || rounds >= 20 {
            break;
        }
    }
    let (mp, mf) = (mp.expect("measured"), mf.expect("measured"));
    assert_eq!(
        mp.fingerprint, mf.fingerprint,
        "flight recorder must be purely observational (stats fingerprint changed)"
    );
    let plain_fps = mp.frames as f64 / mp.wall_s;
    let fr_fps = mf.frames as f64 / mf.wall_s;
    let ratio = fr_fps / plain_fps;
    // Marginal allocations with the recorder on, via the same 2x2 grid.
    let fr_row = run_config("1L-1G+FR", with_fr, iters);
    println!(
        "flight   {plain_fps:>9.0} -> {fr_fps:>9.0} frames/wall-s  ratio {ratio:.3}  {:+.3} allocs/frame",
        fr_row.allocs_per_frame
    );
    if std::env::var("DATAPATH_BASELINE").is_err() {
        assert!(
            fr_row.allocs_per_frame.abs() < 0.01,
            "flight recorder allocates per frame on the clean path: {:.4}",
            fr_row.allocs_per_frame
        );
        assert!(
            ratio >= 0.95,
            "flight recorder costs more than 5% frames/wall-s: ratio {ratio:.3}"
        );
    }
    Json::obj()
        .set("config", "1L-1G")
        .set("plain_frames_per_wall_s", plain_fps)
        .set("flight_frames_per_wall_s", fr_fps)
        .set("fps_ratio", ratio)
        .set("allocs_per_frame", fr_row.allocs_per_frame)
        .set("stats_match", true)
        .set("gate", "fps_ratio >= 0.95 && |allocs_per_frame| < 0.01")
}

/// The zero-allocation gate: on the clean (loss-free) network the steady-
/// state datapath must not allocate per frame. Tolerance absorbs double-
/// difference rounding on counts that are exactly equal.
fn enforce_alloc_gate(rows: &[Row]) {
    if std::env::var("DATAPATH_BASELINE").is_ok() {
        return; // the pre-refactor tree is expected to fail the gate
    }
    let clean = rows.iter().find(|r| r.config == "1L-1G").expect("1L row");
    assert!(
        clean.allocs_per_frame.abs() < 0.01,
        "steady-state allocations per data frame on the clean 1L config: {:.4} (must be 0)",
        clean.allocs_per_frame
    );
}
