//! Health-plane cost and fidelity gates (`me-doctor`).
//!
//! The streaming detectors ([`me_trace::detect`]) promise to be purely
//! observational — allocation-free at every sample tick, ≤5% frames/wall-s
//! on top of the already-gated sampler — and to diagnose correctly: a
//! scripted rail outage opens `RailOutage` within 3 sample intervals of
//! injection, a clean seed sweep opens nothing, a chaos loss burst names
//! `RetransmitStorm`, incast fan-in names the receiver's shard hot, and
//! the offline JSONL replay reproduces every online verdict byte-for-byte
//! (asserted inside each cell). This bench enforces all of it and writes
//! the committed `results/BENCH_doctor.json` plus
//! `results/doctor_incidents.json` (every cell's incident report, the
//! artifact CI uploads on failure).
//!
//! Modes (environment variables):
//!
//! * default — full cells, all gates, artifacts written.
//! * `DOCTOR_SMOKE=1` — CI smoke: small cells, every gate still enforced,
//!   artifacts still written (marked `"mode": "smoke"`).
//!
//! # Isolating the detectors' marginal cost
//!
//! Same discipline as the telemetry bench: interleaved health-off /
//! health-on rounds compared on each side's *minimum* wall time for the
//! fps ratio, and a two-point difference in run length for the marginal
//! allocations — per extra sample row, the armed monitor must allocate
//! nothing.

use me_trace::{HealthConfig, HealthReport, IncidentCause, Json, SCHEMA_VERSION};
use multiedge::SystemConfig;
use multiedge_bench::doctor::{
    balanced_doctor, chaos_burst_doctor, clean_seeds_doctor, incast_doctor, rail_outage_doctor,
};
use multiedge_bench::micro::{run_micro_doctor, run_micro_sampled, MicroKind, MicroResult};
use netsim::shard::ShardMode;
use netsim::time::us;
use netsim::{Dur, FaultPlan};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Counting global allocator
// ---------------------------------------------------------------------------

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if new_size > layout.size() {
            ALLOC_CALLS.fetch_add(1, Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

// ---------------------------------------------------------------------------
// Overhead gate
// ---------------------------------------------------------------------------

/// FNV-1a over a string — compact fingerprint for the stats Debug output.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Measure {
    frames: u64,
    rows: u64,
    wall_s: f64,
    allocs: u64,
    fingerprint: String,
}

/// One sampled two-way run on the clean 1L-1G config (1 ms interval), with
/// the health monitor armed when `health` is set. Both sides sample; only
/// the detector work differs, so the comparison isolates its cost.
fn measure(size: usize, iters: usize, health: bool) -> Measure {
    let mut cfg = SystemConfig::one_link_1g(2);
    cfg.seed = 7;
    let interval = Dur(us(1000).as_nanos());
    let a0 = ALLOC_CALLS.load(Relaxed);
    let t0 = Instant::now();
    let r: MicroResult = if health {
        run_micro_doctor(
            &cfg,
            MicroKind::TwoWay,
            size,
            iters,
            &FaultPlan::new(),
            interval,
            HealthConfig::default(),
        )
    } else {
        run_micro_sampled(
            &cfg,
            MicroKind::TwoWay,
            size,
            iters,
            &FaultPlan::new(),
            Some(interval),
        )
    };
    let wall_s = t0.elapsed().as_secs_f64();
    let allocs = ALLOC_CALLS.load(Relaxed) - a0;
    Measure {
        frames: r.proto.data_frames_sent,
        rows: r.timeline.as_ref().map_or(0, |tl| tl.len() as u64),
        wall_s,
        allocs,
        fingerprint: format!("{:016x}", fnv1a(&format!("{:?}|{:?}", r.proto, r.net))),
    }
}

/// Marginal allocations per sample row attributable to the armed monitor:
/// two run lengths difference out per-run setup, the health-off baseline
/// differences out the sampler itself.
fn allocs_per_sample(iters: usize) -> f64 {
    const S: usize = 64 << 10;
    let on_1 = measure(S, iters, true);
    let on_2 = measure(S, 4 * iters, true);
    let off_1 = measure(S, iters, false);
    let off_2 = measure(S, 4 * iters, false);
    let d_on = on_2.allocs as i64 - on_1.allocs as i64;
    let d_off = off_2.allocs as i64 - off_1.allocs as i64;
    let d_rows = on_2.rows as i64 - on_1.rows as i64;
    assert!(d_rows > 0, "longer run must commit more sample rows");
    (d_on - d_off) as f64 / d_rows as f64
}

/// The detector overhead gate: interleaved min-wall health-off/on rounds
/// until the frames/wall-s ratio clears 0.95 (or a round cap is hit, at
/// which point a genuine regression fails the assert), plus the
/// allocation and fingerprint gates.
fn overhead_gate(iters: usize) -> Json {
    const S: usize = 64 << 10;
    let iters = iters.max(20);
    let mut off: Option<Measure> = None;
    let mut on: Option<Measure> = None;
    let mut rounds = 0usize;
    loop {
        let m = measure(S, 2 * iters, false);
        if off.as_ref().is_none_or(|b| m.wall_s < b.wall_s) {
            off = Some(m);
        }
        let m = measure(S, 2 * iters, true);
        if on.as_ref().is_none_or(|b| m.wall_s < b.wall_s) {
            on = Some(m);
        }
        rounds += 1;
        let (o, s) = (off.as_ref().unwrap(), on.as_ref().unwrap());
        let ratio = (s.frames as f64 / s.wall_s) / (o.frames as f64 / o.wall_s);
        if (rounds >= 5 && ratio >= 0.95) || rounds >= 20 {
            break;
        }
    }
    let (off, on) = (off.expect("measured"), on.expect("measured"));
    assert_eq!(
        off.fingerprint, on.fingerprint,
        "the monitor must be purely observational (stats fingerprint changed)"
    );
    let off_fps = off.frames as f64 / off.wall_s;
    let on_fps = on.frames as f64 / on.wall_s;
    let ratio = on_fps / off_fps;
    let aps = allocs_per_sample(iters);
    println!(
        "overhead {off_fps:>9.0} -> {on_fps:>9.0} frames/wall-s  ratio {ratio:.3}  {aps:+.3} allocs/sample"
    );
    assert!(
        aps.abs() < 0.01,
        "health monitor allocates per sample tick: {aps:.4}"
    );
    assert!(
        ratio >= 0.95,
        "health monitor costs more than 5% frames/wall-s: ratio {ratio:.3}"
    );
    Json::obj()
        .set("config", "1L-1G")
        .set("kind", "two-way")
        .set("plain_frames_per_wall_s", off_fps)
        .set("doctor_frames_per_wall_s", on_fps)
        .set("fps_ratio", ratio)
        .set("allocs_per_sample", aps)
        .set("stats_match", true)
        .set("gate", "fps_ratio >= 0.95 && |allocs_per_sample| < 0.01 && stats fingerprints identical")
}

// ---------------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------------

/// Workspace-root `results/` dir, independent of cargo's bench CWD.
fn results_path(file: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../results")
        .join(file)
}

fn incident_artifact(cells: &[(&str, &HealthReport)]) -> Json {
    let entries: Vec<Json> = cells
        .iter()
        .map(|(name, r)| Json::obj().set("cell", *name).set("report", r.to_json()))
        .collect();
    Json::obj()
        .set("schema_version", SCHEMA_VERSION)
        .set("kind", "multiedge_doctor_incidents")
        .set("cells", entries)
}

fn main() {
    let smoke = std::env::var("DOCTOR_SMOKE").is_ok();
    let iters = if smoke { 10 } else { 40 };

    // Warm up lazy runtime initialization outside the measured cells.
    let mut warm = SystemConfig::one_link_1g(2);
    warm.seed = 7;
    let _ = run_micro_sampled(
        &warm,
        MicroKind::TwoWay,
        4 << 10,
        4,
        &FaultPlan::new(),
        None,
    );

    let overhead = overhead_gate(iters);

    // Rail outage: detection latency gate. The offline ≡ online replay
    // gate runs inside the cell.
    let r = rail_outage_doctor(smoke);
    let rail_health = r.result.health.clone().expect("health armed");
    println!(
        "rail-outage  injected {:.2}ms  opened {:.2}ms  ({} interval(s), gate <= 3)",
        r.injected_ns as f64 / 1e6,
        r.opened_ns as f64 / 1e6,
        r.detect_intervals
    );
    assert!(
        r.detect_intervals <= 3,
        "RailOutage opened {} intervals after injection",
        r.detect_intervals
    );
    let rail = Json::obj()
        .set("config", "2Lu-1G")
        .set("kind", "one-way")
        .set("injected_t_ns", r.injected_ns)
        .set("opened_t_ns", r.opened_ns)
        .set("detect_intervals", r.detect_intervals)
        .set("incidents", rail_health.incidents.len())
        .set("offline_identical", true)
        .set("gate", "RailOutage opens within 3 sample intervals of injection");

    // Clean seeds: false-alarm gate.
    let seeds: &[u64] = &[3, 5, 7, 11, 13, 17, 19, 23];
    let clean = clean_seeds_doctor(smoke, seeds);
    let false_alarms: u64 = clean.iter().map(|(_, r)| r.incidents.len() as u64).sum();
    println!(
        "clean-seeds  {} seeds  {} incidents (gate: 0)",
        clean.len(),
        false_alarms
    );
    for (seed, report) in &clean {
        assert!(
            report.incidents.is_empty(),
            "seed {seed} raised incidents on a clean run:\n{}",
            report.render_human()
        );
    }
    let clean_json = Json::obj()
        .set("config", "2Lu-1G")
        .set("kind", "two-way")
        .set("seeds", seeds.iter().map(|&s| Json::from(s)).collect::<Vec<_>>())
        .set("false_alarms", false_alarms)
        .set("gate", "zero incidents across every clean seed");

    // Chaos burst: cause-naming gate on the wire runtime.
    let c = chaos_burst_doctor(smoke);
    let storm = c
        .health
        .first(IncidentCause::RetransmitStorm)
        .expect("a loss burst must diagnose as RetransmitStorm");
    println!(
        "chaos-burst  {} dropped  storm opened {:.2}ms (burst armed {:.2}ms)",
        c.chaos.dropped,
        storm.opened_t_ns as f64 / 1e6,
        c.burst_at_ns as f64 / 1e6
    );
    assert!(c.chaos.dropped > 0, "the burst must drop frames");
    assert!(storm.opened_t_ns >= c.burst_at_ns);
    let chaos_json = Json::obj()
        .set("config", "BP-2L+chaos(burst GE 0.15/0.3 loss 0.6)")
        .set("kind", "one-way")
        .set("chaos_dropped", c.chaos.dropped)
        .set("burst_at_ns", c.burst_at_ns)
        .set("storm_opened_t_ns", storm.opened_t_ns)
        .set("incidents", c.health.incidents.len())
        .set("offline_identical", true)
        .set("gate", "burst loss diagnoses as RetransmitStorm after the burst arms");

    // Incast vs balanced: the sharded cross-member diagnosis.
    let inc = incast_doctor(smoke, ShardMode::Cooperative);
    let inc_health = inc.shard_health.clone().expect("diagnosis enabled");
    let i = inc_health
        .first(IncidentCause::IncastImbalance)
        .expect("incast must diagnose as IncastImbalance");
    let hot = i.evidence()[0].column as usize;
    println!(
        "incast       hot member {} ({} alarms)  balanced: checking...",
        hot, i.alarms
    );
    assert_eq!(hot, 0, "the receiver's shard must be named hot");
    let bal = balanced_doctor(smoke, ShardMode::Cooperative);
    let bal_health = bal.shard_health.clone().expect("diagnosis enabled");
    println!(
        "balanced     {} incidents (gate: 0)",
        bal_health.incidents.len()
    );
    assert!(
        bal_health.incidents.is_empty(),
        "balanced all-to-all must stay clean:\n{}",
        bal_health.render_human()
    );
    let shard_json = Json::obj()
        .set("incast_config", "2Lu-1G incast-8 / 4 shards")
        .set("balanced_config", "4L-1G all-to-all-8 / 4 shards")
        .set("incast_hot_member", hot)
        .set("incast_alarms", i.alarms)
        .set("balanced_incidents", bal_health.incidents.len())
        .set("gate", "incast names shard 0 hot; balanced stays clean");

    // Incident-report artifact: every cell's full report, uploaded by CI
    // on failure for post-mortem triage.
    let clean_reports: Vec<(String, &HealthReport)> = clean
        .iter()
        .map(|(s, r)| (format!("clean_seed_{s}"), r))
        .collect();
    let mut cells: Vec<(&str, &HealthReport)> = vec![
        ("rail_outage", &rail_health),
        ("chaos_burst", &c.health),
        ("incast", &inc_health),
        ("balanced", &bal_health),
    ];
    cells.extend(clean_reports.iter().map(|(n, r)| (n.as_str(), *r)));
    std::fs::create_dir_all(results_path("")).expect("create results dir");
    std::fs::write(
        results_path("doctor_incidents.json"),
        incident_artifact(&cells).render_pretty(),
    )
    .expect("write incident artifact");

    let doc = Json::obj()
        .set("schema_version", SCHEMA_VERSION)
        .set("bench", "doctor")
        .set("mode", if smoke { "smoke" } else { "full" })
        .set(
            "methodology",
            "interleaved min-wall off/on rounds for fps ratio; two-point run-length difference (health-on minus health-off) for allocs/sample; every cell replays its JSONL artifact offline and requires a byte-identical report",
        )
        .set("overhead", overhead)
        .set("rail_outage", rail)
        .set("clean_seeds", clean_json)
        .set("chaos_burst", chaos_json)
        .set("shards", shard_json);
    std::fs::write(results_path("BENCH_doctor.json"), doc.render_pretty())
        .expect("write json");
    println!("wrote results/BENCH_doctor.json and results/doctor_incidents.json");
}
