//! Telemetry-plane cost and fidelity gates.
//!
//! The interval sampler ([`me_trace::Timeline`]) promises to be purely
//! observational: allocation-free on the datapath, ≤5% frames/wall-s, and
//! bit-identical protocol behaviour with sampling on. This bench enforces
//! all three, then runs the time-resolved cells
//! ([`multiedge_bench::telemetry`]) and writes the committed
//! `results/BENCH_telemetry.json` plus the
//! `results/telemetry_failover.jsonl` timeline artifact that
//! `me-inspect timeline` renders.
//!
//! Modes (environment variables):
//!
//! * default — full cells, all gates, JSON + JSONL artifacts written.
//! * `TELEMETRY_SMOKE=1` — CI smoke: small cells, every gate still
//!   enforced, artifacts still written (marked `"mode": "smoke"`).
//!
//! # Isolating the sampler's marginal cost
//!
//! Wall-clock noise dwarfs the sampler's real cost on shared machines, so
//! the overhead gate interleaves sampling-off / sampling-on rounds and
//! compares each side's *minimum* wall time (scheduler noise only ever
//! adds time). Allocation cost uses the same 2×2 double-difference grid
//! as the datapath bench: two iteration counts × two payload sizes cancel
//! per-run and per-operation allocations, leaving the per-frame marginal
//! cost — which must stay zero with the sampler armed.

use me_trace::{Json, SCHEMA_VERSION};
use multiedge::SystemConfig;
use multiedge_bench::micro::{run_micro_sampled, MicroKind};
use multiedge_bench::telemetry::{failover_telemetry, incast_telemetry, wire_telemetry};
use netsim::shard::ShardMode;
use netsim::time::us;
use netsim::Dur;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Counting global allocator
// ---------------------------------------------------------------------------

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if new_size > layout.size() {
            ALLOC_CALLS.fetch_add(1, Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

// ---------------------------------------------------------------------------
// Overhead gate
// ---------------------------------------------------------------------------

/// FNV-1a over a string — compact fingerprint for the stats Debug output.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Measure {
    frames: u64,
    wall_s: f64,
    allocs: u64,
    fingerprint: String,
}

/// One two-way run on the clean 1L-1G config, sampled every 1 ms of
/// virtual time when `sampled` is set (the production-style cadence: each
/// interval covers ~80 frames on this cell, so the row cost amortizes).
/// Sampled runs also enforce the exact reconciliation gate before
/// returning.
fn measure(size: usize, iters: usize, sampled: bool) -> Measure {
    let mut cfg = SystemConfig::one_link_1g(2);
    cfg.seed = 7;
    let interval = sampled.then_some(Dur(us(1000).as_nanos()));
    let a0 = ALLOC_CALLS.load(Relaxed);
    let t0 = Instant::now();
    let r = run_micro_sampled(
        &cfg,
        MicroKind::TwoWay,
        size,
        iters,
        &netsim::FaultPlan::new(),
        interval,
    );
    let wall_s = t0.elapsed().as_secs_f64();
    let allocs = ALLOC_CALLS.load(Relaxed) - a0;
    if let (Some(tl), Some(end)) = (&r.timeline, &r.timeline_proto) {
        multiedge_bench::telemetry::reconcile_proto(tl, end)
            .expect("sampled datapath run must reconcile exactly");
    }
    Measure {
        frames: r.proto.data_frames_sent,
        wall_s,
        allocs,
        fingerprint: format!("{:016x}", fnv1a(&format!("{:?}|{:?}", r.proto, r.net))),
    }
}

/// Marginal allocations per data frame with the sampler armed, via the
/// 2×2 double-difference grid (see module docs).
fn allocs_per_frame(iters: usize) -> f64 {
    const S1: usize = 32 << 10;
    const S2: usize = 64 << 10;
    let m_k_s1 = measure(S1, iters, true);
    let m_2k_s1 = measure(S1, 2 * iters, true);
    let m_k_s2 = measure(S2, iters, true);
    let m_2k_s2 = measure(S2, 2 * iters, true);
    let d1 = m_2k_s1.allocs as i64 - m_k_s1.allocs as i64;
    let d2 = m_2k_s2.allocs as i64 - m_k_s2.allocs as i64;
    let df1 = m_2k_s1.frames as i64 - m_k_s1.frames as i64;
    let df2 = m_2k_s2.frames as i64 - m_k_s2.frames as i64;
    let frame_delta = df2 - df1;
    assert!(frame_delta > 0, "grid produced no frame delta");
    (d2 - d1) as f64 / frame_delta as f64
}

/// The sampler overhead gate on the datapath cell: interleaved min-wall
/// rounds until the frames/wall-s ratio clears 0.95 (or a round cap is
/// hit, at which point a genuine regression fails the assert), plus the
/// allocation and fingerprint gates.
fn overhead_gate(iters: usize) -> Json {
    const S: usize = 64 << 10;
    // Long enough that per-run setup (cluster build, timeline prealloc)
    // amortizes and the ratio measures the per-frame marginal cost.
    let iters = iters.max(20);
    let mut off: Option<Measure> = None;
    let mut on: Option<Measure> = None;
    let mut rounds = 0usize;
    loop {
        let m = measure(S, 2 * iters, false);
        if off.as_ref().is_none_or(|b| m.wall_s < b.wall_s) {
            off = Some(m);
        }
        let m = measure(S, 2 * iters, true);
        if on.as_ref().is_none_or(|b| m.wall_s < b.wall_s) {
            on = Some(m);
        }
        rounds += 1;
        let (o, s) = (off.as_ref().unwrap(), on.as_ref().unwrap());
        let ratio = (s.frames as f64 / s.wall_s) / (o.frames as f64 / o.wall_s);
        if (rounds >= 5 && ratio >= 0.95) || rounds >= 20 {
            break;
        }
    }
    let (off, on) = (off.expect("measured"), on.expect("measured"));
    assert_eq!(
        off.fingerprint, on.fingerprint,
        "sampling must be purely observational (stats fingerprint changed)"
    );
    let off_fps = off.frames as f64 / off.wall_s;
    let on_fps = on.frames as f64 / on.wall_s;
    let ratio = on_fps / off_fps;
    let apf = allocs_per_frame(iters);
    println!(
        "overhead {off_fps:>9.0} -> {on_fps:>9.0} frames/wall-s  ratio {ratio:.3}  {apf:+.3} allocs/frame"
    );
    assert!(
        apf.abs() < 0.01,
        "sampler allocates per frame on the datapath: {apf:.4}"
    );
    assert!(
        ratio >= 0.95,
        "sampler costs more than 5% frames/wall-s: ratio {ratio:.3}"
    );
    Json::obj()
        .set("config", "1L-1G")
        .set("kind", "two-way")
        .set("plain_frames_per_wall_s", off_fps)
        .set("sampled_frames_per_wall_s", on_fps)
        .set("fps_ratio", ratio)
        .set("allocs_per_frame", apf)
        .set("stats_match", true)
        .set("gate", "fps_ratio >= 0.95 && |allocs_per_frame| < 0.01 && exact reconciliation")
}

// ---------------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------------

/// Workspace-root `results/` dir, independent of cargo's bench CWD.
fn results_path(file: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../results")
        .join(file)
}

fn main() {
    let smoke = std::env::var("TELEMETRY_SMOKE").is_ok();
    let iters = if smoke { 10 } else { 40 };

    // Warm up lazy runtime initialization outside the measured cells.
    let mut warm = SystemConfig::one_link_1g(2);
    warm.seed = 7;
    let _ = run_micro_sampled(
        &warm,
        MicroKind::TwoWay,
        4 << 10,
        4,
        &netsim::FaultPlan::new(),
        None,
    );

    let overhead = overhead_gate(iters);

    let f = failover_telemetry(smoke);
    let end = f.result.timeline_proto.as_ref().expect("sampled");
    println!(
        "failover {} rows  {} retransmit intervals  {} rail-dead intervals  ({} retransmits total)",
        f.rows,
        f.retransmit_intervals,
        f.rail_dead_intervals,
        end.retransmits()
    );
    assert!(f.retransmit_intervals >= 1, "outage must localise to intervals");
    assert!(f.rail_dead_intervals >= 1, "dead rail must localise to intervals");
    let failover = Json::obj()
        .set("config", "2Lu-1G")
        .set("kind", "one-way")
        .set("rows", f.rows)
        .set("retransmit_intervals", f.retransmit_intervals)
        .set("rail_dead_intervals", f.rail_dead_intervals)
        .set("retransmits_total", end.retransmits())
        .set("reconciled", true)
        .set("artifact", "results/telemetry_failover.jsonl");

    let w = wire_telemetry(smoke);
    println!(
        "wire     {} rows  {} retransmit intervals  chaos dropped {}",
        w.timeline.len(),
        w.retransmit_intervals,
        w.chaos.dropped
    );
    assert!(w.retransmit_intervals >= 1, "chaos loss must localise to intervals");
    let wire = Json::obj()
        .set("config", "BP-2L+chaos(drop=0.02)")
        .set("kind", "one-way")
        .set("rows", w.timeline.len())
        .set("retransmit_intervals", w.retransmit_intervals)
        .set("chaos_dropped", w.chaos.dropped)
        .set("retransmits_total", w.end.retransmits())
        .set("reconciled", true);

    let t = incast_telemetry(smoke, ShardMode::Cooperative);
    println!(
        "incast   4 shards  hot shard {}  peak imbalance {:.2}x over {} intervals",
        t.hot_shard,
        t.peak_imbalance,
        t.intervals.len()
    );
    // Node 0 is the incast receiver; the contiguous partition puts it in
    // shard 0, which the per-interval index must name as hot.
    assert_eq!(t.hot_shard, 0, "imbalance index must name the receiver's shard");
    assert!(t.peak_imbalance > 1.0, "incast must be measurably imbalanced");
    let intervals: Vec<Json> = t
        .intervals
        .iter()
        .map(|(t_ns, idx, hot)| {
            Json::obj()
                .set("t_ns", *t_ns)
                .set("imbalance", *idx)
                .set("hot_shard", *hot)
        })
        .collect();
    let incast = Json::obj()
        .set("config", "2Lu-1G incast-8")
        .set("shards", t.cell.shards)
        .set("hot_shard", t.hot_shard)
        .set("peak_imbalance", t.peak_imbalance)
        .set("intervals", intervals);

    std::fs::create_dir_all(results_path("")).expect("create results dir");
    std::fs::write(results_path("telemetry_failover.jsonl"), &f.jsonl)
        .expect("write failover timeline artifact");
    // One artifact per shard: `me-inspect timeline shard0.jsonl … shard3.jsonl`
    // renders the cross-shard imbalance table from these.
    for (i, tl) in t.cell.shard_samples.iter().enumerate() {
        std::fs::write(
            results_path(&format!("telemetry_incast_shard{i}.jsonl")),
            tl.to_jsonl(),
        )
        .expect("write shard timeline artifact");
    }
    let doc = Json::obj()
        .set("schema_version", SCHEMA_VERSION)
        .set("bench", "telemetry")
        .set("mode", if smoke { "smoke" } else { "full" })
        .set(
            "methodology",
            "interleaved min-wall off/on rounds for fps ratio; 2x2 double-difference for allocs/frame; base + per-interval deltas reconciled exactly against end-of-run ProtoStats in every sampled cell",
        )
        .set("overhead", overhead)
        .set("failover", failover)
        .set("wire", wire)
        .set("incast", incast);
    std::fs::write(results_path("BENCH_telemetry.json"), doc.render_pretty())
        .expect("write json");
    println!("wrote results/BENCH_telemetry.json and results/telemetry_failover.jsonl");
}
