//! `chaos`: the chaos soak harness — seeded fault schedules through the
//! backend-agnostic [`FaultBackplane`] interposer over BOTH transports.
//!
//! Every cell runs the identical protocol driver under the identical
//! schedule over the netsim fabric and over real UDP loopback sockets,
//! then asserts exactly-once delivery, fence ordering and **identical
//! timing-independent fingerprints** sim-vs-UDP. Rail-blackout cells must
//! leave `rail_death` flight-dump artifacts. Writes:
//!
//! * `results/BENCH_chaos.json` — per-cell, per-backend rows (chaos
//!   counters, retransmits, elapsed, fingerprints, agreement verdict),
//! * `results/chaos_dumps/<cell>-<backend>/` — flight-recorder
//!   post-mortems, written by triggered dumps during the runs. On a
//!   failure these are the triage artifact CI uploads.
//!
//! Modes: `CHAOS_SMOKE=1` runs the reduced CI profile (smaller workload).
//! The harness fails when a schedule cannot complete on a backend (every
//! schedule is recoverable by construction) or when the backends disagree
//! on a fingerprint.
//!
//! [`FaultBackplane`]: multiedge::backplane::FaultBackplane

use me_trace::{Json, SCHEMA_VERSION};
use multiedge_bench::backplane::WireBackend;
use multiedge_bench::chaos::{chaos_cells, run_chaos_cell, ChaosCellRun};
use multiedge_bench::triage::results_dir;

fn run_json(run: &ChaosCellRun) -> Json {
    Json::obj()
        .set(
            "fingerprint",
            run.fingerprint.iter().map(|&v| Json::from(v)).collect::<Vec<_>>(),
        )
        .set("frames_seen", run.chaos.frames_seen)
        .set("dropped", run.chaos.dropped)
        .set("duplicated", run.chaos.duplicated)
        .set("reordered", run.chaos.reordered)
        .set("corrupt_dropped", run.chaos.corrupt_dropped)
        .set("blackout_dropped", run.chaos.blackout_dropped)
        .set("retransmits", run.retransmits)
        .set("storm_suppressed", run.storm_suppressed)
        .set("elapsed_ns", run.elapsed_ns)
        .set(
            "dumps",
            run.dump_paths.iter().map(|p| Json::from(p.clone())).collect::<Vec<_>>(),
        )
}

fn main() {
    let smoke = std::env::var("CHAOS_SMOKE").is_ok();
    let profile = if smoke { "smoke" } else { "full" };
    let dump_root = results_dir().join("chaos_dumps");
    let _ = std::fs::remove_dir_all(&dump_root);

    let mut rows = Vec::new();
    for spec in chaos_cells(smoke) {
        let mut runs = Vec::new();
        for backend in [WireBackend::Sim, WireBackend::Udp] {
            let dump_dir = dump_root.join(format!("{}-{}", spec.name, backend.name()));
            std::fs::create_dir_all(&dump_dir).expect("create chaos dump dir");
            let run = match run_chaos_cell(&spec, backend, &dump_dir) {
                Ok(r) => r,
                Err(e) => panic!(
                    "chaos cell '{}' failed on {}: {e} (flight dumps in {})",
                    spec.name,
                    backend.name(),
                    dump_dir.display()
                ),
            };
            println!(
                "{:<14} {:<4} drops {:>4}  dups {:>3}  reorder {:>3}  corrupt {:>3}  \
                 blackout {:>4}  retx {:>4}  elapsed {:>8.2}ms  dumps {}",
                spec.name,
                backend.name(),
                run.chaos.dropped,
                run.chaos.duplicated,
                run.chaos.reordered,
                run.chaos.corrupt_dropped,
                run.chaos.blackout_dropped,
                run.retransmits,
                run.elapsed_ns as f64 / 1e6,
                run.dump_paths.len(),
            );
            runs.push((backend, run));
        }
        let (_, sim_run) = &runs[0];
        let (_, udp_run) = &runs[1];
        assert_eq!(
            sim_run.fingerprint, udp_run.fingerprint,
            "chaos cell '{}': backends disagree on the timing-independent fingerprint",
            spec.name
        );
        if spec.expects_rail_death {
            for (backend, run) in &runs {
                assert!(
                    !run.dump_paths.is_empty(),
                    "chaos cell '{}' on {} must leave a rail-death flight dump",
                    spec.name,
                    backend.name()
                );
            }
        }
        rows.push(
            Json::obj()
                .set("name", spec.name)
                .set("seed", spec.chaos.seed)
                .set("ops", spec.ops)
                .set("expects_rail_death", spec.expects_rail_death)
                .set("sim", run_json(sim_run))
                .set("udp", run_json(udp_run))
                .set("fingerprints_agree", true),
        );
    }

    let doc = Json::obj()
        .set("schema_version", SCHEMA_VERSION)
        .set("kind", "multiedge_chaos_soak")
        .set("profile", profile)
        .set("cells", rows);
    let out = results_dir().join("BENCH_chaos.json");
    std::fs::create_dir_all(results_dir()).expect("create results dir");
    std::fs::write(&out, doc.render_pretty()).expect("write BENCH_chaos.json");
    println!("wrote {}", out.display());
}
