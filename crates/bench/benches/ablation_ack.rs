//! Ablation: delayed-acknowledgement factor.
//!
//! §2.4 motivates piggybacked + delayed acks as the mechanism keeping
//! "extra frames" at ≤5.5%. Sweeping `ack_every` shows the trade:
//! acking every frame inflates control traffic; very lazy acks delay
//! sender-window recycling.

use me_stats::table::{fmt_f, fmt_pct};
use me_stats::Table;
use multiedge::SystemConfig;
use multiedge_bench::{run_micro, MicroKind};

fn main() {
    let mut t = Table::new(
        "Ablation: ack_every vs throughput and extra traffic (1L-1G one-way, 256KB ops)",
        &["ack_every", "MB/s", "extra-frames", "explicit-acks"],
    );
    for every in [1u32, 2, 4, 8, 16, 64] {
        let mut cfg = SystemConfig::one_link_1g(2);
        cfg.proto.ack_every = every;
        let r = run_micro(&cfg, MicroKind::OneWay, 256 << 10, 24);
        t.row(vec![
            format!("{every}"),
            fmt_f(r.throughput_mb_s),
            fmt_pct(r.proto.extra_frame_fraction()),
            format!("{}", r.proto.explicit_acks_sent),
        ]);
    }
    t.print();
    println!("paper: delayed acks keep extra frames <= 5.5% without losing throughput");
}
