//! Critical-path latency attribution: runs span-instrumented workloads and
//! writes `results/BENCH_attribution.json` — per-connection and per-rail
//! phase breakdowns of end-to-end op latency (host issue, send window, rail
//! queue, wire, rx processing, reorder, fence, retransmit repair, ack
//! return, completion wake), each phase *exclusive* so the per-op phases sum
//! exactly to the measured issue→completion latency.
//!
//! Every cell carries a reconciliation section proving three independent
//! observers agree to the nanosecond:
//!
//! 1. per-span exactness — Σ phases == complete − created for every span;
//! 2. spans vs. tracer — Σ span latencies == Σ `op_latency` histogram sums
//!    (the tracer stamps ops on a completely separate code path);
//! 3. spans vs. `ProtoStats` — completed span count == ops issued, span
//!    retransmit attributions == retransmission counters' transmissions.
//!
//! `ATTRIBUTION_SMOKE=1` runs a reduced sweep (CI); the JSON is written in
//! both modes and the bench asserts every cell reconciles.

use me_trace::{analyze, Json, PhaseBreakdown, SpanSnapshot, TraceSnapshot, SCHEMA_VERSION};
use multiedge::{Endpoint, OpFlags, ProtoStats, SystemConfig};
use multiedge_bench::{run_micro, MicroKind};
use netsim::sync::join_all;
use netsim::{build_cluster, Sim};
use std::rc::Rc;

const CAP: usize = 1 << 16;

/// Everything a cell needs for analysis + reconciliation.
struct CellData {
    spans: SpanSnapshot,
    traces: Vec<TraceSnapshot>,
    proto: ProtoStats,
}

/// A micro-benchmark cell (writes only) with spans + tracing enabled.
fn run_micro_cell(cfg: &SystemConfig, kind: MicroKind, size: usize, iters: usize) -> CellData {
    let cfg = cfg.clone().with_spans(CAP).with_tracing(CAP);
    let r = run_micro(&cfg, kind, size, iters);
    CellData {
        spans: r.spans.expect("spans enabled"),
        traces: r.traces,
        proto: r.proto,
    }
}

/// A mixed workload no micro kind covers: pipelined writes with periodic
/// forward fences and interleaved remote reads, so the Fence, SendWindow and
/// read-leg phases all appear in the breakdown.
fn run_mixed_cell(cfg: &SystemConfig, iters: usize) -> CellData {
    let mut cfg = cfg.clone().with_spans(CAP).with_tracing(CAP);
    cfg.nodes = 2;
    let sim = Sim::new(cfg.seed);
    let cluster = build_cluster(&sim, cfg.cluster_spec());
    let cfg = Rc::new(cfg);
    let eps = Endpoint::for_cluster(&sim, &cluster, cfg.clone());
    cluster.net.set_tracer(eps[0].tracer());
    let (c0, _c1) = Endpoint::connect(&eps[0], &eps[1]);
    let a = eps[0].clone();
    sim.spawn("mixed", async move {
        let mut handles = Vec::new();
        for i in 0..iters {
            let flags = if i % 4 == 3 {
                OpFlags::RELAXED.with_fence_forward()
            } else {
                OpFlags::RELAXED
            };
            let addr = 0x1_0000 + (i as u64 % 8) * 0x4000;
            let h = a
                .write_bytes(c0, addr, vec![i as u8; 8 << 10], flags)
                .await;
            handles.push(h);
            if i % 3 == 0 {
                let h = a.read(c0, 0x100, addr, 4 << 10, OpFlags::RELAXED).await;
                handles.push(h);
            }
        }
        let waits: Vec<_> = handles.iter().map(|h| h.wait()).collect();
        join_all(waits).await;
    });
    sim.run().expect_quiescent();
    let spans = eps[0].span_recorder().snapshot().expect("spans enabled");
    let traces = eps.iter().filter_map(|e| e.tracer().snapshot()).collect();
    let mut proto = eps[0].stats();
    proto.merge(&eps[1].stats());
    CellData {
        spans,
        traces,
        proto,
    }
}

/// Cross-check spans against the tracer and the flat counters.
fn reconcile(d: &CellData) -> (Json, bool) {
    let spans = &d.spans;
    // 1. Per-span exactness: the exclusive phases telescope to the latency.
    let mut exact = true;
    let mut span_latency_sum = 0u64;
    let mut span_retransmits = 0u64;
    for s in &spans.spans {
        let b = PhaseBreakdown::from_span(s);
        exact &= b.phases.iter().sum::<u64>() == b.latency_ns;
        exact &= b.latency_ns == s.complete.saturating_sub(s.created);
        span_latency_sum += b.latency_ns;
        span_retransmits += u64::from(s.retransmits);
    }
    // 2. Against the tracer: same ops, same nanoseconds (the tracer stamps
    // completion latency via the op handle, spans via milestone math).
    let hist_count: u64 = d
        .traces
        .iter()
        .flat_map(|t| t.op_latency.values())
        .map(|h| h.count())
        .sum();
    let hist_sum: u64 = d
        .traces
        .iter()
        .flat_map(|t| t.op_latency.values())
        .map(|h| h.sum())
        .sum();
    // 3. Against ProtoStats: every issued op produced exactly one span.
    let ops = d.proto.ops_write + d.proto.ops_read;
    // 4. The rollup conserves what the per-span pass measured.
    let att = analyze(spans);
    let rollup_ok = att.overall.ops == spans.spans.len() as u64
        && att.overall.latency_total_ns == span_latency_sum
        && att.overall.phase_sum_ns() == att.overall.latency_total_ns
        && att.overall.latency_hist.count() == att.overall.ops;
    // 5. Per-connection rollups match the per-endpoint tracer histograms
    // (node i's tracer keys op latency by its local connection id, which is
    // exactly the span key's origin `(node, conn)`).
    let mut per_conn_ok = true;
    for (i, t) in d.traces.iter().enumerate() {
        for (conn, h) in &t.op_latency {
            let r = att.per_conn.get(&(i as u16, *conn as u16));
            per_conn_ok &= r.is_some_and(|r| {
                r.latency_total_ns == h.sum() && r.ops == h.count()
            });
        }
    }
    let complete = spans.overwritten == 0 && spans.dropped_active == 0;
    let ok = exact
        && complete
        && spans.completed_total == ops
        && spans.active == 0
        && hist_count == ops
        && hist_sum == span_latency_sum
        && rollup_ok
        && per_conn_ok;
    let rec = Json::obj()
        .set("per_span_phases_exact", exact)
        .set("spans_completed", spans.completed_total)
        .set("ops_expected", ops)
        .set("spans_active_at_end", spans.active)
        .set("spans_overwritten", spans.overwritten)
        .set("span_latency_sum_ns", span_latency_sum)
        .set("tracer_latency_sum_ns", hist_sum)
        .set("tracer_latency_samples", hist_count)
        .set("span_retransmit_transmissions", span_retransmits)
        .set(
            "proto_retransmits",
            d.proto.retransmits_nack + d.proto.retransmits_rto,
        )
        .set("rollup_conserves", rollup_ok)
        .set("per_conn_matches_tracer", per_conn_ok)
        .set("ok", ok);
    (rec, ok)
}

fn cell_json(name: &str, workload: &str, size: usize, iters: usize, d: &CellData) -> (Json, bool) {
    let (rec, ok) = reconcile(d);
    let att = analyze(&d.spans);
    let cell = Json::obj()
        .set("config", name)
        .set("workload", workload)
        .set("size", size)
        .set("iters", iters)
        .set("attribution", att.to_json())
        .set("reconciliation", rec)
        .set("reconciles", ok);
    (cell, ok)
}

fn main() {
    let smoke = std::env::var("ATTRIBUTION_SMOKE").is_ok();
    let iters = if smoke { 24 } else { 120 };
    let size = 32 << 10;

    let configs = [
        ("1L-1G", SystemConfig::one_link_1g(2)),
        ("2Lu-1G", SystemConfig::two_link_1g_unordered(2)),
        ("4L-1G", SystemConfig::four_link_1g(2)),
    ];

    let mut cells = Vec::new();
    let mut all_ok = true;
    for (name, cfg) in &configs {
        let d = run_micro_cell(cfg, MicroKind::OneWay, size, iters);
        let (cell, ok) = cell_json(name, "one-way", size, iters, &d);
        println!(
            "{name:8} one-way  {} spans  latency_total {:.3} ms  reconciles={ok}",
            d.spans.completed_total,
            analyze(&d.spans).overall.latency_total_ns as f64 / 1e6,
        );
        cells.push(cell);
        all_ok &= ok;

        let d = run_mixed_cell(cfg, iters);
        let (cell, ok) = cell_json(name, "mixed-rw-fence", 8 << 10, iters, &d);
        println!(
            "{name:8} mixed    {} spans  latency_total {:.3} ms  reconciles={ok}",
            d.spans.completed_total,
            analyze(&d.spans).overall.latency_total_ns as f64 / 1e6,
        );
        cells.push(cell);
        all_ok &= ok;
    }
    // Ping-pong on the fast link: latency-dominated, so Wire/RxProcess
    // should dominate the breakdown rather than SendWindow.
    let d = run_micro_cell(
        &SystemConfig::one_link_10g(2),
        MicroKind::PingPong,
        4 << 10,
        iters,
    );
    let (cell, ok) = cell_json("1L-10G", "ping-pong", 4 << 10, iters, &d);
    cells.push(cell);
    all_ok &= ok;

    let doc = Json::obj()
        .set("schema_version", SCHEMA_VERSION)
        .set("bench", "attribution")
        .set("smoke", smoke)
        .set(
            "methodology",
            "per-op exclusive phase decomposition from span milestones; phases sum exactly to issue->completion latency; rolled up per connection and per rail; reconciled against tracer op-latency histograms and ProtoStats",
        )
        .set("cells", cells)
        .set("all_reconcile", all_ok);
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&path).expect("create results dir");
    let file = path.join("BENCH_attribution.json");
    std::fs::write(&file, doc.render_pretty()).expect("write json");
    println!("wrote results/BENCH_attribution.json (all_reconcile={all_ok})");
    assert!(all_ok, "span attribution failed to reconcile");
}
