//! Ablation: frame-level striping (MultiEdge) vs the byte-level striping
//! baseline of §1 ("tightly controlled" links), including a skewed-link
//! scenario.

use me_stats::table::fmt_f;
use me_stats::Table;
use multiedge::striping::ByteStriper;
use multiedge::SystemConfig;
use multiedge_bench::{run_micro, MicroKind};
use netsim::time::us_f64;

fn main() {
    // MultiEdge on 1 and 2 rails (simulated end to end).
    let me1 = run_micro(&SystemConfig::one_link_1g(2), MicroKind::OneWay, 1 << 20, 12);
    let me2 = run_micro(
        &SystemConfig::two_link_1g_unordered(2),
        MicroKind::OneWay,
        1 << 20,
        12,
    );
    // Byte striper (analytical model) with per-unit sync overhead.
    let unit = 64 << 10;
    let bs = |k: usize| ByteStriper::uniform(k, 125e6, us_f64(2.0)).throughput(unit) / 1e6;
    let mut t = Table::new(
        "Ablation: striping granularity (MB/s, 1GbE rails)",
        &["links", "MultiEdge (frames)", "byte striping (64K units)"],
    );
    t.row(vec!["1".into(), fmt_f(me1.throughput_mb_s), fmt_f(bs(1))]);
    t.row(vec!["2".into(), fmt_f(me2.throughput_mb_s), fmt_f(bs(2))]);
    t.row(vec!["4".into(), "-".into(), fmt_f(bs(4))]);
    t.row(vec!["8".into(), "-".into(), fmt_f(bs(8))]);
    t.print();

    // Skew: one of four links at 10% speed.
    let mut skew = ByteStriper::uniform(4, 125e6, us_f64(2.0));
    skew.link_bytes_per_sec[3] = 12.5e6;
    let healthy = ByteStriper::uniform(4, 125e6, us_f64(2.0));
    let mut t2 = Table::new(
        "Ablation: one slow link out of four (byte striping stalls on the slowest slice)",
        &["scenario", "MB/s"],
    );
    t2.row(vec!["4 healthy links".into(), fmt_f(healthy.throughput(unit) / 1e6)]);
    t2.row(vec!["3 healthy + 1 at 10%".into(), fmt_f(skew.throughput(unit) / 1e6)]);
    t2.print();
    println!("frame-level striping degrades proportionally; byte striping collapses to the slow link");
}
