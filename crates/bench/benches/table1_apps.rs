//! Table 1 — benchmark applications: problem sizes, modeled sequential
//! execution times (calibrated against the paper), and shared-data
//! footprints.

use apps::table::{paper_workloads, TABLE1_SEQ_MS};
use me_stats::Table;

fn main() {
    let mut t = Table::new(
        "Table 1: benchmark applications",
        &[
            "Application",
            "Problem Size",
            "Seq. Exec. Time (ms)",
            "Paper (ms)",
            "Footprint (MBytes)",
        ],
    );
    for (w, paper_ms) in paper_workloads().iter().zip(TABLE1_SEQ_MS) {
        t.row(vec![
            w.name().to_string(),
            w.problem(),
            format!("{:.0}", w.modeled_seq_ns() / 1e6),
            format!("{paper_ms:.0}"),
            format!("{:.0}", w.footprint_bytes() as f64 / 1e6),
        ]);
    }
    t.print();
    println!("(sequential times are the calibrated cost model; see DESIGN.md §4.2 and EXPERIMENTS.md)");
}
