//! Criterion micro-benchmarks of the hot protocol data structures.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use frame::{decode_frame, encode_frame_into, Frame, FrameHeader, MacAddr};
use std::hint::black_box;

fn codec(c: &mut Criterion) {
    let f = Frame {
        src: MacAddr::new(0, 0),
        dst: MacAddr::new(1, 0),
        header: FrameHeader::default(),
        payload: Bytes::from(vec![7u8; 1400]),
    };
    let mut wire = Vec::new();
    encode_frame_into(&f, &mut wire);
    c.bench_function("frame_encode_1400B", |b| {
        let mut scratch = Vec::new();
        b.iter(|| {
            encode_frame_into(black_box(&f), &mut scratch);
            black_box(scratch.len())
        })
    });
    c.bench_function("frame_decode_1400B", |b| {
        b.iter(|| decode_frame(f.src, f.dst, black_box(&wire)).unwrap())
    });
}

fn seq_tracker(c: &mut Criterion) {
    c.bench_function("seqtracker_in_order_1k", |b| {
        b.iter(|| {
            let mut t = multiedge::recvseq::SeqTracker::new();
            for s in 0..1000u64 {
                black_box(t.admit(s));
            }
            t.cumulative()
        })
    });
    c.bench_function("seqtracker_two_rail_interleave_1k", |b| {
        b.iter(|| {
            let mut t = multiedge::recvseq::SeqTracker::new();
            for i in 0..500u64 {
                black_box(t.admit(2 * i + 1));
                black_box(t.admit(2 * i));
            }
            t.cumulative()
        })
    });
}

fn ordering(c: &mut Criterion) {
    use multiedge::order::{FragMeta, OpOrdering};
    c.bench_function("opordering_unfenced_1k", |b| {
        b.iter(|| {
            let mut o: OpOrdering<u32> = OpOrdering::new();
            for i in 0..1000u64 {
                let m = FragMeta {
                    op_id: i,
                    op_total: 1,
                    fence_floor: 0,
                    fence_backward: false,
                    len: 1,
                };
                black_box(o.offer(m, i as u32));
            }
            o.applied_below()
        })
    });
}

fn diffs(c: &mut Criterion) {
    let twin = vec![0u8; 4096];
    let mut cur = twin.clone();
    for i in (0..4096).step_by(64) {
        cur[i] = 1;
    }
    c.bench_function("diff_runs_sparse_page", |b| {
        b.iter(|| dsm::diff::diff_runs(black_box(&twin), black_box(&cur)))
    });
}

fn fft_kernel(c: &mut Criterion) {
    let row: Vec<[f64; 2]> = (0..1024)
        .map(|i| [apps::common::unit_f64(1, i), apps::common::unit_f64(2, i)])
        .collect();
    c.bench_function("fft_1024_point", |b| {
        b.iter(|| {
            let mut r = row.clone();
            apps::fft::fft_in_place(&mut r);
            r[0]
        })
    });
}

criterion_group!(benches, codec, seq_tracker, ordering, diffs, fft_kernel);
criterion_main!(benches);
