//! Ablation: link-scheduling policy for spatial parallelism.
//!
//! The paper uses round-robin (§2.5). This compares round-robin against
//! random, join-shortest-queue and pinning to a single rail on the 2-rail
//! setup.

use me_stats::table::{fmt_f, fmt_pct};
use me_stats::Table;
use multiedge::{SchedPolicy, SystemConfig};
use multiedge_bench::{run_micro, MicroKind};

fn main() {
    let mut t = Table::new(
        "Ablation: scheduling policy on 2 x 1GbE (one-way, 1MB ops)",
        &["policy", "MB/s", "ooo-frames"],
    );
    for (name, policy) in [
        ("round-robin", SchedPolicy::RoundRobin),
        ("random", SchedPolicy::Random),
        ("shortest-queue", SchedPolicy::ShortestQueue),
        ("single-rail", SchedPolicy::Single(0)),
    ] {
        let mut cfg = SystemConfig::two_link_1g_unordered(2);
        cfg.proto.sched = policy;
        let r = run_micro(&cfg, MicroKind::OneWay, 1 << 20, 16);
        t.row(vec![
            name.to_string(),
            fmt_f(r.throughput_mb_s),
            fmt_pct(r.proto.ooo_fraction()),
        ]);
    }
    t.print();
    println!("expected: RR/random/JSQ all ~2x single-rail; RR is what the paper ships");
}
