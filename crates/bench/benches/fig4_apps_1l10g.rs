//! Figure 4 — application statistics over a single 10-GBit/s link (1L-10G,
//! 4 nodes): speedups ≈3-4, sync and data-wait roughly halved vs 1L-1G.

use multiedge::SystemConfig;
use multiedge_bench::app_figure;

fn main() {
    let counts: Vec<usize> = match std::env::var("MULTIEDGE_SCALE").as_deref() {
        Ok("tiny") => vec![1, 4],
        _ => vec![1, 2, 4],
    };
    app_figure("Figure 4 (1L-10G)", SystemConfig::one_link_10g, &counts);
    println!("paper shape: most apps reach speedup 3-4 on 4 nodes; FFT and Radix lag");
}
