//! Ablation: transient frame-loss sweep — i.i.d. and bursty.
//!
//! §2.4 claims reliable completion under transient loss with low overhead
//! (drops ≈20% of the already-small extra traffic in the paper's healthy
//! network). The first sweep injects increasing i.i.d. loss and reports
//! goodput and recovery traffic. The second holds the *mean* loss rate
//! fixed and reshapes it into Gilbert–Elliott bursts: the same average drop
//! probability concentrated into bad-state episodes, which is what real
//! failing links do. The shape matters: NACK-driven selective
//! retransmission repairs a contiguous burst in a single gap-repair cycle,
//! while the same mean spread as isolated i.i.d. drops pays the NACK delay
//! once per scattered gap — so at equal mean, bursty loss keeps *more*
//! goodput, at the price of occasional RTO-recovered episodes when a burst
//! swallows the retransmissions too.

use me_stats::table::{fmt_f, fmt_pct};
use me_stats::Table;
use multiedge::SystemConfig;
use multiedge_bench::{run_micro, run_micro_with_plan, MicroKind};
use netsim::time::Dur;
use netsim::{FaultModel, FaultPlan, FaultTarget, GilbertElliott};

fn main() {
    let mut t = Table::new(
        "Ablation: loss rate vs goodput and recovery (1L-1G one-way, 1MB ops)",
        &["loss/hop", "MB/s", "retransmits", "nacks", "extra-frames"],
    );
    for loss in [0.0, 1e-4, 1e-3, 1e-2, 5e-2] {
        let mut cfg = SystemConfig::one_link_1g(2);
        cfg.fault = FaultModel {
            loss_rate: loss,
            corrupt_rate: 0.0,
        };
        let r = run_micro(&cfg, MicroKind::OneWay, 1 << 20, 12);
        t.row(vec![
            format!("{loss}"),
            fmt_f(r.throughput_mb_s),
            format!("{}", r.proto.retransmits()),
            format!("{}", r.proto.nacks_sent),
            fmt_pct(r.proto.extra_frame_fraction()),
        ]);
    }
    t.print();

    // Same mean loss, different shape: i.i.d. vs Gilbert–Elliott bursts.
    // Each GE model drops half the frames while in the bad state; the
    // good→bad / bad→good rates are chosen so the stationary mean matches
    // the i.i.d. column next to it.
    let mut b = Table::new(
        "Ablation: loss shape at matched mean (1L-1G one-way, 1MB ops)",
        &["mean loss", "shape", "MB/s", "retransmits", "rto", "extra-frames"],
    );
    for (p_g2b, p_b2g) in [(5e-4, 0.2495), (5e-3, 0.2450)] {
        let ge = GilbertElliott::bursty_loss(p_g2b, p_b2g, 0.5);
        let mean = ge.mean_loss();
        let mut cfg = SystemConfig::one_link_1g(2);
        cfg.fault = FaultModel {
            loss_rate: mean,
            corrupt_rate: 0.0,
        };
        let iid = run_micro(&cfg, MicroKind::OneWay, 1 << 20, 12);
        b.row(vec![
            format!("{mean:.4}"),
            "i.i.d.".to_string(),
            fmt_f(iid.throughput_mb_s),
            format!("{}", iid.proto.retransmits()),
            format!("{}", iid.proto.retransmits_rto),
            fmt_pct(iid.proto.extra_frame_fraction()),
        ]);

        let mut cfg = SystemConfig::one_link_1g(2);
        cfg.fault = FaultModel::default();
        let plan = FaultPlan::new().burst(Dur::ZERO, FaultTarget::Rail { rail: 0 }, ge);
        let bursty = run_micro_with_plan(&cfg, MicroKind::OneWay, 1 << 20, 12, &plan);
        b.row(vec![
            format!("{mean:.4}"),
            "bursty".to_string(),
            fmt_f(bursty.throughput_mb_s),
            format!("{}", bursty.proto.retransmits()),
            format!("{}", bursty.proto.retransmits_rto),
            fmt_pct(bursty.proto.extra_frame_fraction()),
        ]);
    }
    b.print();
    println!("expected: goodput degrades gracefully; all transfers still complete exactly");
    println!("expected: at equal mean loss, clustered (bursty) drops repair in fewer NACK");
    println!("          cycles than scattered i.i.d. drops and so retain more goodput");
}
