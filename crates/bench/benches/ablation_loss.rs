//! Ablation: transient frame-loss sweep.
//!
//! §2.4 claims reliable completion under transient loss with low overhead
//! (drops ≈20% of the already-small extra traffic in the paper's healthy
//! network). This sweep injects increasing loss and reports goodput and
//! recovery traffic.

use me_stats::table::{fmt_f, fmt_pct};
use me_stats::Table;
use multiedge::SystemConfig;
use multiedge_bench::{run_micro, MicroKind};
use netsim::FaultModel;

fn main() {
    let mut t = Table::new(
        "Ablation: loss rate vs goodput and recovery (1L-1G one-way, 1MB ops)",
        &["loss/hop", "MB/s", "retransmits", "nacks", "extra-frames"],
    );
    for loss in [0.0, 1e-4, 1e-3, 1e-2, 5e-2] {
        let mut cfg = SystemConfig::one_link_1g(2);
        cfg.fault = FaultModel {
            loss_rate: loss,
            corrupt_rate: 0.0,
        };
        let r = run_micro(&cfg, MicroKind::OneWay, 1 << 20, 12);
        t.row(vec![
            format!("{loss}"),
            fmt_f(r.throughput_mb_s),
            format!("{}", r.proto.retransmits()),
            format!("{}", r.proto.nacks_sent),
            fmt_pct(r.proto.extra_frame_fraction()),
        ]);
    }
    t.print();
    println!("expected: goodput degrades gracefully; all transfers still complete exactly");
}
