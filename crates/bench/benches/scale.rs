//! `scale`: the sharded-engine scaling harness.
//!
//! Runs the 64-node all-to-all transpose, the 64-node incast fan-in, and
//! the lossy determinism cell at shard counts {1, 2, 4}, then enforces the
//! two contracts of the parallel engine:
//!
//! * **Determinism gate** — for a fixed seed, the timing-independent
//!   fingerprint (per-node ops/bytes/unique-frames/memory checksum) must be
//!   bit-identical at every shard count, and the eager fault-decision
//!   streams must agree as functions on every `(stream, attempt)` index
//!   both runs drew.
//! * **Perf gate** (full profile only) — the all-to-all cell must serialize
//!   at least 2× the frames per wall-second at 4 shards vs 1 shard.
//!
//! Writes `results/BENCH_scale.json`. `SCALE_SMOKE=1` runs reduced cells
//! for CI; the smoke profile keeps the determinism gate but skips the
//! speedup assertion (the cells are too small to measure it honestly).

use me_trace::{Json, SCHEMA_VERSION};
use multiedge_bench::scale::{
    all_to_all_cell, decisions_consistent, incast_cell, lossy_determinism_cell, run_scale_cell,
    ScaleCell, ScaleCellResult,
};
use multiedge_bench::triage::results_dir;
use netsim::shard::ShardMode;

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// `SCALE_ONLY=<substring>` restricts the run to matching cells;
/// `SCALE_SHARDS=<n>[,<n>...]` overrides the shard sweep. Both are local
/// triage knobs — the gates only count when the full sweep runs.
fn shard_counts() -> Vec<usize> {
    match std::env::var("SCALE_SHARDS") {
        Ok(v) => v
            .split(',')
            .map(|s| s.trim().parse().expect("SCALE_SHARDS: bad shard count"))
            .collect(),
        Err(_) => SHARD_COUNTS.to_vec(),
    }
}

fn run_json(r: &ScaleCellResult) -> Json {
    Json::obj()
        .set("shards", r.shards as u64)
        .set("threaded", r.threaded)
        .set("wall_s", r.wall_s)
        .set("virtual_s", r.virtual_s)
        .set("windows", r.windows)
        .set("frames", r.frames)
        .set("frames_per_wall_s", r.frames_per_wall_s)
        .set("events", r.events)
        .set("events_per_wall_s", r.events_per_wall_s)
        .set("lookahead_stalls", r.lookahead_stalls)
        .set(
            "per_shard",
            r.per_shard
                .iter()
                .map(|s| {
                    Json::obj()
                        .set("events", s.events)
                        .set("idle_windows", s.idle_windows)
                        .set("boundary_in", s.boundary_in)
                        .set("boundary_out", s.boundary_out)
                        .set("max_inbox_depth", s.max_inbox_depth as u64)
                })
                .collect::<Vec<_>>(),
        )
        .set("retransmits_nack", r.proto.retransmits_nack)
        .set("retransmits_rto", r.proto.retransmits_rto)
        .set("drops_overflow", r.net.drops_overflow)
        .set("drops_loss", r.net.drops_loss)
        .set("fault_decisions", r.decisions.len() as u64)
}

fn run_cell(cell: &ScaleCell, counts: &[usize]) -> Vec<ScaleCellResult> {
    let mut runs = Vec::new();
    for &shards in counts {
        let r = run_scale_cell(cell, shards, ShardMode::Auto)
            .unwrap_or_else(|e| panic!("scale cell '{}' at {shards} shards: {e}", cell.name));
        let advance_s: f64 = r.per_shard.iter().map(|s| s.advance_ns).sum::<u64>() as f64 / 1e9;
        let exchange_s: f64 = r.per_shard.iter().map(|s| s.exchange_ns).sum::<u64>() as f64 / 1e9;
        println!(
            "{:<22} shards {}  {}  {:>9} frames  {:>12.0} frames/s  {:>9} events  \
             {:>5} windows  {:>4} stalls  wall {:>7.2}s (advance {:.2}s, exchange {:.2}s)",
            cell.name,
            r.shards,
            if r.threaded { "thr " } else { "coop" },
            r.frames,
            r.frames_per_wall_s,
            r.events,
            r.windows,
            r.lookahead_stalls,
            r.wall_s,
            advance_s,
            exchange_s,
        );
        runs.push(r);
    }
    let base = &runs[0];
    for r in &runs[1..] {
        assert_eq!(
            base.fingerprint, r.fingerprint,
            "cell '{}': timing-independent fingerprint diverges between {} and {} shards",
            cell.name, base.shards, r.shards
        );
        if let Err(why) = decisions_consistent(&base.decisions, &r.decisions) {
            panic!(
                "cell '{}': fault-decision streams diverge between {} and {} shards: {why}",
                cell.name, base.shards, r.shards
            );
        }
    }
    runs
}

fn main() {
    let smoke = std::env::var("SCALE_SMOKE").is_ok();
    let profile = if smoke { "smoke" } else { "full" };

    let cells: Vec<ScaleCell> = if smoke {
        vec![
            all_to_all_cell(16, 4 << 10),
            incast_cell(16, 8 << 10),
            lossy_determinism_cell(),
        ]
    } else {
        vec![
            all_to_all_cell(64, 16 << 10),
            incast_cell(64, 32 << 10),
            lossy_determinism_cell(),
        ]
    };

    let counts = shard_counts();
    let only = std::env::var("SCALE_ONLY").ok();
    let gates_active = only.is_none() && counts == SHARD_COUNTS;

    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for cell in &cells {
        if let Some(pat) = &only {
            if !cell.name.contains(pat.as_str()) {
                continue;
            }
        }
        let runs = run_cell(cell, &counts);
        let base = &runs[0];
        let best = runs
            .iter()
            .map(|r| r.frames_per_wall_s)
            .fold(0.0f64, f64::max);
        let speedup = runs.last().unwrap().frames_per_wall_s / base.frames_per_wall_s;
        println!(
            "{:<22} speedup@{} {:.2}x  (fingerprints + decision streams identical across {:?})",
            cell.name,
            runs.last().unwrap().shards,
            speedup,
            counts
        );
        speedups.push((cell.name.clone(), speedup));
        rows.push(
            Json::obj()
                .set("name", cell.name.clone())
                .set("nodes", cell.cfg.nodes as u64)
                .set("rails", cell.cfg.rails as u64)
                .set("seed", cell.cfg.seed)
                .set("speedup_max_vs_1", speedup)
                .set("best_frames_per_wall_s", best)
                .set("deterministic_across_shards", true)
                .set("runs", runs.iter().map(run_json).collect::<Vec<_>>()),
        );
    }

    let doc = Json::obj()
        .set("schema_version", SCHEMA_VERSION)
        .set("kind", "multiedge_scale")
        .set("profile", profile)
        .set(
            "shard_counts",
            counts.iter().map(|&s| Json::from(s as u64)).collect::<Vec<_>>(),
        )
        .set("cells", rows);
    let out = results_dir().join("BENCH_scale.json");
    std::fs::create_dir_all(results_dir()).expect("create results dir");
    std::fs::write(&out, doc.render_pretty()).expect("write BENCH_scale.json");
    println!("wrote {}", out.display());

    // Perf gate last, after the artifact is on disk for triage. Only the
    // full profile with the canonical sweep enforces it; smoke cells are
    // too small to measure the speedup honestly.
    if !smoke && gates_active {
        for (name, speedup) in &speedups {
            if name.starts_with("all_to_all") {
                assert!(
                    *speedup >= 2.0,
                    "cell '{name}': 4-shard run must be >= 2x the 1-shard \
                     frames/wall-s (got {speedup:.2}x)"
                );
            }
        }
    }
}
