//! Figure 6 — two 1-GBit/s links with out-of-order delivery allowed
//! (2Lu-1G): the DSM fences only its control messages; application
//! performance and network statistics stay close to the ordered 2L-1G run.

use multiedge::SystemConfig;
use multiedge_bench::app_figure;

fn main() {
    let counts: Vec<usize> = match std::env::var("MULTIEDGE_SCALE").as_deref() {
        Ok("tiny") => vec![4],
        _ => vec![16],
    };
    app_figure(
        "Figure 6 (2Lu-1G out-of-order)",
        SystemConfig::two_link_1g_unordered,
        &counts,
    );
    println!("paper shape: relaxing ordering does not change application performance");
    println!("or network statistics in any significant manner (vs Figure 5)");
}
