//! Ablation: rail failure and recovery under load.
//!
//! Extends the loss ablation from stationary i.i.d. drops to a scripted hard
//! outage: a 2-rail connection streams a large transfer while rail 1 goes
//! down mid-flight and comes back 20 ms later. For a sweep of seeds the
//! bench measures goodput before / during / after the outage, how fast the
//! rail-health layer detects the failure (first `RailDown` trace event after
//! the injection) and how fast it re-admits the restored rail (first
//! `RailUp` after the repair), then writes the aggregate —
//! p50/p99 detection and recovery latency plus per-phase goodput — to
//! `results/BENCH_failover.json`.

use me_stats::table::fmt_f;
use me_stats::Table;
use me_trace::{EventKind, Json, LogHistogram, SCHEMA_VERSION};
use multiedge::{Endpoint, OpFlags, RailState, SystemConfig};
use netsim::time::{ms, SimTime};
use netsim::{build_cluster, FaultPlan, Sim};
use std::rc::Rc;

/// Outage window: rail 1 dies at 10 ms and is repaired at 30 ms.
const T_DOWN_MS: u64 = 10;
const T_UP_MS: u64 = 30;
/// Total streamed bytes; sized so the transfer spans well past the repair
/// (≈2.5 MB move before the outage, ≈2.4 MB during, the rest after).
const TOTAL: usize = 8 << 20;
const CHUNK: usize = 256 << 10;
/// Ring large enough to retain every event of a run, so the first
/// RailDown/RailUp after each injection is really the first.
const RING: usize = 1 << 17;

/// One seed's measurements.
struct SeedRun {
    seed: u64,
    goodput_before_mb_s: f64,
    goodput_during_mb_s: f64,
    goodput_after_mb_s: f64,
    /// Injection → first `RailDown` (rail declared dead), ns.
    detect_ns: u64,
    /// Repair → first `RailUp` (rail re-admitted), ns.
    readmit_ns: u64,
    rto_backoff_max: u64,
    retransmits: u64,
    elapsed_ms: f64,
}

/// Deterministic filler so payload integrity is checkable per seed.
fn pattern(seed: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (seed.wrapping_mul(0x9E37_79B9).wrapping_add(i as u64) >> 3) as u8)
        .collect()
}

fn run_seed(seed: u64) -> SeedRun {
    let mut cfg = SystemConfig::two_link_1g_unordered(2).with_tracing(RING);
    cfg.seed = seed;
    // Cooldown short enough that the probe cycle lands promptly after the
    // repair while the stream is still running.
    cfg.proto.rail_cooldown = ms(8);
    let sim = Sim::new(cfg.seed);
    let cluster = build_cluster(&sim, cfg.cluster_spec());
    let cfg = Rc::new(cfg);
    let eps = Endpoint::for_cluster(&sim, &cluster, cfg);
    cluster.net.set_tracer(eps[0].tracer());
    let plan = FaultPlan::new()
        .rail_down(ms(T_DOWN_MS), 1)
        .rail_up(ms(T_UP_MS), 1);
    cluster.apply_fault_plan(&sim, &plan);
    let (c0, c1) = Endpoint::connect(&eps[0], &eps[1]);

    let data = pattern(seed, TOTAL);
    let expect = data.clone();
    let ep = eps[0].clone();
    let done = sim.spawn("failover-writer", async move {
        let mut handles = Vec::new();
        for (i, part) in data.chunks(CHUNK).enumerate() {
            handles.push(
                ep.write_bytes(c0, (i * CHUNK) as u64, part.to_vec(), OpFlags::RELAXED)
                    .await,
            );
        }
        for h in handles {
            h.wait().await;
        }
    });

    // Phase boundaries straddling the fault plan.
    sim.run_with_limit(Some(SimTime::ZERO + ms(T_DOWN_MS)));
    let b0 = eps[1].conn_stats(c1).data_bytes_recv;
    sim.run_with_limit(Some(SimTime::ZERO + ms(T_UP_MS)));
    let b1 = eps[1].conn_stats(c1).data_bytes_recv;
    sim.run().expect_quiescent();
    assert!(done.try_take().is_some(), "seed {seed}: writer must finish");
    let end = sim.now();

    // Sanity: reliability must hold through the outage.
    assert_eq!(eps[1].mem_read(0, TOTAL), expect, "seed {seed}: corruption");
    let tx = eps[0].conn_stats(c0);
    let rx = eps[1].conn_stats(c1);
    assert_eq!(
        tx.data_frames_sent, rx.data_frames_recv,
        "seed {seed}: exactly-once delivery violated"
    );
    assert!(tx.rail_down_events >= 1, "seed {seed}: rail never died");
    assert!(tx.rail_up_events >= 1, "seed {seed}: rail never re-admitted");
    assert!(
        eps[0].rail_states(c0).iter().all(|s| *s == RailState::Healthy),
        "seed {seed}: rails not healthy at the end: {:?}",
        eps[0].rail_states(c0)
    );

    // Detection and re-admission latency from the trace timeline.
    let snap = eps[0].tracer().snapshot().expect("tracing enabled");
    assert_eq!(snap.overwritten, 0, "seed {seed}: trace ring wrapped");
    let first_at = |after_ns: u64, pred: &dyn Fn(&EventKind) -> bool| {
        snap.events
            .iter()
            .find(|e| e.t_ns >= after_ns && pred(&e.kind))
            .map(|e| e.t_ns - after_ns)
    };
    let detect_ns = first_at(T_DOWN_MS * 1_000_000, &|k| {
        matches!(k, EventKind::RailDown { .. })
    })
    .expect("a RailDown event after the injection");
    let readmit_ns = first_at(T_UP_MS * 1_000_000, &|k| {
        matches!(k, EventKind::RailUp { .. })
    })
    .expect("a RailUp event after the repair");

    let phase = |bytes: f64, window_ns: u64| bytes / (window_ns as f64 / 1e9) / 1e6;
    let after_ns = end.since(SimTime::ZERO + ms(T_UP_MS)).as_nanos();
    SeedRun {
        seed,
        goodput_before_mb_s: phase(b0 as f64, T_DOWN_MS * 1_000_000),
        goodput_during_mb_s: phase((b1 - b0) as f64, (T_UP_MS - T_DOWN_MS) * 1_000_000),
        goodput_after_mb_s: phase((TOTAL as u64 - b1) as f64, after_ns),
        detect_ns,
        readmit_ns,
        rto_backoff_max: tx.rto_backoff_max,
        retransmits: tx.retransmits_nack + tx.retransmits_rto,
        elapsed_ms: end.since(SimTime::ZERO).as_nanos() as f64 / 1e6,
    }
}

fn main() {
    let seeds: Vec<u64> = (1..=12).collect();
    let mut t = Table::new(
        "Ablation: rail-1 outage 10–30 ms (2Lu-1G one-way stream, 8 MiB)",
        &[
            "seed",
            "before MB/s",
            "during MB/s",
            "after MB/s",
            "detect ms",
            "readmit ms",
            "backoff",
            "rexmit",
        ],
    );
    let mut detect = LogHistogram::new();
    let mut readmit = LogHistogram::new();
    let mut rows = Vec::new();
    let mut runs = Vec::new();
    for &seed in &seeds {
        let r = run_seed(seed);
        detect.record(r.detect_ns);
        readmit.record(r.readmit_ns);
        t.row(vec![
            format!("{seed}"),
            fmt_f(r.goodput_before_mb_s),
            fmt_f(r.goodput_during_mb_s),
            fmt_f(r.goodput_after_mb_s),
            fmt_f(r.detect_ns as f64 / 1e6),
            fmt_f(r.readmit_ns as f64 / 1e6),
            format!("{}", r.rto_backoff_max),
            format!("{}", r.retransmits),
        ]);
        rows.push(
            Json::obj()
                .set("seed", r.seed)
                .set("goodput_before_mb_s", r.goodput_before_mb_s)
                .set("goodput_during_mb_s", r.goodput_during_mb_s)
                .set("goodput_after_mb_s", r.goodput_after_mb_s)
                .set("detect_ns", r.detect_ns)
                .set("readmit_ns", r.readmit_ns)
                .set("rto_backoff_max", r.rto_backoff_max)
                .set("retransmits", r.retransmits)
                .set("elapsed_ms", r.elapsed_ms),
        );
        runs.push(r);
    }
    t.print();

    let n = runs.len() as f64;
    let mean = |f: &dyn Fn(&SeedRun) -> f64| runs.iter().map(f).sum::<f64>() / n;
    let before = mean(&|r| r.goodput_before_mb_s);
    let during = mean(&|r| r.goodput_during_mb_s);
    let after = mean(&|r| r.goodput_after_mb_s);
    println!(
        "mean goodput: before {before:.0} MB/s, during {during:.0} MB/s, after {after:.0} MB/s"
    );
    println!(
        "detection latency p50 {:.2} ms, p99 {:.2} ms; re-admission p50 {:.2} ms, p99 {:.2} ms",
        detect.percentile(50.0) as f64 / 1e6,
        detect.percentile(99.0) as f64 / 1e6,
        readmit.percentile(50.0) as f64 / 1e6,
        readmit.percentile(99.0) as f64 / 1e6,
    );

    let doc = Json::obj()
        .set("schema_version", SCHEMA_VERSION)
        .set("bench", "ablation_failover")
        .set("config", "2Lu-1G")
        .set("fault_plan", format!("rail 1 down at {T_DOWN_MS} ms, up at {T_UP_MS} ms"))
        .set("total_bytes", TOTAL)
        .set("seeds", seeds.len())
        .set(
            "goodput_mb_s",
            Json::obj()
                .set("before_mean", before)
                .set("during_mean", during)
                .set("after_mean", after),
        )
        .set(
            "detect_latency_ns",
            Json::obj()
                .set("p50", detect.percentile(50.0))
                .set("p99", detect.percentile(99.0))
                .set("mean", detect.mean())
                .set("max", detect.max()),
        )
        .set(
            "recovery_latency_ns",
            Json::obj()
                .set("p50", readmit.percentile(50.0))
                .set("p99", readmit.percentile(99.0))
                .set("mean", readmit.mean())
                .set("max", readmit.max()),
        )
        .set("runs", rows);
    // Manifest-relative so the artifact lands in the workspace-root
    // results/ regardless of cargo's bench CWD.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    std::fs::write(dir.join("BENCH_failover.json"), doc.render_pretty()).expect("write json");
    println!("wrote results/BENCH_failover.json");

    // A 1-GbE rail tops out at 125 MB/s: the during-phase must converge to
    // single-rail goodput (not stall), and the surrounding phases must
    // show both rails striping.
    assert!(
        during > 60.0 && during <= 126.0,
        "during-outage goodput {during:.0} MB/s did not converge to the surviving rail"
    );
    assert!(
        before > 180.0 && after > 150.0,
        "two-rail phases too slow: before {before:.0}, after {after:.0} MB/s"
    );
    // Detection must beat the paper's fixed 10 ms timer; re-admission is
    // probe-paced, so it lands within about one cooldown of the repair.
    assert!(
        detect.percentile(99.0) < 10_000_000,
        "detection p99 {} ns slower than the fixed 10 ms timer",
        detect.percentile(99.0)
    );
    assert!(
        readmit.percentile(99.0) < 20_000_000,
        "re-admission p99 {} ns beyond two cooldowns",
        readmit.percentile(99.0)
    );
}
