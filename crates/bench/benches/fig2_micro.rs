//! Figure 2 — micro-benchmark latency, throughput and CPU utilization for
//! ping-pong / one-way / two-way over 1L-1G, 2L-1G and 1L-10G, plus the §4
//! network-level statistics (out-of-order fractions, extra frames, drops).

use me_stats::table::{fmt_f, fmt_pct, fmt_size};
use me_stats::Table;
use multiedge::SystemConfig;
use multiedge_bench::{default_iters, fig2_sizes, run_micro, MicroKind};

fn main() {
    let configs: Vec<SystemConfig> = vec![
        SystemConfig::one_link_1g(2),
        SystemConfig::two_link_1g_unordered(2),
        SystemConfig::one_link_10g(2),
    ];
    let kinds = [MicroKind::PingPong, MicroKind::OneWay, MicroKind::TwoWay];
    let sizes = fig2_sizes();

    for kind in kinds {
        let mut headers: Vec<String> = vec!["size".into()];
        for c in &configs {
            headers.push(format!("{} lat(us)", c.name));
            headers.push(format!("{} MB/s", c.name));
            headers.push(format!("{} cpu%", c.name));
        }
        let hr: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let mut t = Table::new(format!("Figure 2: {}", kind.name()), &hr);
        let mut net_rows: Vec<Vec<String>> = Vec::new();
        for &size in &sizes {
            let mut row = vec![fmt_size(size)];
            let mut nrow = vec![fmt_size(size)];
            for cfg in &configs {
                let r = run_micro(cfg, kind, size, default_iters(size));
                row.push(fmt_f(r.latency_us));
                row.push(fmt_f(r.throughput_mb_s));
                row.push(fmt_f(r.cpu_util_pct));
                nrow.push(fmt_pct(r.proto.ooo_fraction()));
                nrow.push(fmt_pct(r.proto.extra_frame_fraction()));
                nrow.push(format!(
                    "{}",
                    r.net.drops_overflow + r.net.drops_loss
                ));
            }
            t.row(row);
            net_rows.push(nrow);
        }
        t.print();
        // §4 network statistics for the same runs.
        let mut nh: Vec<String> = vec!["size".into()];
        for c in &configs {
            nh.push(format!("{} ooo", c.name));
            nh.push(format!("{} extra", c.name));
            nh.push(format!("{} drops", c.name));
        }
        let nhr: Vec<&str> = nh.iter().map(|s| s.as_str()).collect();
        let mut nt = Table::new(
            format!("Figure 2 (§4 text): network stats, {}", kind.name()),
            &nhr,
        );
        for row in net_rows {
            nt.row(row);
        }
        nt.print();
    }
    println!(
        "paper targets: one-way ≈120 MB/s (1L-1G), ≈240 MB/s (2L-1G), ≈1100 MB/s (1L-10G);"
    );
    println!(
        "ping-pong 10G ≈710 MB/s; two-way 10G ≈1500 MB/s; min latency ≈30 us; 2L ooo ≈45-50%; extra ≤5.5%"
    );
}
