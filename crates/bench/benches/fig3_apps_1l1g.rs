//! Figure 3 — application statistics over a single 1-GBit/s link (1L-1G):
//! speedup curves, execution-time breakdowns, protocol CPU time, interrupt
//! fractions and additional traffic.

use multiedge::SystemConfig;
use multiedge_bench::app_figure;

fn main() {
    let counts: Vec<usize> = match std::env::var("MULTIEDGE_SCALE").as_deref() {
        Ok("tiny") => vec![1, 4],
        _ => vec![1, 2, 4, 8, 16],
    };
    app_figure("Figure 3 (1L-1G)", SystemConfig::one_link_1g, &counts);
    println!("paper shape: Barnes/Raytrace/Water-Nsq speedups 13-14; LU/Water-Sp 6-8;");
    println!("FFT/Radix poor; protocol CPU <= 11%; extra traffic <= 15% (mostly acks)");
}
