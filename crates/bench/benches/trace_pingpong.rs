//! Traced ping-pong: runs the Figure-2 ping-pong cell with the observability
//! layer enabled and writes `results/BENCH_trace_pingpong.json` carrying the
//! protocol internals — per-connection op-latency percentiles, out-of-order
//! frame fraction, explicit-ack ratio — together with a reconciliation
//! section proving the event trace and the `ProtoStats` counters agree.

use me_trace::report::{hist_to_json, snapshot_to_json, summary};
use me_trace::{EventKind, Json, SCHEMA_VERSION};
use multiedge::{ProtoStats, SystemConfig};
use multiedge_bench::{run_micro, MicroKind, MicroResult};

/// Ring large enough that nothing is overwritten at this scale, so counting
/// retained events is exact.
const RING: usize = 1 << 16;
const SIZE: usize = 4 << 10;
const ITERS: usize = 200;

fn proto_to_json(s: &ProtoStats) -> Json {
    Json::obj()
        .set("ops_write", s.ops_write)
        .set("ops_read", s.ops_read)
        .set("bytes_written", s.bytes_written)
        .set("data_frames_sent", s.data_frames_sent)
        .set("data_frames_recv", s.data_frames_recv)
        .set("read_req_frames_sent", s.read_req_frames_sent)
        .set("explicit_acks_sent", s.explicit_acks_sent)
        .set("nacks_sent", s.nacks_sent)
        .set("retransmits_nack", s.retransmits_nack)
        .set("retransmits_rto", s.retransmits_rto)
        .set("ctrl_frames_recv", s.ctrl_frames_recv)
        .set("dup_frames_recv", s.dup_frames_recv)
        .set("ooo_arrivals", s.ooo_arrivals)
        .set("notifications", s.notifications)
        .set("reorder_peak", s.reorder_peak)
        .set("ooo_fraction", s.ooo_fraction())
        .set("extra_frame_fraction", s.extra_frame_fraction())
}

/// Explicit-ack ratio as the paper discusses it (§4): explicit ACK frames
/// per data frame sent.
fn explicit_ack_ratio(s: &ProtoStats) -> f64 {
    if s.data_frames_sent == 0 {
        return 0.0;
    }
    s.explicit_acks_sent as f64 / s.data_frames_sent as f64
}

/// One traced cell → its JSON object plus a pass/fail reconciliation.
fn run_cell(cfg: &SystemConfig) -> (Json, bool) {
    let cfg = cfg.clone().with_tracing(RING);
    let r: MicroResult = run_micro(&cfg, MicroKind::PingPong, SIZE, ITERS);
    assert_eq!(r.traces.len(), 2, "tracing was enabled on both endpoints");

    let mut cell = Json::obj()
        .set("config", cfg.name.as_str())
        .set("size", r.size)
        .set("iters", r.iters)
        .set("latency_us", r.latency_us)
        .set("throughput_mb_s", r.throughput_mb_s)
        .set("cpu_util_pct", r.cpu_util_pct)
        .set("elapsed_s", r.elapsed_s);

    // Headline per-connection numbers from node 0's trace (conn 0 is its
    // connection to node 1).
    let snap0 = &r.traces[0];
    if let Some(h) = snap0.op_latency.get(&0) {
        cell = cell.set("conn0_op_latency", hist_to_json(h));
    }

    // Protocol counters, merged and per connection.
    cell = cell.set("proto_merged", proto_to_json(&r.proto));
    let mut per_node = Vec::new();
    for conns in &r.conn_proto {
        let mut node = Json::obj();
        for (c, s) in conns.iter().enumerate() {
            node = node.set(&c.to_string(), proto_to_json(s));
        }
        per_node.push(node);
    }
    cell = cell
        .set("proto_by_node_conn", per_node)
        .set("explicit_ack_ratio", explicit_ack_ratio(&r.proto))
        .set("ooo_fraction", r.proto.ooo_fraction());

    // Reconciliation: with no ring wraparound, event counts in each node's
    // trace must equal that node's ProtoStats counters exactly.
    let mut ok = true;
    let mut rec = Json::obj();
    for (i, snap) in r.traces.iter().enumerate() {
        // All ProtoStats for node i are the sum over its connections.
        let mut s = ProtoStats::default();
        for c in &r.conn_proto[i] {
            s.merge(c);
        }
        let sends = snap.count_events(|k| matches!(k, EventKind::FrameSend { .. }));
        let recvs = snap.count_events(|k| matches!(k, EventKind::FrameRecv { .. }));
        let ooo = snap.count_events(
            |k| matches!(k, EventKind::FrameRecv { in_order: false, .. }),
        );
        let eacks = snap.count_events(|k| matches!(k, EventKind::ExplicitAck { .. }));
        let completes = snap.count_events(|k| matches!(k, EventKind::OpComplete { .. }));
        let want_sends = s.data_frames_sent
            + s.read_req_frames_sent
            + s.retransmits_nack
            + s.retransmits_rto;
        // Duplicates are counted but emit no FrameRecv event.
        let want_recvs = s.data_frames_recv;
        let want_ops = s.ops_write + s.ops_read;
        let lat_count: u64 = snap.op_latency.values().map(|h| h.count()).sum();
        let node_ok = snap.overwritten == 0
            && sends == want_sends
            && recvs == want_recvs
            && ooo == s.ooo_arrivals
            && eacks == s.explicit_acks_sent
            && completes == want_ops
            && lat_count == want_ops;
        ok &= node_ok;
        rec = rec.set(
            &format!("node{i}"),
            Json::obj()
                .set("events_overwritten", snap.overwritten)
                .set("frame_send_events", sends)
                .set("frame_send_expected", want_sends)
                .set("frame_recv_events", recvs)
                .set("frame_recv_expected", want_recvs)
                .set("ooo_recv_events", ooo)
                .set("ooo_expected", s.ooo_arrivals)
                .set("explicit_ack_events", eacks)
                .set("explicit_acks_expected", s.explicit_acks_sent)
                .set("op_complete_events", completes)
                .set("op_latency_samples", lat_count)
                .set("ops_expected", want_ops)
                .set("ok", node_ok),
        );
    }
    cell = cell.set("reconciliation", rec).set("reconciles", ok);

    // Full snapshots for offline digging (node 0 also holds the network's
    // wire-time histograms and drop events).
    let snaps: Vec<Json> = r.traces.iter().map(snapshot_to_json).collect();
    cell = cell.set("traces", snaps);

    println!("== {} ping-pong {}B x{} ==", cfg.name, SIZE, ITERS);
    println!("{}", summary(snap0));
    (cell, ok)
}

fn main() {
    let configs = [
        SystemConfig::one_link_1g(2),
        SystemConfig::two_link_1g_unordered(2),
        SystemConfig::two_link_1g(2),
        SystemConfig::one_link_10g(2),
    ];
    let mut cells = Vec::new();
    let mut all_ok = true;
    for cfg in &configs {
        let (cell, ok) = run_cell(cfg);
        cells.push(cell);
        all_ok &= ok;
    }
    let doc = Json::obj()
        .set("schema_version", SCHEMA_VERSION)
        .set("bench", "trace_pingpong")
        .set("cells", cells)
        .set("all_reconcile", all_ok);
    // Manifest-relative so the artifact lands in the workspace-root
    // results/ regardless of cargo's bench CWD.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    std::fs::write(dir.join("BENCH_trace_pingpong.json"), doc.render_pretty())
        .expect("write json");
    println!("wrote results/BENCH_trace_pingpong.json (all_reconcile={all_ok})");
    assert!(all_ok, "trace/ProtoStats reconciliation failed");
}
