//! `triage`: the span-driven regression gate.
//!
//! Re-runs the attribution cells deterministically and diffs the result
//! against the committed baselines under `results/baselines/`, failing
//! (non-zero exit) when any cell's verdict is REGRESSED — with a headline
//! that names the phase and protocol layer that moved.
//!
//! Modes (environment variables):
//!
//! * default — full-profile gate: run every cell, diff against the
//!   `full_*` baselines, write `results/BENCH_triage.json`, panic on
//!   regression (`make triage-check`).
//! * `TRIAGE_SMOKE=1` — reduced profile for CI: fewer cells/rounds/iters,
//!   diffed against the `smoke_*` baselines (`make triage-smoke`).
//! * `TRIAGE_BASELINE=1` — refresh mode: write the current build's
//!   documents as the new baselines instead of diffing
//!   (`make triage-baseline` runs it for both profiles; commit the
//!   results).

use me_trace::{diff_cell, require_schema, DiffConfig, DiffReport, Json, Verdict};
use multiedge_bench::triage::{
    baseline_path, baselines_dir, cell_doc, cells, profile_name, results_dir, run_cell,
};

fn main() {
    let smoke = std::env::var("TRIAGE_SMOKE").is_ok();
    let refresh = std::env::var("TRIAGE_BASELINE").is_ok();
    let profile = profile_name(smoke);
    let specs = cells(smoke);

    let mut docs = Vec::new();
    for spec in &specs {
        let run = run_cell(spec);
        println!(
            "{:<18} {} ops over {} round(s)  p50 {:.1}us  p99 {:.1}us",
            spec.name(),
            run.attr.overall.ops,
            spec.rounds,
            run.attr.overall.latency_hist.percentile(50.0) as f64 / 1e3,
            run.attr.overall.latency_hist.percentile(99.0) as f64 / 1e3,
        );
        docs.push((spec, cell_doc(spec, profile, &run)));
    }

    if refresh {
        std::fs::create_dir_all(baselines_dir()).expect("create baselines dir");
        for (spec, doc) in &docs {
            let path = baseline_path(profile, spec);
            std::fs::write(&path, doc.render_pretty()).expect("write baseline");
            println!("wrote {}", path.display());
        }
        println!("baselines refreshed ({profile} profile); commit results/baselines/");
        return;
    }

    let dcfg = DiffConfig::default();
    let mut report = DiffReport {
        cells: Vec::new(),
        missing: Vec::new(),
    };
    for (spec, new_doc) in &docs {
        let path = baseline_path(profile, spec);
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing baseline {} ({e}); run `make triage-baseline` and commit results/baselines/",
                path.display()
            )
        });
        let old = Json::parse(&text)
            .unwrap_or_else(|e| panic!("baseline {} is not valid JSON: {e}", path.display()));
        if let Err(e) = require_schema(&old) {
            panic!("baseline {}: {e}", path.display());
        }
        let name = spec.name();
        match diff_cell(&name, &old, new_doc, &dcfg) {
            Ok(c) => report.cells.push(c),
            Err(e) => panic!("diff {name}: {e}"),
        }
    }

    println!();
    print!("{}", report.render_human(&dcfg));

    // Write the machine-readable diff *before* asserting, so a failing CI
    // run still has the artifact to upload.
    std::fs::create_dir_all(results_dir()).expect("create results dir");
    let out = results_dir().join("BENCH_triage.json");
    let doc = report.to_json().set("profile", profile);
    std::fs::write(&out, doc.render_pretty()).expect("write diff json");
    println!("wrote results/BENCH_triage.json");

    if report.regressed() {
        let failing: Vec<String> = report
            .cells
            .iter()
            .filter(|c| c.verdict == Verdict::Regressed)
            .map(|c| format!("  {}", c.headline))
            .collect();
        panic!("triage gate failed:\n{}", failing.join("\n"));
    }
}
