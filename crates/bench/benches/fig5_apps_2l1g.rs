//! Figure 5 — application statistics over two 1-GBit/s links with strictly
//! ordered delivery (2L-1G): breakdowns ≈ 1L-1G; 10-50% of frames arrive
//! out of order; extra traffic ≤ 10%; 10-35% of frames cause interrupts.

use multiedge::SystemConfig;
use multiedge_bench::app_figure;

fn main() {
    let counts: Vec<usize> = match std::env::var("MULTIEDGE_SCALE").as_deref() {
        Ok("tiny") => vec![4],
        _ => vec![16],
    };
    app_figure("Figure 5 (2L-1G ordered)", SystemConfig::two_link_1g, &counts);
    println!("paper shape: ooo 10-50% (reorder every 2-10 frames); extra traffic <= 10%;");
    println!("protocol CPU <= 12%; execution times similar to 1L-1G");
}
