//! `backplane`: sim-vs-real cross-validation of the transport seam.
//!
//! Runs the ping-pong and one-way cross-validation cells twice — once over
//! the netsim backplane, once over real UDP sockets on loopback — with the
//! **identical** protocol driver, then diffs the two span attributions
//! per phase. Writes:
//!
//! * `results/backplane/sim.json` / `results/backplane/udp.json` — the full
//!   per-backend cell documents (also consumable by `me-inspect diff`),
//! * `results/BENCH_backplane.json` — the machine-readable diff report.
//!
//! The diff names every phase where the simulator's cost model and the
//! real kernel path disagree. Divergence here is *expected* (that is the
//! measurement — see `docs/BACKPLANE.md`), so unlike the triage gate this
//! harness never fails on a REGRESSED verdict; it fails only when a
//! workload cannot complete on a backend at all.
//!
//! Modes: `BACKPLANE_SMOKE=1` runs the reduced CI profile (fewer
//! iterations and rounds).

use me_trace::{DiffConfig, DiffReport, Json, SCHEMA_VERSION};
use multiedge_bench::backplane::{run_wire_cell, wire_cells, WireBackend};
use multiedge_bench::triage::{cell_doc, results_dir};

fn main() {
    let smoke = std::env::var("BACKPLANE_SMOKE").is_ok();
    let profile = if smoke { "smoke" } else { "full" };
    let specs = wire_cells(smoke);

    let mut backend_docs = Vec::new();
    for backend in [WireBackend::Sim, WireBackend::Udp] {
        let mut docs = Vec::new();
        for spec in &specs {
            let run = run_wire_cell(spec, backend);
            println!(
                "{:<4} {:<16} {} ops over {} round(s)  p50 {:.1}us  p99 {:.1}us",
                backend.name(),
                spec.name(),
                run.attr.overall.ops,
                spec.rounds,
                run.attr.overall.latency_hist.percentile(50.0) as f64 / 1e3,
                run.attr.overall.latency_hist.percentile(99.0) as f64 / 1e3,
            );
            docs.push(cell_doc(spec, &format!("{}-{profile}", backend.name()), &run));
        }
        backend_docs.push((backend, docs));
    }

    // Per-backend documents: same config/workload strings on both sides,
    // so the diff engine pairs the cells; backend identity is the profile.
    let out_dir = results_dir().join("backplane");
    std::fs::create_dir_all(&out_dir).expect("create results/backplane");
    let mut suites = Vec::new();
    for (backend, docs) in &backend_docs {
        let suite = Json::obj()
            .set("schema_version", SCHEMA_VERSION)
            .set("kind", "multiedge_attribution_suite")
            .set("profile", format!("{}-{profile}", backend.name()))
            .set("cells", docs.clone());
        let path = out_dir.join(format!("{}.json", backend.name()));
        std::fs::write(&path, suite.render_pretty()).expect("write backend doc");
        println!("wrote {}", path.display());
        suites.push(suite);
    }

    let dcfg = DiffConfig::default();
    let udp = suites.pop().expect("udp suite");
    let sim = suites.pop().expect("sim suite");
    let report = match me_trace::diff_docs(&sim, &udp, &dcfg) {
        Ok(r) => r,
        Err(e) => panic!("sim-vs-udp diff failed: {e}"),
    };

    println!();
    print!("{}", report.render_human(&dcfg));
    report_summary(&report);

    let doc = report
        .to_json()
        .set("profile", profile)
        .set("old_backend", "sim")
        .set("new_backend", "udp");
    let out = results_dir().join("BENCH_backplane.json");
    std::fs::write(&out, doc.render_pretty()).expect("write diff json");
    println!("wrote results/BENCH_backplane.json");
}

fn report_summary(report: &DiffReport) {
    if report.regressed() {
        // Expected: wall-clock phases differ from the simulator's model.
        // The report *is* the measurement; only a missing cell is an error.
        println!("sim-vs-udp attributions diverge (expected; see docs/BACKPLANE.md)");
    } else {
        println!("sim-vs-udp attributions agree within noise");
    }
    assert!(
        report.missing.is_empty(),
        "cells missing from the UDP run: {:?}",
        report.missing
    );
}
