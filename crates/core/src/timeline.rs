//! Endpoint-side time-resolved telemetry: a [`me_trace::Timeline`] sampler
//! wired to the protocol's live state.
//!
//! [`EndpointTimeline`] registers one counter per monotone [`ProtoStats`]
//! field ([`ProtoStats::monotone_counters`]) plus the dynamic state the
//! aggregates cannot show — send-window occupancy, per-rail health and NIC
//! backlog, the current RTO and its backoff level. [`Endpoint::start_timeline`]
//! arms a self-rescheduling simulator event that commits one row per
//! interval of virtual time; the recurring event stores its closure inline
//! in the engine's event slab and every reading lands in storage
//! preallocated at arm time, so sampling adds no allocations to the
//! datapath (the telemetry bench gates this).
//!
//! The event disarms itself once the simulation has no live tasks left, so
//! an armed sampler never prevents [`netsim::Sim::run`] from quiescing;
//! [`EndpointSampler::finish`] then takes one final row so the summed
//! per-interval deltas reconcile *exactly* with the endpoint's end-of-run
//! [`ProtoStats`].

use crate::endpoint::Endpoint;
use crate::railhealth::RailState;
use crate::stats::ProtoStats;
use me_trace::{
    HealthConfig, HealthMonitor, HealthReport, IncidentCause, Json, SourceId, Timeline,
    TimelineBuilder,
};
use netsim::{Dur, Sim};
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Stable gauge encoding of a rail's health state, for timeline rows.
pub fn rail_state_code(s: RailState) -> u64 {
    match s {
        RailState::Healthy => 0,
        RailState::Degraded => 1,
        RailState::Dead => 2,
        RailState::Probing => 3,
    }
}

/// A [`Timeline`] plus the source handles for one endpoint's signals:
/// every monotone `ProtoStats` counter, connection-level window/RTO state,
/// and per-rail health + NIC backlog gauges.
pub struct EndpointTimeline {
    tl: Timeline,
    conn: usize,
    counters: [SourceId; 24],
    in_flight: SourceId,
    active_rails: SourceId,
    rto_ns: SourceId,
    backoff: SourceId,
    rail_state: Vec<SourceId>,
    nic_backlog: Vec<SourceId>,
    health: Option<HealthMonitor>,
}

impl EndpointTimeline {
    /// Register the standard endpoint source set for a node with `rails`
    /// NICs, watching connection `conn`, sampling every `interval` with at
    /// most `capacity` retained rows; the grid is anchored at `start_ns`.
    pub fn new(rails: usize, conn: usize, interval: Dur, capacity: usize, start_ns: u64) -> Self {
        let mut b = TimelineBuilder::new();
        let counters = ProtoStats::default()
            .monotone_counters()
            .map(|(name, _)| b.counter(name));
        let in_flight = b.gauge("in_flight");
        let active_rails = b.gauge("active_rails");
        let rto_ns = b.gauge("rto_ns");
        let backoff = b.gauge("rto_backoff");
        let mut rail_state = Vec::with_capacity(rails);
        let mut nic_backlog = Vec::with_capacity(rails);
        for r in 0..rails {
            rail_state.push(b.gauge(&format!("rail{r}.state")));
            nic_backlog.push(b.gauge(&format!("rail{r}.backlog_ns")));
        }
        EndpointTimeline {
            tl: b.build(interval.as_nanos(), capacity, start_ns),
            conn,
            counters,
            in_flight,
            active_rails,
            rto_ns,
            backoff,
            rail_state,
            nic_backlog,
            health: None,
        }
    }

    /// Attach a streaming [`HealthMonitor`] over the registered sources:
    /// every subsequent [`EndpointTimeline::sample`] also runs the
    /// detectors on the committed row (allocation-free) and reports a
    /// newly opened incident to the caller.
    pub fn enable_health(&mut self, cfg: HealthConfig) {
        self.health = Some(HealthMonitor::for_timeline(&self.tl, cfg));
    }

    /// Is a row due at `now_ns`?
    pub fn due(&self, now_ns: u64) -> bool {
        self.tl.due(now_ns)
    }

    /// Read every registered signal from `ep` and commit one row stamped
    /// `now_ns`; when a health monitor is attached, run the detectors on
    /// the committed row. Allocation-free. Returns the cause of an
    /// incident newly opened by this row — the caller's cue to arm the
    /// flight recorder (done outside this borrow).
    pub fn sample(&mut self, ep: &Endpoint, now_ns: u64) -> Option<IncidentCause> {
        let stats = ep.stats();
        for (id, (_, v)) in self.counters.iter().zip(stats.monotone_counters()) {
            self.tl.set(*id, v);
        }
        self.tl.set(self.in_flight, ep.conn_in_flight(self.conn));
        self.tl.set(self.active_rails, ep.active_rails(self.conn) as u64);
        self.tl.set(self.rto_ns, ep.current_rto(self.conn).as_nanos());
        self.tl.set(self.backoff, u64::from(ep.rto_backoff(self.conn)));
        for (r, (&sid, &bid)) in self.rail_state.iter().zip(&self.nic_backlog).enumerate() {
            self.tl.set(sid, rail_state_code(ep.rail_state(self.conn, r)));
            self.tl.set(bid, ep.nic_backlog_ns(r));
        }
        self.tl.sample(now_ns);
        let health = self.health.as_mut()?;
        let i = self.tl.len() - 1;
        let (t, vals) = self.tl.row(i);
        health.observe(t, vals, self.tl.stale_words(i))
    }

    /// The attached health monitor, if any.
    pub fn health(&self) -> Option<&HealthMonitor> {
        self.health.as_ref()
    }

    /// Snapshot the health verdict, if a monitor is attached.
    pub fn health_report(&self) -> Option<HealthReport> {
        self.health.as_ref().map(|h| h.report())
    }

    /// The underlying sample ring.
    pub fn timeline(&self) -> &Timeline {
        &self.tl
    }

    /// Consume the sampler, keeping only the sample ring.
    pub fn into_timeline(self) -> Timeline {
        self.tl
    }
}

/// Handle to a running simulator-driven sampler (see
/// [`Endpoint::start_timeline`]).
pub struct EndpointSampler {
    ep: Endpoint,
    tl: Rc<RefCell<EndpointTimeline>>,
    stop: Rc<Cell<bool>>,
}

impl EndpointSampler {
    /// Stop re-arming, take one final reconciliation row at the current
    /// virtual time, and return the finished timeline. Call after
    /// `sim.run()`: the final row makes `base + Σ deltas` equal the
    /// endpoint's end-of-run stats exactly.
    pub fn finish(self) -> Timeline {
        self.stop.set(true);
        let now = self.ep.sim_handle().now().as_nanos();
        let opened = self.tl.borrow_mut().sample(&self.ep, now);
        if let Some(cause) = opened {
            arm_flight(&self.ep, &self.tl, cause, now);
        }
        self.tl.borrow().timeline().clone()
    }

    /// Snapshot the health verdict, if this sampler was started with a
    /// monitor ([`Endpoint::start_timeline_with_health`]).
    pub fn health_report(&self) -> Option<HealthReport> {
        self.tl.borrow().health_report()
    }

    /// Shared access to the live sampler (e.g. to inspect mid-run).
    pub fn shared(&self) -> Rc<RefCell<EndpointTimeline>> {
        self.tl.clone()
    }
}

/// Report a newly opened incident to the endpoint's flight recorder. Both
/// timeline borrows are released before [`FlightRecorder::anomaly`] runs:
/// the dump evaluates context sources that re-borrow the sampler.
///
/// [`FlightRecorder::anomaly`]: me_trace::FlightRecorder::anomaly
fn arm_flight(ep: &Endpoint, tl: &Rc<RefCell<EndpointTimeline>>, cause: IncidentCause, t_ns: u64) {
    let fr = ep.flight_recorder();
    if !fr.is_enabled() {
        return;
    }
    let (conn, open) = {
        let t = tl.borrow();
        (t.conn, t.health().map(|h| h.open_incidents()).unwrap_or(0))
    };
    fr.anomaly(ep.node(), Some(conn), cause.ordinal() as u64, open as u64, t_ns);
}

fn arm(sim: &Sim, ep: Endpoint, tl: Rc<RefCell<EndpointTimeline>>, stop: Rc<Cell<bool>>, d: Dur) {
    // The closure captures ~56 bytes, under the engine's inline-event
    // threshold: re-arming costs no heap allocation per tick.
    sim.schedule_in(d, move |sim| {
        if stop.get() {
            return;
        }
        let now = sim.now().as_nanos();
        let opened = tl.borrow_mut().sample(&ep, now);
        if let Some(cause) = opened {
            arm_flight(&ep, &tl, cause, now);
        }
        // Re-arm only while application tasks are live, so the recurring
        // event never keeps the simulation from quiescing.
        if sim.live_tasks() > 0 {
            arm(sim, ep, tl, stop, d);
        }
    });
}

impl Endpoint {
    /// Arm a recurring virtual-time sampler on this endpoint, watching
    /// connection `conn`: one timeline row every `interval`, at most
    /// `capacity` retained rows (oldest evicted beyond that). The sampler
    /// disarms itself when the simulation runs out of live tasks; call
    /// [`EndpointSampler::finish`] after `sim.run()` for the final
    /// reconciliation row.
    pub fn start_timeline(&self, conn: usize, interval: Dur, capacity: usize) -> EndpointSampler {
        self.start_sampler(conn, interval, capacity, None)
    }

    /// Like [`Endpoint::start_timeline`], but with a streaming
    /// [`HealthMonitor`] attached: the detectors run at every sample tick
    /// (zero allocations in steady state), a newly opened incident arms
    /// the flight recorder's `Anomaly` trigger, and the detector state
    /// rides along in dumps as the `health` context source. Collect the
    /// verdict with [`EndpointSampler::health_report`].
    pub fn start_timeline_with_health(
        &self,
        conn: usize,
        interval: Dur,
        capacity: usize,
        cfg: HealthConfig,
    ) -> EndpointSampler {
        self.start_sampler(conn, interval, capacity, Some(cfg))
    }

    fn start_sampler(
        &self,
        conn: usize,
        interval: Dur,
        capacity: usize,
        health: Option<HealthConfig>,
    ) -> EndpointSampler {
        let sim = self.sim_handle().clone();
        let start_ns = sim.now().as_nanos();
        let mut et = EndpointTimeline::new(self.nic_count(), conn, interval, capacity, start_ns);
        if let Some(cfg) = health {
            et.enable_health(cfg);
        }
        let tl = Rc::new(RefCell::new(et));
        if health.is_some() {
            let fr = self.flight_recorder();
            if fr.is_enabled() {
                let tlc = tl.clone();
                fr.add_context_source(
                    "health",
                    Rc::new(move || {
                        tlc.borrow()
                            .health()
                            .map(|h| h.state_json())
                            .unwrap_or(Json::Null)
                    }),
                );
            }
        }
        let stop = Rc::new(Cell::new(false));
        arm(&sim, self.clone(), tl.clone(), stop.clone(), interval);
        EndpointSampler {
            ep: self.clone(),
            tl,
            stop,
        }
    }
}
