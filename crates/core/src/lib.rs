//! **MultiEdge** — an edge-based communication subsystem for scalable
//! commodity servers (Karlsson, Passas, Kotsis, Bilas — IPPS 2007), in Rust,
//! over a deterministic network simulation.
//!
//! MultiEdge is a connection-oriented, kernel-level protocol running on raw
//! Ethernet frames. It provides:
//!
//! * **RDMA-style remote memory operations** — asynchronous remote write and
//!   remote read into the peer process's virtual address space, with
//!   completion handles and optional remote notifications
//!   ([`Endpoint::write`], [`Endpoint::read`], [`OpHandle`]).
//! * **End-to-end flow control and reliability** — fixed-size sliding window
//!   counted in frames, positive acks piggybacked on every data frame,
//!   delayed explicit acks, NACK-driven selective retransmission, and a
//!   coarse retransmission timeout ([`ProtoConfig`]).
//! * **Spatial parallelism** — transparent frame-level striping of a single
//!   connection across multiple physical links with round-robin scheduling
//!   ([`SchedPolicy`]), plus the paper's novel ordering API: per-operation
//!   **backward** and **forward fences** that let applications permit
//!   out-of-order delivery wherever safe ([`OpFlags`]).
//! * **Interrupt minimization** — receive/transmit events arriving while the
//!   protocol thread is active are absorbed by polling; only events that find
//!   it idle pay interrupt cost (§2.6 of the paper).
//! * **Failure resilience** — per-rail health tracking fed by loss
//!   attribution ([`RailState`]): rails that keep losing frames are excluded
//!   from striping and probed back in after a cooldown, while an adaptive
//!   RFC 6298-style retransmission timeout with exponential backoff
//!   ([`rtt::RttEstimator`]) replaces the paper's fixed coarse timer.
//!
//! # Quick start
//!
//! ```
//! use multiedge::{Endpoint, OpFlags, SystemConfig};
//! use netsim::{build_cluster, Sim};
//! use std::rc::Rc;
//!
//! let cfg = Rc::new(SystemConfig::one_link_1g(2));
//! let sim = Sim::new(1);
//! let cluster = build_cluster(&sim, cfg.cluster_spec());
//! let eps = Endpoint::for_cluster(&sim, &cluster, cfg);
//! let (c0, _c1) = Endpoint::connect(&eps[0], &eps[1]);
//!
//! let a = eps[0].clone();
//! sim.spawn("writer", async move {
//!     let h = a.write_bytes(c0, 0x1000, b"hello".to_vec(), OpFlags::RELAXED).await;
//!     h.wait().await;
//! });
//! sim.run().expect_quiescent();
//! assert_eq!(eps[1].mem_read(0x1000, 5), b"hello");
//! ```

#![warn(missing_docs)]

pub mod backplane;
pub mod config;
pub mod endpoint;
pub mod memory;
pub mod ops;
pub mod order;
pub mod railhealth;
pub mod recvseq;
pub mod ring;
pub mod rtt;
pub mod sched;
pub mod seqspace;
pub mod stats;
pub mod striping;
pub mod timeline;

pub use backplane::{
    Backplane, BpRx, ChaosConfig, FaultBackplane, SimBackplane, UdpBackplane, UdpFabric,
    WireEndpoint, WireError,
};
pub use config::{CostModel, ProtoConfig, SystemConfig};
pub use endpoint::Endpoint;
pub use memory::{AppMemory, PAGE_SIZE};
pub use ops::{Notification, OpFlags, OpHandle, OpKind};
pub use railhealth::{RailEvent, RailSet, RailState};
pub use rtt::RttEstimator;
pub use sched::{LinkScheduler, SchedPolicy};
pub use stats::{CpuSnapshot, ProtoStats};
pub use timeline::{rail_state_code, EndpointSampler, EndpointTimeline};

// The protocol stack is single-threaded by design: endpoints, backplanes
// and operation handles all share `Rc`-backed state with the simulator
// driving them. Under the sharded runtime each shard runs its own stack on
// its own thread, and *only* `netsim::BoundaryMsg` crosses between them.
// Pin that boundary: if a refactor ever made one of these `Send`, moving it
// across shards would compile — and race. This makes it a compile error
// instead.
netsim::assert_not_send!(
    Endpoint,
    SimBackplane,
    OpHandle,
    frame::Frame,
    bytes::Bytes,
);
