//! The netsim implementation of the [`Backplane`] trait.
//!
//! Wraps one node of a built [`Cluster`]: sends go straight to that node's
//! simulated NICs, receives are collected by per-NIC rx handlers into a
//! per-node queue, and [`Backplane::advance`] drives the shared discrete
//! event simulator with [`Sim::advance_until`] — stopping early the moment
//! *any* node on the fabric receives a frame, so an external poll loop
//! interleaving both endpoints processes every frame at the right virtual
//! time.
//!
//! Corrupted frames (transient-fault model) are counted and dropped here:
//! on a real wire the Ethernet FCS discards them before the host ever sees
//! them, and the UDP backend's codec checksum does the same.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

use frame::MacAddr;
use netsim::{Cluster, Network, NicId, Sim, SimTime};

use super::{Backplane, BpRx};

/// Shared across every [`SimBackplane`] of one fabric: bumped on each frame
/// delivery so an in-progress [`Backplane::advance`] can stop early.
type Activity = Rc<Cell<u64>>;

/// One node's view of a simulated fabric (see module docs).
pub struct SimBackplane {
    sim: Sim,
    net: Network,
    nics: Vec<NicId>,
    macs: Vec<MacAddr>,
    peer_macs: Vec<MacAddr>,
    rx: Rc<RefCell<VecDeque<BpRx>>>,
    activity: Activity,
    corrupt_dropped: Rc<Cell<u64>>,
    mtu: usize,
}

impl SimBackplane {
    /// Wire both nodes of a two-node cluster into a pair of backplanes.
    ///
    /// Installs rx handlers on every NIC, so the cluster's NICs must not
    /// already be claimed by a legacy [`Endpoint`](crate::Endpoint).
    ///
    /// # Panics
    ///
    /// Panics if the cluster does not have exactly two nodes.
    pub fn pair(sim: &Sim, cluster: &Cluster) -> (SimBackplane, SimBackplane) {
        assert_eq!(
            cluster.nics.len(),
            2,
            "SimBackplane::pair needs a two-node cluster"
        );
        let activity: Activity = Rc::new(Cell::new(0));
        let corrupt = Rc::new(Cell::new(0u64));
        let mut nodes = Vec::with_capacity(2);
        for node in 0..2 {
            let nics = cluster.nics[node].clone();
            let rx: Rc<RefCell<VecDeque<BpRx>>> = Rc::default();
            for (rail, &nic) in nics.iter().enumerate() {
                let q = rx.clone();
                let act = activity.clone();
                let cor = corrupt.clone();
                cluster.net.set_rx_handler(nic, move |sim, rxf| {
                    if rxf.corrupted {
                        cor.set(cor.get() + 1);
                        return;
                    }
                    q.borrow_mut().push_back(BpRx {
                        rail: rail as u32,
                        at_ns: sim.now().as_nanos(),
                        frame: rxf.frame,
                    });
                    act.set(act.get() + 1);
                });
            }
            let macs: Vec<MacAddr> = nics.iter().map(|&n| cluster.net.nic_mac(n)).collect();
            nodes.push(SimBackplane {
                sim: sim.clone(),
                net: cluster.net.clone(),
                nics,
                macs,
                peer_macs: Vec::new(),
                rx,
                activity: activity.clone(),
                corrupt_dropped: corrupt.clone(),
                mtu: frame::MAX_PAYLOAD,
            });
        }
        let (mut a, mut b) = {
            let b = nodes.pop().expect("two nodes");
            let a = nodes.pop().expect("two nodes");
            (a, b)
        };
        a.peer_macs = b.macs.clone();
        b.peer_macs = a.macs.clone();
        (a, b)
    }

    /// Corrupted frames the fault model damaged in flight and this fabric
    /// discarded (shared count across both nodes).
    pub fn corrupt_dropped(&self) -> u64 {
        self.corrupt_dropped.get()
    }
}

impl Backplane for SimBackplane {
    fn rails(&self) -> usize {
        self.nics.len()
    }

    fn mtu(&self) -> usize {
        self.mtu
    }

    fn peer_mtu(&self) -> usize {
        // Symmetric fabric: every simulated NIC speaks the same MTU.
        self.mtu
    }

    fn local_mac(&self, rail: usize) -> MacAddr {
        self.macs[rail]
    }

    fn peer_mac(&self, rail: usize) -> MacAddr {
        self.peer_macs[rail]
    }

    fn now_ns(&self) -> u64 {
        self.sim.now().as_nanos()
    }

    fn send(&mut self, rail: usize, frame: frame::Frame) -> bool {
        self.net.nic_send(self.nics[rail], frame)
    }

    fn next(&mut self) -> Option<BpRx> {
        self.rx.borrow_mut().pop_front()
    }

    fn tx_backlog_ns(&self, rail: usize) -> u64 {
        self.net.nic_tx_backlog(self.nics[rail]).as_nanos()
    }

    fn advance(&mut self, until_ns: u64) -> u64 {
        let base = self.activity.get();
        let act = self.activity.clone();
        self.sim
            .advance_until(SimTime(until_ns), move || act.get() != base)
            .as_nanos()
    }
}
