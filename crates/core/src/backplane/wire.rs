//! [`WireEndpoint`]: the MultiEdge protocol driven over a [`Backplane`].
//!
//! This is the same protocol the simulator-native [`Endpoint`] speaks —
//! and deliberately built from the **same state-machine modules**, used
//! unmodified: [`TxRing`]/[`GapRing`] window state, [`SeqTracker`]
//! admission, [`OpOrdering`] fences, [`RttEstimator`] adaptive RTO,
//! [`RailSet`] health, [`LinkScheduler`] striping, the `seqspace` wire
//! mapping and [`NackRanges`]. What differs is only the event loop: instead
//! of closures scheduled on the simulator, the driver is a synchronous
//! poll/deadline machine (`poll` + `next_deadline` + `Backplane::advance`)
//! in the PR 3 timer-wheel discipline, so it runs identically over the
//! simulated fabric and over real UDP sockets.
//!
//! Scope: the wire driver implements the **write path** (remote writes,
//! fences, notifications) — the workloads the cross-validation cells
//! exercise. Remote reads remain simulator-only for now; `docs/BACKPLANE.md`
//! documents the gap. It also models no host cost (CPU charges, interrupt
//! moderation): on UDP those costs are *real*, which is exactly the
//! difference the sim-vs-real attribution diff is built to measure.
//!
//! Span milestones are stamped on the backplane clock with the same
//! semantics as the simulator endpoint, so `me_trace::analyze` telescopes a
//! [`WireEndpoint`] run exactly like a simulated one.
//!
//! [`Endpoint`]: crate::Endpoint

use std::collections::VecDeque;

use bytes::Bytes;
use frame::{FastMap, Frame, FrameFlags, FrameHeader, FrameKind, NackRanges};
use me_trace::{
    FlightCode, FlightRecorder, HealthConfig, HealthMonitor, HealthReport, Leg, SourceId, SpanKey,
    SpanKind, SpanRecorder, Timeline, TimelineBuilder,
};
use std::cell::RefCell;
use std::rc::Rc;
use netsim::SimTime;

use crate::config::ProtoConfig;
use crate::memory::AppMemory;
use crate::ops::{Notification, OpFlags};
use crate::order::{FragMeta, OpOrdering, Release};
use crate::railhealth::{RailEvent, RailSet};
use crate::recvseq::{Admit, SeqTracker};
use crate::ring::{GapRing, TxRing, TxSlot};
use crate::rtt::RttEstimator;
use crate::sched::LinkScheduler;
use crate::seqspace::{from_wire, to_wire};
use crate::stats::ProtoStats;

use super::{Backplane, BpRx};

/// One fragment held by the reorder buffer until its fences release it.
struct WFrag {
    kind: FrameKind,
    addr: u64,
    data: Bytes,
}

/// Receive-side per-operation bookkeeping (first address, notify flag).
struct WOpMeta {
    kind: FrameKind,
    start_addr: u64,
    total: u64,
    notify: bool,
}

/// A write operation acknowledged by the peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedWrite {
    /// Operation id (dense per connection direction).
    pub op: u64,
    /// Backplane clock when the write was issued.
    pub created_ns: u64,
    /// Backplane clock when the covering cumulative ack arrived.
    pub completed_ns: u64,
}

/// One connection's protocol state — the same fields the simulator-native
/// endpoint carries, minus its simulator-scheduled timers (replaced by
/// explicit deadlines on the backplane clock).
struct WConn {
    peer_node: usize,
    peer_conn_id: u32,

    // ---- send direction ----
    next_seq: u64,
    acked: u64,
    sent_up_to: u64,
    tx: TxRing,
    send_queue: VecDeque<Frame>,
    next_op: u64,
    last_fwd_op: Option<u64>,
    /// `(last frame seq, op id, created_ns)` per in-flight write.
    pending_write_ops: VecDeque<(u64, u64, u64)>,
    sched: LinkScheduler,
    last_progress_ns: u64,
    rails: RailSet,
    last_rx_rail: Option<usize>,
    rtt: RttEstimator,

    // ---- receive direction ----
    seqs: SeqTracker,
    order: OpOrdering<WFrag>,
    op_meta: FastMap<u64, WOpMeta>,
    frames_since_ack: u32,
    gaps: GapRing,
    missing_scratch: Vec<(u64, u64)>,
    release_scratch: Release<WFrag>,
    fence_stall_start: FastMap<u64, u64>,
    /// When the reorder buffer last went from empty to non-empty (`None`
    /// while empty) — the liveness watchdog's fence-stall clock, tracked
    /// unconditionally (unlike `fence_stall_start`, which serves span and
    /// flight attribution).
    buffered_since: Option<u64>,

    // ---- deadlines (backplane clock, ns; None = unarmed) ----
    ack_deadline: Option<u64>,
    nack_deadline: Option<u64>,
    rto_deadline: Option<u64>,

    stats: ProtoStats,
}

impl WConn {
    fn new(peer_node: usize, proto: &ProtoConfig, nrails: usize) -> Self {
        Self {
            peer_node,
            peer_conn_id: 0,
            next_seq: 0,
            acked: 0,
            sent_up_to: 0,
            tx: TxRing::with_window(proto.window as usize),
            send_queue: VecDeque::new(),
            next_op: 0,
            last_fwd_op: None,
            pending_write_ops: VecDeque::new(),
            sched: LinkScheduler::new(proto.sched),
            last_progress_ns: 0,
            rails: RailSet::new(
                nrails,
                proto.rail_degraded_after,
                proto.rail_dead_after,
                proto.rail_cooldown,
            ),
            last_rx_rail: None,
            rtt: RttEstimator::new(proto.rto_initial, proto.rto_min, proto.rto_max),
            seqs: SeqTracker::with_window(proto.window as usize),
            order: OpOrdering::new(),
            op_meta: FastMap::default(),
            frames_since_ack: 0,
            gaps: GapRing::with_window(proto.window as usize),
            missing_scratch: Vec::new(),
            release_scratch: Release::default(),
            fence_stall_start: FastMap::default(),
            buffered_since: None,
            ack_deadline: None,
            nack_deadline: None,
            rto_deadline: None,
            stats: ProtoStats::default(),
        }
    }

    fn in_flight(&self) -> u64 {
        self.sent_up_to - self.acked
    }
}

/// Why a watchdog-guarded drive loop gave up — every chaos/soak scenario
/// terminates with either completion or one of these within the watchdog
/// deadline; the unbounded hang is not an outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The peer stopped responding: RTO backoff reached the
    /// [`ProtoConfig::rto_storm_cap`] storm cap without acknowledgement
    /// progress.
    PeerUnreachable {
        /// The endpoint whose retransmissions go unanswered.
        node: usize,
        /// RTO backoff exponent at trip time.
        backoff: u32,
        /// Nanoseconds without protocol progress.
        idle_ns: u64,
    },
    /// Rail health declared every rail dead on some connection — there is
    /// no eligible link left to carry traffic.
    AllRailsDead {
        /// The endpoint with no live rails.
        node: usize,
        /// Nanoseconds without protocol progress.
        idle_ns: u64,
    },
    /// Fragments sat fence-blocked in a reorder buffer past the configured
    /// bound (or at trip time with nothing else in flight).
    FenceStallExceeded {
        /// The endpoint holding the blocked fragments.
        node: usize,
        /// How long the oldest fragment has been held.
        stalled_ns: u64,
        /// Fragments currently held.
        buffered: usize,
    },
    /// No protocol progress for the watchdog window and no sharper cause
    /// above applies; both connections' states are attached for triage.
    Stalled {
        /// Nanoseconds without protocol progress.
        idle_ns: u64,
        /// Endpoint a's connection 0 state at trip time.
        a: WireConnState,
        /// Endpoint b's connection 0 state at trip time.
        b: WireConnState,
    },
}

impl WireError {
    /// Stable discriminant recorded in flight-dump watchdog events.
    pub fn code(&self) -> u64 {
        match self {
            WireError::PeerUnreachable { .. } => 1,
            WireError::AllRailsDead { .. } => 2,
            WireError::FenceStallExceeded { .. } => 3,
            WireError::Stalled { .. } => 4,
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::PeerUnreachable {
                node,
                backoff,
                idle_ns,
            } => write!(
                f,
                "peer unreachable from node {node}: RTO backoff hit the storm cap \
                 ({backoff} doublings, {idle_ns}ns without progress)"
            ),
            WireError::AllRailsDead { node, idle_ns } => write!(
                f,
                "all rails dead on node {node} ({idle_ns}ns without progress)"
            ),
            WireError::FenceStallExceeded {
                node,
                stalled_ns,
                buffered,
            } => write!(
                f,
                "fence stall exceeded on node {node}: {buffered} fragment(s) \
                 held for {stalled_ns}ns"
            ),
            WireError::Stalled { idle_ns, a, b } => write!(
                f,
                "backplane drive stalled: no protocol progress for {idle_ns}ns \
                 (a: {a:?}, b: {b:?})"
            ),
        }
    }
}

impl std::error::Error for WireError {}

/// Liveness bounds for [`drive_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriveLimits {
    /// Trip the watchdog after this long without protocol progress
    /// (acknowledgement, cumulative, fence-release or receive-counter
    /// movement — timer fires alone are not progress).
    pub progress_timeout_ns: u64,
    /// Absolute wall/virtual budget for the whole drive, even if progress
    /// trickles.
    pub hard_budget_ns: u64,
    /// Trip when fragments sit fence-blocked this long (0 disables the
    /// dedicated fence watchdog; a fence stall that starves all progress
    /// still trips the progress watchdog).
    pub fence_stall_limit_ns: u64,
}

impl DriveLimits {
    /// The legacy single-budget shape [`drive`] uses: the budget is the
    /// progress window, the hard ceiling is four times that, no dedicated
    /// fence watchdog.
    pub fn budget(budget_ns: u64) -> Self {
        Self {
            progress_timeout_ns: budget_ns,
            hard_budget_ns: budget_ns.saturating_mul(4),
            fence_stall_limit_ns: 0,
        }
    }
}

/// Debug/test view of one connection's sequencing and ordering state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireConnState {
    /// Next sequence number the sender will assign.
    pub next_seq: u64,
    /// Cumulative ack received from the peer (send direction clean iff
    /// equal to `next_seq`).
    pub acked: u64,
    /// One past the highest sequence transmitted.
    pub sent_up_to: u64,
    /// Receive-direction cumulative: all sequences below arrived.
    pub cumulative: u64,
    /// All ops below this id are fully applied at this receiver.
    pub applied_below: u64,
    /// Fragments currently held back by fences.
    pub fence_buffered: usize,
    /// The receive window currently has a sequence gap.
    pub has_gap: bool,
}

/// A synchronous MultiEdge endpoint speaking the write-path protocol over
/// any [`Backplane`] (see module docs).
pub struct WireEndpoint {
    node: usize,
    proto: ProtoConfig,
    spans: SpanRecorder,
    flight: FlightRecorder,
    stats: ProtoStats,
    conns: Vec<WConn>,
    memory: AppMemory,
    notifications: VecDeque<Notification>,
    completions: VecDeque<CompletedWrite>,
    /// NACK-triggered retransmissions suppressed by the
    /// [`ProtoConfig::nack_resend_burst`] cap (endpoint-local, not part of
    /// the fingerprinted [`ProtoStats`]).
    storm_suppressed: u64,
    rng: u64,
    sampler: Option<WireSampler>,
}

/// Time-resolved sampler state for a wire endpoint: the timeline ring plus
/// the source handles and the watchdog-token tracker feeding the
/// `token_age_ns` gauge (how long since real protocol progress).
struct WireSampler {
    tl: Timeline,
    counters: [SourceId; 24],
    progress_token: SourceId,
    token_age_ns: SourceId,
    in_flight: SourceId,
    active_rails: SourceId,
    rto_ns: SourceId,
    backoff: SourceId,
    fence_buffered: SourceId,
    rail_state: Vec<SourceId>,
    rail_backlog: Vec<SourceId>,
    last_token: u64,
    last_token_change_ns: u64,
    /// Streaming health monitor over the committed rows; shared so the
    /// flight recorder's `health` context source can read detector state
    /// at dump time.
    health: Option<Rc<RefCell<HealthMonitor>>>,
}

impl WireEndpoint {
    /// A connected pair of endpoints (nodes 0 and 1, one connection each,
    /// connection index 0 on both sides) sharing `spans` so one snapshot
    /// covers both directions — the same arrangement
    /// `Endpoint::for_cluster` uses.
    pub fn pair(proto: &ProtoConfig, rails: usize, spans: &SpanRecorder) -> (Self, Self) {
        let mut a = Self::new(0, proto, spans.clone());
        let mut b = Self::new(1, proto, spans.clone());
        a.conns.push(WConn::new(1, proto, rails));
        b.conns.push(WConn::new(0, proto, rails));
        // peer_conn_id is 0 on both sides by construction.
        (a, b)
    }

    fn new(node: usize, proto: &ProtoConfig, spans: SpanRecorder) -> Self {
        Self {
            node,
            proto: proto.clone(),
            spans,
            flight: FlightRecorder::disabled(),
            stats: ProtoStats::default(),
            conns: Vec::new(),
            memory: AppMemory::new(),
            notifications: VecDeque::new(),
            completions: VecDeque::new(),
            storm_suppressed: 0,
            rng: 0x9e37_79b9_7f4a_7c15 ^ (node as u64) << 32,
            sampler: None,
        }
    }

    /// Enable time-resolved telemetry: one row per `interval_ns` of the
    /// backplane clock (virtual on the simulator, wall on UDP), at most
    /// `capacity` retained rows, grid anchored at `start_ns`. Sources:
    /// every monotone [`ProtoStats`] counter, the watchdog progress token
    /// and its age, send-window occupancy, live-rail count, RTO/backoff
    /// state, fence-held fragments, and per-rail transmit backlog. Rows are
    /// committed from inside [`WireEndpoint::poll`]; take one final row
    /// with [`WireEndpoint::sample_timeline`] before reading the result so
    /// the deltas reconcile with [`WireEndpoint::stats`] exactly.
    pub fn enable_timeline(
        &mut self,
        rails: usize,
        interval_ns: u64,
        capacity: usize,
        start_ns: u64,
    ) {
        let mut b = TimelineBuilder::new();
        let counters = ProtoStats::default()
            .monotone_counters()
            .map(|(name, _)| b.counter(name));
        let progress_token = b.counter("progress_token");
        let token_age_ns = b.gauge("token_age_ns");
        let in_flight = b.gauge("in_flight");
        let active_rails = b.gauge("active_rails");
        let rto_ns = b.gauge("rto_ns");
        let backoff = b.gauge("rto_backoff");
        let fence_buffered = b.gauge("fence_buffered");
        let mut rail_state = Vec::with_capacity(rails);
        let mut rail_backlog = Vec::with_capacity(rails);
        for r in 0..rails {
            rail_state.push(b.gauge(&format!("rail{r}.state")));
            rail_backlog.push(b.gauge(&format!("rail{r}.backlog_ns")));
        }
        self.sampler = Some(WireSampler {
            tl: b.build(interval_ns, capacity, start_ns),
            counters,
            progress_token,
            token_age_ns,
            in_flight,
            active_rails,
            rto_ns,
            backoff,
            fence_buffered,
            rail_state,
            rail_backlog,
            last_token: 0,
            last_token_change_ns: start_ns,
            health: None,
        });
    }

    /// Attach a streaming [`HealthMonitor`] to the enabled timeline: the
    /// detectors run on every committed row (from [`WireEndpoint::poll`]'s
    /// due-sampling as well as explicit [`WireEndpoint::sample_timeline`]
    /// calls), a newly opened incident arms the flight recorder's
    /// `Anomaly` trigger, and detector state rides along in dumps as the
    /// `health` context source. Call after [`WireEndpoint::enable_timeline`]
    /// (panics otherwise — caller bug) and after
    /// [`WireEndpoint::set_flight`] if dumps should carry detector state.
    pub fn enable_health(&mut self, cfg: HealthConfig) {
        let s = self
            .sampler
            .as_mut()
            .expect("enable_timeline before enable_health");
        let mon = Rc::new(RefCell::new(HealthMonitor::for_timeline(&s.tl, cfg)));
        s.health = Some(mon.clone());
        if self.flight.is_enabled() {
            self.flight.add_context_source(
                "health",
                Rc::new(move || mon.borrow().state_json()),
            );
        }
    }

    /// Snapshot the health verdict, if [`WireEndpoint::enable_health`] is
    /// active.
    pub fn health_report(&self) -> Option<HealthReport> {
        let s = self.sampler.as_ref()?;
        s.health.as_ref().map(|h| h.borrow().report())
    }

    /// Commit one timeline row right now (no-op without
    /// [`WireEndpoint::enable_timeline`]). Called automatically from
    /// [`WireEndpoint::poll`] when a row is due; call it once more after
    /// the drive loop ends for the exact reconciliation row.
    pub fn sample_timeline<B: Backplane>(&mut self, bp: &mut B) {
        if self.sampler.is_none() {
            return;
        }
        let now = bp.now_ns();
        let stats = self.stats;
        let token = self.progress_token();
        let in_flight: u64 = self.conns.iter().map(|c| c.in_flight()).sum();
        let active = self.min_active_rails().unwrap_or(0) as u64;
        let rto = self
            .conns
            .iter()
            .map(|c| c.rtt.current_rto().as_nanos())
            .max()
            .unwrap_or(0);
        let backoff = u64::from(self.max_backoff());
        let fence = self.fence_buffered_total() as u64;
        let opened = {
            let s = self.sampler.as_mut().expect("checked above");
            if token != s.last_token {
                s.last_token = token;
                s.last_token_change_ns = now;
            }
            for (id, (_, v)) in s.counters.iter().zip(stats.monotone_counters()) {
                s.tl.set(*id, v);
            }
            s.tl.set(s.progress_token, token);
            s.tl.set(s.token_age_ns, now.saturating_sub(s.last_token_change_ns));
            s.tl.set(s.in_flight, in_flight);
            s.tl.set(s.active_rails, active);
            s.tl.set(s.rto_ns, rto);
            s.tl.set(s.backoff, backoff);
            s.tl.set(s.fence_buffered, fence);
            for (r, &sid) in s.rail_state.iter().enumerate() {
                // Worst (highest-coded) rail state across connections; in the
                // standard `pair` arrangement there is exactly one connection.
                let code = self
                    .conns
                    .iter()
                    .map(|c| crate::timeline::rail_state_code(c.rails.state(r)))
                    .max()
                    .unwrap_or(0);
                s.tl.set(sid, code);
            }
            for (r, &bid) in s.rail_backlog.iter().enumerate() {
                s.tl.set(bid, bp.tx_backlog_ns(r));
            }
            s.tl.sample(now);
            match &s.health {
                Some(h) => {
                    let i = s.tl.len() - 1;
                    let (t, vals) = s.tl.row(i);
                    let opened = h.borrow_mut().observe(t, vals, s.tl.stale_words(i));
                    opened.map(|cause| (cause, h.borrow().open_incidents()))
                }
                None => None,
            }
        };
        // Flight arming happens with the sampler borrow released: the dump
        // evaluates the `health` context source, which re-borrows the
        // monitor.
        if let Some((cause, open)) = opened {
            self.flight
                .anomaly(self.node, None, cause.ordinal() as u64, open as u64, now);
        }
    }

    /// Detach and return the sample ring recorded so far.
    pub fn take_timeline(&mut self) -> Option<Timeline> {
        self.sampler.take().map(|s| s.tl)
    }

    /// Attach a flight recorder: RTO backoffs, rail deaths/readmissions,
    /// fence releases and watchdog trips are noted (and dump per the
    /// recorder's triggers) from this endpoint on.
    pub fn set_flight(&mut self, flight: &FlightRecorder) {
        self.flight = flight.clone();
    }

    /// NACK-triggered retransmissions suppressed by the
    /// [`ProtoConfig::nack_resend_burst`] storm cap.
    pub fn storm_suppressed(&self) -> u64 {
        self.storm_suppressed
    }

    /// True when every connection is fully quiesced: nothing queued or
    /// unacknowledged to send, no receive gap, no fence-blocked fragments.
    /// The graceful-shutdown criterion — see [`drain`].
    pub fn quiesced(&self) -> bool {
        self.conns.iter().all(|c| {
            c.send_queue.is_empty()
                && c.acked == c.next_seq
                && !c.seqs.has_gap()
                && c.order.buffered() == 0
        })
    }

    /// Abandon connection `conn`'s in-flight sends after a fatal
    /// [`WireError`]: clears the send queue, disarms every timer, and
    /// returns the operation ids that will never complete — the casualties
    /// a caller reports instead of waiting on completions that cannot
    /// arrive.
    pub fn abort_pending(&mut self, conn: usize) -> Vec<u64> {
        let c = &mut self.conns[conn];
        c.send_queue.clear();
        c.ack_deadline = None;
        c.nack_deadline = None;
        c.rto_deadline = None;
        c.pending_write_ops.drain(..).map(|(_, op, _)| op).collect()
    }

    /// Monotone counter that moves iff real protocol progress happened:
    /// receive counters plus acknowledgement, cumulative and fence-release
    /// frontiers. Timer fires and retransmissions deliberately do not move
    /// it — a peer retransmitting into a dead fabric is not progressing.
    fn progress_token(&self) -> u64 {
        let mut t = self.stats.data_frames_recv
            + self.stats.ctrl_frames_recv
            + self.stats.dup_frames_recv
            + self.stats.notifications;
        for c in &self.conns {
            t += c.acked + c.seqs.cumulative() + c.order.applied_below();
        }
        t
    }

    /// Fewest live rails across connections (None with no connections).
    fn min_active_rails(&self) -> Option<usize> {
        self.conns.iter().map(|c| c.rails.active_rails()).min()
    }

    /// Largest RTO backoff exponent across connections.
    fn max_backoff(&self) -> u32 {
        self.conns.iter().map(|c| c.rtt.backoff()).max().unwrap_or(0)
    }

    /// Earliest instant any connection's reorder buffer became non-empty.
    fn oldest_buffered_since(&self) -> Option<u64> {
        self.conns.iter().filter_map(|c| c.buffered_since).min()
    }

    /// Total fence-blocked fragments across connections.
    fn fence_buffered_total(&self) -> usize {
        self.conns.iter().map(|c| c.order.buffered()).sum()
    }

    /// This endpoint's node id.
    pub fn node(&self) -> usize {
        self.node
    }

    /// Endpoint-wide protocol statistics.
    pub fn stats(&self) -> ProtoStats {
        self.stats
    }

    /// The shared span recorder.
    pub fn span_recorder(&self) -> &SpanRecorder {
        &self.spans
    }

    /// Read `len` bytes of this node's application memory at `addr`.
    pub fn mem_read(&self, addr: u64, len: usize) -> Vec<u8> {
        self.memory.read_vec(addr, len)
    }

    /// Next pending remote-write notification, if any.
    pub fn take_notification(&mut self) -> Option<Notification> {
        self.notifications.pop_front()
    }

    /// Next acknowledged write, if any.
    pub fn take_completion(&mut self) -> Option<CompletedWrite> {
        self.completions.pop_front()
    }

    /// Sequencing/ordering state of connection `conn` (tests, invariants).
    pub fn conn_state(&self, conn: usize) -> WireConnState {
        let c = &self.conns[conn];
        WireConnState {
            next_seq: c.next_seq,
            acked: c.acked,
            sent_up_to: c.sent_up_to,
            cumulative: c.seqs.cumulative(),
            applied_below: c.order.applied_below(),
            fence_buffered: c.order.buffered(),
            has_gap: c.seqs.has_gap(),
        }
    }

    /// Earliest armed protocol deadline across all connections, if any.
    pub fn next_deadline(&self) -> Option<u64> {
        self.conns
            .iter()
            .flat_map(|c| [c.ack_deadline, c.nack_deadline, c.rto_deadline])
            .flatten()
            .min()
    }

    /// Issue a remote write of `data` to `remote_addr` on `conn`. Returns
    /// the operation id; completion is reported via
    /// [`WireEndpoint::take_completion`] once the covering ack arrives.
    pub fn write<B: Backplane>(
        &mut self,
        conn: usize,
        bp: &mut B,
        remote_addr: u64,
        data: Bytes,
        flags: OpFlags,
    ) -> u64 {
        let now = bp.now_ns();
        let max_payload = self.proto.max_payload.min(bp.mtu()).min(bp.peer_mtu());
        let mut flags = flags;
        if self.proto.force_ordered {
            flags.fence_backward = true;
            flags.fence_forward = true;
        }
        let total = data.len();
        self.stats.ops_write += 1;
        self.stats.bytes_written += total as u64;
        let node = self.node;
        let op_id;
        let nfrags;
        {
            let c = &mut self.conns[conn];
            c.stats.ops_write += 1;
            c.stats.bytes_written += total as u64;
            op_id = c.next_op;
            c.next_op += 1;
            let fence_floor = c.last_fwd_op.map_or(0, |o| o + 1);
            if flags.fence_forward {
                c.last_fwd_op = Some(op_id);
            }
            nfrags = total.div_ceil(max_payload).max(1);
            let mut last_seq = 0;
            for i in 0..nfrags {
                let off = i * max_payload;
                let frag = data.slice(off..total.min(off + max_payload));
                let mut fl = FrameFlags::empty();
                if flags.fence_backward {
                    fl |= FrameFlags::FENCE_BACKWARD;
                }
                if flags.fence_forward {
                    fl |= FrameFlags::FENCE_FORWARD;
                }
                if flags.notify {
                    fl |= FrameFlags::NOTIFY;
                }
                if i == 0 {
                    fl |= FrameFlags::FIRST_FRAGMENT;
                }
                if i == nfrags - 1 {
                    fl |= FrameFlags::LAST_FRAGMENT;
                }
                let seq = c.next_seq;
                c.next_seq += 1;
                last_seq = seq;
                let header = FrameHeader {
                    kind: FrameKind::Data,
                    flags: fl,
                    conn: c.peer_conn_id,
                    seq: to_wire(seq),
                    ack: 0, // filled at transmit time
                    op_id: to_wire(op_id),
                    op_total_len: total as u32,
                    fence_floor: to_wire(fence_floor),
                    remote_addr: remote_addr + off as u64,
                    aux: 0,
                };
                c.send_queue.push_back(Frame {
                    // src/dst rewritten at transmit time (rail choice)
                    src: bp.local_mac(0),
                    dst: bp.peer_mac(0),
                    header,
                    payload: frag,
                });
            }
            c.pending_write_ops.push_back((last_seq, op_id, now));
        }
        self.spans.op_issued(
            SpanKey::new(node, conn, to_wire(op_id)),
            SpanKind::Write,
            now,
            now,
            nfrags as u32,
            total as u64,
        );
        self.pump_send(conn, bp);
        self.ensure_rto(conn, bp.now_ns());
        op_id
    }

    /// Drain received frames and fire due timers. Returns true when any
    /// protocol work happened (the caller's idle signal).
    pub fn poll<B: Backplane>(&mut self, bp: &mut B) -> bool {
        let mut progressed = false;
        while let Some(rx) = bp.next() {
            progressed = true;
            self.apply_rx(bp, rx);
        }
        let progressed = progressed | self.fire_timers(bp);
        if let Some(s) = &self.sampler {
            if s.tl.due(bp.now_ns()) {
                self.sample_timeline(bp);
            }
        }
        progressed
    }

    // ------------------------------------------------------------------
    // Receive path
    // ------------------------------------------------------------------

    fn apply_rx<B: Backplane>(&mut self, bp: &mut B, rx: BpRx) {
        let f = rx.frame;
        let conn = f.header.conn as usize;
        if conn >= self.conns.len() {
            return;
        }
        if self.spans.is_enabled() {
            self.span_arrival(conn, &f, rx.at_ns);
        }
        // Remember which rail delivered this frame: control frames are sent
        // back along the reverse path (see the simulator endpoint).
        let rail = rx.rail as usize;
        if rail < bp.rails() {
            self.conns[conn].last_rx_rail = Some(rail);
        }
        let now = bp.now_ns();
        // Piggybacked cumulative ack (every frame carries one).
        self.process_ack(conn, f.header.ack, now, bp);
        match f.header.kind {
            FrameKind::Ack => {
                self.stats.ctrl_frames_recv += 1;
                self.conns[conn].stats.ctrl_frames_recv += 1;
            }
            FrameKind::Nack => {
                self.stats.ctrl_frames_recv += 1;
                self.conns[conn].stats.ctrl_frames_recv += 1;
                self.process_nack(conn, &f, bp);
            }
            FrameKind::Data => self.process_data(conn, f, now, bp),
            FrameKind::ReadRequest | FrameKind::ReadResponse => {
                // The wire driver speaks the write path only (module docs);
                // account the frame so the gap is visible, not silent.
                self.stats.ctrl_frames_recv += 1;
                self.conns[conn].stats.ctrl_frames_recv += 1;
            }
            FrameKind::Connect | FrameKind::ConnectAck => {
                // Setup collapses to WireEndpoint::pair.
            }
        }
    }

    fn process_ack<B: Backplane>(&mut self, conn: usize, wire_ack: u32, now: u64, bp: &mut B) {
        let node = self.node;
        let mut rail_events: Vec<RailEvent> = Vec::new();
        let mut completed: Vec<(u64, u64)> = Vec::new();
        {
            let c = &mut self.conns[conn];
            let ack = from_wire(c.acked, wire_ack);
            if ack <= c.acked || ack > c.next_seq {
                return;
            }
            let old_acked = c.acked;
            c.acked = ack;
            c.last_progress_ns = now;
            let old_sent = c.sent_up_to;
            c.sent_up_to = c.sent_up_to.max(ack);
            for _ in old_sent..c.sent_up_to {
                c.send_queue.pop_front();
            }
            // Credit the rails that carried the newly-covered frames; RTT
            // sample per Karn's algorithm (first-transmission frames only).
            let mut rtt_sample = None;
            for seq in old_acked..ack {
                let Some(slot) = c.tx.remove(seq) else {
                    continue;
                };
                if !slot.retransmitted {
                    rtt_sample = Some(SimTime(now).since(slot.sent_at));
                }
                if let Some(ev) = c.rails.on_ack(slot.rail, seq) {
                    rail_events.push(ev);
                }
            }
            match rtt_sample {
                Some(s) => c.rtt.on_sample(s),
                None => c.rtt.on_progress(),
            }
            while c
                .pending_write_ops
                .front()
                .is_some_and(|(last, _, _)| *last < ack)
            {
                let (_, op, created) = c.pending_write_ops.pop_front().expect("checked front");
                completed.push((op, created));
            }
            if c.acked == c.next_seq {
                c.rto_deadline = None;
            }
        }
        for ev in rail_events {
            let RailEvent::Readmitted(rail) = ev else {
                continue;
            };
            self.stats.rail_up_events += 1;
            self.conns[conn].stats.rail_up_events += 1;
            self.flight.note(
                FlightCode::RailUp,
                self.node,
                Some(conn),
                Some(rail as u32),
                0,
                0,
                now,
            );
        }
        for &(op, created) in &completed {
            let key = SpanKey::new(node, conn, to_wire(op));
            self.spans.ack_rx(key, now);
            self.spans.op_completed(key, now);
            self.completions.push_back(CompletedWrite {
                op,
                created_ns: created,
                completed_ns: now,
            });
        }
        // The window opened: transmit whatever became eligible.
        self.pump_send(conn, bp);
    }

    fn process_nack<B: Backplane>(&mut self, conn: usize, f: &Frame, bp: &mut B) {
        let ranges = NackRanges::decode(&f.payload);
        let window = self.proto.window;
        // Storm bound: one NACK may trigger at most `nack_resend_burst`
        // retransmissions. Anything beyond the cap stays in the window and
        // is recovered by the receiver's paced NACK repeats — a single
        // control frame can never unleash a full-window salvo.
        let burst_cap = (self.proto.nack_resend_burst.max(1) as u64).min(window) as usize;
        let now = bp.now_ns();
        let mut to_resend: Vec<u64> = Vec::new();
        let mut suppressed = 0u64;
        {
            let c = &self.conns[conn];
            let acked = c.acked;
            'outer: for &(wf, wt) in &ranges.ranges {
                let from = from_wire(acked, wf);
                let to = from_wire(acked, wt);
                if to <= from {
                    continue;
                }
                for seq in from..to.min(from + window) {
                    if c.tx.contains(seq) {
                        if to_resend.len() < burst_cap {
                            to_resend.push(seq);
                        } else {
                            suppressed += 1;
                        }
                    }
                    if to_resend.len() as u64 + suppressed >= window {
                        break 'outer;
                    }
                }
            }
        }
        self.storm_suppressed += suppressed;
        // Each NACKed frame is a loss attributed to the rail that last
        // carried it — debit before the retransmit reassigns the rail.
        let mut dead_rails: Vec<usize> = Vec::new();
        {
            let c = &mut self.conns[conn];
            for &seq in &to_resend {
                let rail = c.tx.get(seq).map(|s| s.rail);
                if let Some(rail) = rail {
                    if let Some(RailEvent::Dead(r)) = c.rails.on_loss(rail, seq, SimTime(now)) {
                        dead_rails.push(r);
                    }
                }
            }
        }
        self.stats.rail_down_events += dead_rails.len() as u64;
        self.conns[conn].stats.rail_down_events += dead_rails.len() as u64;
        for rail in dead_rails {
            self.flight.rail_death(self.node, Some(conn), rail as u32, now);
        }
        let n = to_resend.len() as u64;
        self.stats.retransmits_nack += n;
        self.conns[conn].stats.retransmits_nack += n;
        for seq in to_resend {
            self.transmit(conn, seq, true, bp);
        }
    }

    fn process_data<B: Backplane>(&mut self, conn: usize, f: Frame, now: u64, bp: &mut B) {
        let ack_every = self.proto.ack_every;
        let node = self.node;
        let peer = self.conns[conn].peer_node;
        let spans_on = self.spans.is_enabled();
        let track_stalls = spans_on || self.flight.is_enabled();
        let (admit, seq) = {
            let c = &mut self.conns[conn];
            let seq = from_wire(c.seqs.cumulative(), f.header.seq);
            (c.seqs.admit(seq), seq)
        };
        match admit {
            Admit::Duplicate => {
                self.stats.dup_frames_recv += 1;
                self.conns[conn].stats.dup_frames_recv += 1;
                // Immediate explicit ack: recovers from lost acks (§2.4).
                self.send_explicit_ack(conn, bp);
                return;
            }
            Admit::New { in_order } => {
                let bytes = f.payload.len() as u64;
                self.stats.data_frames_recv += 1;
                self.stats.data_bytes_recv += bytes;
                self.conns[conn].stats.data_frames_recv += 1;
                self.conns[conn].stats.data_bytes_recv += bytes;
                if !in_order {
                    self.stats.ooo_arrivals += 1;
                    self.conns[conn].stats.ooo_arrivals += 1;
                }
                if spans_on {
                    self.span_admit(conn, &f, seq, now);
                    let cum = self.conns[conn].seqs.cumulative();
                    self.spans.cum_advanced(node, conn, cum, now);
                }
            }
        }
        // Reconstruct op-level fields and run the fence machinery.
        let mut notify_ops: Vec<(u64, u64, u64)> = Vec::new(); // (op, addr, len)
        {
            let c = &mut self.conns[conn];
            let op_id = from_wire(c.order.applied_below(), f.header.op_id);
            let fence_floor = from_wire(c.order.applied_below(), f.header.fence_floor);
            let meta = FragMeta {
                op_id,
                op_total: f.header.op_total_len as u64,
                fence_floor,
                fence_backward: f.header.flags.contains(FrameFlags::FENCE_BACKWARD),
                len: f.payload.len() as u64,
            };
            let entry = c.op_meta.entry(op_id).or_insert_with(|| WOpMeta {
                kind: f.header.kind,
                start_addr: f.header.remote_addr,
                total: meta.op_total,
                notify: f.header.flags.contains(FrameFlags::NOTIFY),
            });
            entry.start_addr = entry.start_addr.min(f.header.remote_addr);
            let payload = WFrag {
                kind: f.header.kind,
                addr: f.header.remote_addr,
                data: f.payload.clone(),
            };
            let buffered_before = c.order.buffered();
            let mut release = std::mem::take(&mut c.release_scratch);
            c.order.offer_into(meta, payload, &mut release);
            if c.order.buffered() > buffered_before && track_stalls {
                // Held back by a fence: start the stall clock.
                c.fence_stall_start.entry(op_id).or_insert(now);
            }
            // Stalled ops released by this fragment: attribute the stall.
            if track_stalls {
                let released: Vec<(u64, u64)> = release
                    .apply
                    .iter()
                    .filter_map(|(m, _)| {
                        c.fence_stall_start
                            .remove(&m.op_id)
                            .map(|start| (m.op_id, now.saturating_sub(start)))
                    })
                    .collect();
                for (op, stalled_ns) in released {
                    if let Some(mi) = c.op_meta.get(&op) {
                        if mi.kind == FrameKind::Data {
                            if spans_on {
                                let origin = SpanKey::new(
                                    c.peer_node,
                                    c.peer_conn_id as usize,
                                    to_wire(op),
                                );
                                self.spans.delivered(origin, now, stalled_ns);
                            }
                            self.flight.fence_release(node, conn, op, stalled_ns, now);
                        }
                    }
                }
            }
            // The watchdog's fence-stall clock, kept regardless of
            // instrumentation: when did the buffer last become non-empty?
            c.buffered_since = if c.order.buffered() > 0 {
                c.buffered_since.or(Some(now))
            } else {
                None
            };
            // Apply released fragments to memory.
            for (_, frag) in &release.apply {
                if frag.kind == FrameKind::Data {
                    self.memory.write(frag.addr, &frag.data);
                }
            }
            // Handle op completions.
            for &op in &release.completed {
                let Some(mi) = c.op_meta.remove(&op) else {
                    continue;
                };
                if mi.kind != FrameKind::Data {
                    continue;
                }
                if spans_on {
                    self.spans.delivered(
                        SpanKey::new(c.peer_node, c.peer_conn_id as usize, to_wire(op)),
                        now,
                        0,
                    );
                }
                if mi.notify {
                    notify_ops.push((op, mi.start_addr, mi.total));
                }
            }
            // Return the drained release buffers for the next frame.
            release.apply.clear();
            release.completed.clear();
            c.release_scratch = release;
        }
        let n_notif = notify_ops.len() as u64;
        self.stats.notifications += n_notif;
        self.conns[conn].stats.notifications += n_notif;
        for (_, addr, len) in notify_ops {
            self.notifications.push_back(Notification {
                from_node: peer,
                addr,
                len: len as usize,
            });
        }
        // Acknowledgement policy.
        let (send_ack_now, arm_ack, arm_nack) = {
            let c = &mut self.conns[conn];
            c.frames_since_ack += 1;
            let send_now = c.frames_since_ack >= ack_every;
            let arm_ack = !send_now && c.ack_deadline.is_none();
            let arm_nack = c.seqs.has_gap() && c.nack_deadline.is_none();
            (send_now, arm_ack, arm_nack)
        };
        if send_ack_now {
            self.send_explicit_ack(conn, bp);
        }
        if arm_ack {
            self.conns[conn].ack_deadline = Some(now + self.proto.delayed_ack_timeout.as_nanos());
        }
        if arm_nack {
            self.conns[conn].nack_deadline = Some(now + self.proto.nack_delay.as_nanos());
        }
    }

    // ------------------------------------------------------------------
    // Acks, nacks, timers
    // ------------------------------------------------------------------

    fn send_explicit_ack<B: Backplane>(&mut self, conn: usize, bp: &mut B) {
        let now = bp.now_ns();
        let node = self.node;
        self.stats.explicit_acks_sent += 1;
        let draw = self.rng_draw();
        let (rail, f, cum) = {
            let c = &mut self.conns[conn];
            c.stats.explicit_acks_sent += 1;
            c.frames_since_ack = 0;
            let cum = c.seqs.cumulative();
            let header = FrameHeader {
                kind: FrameKind::Ack,
                flags: FrameFlags::empty(),
                conn: c.peer_conn_id,
                seq: to_wire(c.next_seq),
                ack: to_wire(cum),
                op_id: 0,
                op_total_len: 0,
                fence_floor: 0,
                remote_addr: 0,
                aux: 0,
            };
            // Reverse-path routing: reply on the rail the peer's frames are
            // arriving on — demonstrably alive in at least one direction.
            let rail = match c.last_rx_rail {
                Some(r) if r < bp.rails() => r,
                _ => {
                    let mask = c.rails.eligible_mask(SimTime(now));
                    c.sched
                        .pick(bp.rails(), mask, |i| bp.tx_backlog_ns(i), |n| draw % n)
                }
            };
            let f = Frame {
                src: bp.local_mac(rail),
                dst: bp.peer_mac(rail),
                header,
                payload: Bytes::new(),
            };
            (rail, f, cum)
        };
        self.spans.ack_sent(node, conn, cum, now);
        bp.send(rail, f);
    }

    fn send_nack<B: Backplane>(&mut self, conn: usize, ranges: Vec<(u32, u32)>, bp: &mut B) {
        let now = bp.now_ns();
        let node = self.node;
        self.stats.nacks_sent += 1;
        let draw = self.rng_draw();
        let (rail, f, cum) = {
            let c = &mut self.conns[conn];
            c.stats.nacks_sent += 1;
            let payload = NackRanges { ranges }.encode();
            let cum = c.seqs.cumulative();
            let header = FrameHeader {
                kind: FrameKind::Nack,
                flags: FrameFlags::empty(),
                conn: c.peer_conn_id,
                seq: to_wire(c.next_seq),
                ack: to_wire(cum),
                op_id: 0,
                op_total_len: 0,
                fence_floor: 0,
                remote_addr: 0,
                aux: 0,
            };
            let rail = match c.last_rx_rail {
                Some(r) if r < bp.rails() => r,
                _ => {
                    let mask = c.rails.eligible_mask(SimTime(now));
                    c.sched
                        .pick(bp.rails(), mask, |i| bp.tx_backlog_ns(i), |n| draw % n)
                }
            };
            let f = Frame {
                src: bp.local_mac(rail),
                dst: bp.peer_mac(rail),
                header,
                payload,
            };
            (rail, f, cum)
        };
        // A NACK also carries the cumulative ack.
        self.spans.ack_sent(node, conn, cum, now);
        bp.send(rail, f);
    }

    fn ensure_rto(&mut self, conn: usize, now: u64) {
        let c = &mut self.conns[conn];
        if c.rto_deadline.is_none() && c.acked != c.next_seq {
            c.rto_deadline = Some(now + c.rtt.current_rto().as_nanos());
        }
    }

    /// Fire every deadline that is due. Returns true if anything fired.
    fn fire_timers<B: Backplane>(&mut self, bp: &mut B) -> bool {
        let now = bp.now_ns();
        let mut fired = false;
        for conn in 0..self.conns.len() {
            if self.conns[conn].ack_deadline.is_some_and(|d| d <= now) {
                fired = true;
                self.conns[conn].ack_deadline = None;
                if self.conns[conn].frames_since_ack > 0 {
                    self.send_explicit_ack(conn, bp);
                }
            }
            if self.conns[conn].nack_deadline.is_some_and(|d| d <= now) {
                fired = true;
                self.nack_check_fire(conn, now, bp);
            }
            if self.conns[conn].rto_deadline.is_some_and(|d| d <= now) {
                fired = true;
                self.rto_fire(conn, now, bp);
            }
        }
        fired
    }

    fn nack_check_fire<B: Backplane>(&mut self, conn: usize, now: u64, bp: &mut B) {
        let repeat = self.proto.nack_repeat;
        let min_age = self.proto.nack_delay;
        let (due, rearm) = {
            let c = &mut self.conns[conn];
            c.nack_deadline = None;
            let WConn {
                seqs,
                gaps,
                missing_scratch,
                ..
            } = c;
            seqs.missing_ranges_into(missing_scratch);
            let cumulative = seqs.cumulative();
            gaps.purge_below(cumulative);
            let now_t = SimTime(now);
            let mut due = Vec::new();
            for &(from, to) in missing_scratch.iter() {
                // Only report gaps older than `nack_delay` — multi-link
                // skew closes younger gaps on its own (§2.4).
                let g = gaps.entry(from, now_t);
                if now_t.since(g.first_seen) < min_age {
                    continue;
                }
                if g.last_nack.is_none_or(|t| now_t.since(t) >= repeat) {
                    g.last_nack = Some(now_t);
                    due.push((to_wire(from), to_wire(to)));
                }
            }
            let rearm = !missing_scratch.is_empty();
            if rearm {
                c.nack_deadline = Some(now + min_age.as_nanos());
            }
            (due, rearm)
        };
        let _ = rearm;
        if !due.is_empty() {
            self.send_nack(conn, due, bp);
        }
    }

    fn rto_fire<B: Backplane>(&mut self, conn: usize, now: u64, bp: &mut B) {
        let (resend, rearm) = {
            let c = &mut self.conns[conn];
            c.rto_deadline = None;
            if c.acked == c.next_seq {
                (None, false)
            } else if now.saturating_sub(c.last_progress_ns) >= c.rtt.current_rto().as_nanos()
                && c.sent_up_to > c.acked
            {
                // §2.4: retransmit the last transmitted frame; the receiver
                // will NACK anything else that is missing.
                let seq = c.sent_up_to - 1;
                c.last_progress_ns = now;
                c.stats.retransmits_rto += 1;
                let backoff = c.rtt.on_timeout();
                c.stats.rto_backoff_max = c.stats.rto_backoff_max.max(backoff as u64);
                let rail = c.tx.get(seq).map(|s| s.rail);
                let rail_ev = rail.and_then(|r| c.rails.on_loss(r, seq, SimTime(now)));
                if rail_ev.is_some() {
                    c.stats.rail_down_events += 1;
                }
                let dead_rail = match rail_ev {
                    Some(RailEvent::Dead(r)) => Some(r),
                    _ => None,
                };
                let rto_ns = c.rtt.current_rto().as_nanos();
                (Some((seq, backoff, rail, dead_rail, rto_ns)), true)
            } else {
                (None, true)
            }
        };
        if let Some((seq, backoff, rail, dead_rail, rto_ns)) = resend {
            self.stats.retransmits_rto += 1;
            self.stats.rto_backoff_max = self.stats.rto_backoff_max.max(backoff as u64);
            self.flight.rto_backoff(
                self.node,
                conn,
                rail.map(|r| r as u32),
                rto_ns,
                backoff,
                now,
            );
            if let Some(r) = dead_rail {
                self.flight.rail_death(self.node, Some(conn), r as u32, now);
            }
            self.transmit(conn, seq, true, bp);
        }
        if rearm {
            let c = &mut self.conns[conn];
            c.rto_deadline = Some(now + c.rtt.current_rto().as_nanos());
        }
    }

    // ------------------------------------------------------------------
    // Transmit path
    // ------------------------------------------------------------------

    /// Transmit window-eligible queued frames.
    fn pump_send<B: Backplane>(&mut self, conn: usize, bp: &mut B) {
        let window = self.proto.window;
        let (mut n, mut bytes) = (0u64, 0u64);
        loop {
            let c = &mut self.conns[conn];
            if c.sent_up_to >= c.next_seq || c.in_flight() >= window {
                break;
            }
            let seq = c.sent_up_to;
            let frame = c
                .send_queue
                .pop_front()
                .expect("send_queue covers [sent_up_to, next_seq)");
            let len = frame.payload.len() as u64;
            c.tx.insert(TxSlot {
                seq,
                rail: 0,
                sent_at: SimTime::ZERO,
                retransmitted: false,
                frame,
            });
            c.sent_up_to += 1;
            self.transmit(conn, seq, false, bp);
            n += 1;
            bytes += len;
        }
        if n > 0 {
            self.stats.data_frames_sent += n;
            self.stats.data_bytes_sent += bytes;
            let c = &mut self.conns[conn];
            c.stats.data_frames_sent += n;
            c.stats.data_bytes_sent += bytes;
            // Any data frame piggybacks the ack state.
            c.frames_since_ack = 0;
        }
    }

    /// Fetch the stored frame for `seq`, refresh its piggybacked ack,
    /// assign a rail and send it.
    fn transmit<B: Backplane>(&mut self, conn: usize, seq: u64, retransmit: bool, bp: &mut B) {
        let now = bp.now_ns();
        let node = self.node;
        let draw = self.rng_draw();
        let spans_on = self.spans.is_enabled();
        let (rail, f, cum) = {
            let c = &mut self.conns[conn];
            let Some(slot) = c.tx.get(seq) else {
                return;
            };
            let mut f = slot.frame.clone();
            f.header.ack = to_wire(c.seqs.cumulative());
            if retransmit {
                f.header.flags |= FrameFlags::RETRANSMIT;
            }
            let mask = c.rails.eligible_mask(SimTime(now));
            let rail = c
                .sched
                .pick(bp.rails(), mask, |i| bp.tx_backlog_ns(i), |n| draw % n);
            c.rails.note_sent(rail, seq);
            let slot = c.tx.get_mut(seq).expect("slot just read");
            slot.rail = rail;
            slot.sent_at = SimTime(now);
            slot.retransmitted = slot.retransmitted || retransmit;
            f.src = bp.local_mac(rail);
            f.dst = bp.peer_mac(rail);
            (rail, f, c.seqs.cumulative())
        };
        if spans_on && f.header.kind == FrameKind::Data {
            let crit = f.header.flags.contains(FrameFlags::LAST_FRAGMENT);
            self.spans.frame_tx(
                SpanKey::new(node, conn, f.header.op_id),
                Leg::Req,
                crit,
                retransmit,
                rail as u32,
                bp.tx_backlog_ns(rail),
                now,
            );
            // Every data-bearing frame piggybacks the cumulative ack.
            self.spans.ack_sent(node, conn, cum, now);
        }
        bp.send(rail, f);
    }

    // ------------------------------------------------------------------
    // Span stamping (mirrors the simulator endpoint's milestones)
    // ------------------------------------------------------------------

    /// Physical-arrival milestone for span-critical frames (the last
    /// fragment of a write), keyed by the op's origin.
    fn span_arrival(&self, conn: usize, f: &Frame, at_ns: u64) {
        if f.header.kind == FrameKind::Data
            && f.header.flags.contains(FrameFlags::LAST_FRAGMENT)
        {
            let c = &self.conns[conn];
            self.spans.frame_arrival(
                SpanKey::new(c.peer_node, c.peer_conn_id as usize, f.header.op_id),
                Leg::Req,
                at_ns,
            );
        }
    }

    /// Reorder-admission milestone; registers write last-fragments with the
    /// cumulative-ack waiter queue.
    fn span_admit(&self, conn: usize, f: &Frame, seq: u64, now_ns: u64) {
        if f.header.kind == FrameKind::Data
            && f.header.flags.contains(FrameFlags::LAST_FRAGMENT)
        {
            let c = &self.conns[conn];
            let key = SpanKey::new(c.peer_node, c.peer_conn_id as usize, f.header.op_id);
            self.spans.frame_admitted(key, Leg::Req, now_ns);
            self.spans.await_cum(self.node, conn, seq, key);
        }
    }

    /// Deterministic per-endpoint draw for the Random scheduling policy
    /// (xorshift64*; the sim backend's RNG lives in the simulator, which a
    /// transport-agnostic driver cannot reach).
    fn rng_draw(&mut self) -> usize {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        (x.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 33) as usize
    }
}

/// Classify a tripped watchdog into the sharpest [`WireError`] the two
/// endpoints' state supports, checked in severity order.
fn classify_stall(a: &WireEndpoint, b: &WireEndpoint, idle_ns: u64) -> WireError {
    for ep in [a, b] {
        if ep.min_active_rails() == Some(0) {
            return WireError::AllRailsDead {
                node: ep.node,
                idle_ns,
            };
        }
    }
    for ep in [a, b] {
        let backoff = ep.max_backoff();
        if backoff >= ep.proto.rto_storm_cap {
            return WireError::PeerUnreachable {
                node: ep.node,
                backoff,
                idle_ns,
            };
        }
    }
    for ep in [a, b] {
        let buffered = ep.fence_buffered_total();
        if buffered > 0 {
            return WireError::FenceStallExceeded {
                node: ep.node,
                stalled_ns: idle_ns,
                buffered,
            };
        }
    }
    WireError::Stalled {
        idle_ns,
        a: a.conn_state(0),
        b: b.conn_state(0),
    }
}

/// Run two endpoints over a shared fabric until `done`, under explicit
/// liveness bounds: interleaves receive processing, timer fires and the
/// caller's reaction logic (`react` runs after each poll round — post
/// replies, count notifications), and sleeps to the earliest armed
/// deadline when both endpoints go idle.
///
/// A **progress watchdog** guards the loop: if no real protocol progress
/// (acknowledgement/cumulative/fence frontiers, receive counters — *not*
/// timer fires) happens for `limits.progress_timeout_ns`, or the drive
/// exceeds `limits.hard_budget_ns` in total, the loop returns a typed
/// [`WireError`] classified from the endpoints' state — all rails dead,
/// peer unreachable past the RTO storm cap, a fence stall, or a plain
/// stall — instead of polling forever. When a flight recorder is attached
/// ([`WireEndpoint::set_flight`]), the trip is noted and a `watchdog`
/// post-mortem dump is taken on both endpoints before returning. Returns
/// elapsed backplane-clock nanoseconds on success.
pub fn drive_with<BA: Backplane, BB: Backplane>(
    a: &mut WireEndpoint,
    bpa: &mut BA,
    b: &mut WireEndpoint,
    bpb: &mut BB,
    mut react: impl FnMut(&mut WireEndpoint, &mut BA, &mut WireEndpoint, &mut BB),
    mut done: impl FnMut(&WireEndpoint, &WireEndpoint) -> bool,
    limits: DriveLimits,
) -> Result<u64, WireError> {
    let start = bpa.now_ns();
    let mut last_token = a.progress_token().wrapping_add(b.progress_token());
    let mut last_progress = start;
    loop {
        let pa = a.poll(bpa);
        let pb = b.poll(bpb);
        react(a, bpa, b, bpb);
        if done(a, b) {
            return Ok(bpa.now_ns() - start);
        }
        let now = bpa.now_ns();
        let token = a.progress_token().wrapping_add(b.progress_token());
        if token != last_token {
            last_token = token;
            last_progress = now;
        }
        let idle = now.saturating_sub(last_progress);
        let trip = if limits.fence_stall_limit_ns > 0 {
            // The dedicated fence watchdog fires even while other traffic
            // keeps the progress token moving.
            [&*a, &*b]
                .into_iter()
                .find_map(|ep| {
                    let since = ep.oldest_buffered_since()?;
                    let stalled_ns = now.saturating_sub(since);
                    (stalled_ns > limits.fence_stall_limit_ns).then(|| {
                        WireError::FenceStallExceeded {
                            node: ep.node,
                            stalled_ns,
                            buffered: ep.fence_buffered_total(),
                        }
                    })
                })
        } else {
            None
        };
        let trip = trip.or_else(|| {
            (idle > limits.progress_timeout_ns
                || now.saturating_sub(start) > limits.hard_budget_ns)
                .then(|| classify_stall(a, b, idle))
        });
        if let Some(err) = trip {
            a.flight.watchdog(a.node, Some(0), err.code(), idle, now);
            b.flight.watchdog(b.node, Some(0), err.code(), idle, now);
            return Err(err);
        }
        if pa || pb {
            continue;
        }
        // Idle: sleep to the earliest protocol deadline (or a probe tick
        // when nothing is armed), stopping early on any frame delivery —
        // but never past the watchdog's own trip points, so a dead fabric
        // surfaces the typed error promptly instead of oversleeping.
        let fallback = now + 1_000_000;
        let deadline = [a.next_deadline(), b.next_deadline()]
            .into_iter()
            .flatten()
            .min()
            .unwrap_or(fallback)
            .max(now + 1);
        let wake = deadline
            .min(last_progress.saturating_add(limits.progress_timeout_ns).saturating_add(1))
            .min(start.saturating_add(limits.hard_budget_ns).saturating_add(1))
            .max(now + 1);
        bpa.advance(wake);
    }
}

/// [`drive_with`] under the legacy single-budget shape
/// ([`DriveLimits::budget`]): `budget_ns` without protocol progress — or
/// four times it in total — trips the watchdog.
pub fn drive<BA: Backplane, BB: Backplane>(
    a: &mut WireEndpoint,
    bpa: &mut BA,
    b: &mut WireEndpoint,
    bpb: &mut BB,
    react: impl FnMut(&mut WireEndpoint, &mut BA, &mut WireEndpoint, &mut BB),
    done: impl FnMut(&WireEndpoint, &WireEndpoint) -> bool,
    budget_ns: u64,
) -> Result<u64, WireError> {
    drive_with(a, bpa, b, bpb, react, done, DriveLimits::budget(budget_ns))
}

/// Graceful shutdown: drive both endpoints until every connection has
/// quiesced ([`WireEndpoint::quiesced`]) — queued sends flushed and
/// acknowledged, receive gaps closed, fences drained — so the caller can
/// drop the endpoints without abandoning in-flight operations. On a fatal
/// [`WireError`], [`WireEndpoint::abort_pending`] reports the casualties.
pub fn drain<BA: Backplane, BB: Backplane>(
    a: &mut WireEndpoint,
    bpa: &mut BA,
    b: &mut WireEndpoint,
    bpb: &mut BB,
    limits: DriveLimits,
) -> Result<u64, WireError> {
    drive_with(
        a,
        bpa,
        b,
        bpb,
        |_, _, _, _| {},
        |a, b| a.quiesced() && b.quiesced(),
        limits,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backplane::SimBackplane;
    use crate::SystemConfig;
    use netsim::{build_cluster, Sim};

    fn sim_rig(cfg: &SystemConfig) -> (Sim, SimBackplane, SimBackplane) {
        let sim = Sim::new(cfg.seed);
        let cluster = build_cluster(&sim, cfg.cluster_spec());
        let (bpa, bpb) = SimBackplane::pair(&sim, &cluster);
        (sim, bpa, bpb)
    }

    #[test]
    fn write_delivers_and_completes_on_sim_backplane() {
        let mut cfg = SystemConfig::two_link_1g(2);
        cfg.nodes = 2;
        let (_sim, mut bpa, mut bpb) = sim_rig(&cfg);
        let spans = SpanRecorder::enabled(1 << 10);
        let (mut a, mut b) = WireEndpoint::pair(&cfg.proto, 2, &spans);
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        a.write(
            0,
            &mut bpa,
            0x10_000,
            Bytes::from(payload.clone()),
            OpFlags::RELAXED.with_notify(),
        );
        drive(
            &mut a,
            &mut bpa,
            &mut b,
            &mut bpb,
            |_, _, _, _| {},
            |a, _| a.conn_state(0).acked == a.conn_state(0).next_seq,
            1_000_000_000,
        )
        .expect("completes");
        let done = a.take_completion().expect("write completion queued");
        assert_eq!(done.op, 0);
        assert!(done.completed_ns >= done.created_ns);
        assert_eq!(b.mem_read(0x10_000, payload.len()), payload);
        assert_eq!(b.take_notification().map(|n| (n.from_node, n.addr, n.len)),
            Some((0, 0x10_000, payload.len())));
        let s = a.stats();
        assert_eq!(s.ops_write, 1);
        assert_eq!(s.data_frames_sent, 7);
        assert_eq!(s.retransmits(), 0);
        // Send window fully acknowledged, receive side clean.
        let st = a.conn_state(0);
        assert_eq!(st.acked, st.next_seq);
        let sb = b.conn_state(0);
        assert_eq!(sb.cumulative, 7);
        assert!(!sb.has_gap);
    }

    #[test]
    fn fences_hold_ordering_on_sim_backplane() {
        let mut cfg = SystemConfig::two_link_1g(2);
        cfg.nodes = 2;
        let (_sim, mut bpa, mut bpb) = sim_rig(&cfg);
        let spans = SpanRecorder::disabled();
        let (mut a, mut b) = WireEndpoint::pair(&cfg.proto, 2, &spans);
        // Three ordered writes to the same address: the final value must be
        // the last op's payload.
        for v in 1..=3u8 {
            a.write(
                0,
                &mut bpa,
                0x2000,
                Bytes::from(vec![v; 4096]),
                OpFlags::ORDERED,
            );
        }
        drive(
            &mut a,
            &mut bpa,
            &mut b,
            &mut bpb,
            |_, _, _, _| {},
            |a, _| a.conn_state(0).acked == a.conn_state(0).next_seq,
            1_000_000_000,
        )
        .expect("completes");
        assert_eq!(b.mem_read(0x2000, 4096), vec![3u8; 4096]);
        assert_eq!(b.conn_state(0).applied_below, 3);
        assert_eq!(b.conn_state(0).fence_buffered, 0);
    }
}
